#!/usr/bin/env python
"""Ratchet gate for mypy: the error count may only go down.

Usage (CI)::

    mypy src/repro | python tools/mypy_ratchet.py
    mypy src/repro | python tools/mypy_ratchet.py --update   # after a cleanup

Reads mypy's human output on stdin, counts ``error:`` lines, and
compares against the pinned ceiling in ``tools/mypy_ratchet.txt``:

* count >  ceiling  -> exit 1 (new type errors were introduced)
* count == ceiling  -> exit 0
* count <  ceiling  -> exit 0 with a nag to ratchet the pin down
  (``--update`` rewrites the pin instead)

The pin file may instead contain the word ``bootstrap``: the ratchet
then reports the observed count and exits 0, so the first CI run on an
environment that actually has mypy (the dev container does not) can
establish the ceiling; commit the printed number to arm the gate.

Strict-tier modules (see mypy.ini) get no such grace in either mode:
any error in a path listed in STRICT_PREFIXES fails immediately.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

PIN_FILE = Path(__file__).with_name("mypy_ratchet.txt")

#: Module paths that must stay at zero errors (mirrors the strict
#: sections of mypy.ini).
STRICT_PREFIXES = (
    "src/repro/api/",
    "src/repro/runtime/queues.py",
    "src/repro/costmodel/cached.py",
    "src/repro/lint/",
)

_ERROR_RE = re.compile(r"^(?P<path>[^:\s]+\.py):\d+:(?:\d+:)? error:")


def read_ceiling() -> int | None:
    """The pinned ceiling, or None while the pin is ``bootstrap``."""
    try:
        text = PIN_FILE.read_text().strip()
    except FileNotFoundError:
        return 0
    if text == "bootstrap":
        return None
    return int(text)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the pin to the observed error count",
    )
    args = parser.parse_args(argv)

    errors: list[str] = []
    strict_errors: list[str] = []
    for line in sys.stdin:
        match = _ERROR_RE.match(line)
        if not match:
            continue
        errors.append(line.rstrip())
        path = match.group("path").replace("\\", "/")
        if path.startswith(STRICT_PREFIXES):
            strict_errors.append(line.rstrip())

    ceiling = read_ceiling()
    count = len(errors)

    if strict_errors:
        print(f"mypy-ratchet: {len(strict_errors)} error(s) in strict-tier modules:")
        for line in strict_errors:
            print(f"  {line}")
        return 1

    if args.update:
        PIN_FILE.write_text(f"{count}\n")
        print(f"mypy-ratchet: pin updated to {count}")
        return 0

    if ceiling is None:
        print(
            f"mypy-ratchet: bootstrap mode — observed {count} error(s); "
            f"write that number to {PIN_FILE.name} to arm the ratchet"
        )
        return 0

    if count > ceiling:
        print(f"mypy-ratchet: {count} error(s) exceeds the pinned ceiling of {ceiling}:")
        for line in errors:
            print(f"  {line}")
        print("fix the new errors (preferred) or justify a pin bump in review")
        return 1

    if count < ceiling:
        print(
            f"mypy-ratchet: {count} error(s), pin is {ceiling} — nice; "
            "run with --update to ratchet the pin down"
        )
        return 0

    print(f"mypy-ratchet: {count} error(s), at the pinned ceiling")
    return 0


if __name__ == "__main__":
    sys.exit(main())
