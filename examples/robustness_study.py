"""Robustness study: sensor frame loss, seed variance and DVFS headroom.

Three production questions the XRBench harness can answer beyond the
paper's headline figures:

1. *How gracefully does a design degrade when sensors glitch?*  — inject
   frame loss into the input streams and watch the QoE-led score decay.
2. *How trustworthy is a single run of a dynamic scenario?* — multi-seed
   statistics with confidence intervals (the artifact appendix warns the
   outdoor / AR-assistant scenarios are non-deterministic).
3. *How much battery does deadline slack buy?* — pick the slowest DVFS
   point per model that still meets its deadline (appendix B.1's
   slack-into-energy argument).

Run:  python examples/robustness_study.py
"""

from __future__ import annotations

from repro import Harness, HarnessConfig, build_accelerator
from repro.eval import dvfs_ablation, run_seed_sweep


def frame_loss_sweep() -> None:
    print("1) Sensor frame loss on VR gaming (accelerator A @ 8K PEs)")
    system = build_accelerator("A", 8192)
    for loss in (0.0, 0.05, 0.15, 0.30):
        harness = Harness(
            config=HarnessConfig(frame_loss_probability=loss)
        )
        score = harness.run_scenario("vr_gaming", system).score
        print(
            f"   loss={loss:4.0%}: overall={score.overall:.3f} "
            f"qoe={score.qoe:.3f} rt={score.rt:.3f}"
        )
    print()


def seed_statistics() -> None:
    print("2) Seed variance of the dynamic scenarios (A @ 4K PEs)")
    harness = Harness()
    system = build_accelerator("A", 4096)
    for scenario in ("outdoor_activity_a", "ar_assistant",
                     "social_interaction_b"):
        sweep = run_seed_sweep(harness, scenario, system, seeds=15)
        overall = sweep.get("overall")
        lo, hi = overall.confidence_interval()
        print(
            f"   {scenario:<22s} {overall.mean:.3f} "
            f"(95% CI [{lo:.3f}, {hi:.3f}], spread "
            f"{overall.maximum - overall.minimum:.3f})"
        )
    print()


def dvfs_headroom() -> None:
    print("3) Slack-aware DVFS on a 4K-PE WS engine")
    rows = dvfs_ablation()
    total_nominal = sum(r["nominal_energy_mj"] for r in rows.values())
    total_scaled = sum(r["scaled_energy_mj"] for r in rows.values())
    for code, row in rows.items():
        print(
            f"   {code}: slack {row['slack_ms']:6.1f} ms, latency "
            f"{row['nominal_latency_ms']:6.1f} ms -> run at "
            f"f={row['chosen_frequency']:.1f} "
            f"({row['energy_saving']:+.0%} energy)"
        )
    print(
        f"   aggregate per-inference energy: {total_nominal:.0f} mJ -> "
        f"{total_scaled:.0f} mJ "
        f"({1 - total_scaled / total_nominal:+.0%} saved)"
    )


def main() -> None:
    frame_loss_sweep()
    seed_statistics()
    dvfs_headroom()


if __name__ == "__main__":
    main()
