"""Dynamic model cascading: the Figure 7 experiment as a library script.

The eye pipeline cascades Gaze Estimation after Eye Segmentation.  In a
real device GE only runs when ES finds a sufficiently-open eye, so the
trigger probability is a workload parameter.  This sweep varies it from
25% to 100% on a low-scoring (B) and a high-scoring (J) design and shows
the paper's finding: the constrained design sheds QoE to protect its
real-time behaviour as cascading pressure rises, while the strong design
barely moves.

Run:  python examples/dynamic_cascading.py
"""

from __future__ import annotations

from repro import Harness, build_accelerator
from repro.workload import get_scenario

TRIALS = 40  # the paper uses 200; 40 keeps this example snappy


def main() -> None:
    harness = Harness()
    base = get_scenario("vr_gaming")

    print(
        f"VR gaming, ES->GE cascade probability sweep "
        f"({TRIALS} trials per point)\n"
    )
    for acc_id in ("B", "J"):
        system = build_accelerator(acc_id, 4096)
        print(f"accelerator {acc_id} ({system.describe()}):")
        for prob in (0.25, 0.50, 0.75, 1.00):
            scenario = base.with_dependency_probability("ES", "GE", prob)
            sums = {"rt": 0.0, "qoe": 0.0, "overall": 0.0, "ge_frames": 0.0}
            for seed in range(TRIALS):
                score = harness.run_scenario(scenario, system, seed=seed).score
                sums["rt"] += score.rt
                sums["qoe"] += score.qoe
                sums["overall"] += score.overall
                sums["ge_frames"] += score.model("GE").frames_streamed
            print(
                f"  p={prob:4.0%}: overall={sums['overall'] / TRIALS:.3f} "
                f"rt={sums['rt'] / TRIALS:.3f} "
                f"qoe={sums['qoe'] / TRIALS:.3f} "
                f"(GE triggered {sums['ge_frames'] / TRIALS:.0f} frames/s)"
            )
        print()


if __name__ == "__main__":
    main()
