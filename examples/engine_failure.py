"""One of two engines dies mid-run: QoE degradation and recovery.

Sixteen VR-gaming tenants share accelerator J's two engines when the
seeded ``single`` fault profile kills one of them mid-run (taking its
in-flight dispatch with it) and brings it back late in the window.  The
demo runs the same workload twice — fault-free twin first, then under
the fault plan — and reports:

* the fault timeline the plan scheduled (deterministic in seed, so
  re-running reproduces it exactly);
* what the recovery machinery did: killed dispatches, retries under the
  budget, frames recovered on the surviving engine vs frames lost;
* the QoE price — per-session scores against the twin, and the mean
  kill-to-completion recovery latency of the frames that rode out the
  outage.

Run:  PYTHONPATH=src python examples/engine_failure.py
"""

from __future__ import annotations

from repro.api import RunSpec, execute
from repro.runtime import make_fault_plan

SESSIONS = 16
DURATION_S = 0.5
SEED = 0


def run(faults: str):
    spec = RunSpec(
        scenario="vr_gaming", accelerator="J", pes=8192,
        sessions=SESSIONS, duration_s=DURATION_S, seed=SEED,
        faults=faults,
    )
    return execute(spec)


def mean_qoe(report) -> float:
    scores = [r.score.qoe for r in report.session_reports]
    return sum(scores) / len(scores)


def main() -> None:
    print(
        f"{SESSIONS} vr_gaming tenants on J@8192PE (2 engines) for "
        f"{DURATION_S}s\n"
    )
    plan = make_fault_plan("single", num_engines=2,
                           duration_s=DURATION_S, seed=SEED)
    print("fault plan (profile=single, seed=0):")
    for event in plan.events:
        print(f"  t={event.time_s * 1e3:7.2f}ms  {event.kind}  "
              f"engine {event.engine_index}")
    print()

    baseline = run("none")
    faulted = run("single")

    records = [s.faults for s in faulted.result.sessions]
    killed = sum(f.killed for f in records)
    retries = sum(f.retries for f in records)
    recovered = sum(f.recovered for f in records)
    lost = sum(f.lost for f in records)
    latencies = [
        latency for f in records for latency in f.recovery_latencies_s
    ]
    print("recovery machinery:")
    print(f"  {killed} in-flight dispatch(es) killed, {retries} "
          f"retried, {recovered} recovered, {lost} lost")
    if latencies:
        mean_ms = sum(latencies) / len(latencies) * 1e3
        print(f"  mean kill-to-completion recovery latency "
              f"{mean_ms:.2f} ms")
    print()

    qoe_none, qoe_fault = mean_qoe(baseline), mean_qoe(faulted)
    print("QoE price of the outage:")
    print(f"  mean session QoE {qoe_fault:.3f} vs fault-free "
          f"{qoe_none:.3f} "
          f"({qoe_fault / qoe_none:.1%} retained)")
    for twin, hit in zip(baseline.session_reports,
                         faulted.session_reports):
        sim = hit.simulation
        if sim.faults is None or not sim.faults.killed:
            continue
        print(
            f"  session {sim.session_id}: qoe "
            f"{twin.score.qoe:.3f} -> {hit.score.qoe:.3f}  "
            f"({sim.faults.killed} killed / {sim.faults.recovered} "
            f"recovered / {sim.faults.lost} lost; actions: "
            + ", ".join(a.kind for a in sim.faults.actions) + ")"
        )
    print()
    print(faulted.summary())


if __name__ == "__main__":
    main()
