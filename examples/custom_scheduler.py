"""Plugging a custom scheduler into the benchmark runtime.

XRBench treats the scheduler as user-replaceable (the yellow boxes of
Figure 2) and explicitly encourages software-stack optimisation.  This
example implements an *affinity* scheduler — each model is pinned to the
engine that runs it fastest, and only overflows elsewhere when its home
engine is busy and the request is about to miss its deadline — and races
it against the built-in schedulers on the saturated AR-gaming workload.

Run:  python examples/custom_scheduler.py
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import Harness, build_accelerator
from repro.core import score_simulation
from repro.costmodel import CostTable
from repro.hardware import AcceleratorSystem
from repro.runtime import Simulator, make_scheduler
from repro.workload import InferenceRequest, get_scenario


@dataclass
class AffinityScheduler:
    """Pin each model to its fastest engine; spill only under pressure."""

    spill_margin_s: float = 0.004
    _home: dict[str, int] = field(default_factory=dict)

    def _home_engine(
        self, code: str, system: AcceleratorSystem, costs: CostTable
    ) -> int:
        if code not in self._home:
            self._home[code] = min(
                range(system.num_subs),
                key=lambda i: system.model_cost(costs, code, i).latency_s,
            )
        return self._home[code]

    def pick(
        self,
        now_s: float,
        waiting: list[InferenceRequest],
        idle_engines: list[int],
        system: AcceleratorSystem,
        costs: CostTable,
    ) -> tuple[InferenceRequest, int] | None:
        if not waiting or not idle_engines:
            return None
        for request in waiting:
            home = self._home_engine(request.model_code, system, costs)
            if home in idle_engines:
                return request, home
            # Home engine busy: spill to the fastest idle engine only if
            # waiting longer would likely blow the deadline.
            slack_left = request.deadline_s - now_s
            if slack_left < self.spill_margin_s:
                best = min(
                    idle_engines,
                    key=lambda i: system.model_cost(
                        costs, request.model_code, i
                    ).latency_s,
                )
                return request, best
        return None


def run_with(scheduler, label: str, costs: CostTable) -> None:
    sim = Simulator(
        scenario=get_scenario("ar_gaming"),
        system=build_accelerator("J", 8192),
        scheduler=scheduler,
        duration_s=1.0,
        costs=costs,
    )
    result = sim.run()
    score = score_simulation(result)
    print(
        f"{label:<16s} overall={score.overall:.3f} rt={score.rt:.3f} "
        f"qoe={score.qoe:.3f} drops={result.frame_drop_rate():.1%}"
    )


def main() -> None:
    costs = Harness().costs
    print("AR gaming on accelerator J @ 8K PEs, by scheduler:")
    run_with(make_scheduler("latency_greedy"), "latency-greedy", costs)
    run_with(make_scheduler("round_robin"), "round-robin", costs)
    run_with(make_scheduler("edf"), "edf", costs)
    run_with(AffinityScheduler(), "affinity (ours)", costs)


if __name__ == "__main__":
    main()
