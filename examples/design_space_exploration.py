"""Design-space exploration across the Table 5 accelerator styles.

Sweeps all thirteen accelerator configurations at 4K and 8K PEs over the
whole scenario suite, prints the per-scenario winners (the paper's
Observation 1: every scenario prefers a different design), how winners
shift with the PE budget (Observation 2), and a compact Pareto view of
score vs. mean energy per inference.

Run:  python examples/design_space_exploration.py
"""

from __future__ import annotations

from repro import Harness, build_accelerator
from repro.hardware import ACCELERATOR_IDS
from repro.workload import SCENARIO_ORDER


def main() -> None:
    harness = Harness()
    results: dict[tuple[str, int], dict] = {}

    for pes in (4096, 8192):
        for acc_id in ACCELERATOR_IDS:
            system = build_accelerator(acc_id, pes)
            suite = harness.run_suite(system)
            per_scenario = {
                r.simulation.scenario.name: r.score.overall
                for r in suite.scenario_reports
            }
            energies = [
                r.energy_mj
                for rep in suite.scenario_reports
                for r in rep.simulation.completed()
            ]
            results[(acc_id, pes)] = {
                "xrbench": suite.xrbench_score,
                "per_scenario": per_scenario,
                "mean_energy_mj": sum(energies) / len(energies),
            }

    for pes in (4096, 8192):
        print(f"=== {pes} PEs: per-scenario winners ===")
        for scenario in SCENARIO_ORDER:
            best = max(
                ACCELERATOR_IDS,
                key=lambda a: results[(a, pes)]["per_scenario"][scenario],
            )
            score = results[(best, pes)]["per_scenario"][scenario]
            print(f"  {scenario:<22s} -> {best}  ({score:.2f})")
        print()

    print("=== XRBench score vs mean energy per inference (4K PEs) ===")
    rows = sorted(
        ((a, results[(a, 4096)]) for a in ACCELERATOR_IDS),
        key=lambda kv: -kv[1]["xrbench"],
    )
    for acc_id, data in rows:
        bar = "#" * int(data["xrbench"] * 40)
        print(
            f"  {acc_id}  score={data['xrbench']:.3f}  "
            f"energy={data['mean_energy_mj']:6.1f} mJ  {bar}"
        )

    # Pareto frontier: no other design both scores higher and uses less
    # energy.
    frontier = [
        a
        for a in ACCELERATOR_IDS
        if not any(
            results[(b, 4096)]["xrbench"] > results[(a, 4096)]["xrbench"]
            and results[(b, 4096)]["mean_energy_mj"]
            < results[(a, 4096)]["mean_energy_mj"]
            for b in ACCELERATOR_IDS
        )
    ]
    print(f"\nPareto-optimal designs at 4K PEs: {', '.join(frontier)}")


if __name__ == "__main__":
    main()
