"""Quickstart: score one accelerator on one XR usage scenario.

Runs the AR-gaming scenario (hand tracking at 45 FPS, depth estimation
and plane detection at 30 FPS) on accelerator J — the heterogeneous
WS+OS design of Table 5 — at both the 4K and 8K PE budgets, and prints
the score report the XRBench harness produces.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Harness, build_accelerator


def main() -> None:
    harness = Harness()

    for total_pes in (4096, 8192):
        system = build_accelerator("J", total_pes)
        report = harness.run_scenario("ar_gaming", system)
        print(report.summary())
        print()

    # The full suite produces the single mandatory XRBench SCORE.
    suite = harness.run_suite(build_accelerator("J", 8192))
    print(suite.summary())


if __name__ == "__main__":
    main()
