"""Slack-aware DVFS: trade deadline slack for energy, live.

Appendix B.1 observes that latency slack can be spent on energy
("adjust energy to meet the deadlines or optimize using the slack to
the deadline (e.g., DVFS)").  This example runs the same multi-tenant
workload under the three runtime DVFS governors and prints the trade:

* ``static``    — every dispatch at the engine's configured point (the
                  historical runtime, and the golden-checksum baseline).
* ``slack``     — per dispatch, the slowest ladder point that still
                  fits the remaining deadline budget; races the fastest
                  point when base speed cannot make the deadline.
* ``race_to_idle`` — always the fastest point: the latency-optimal,
                  energy-hungry reference.

The governed runs log the operating point of every execution on the
:class:`~repro.runtime.ExecutionRecord` stream, so the script also
shows how often each point was used and the per-engine frequency
transitions.

Run:  PYTHONPATH=src python examples/dvfs_slack.py
"""

from __future__ import annotations

from collections import Counter

from repro.api import RunSpec, execute

#: Two vr_gaming tenants on accelerator J, segment-granular dispatch —
#: enough load for contention, enough headroom for the governor to find
#: spendable slack (a saturated system has none).
SESSIONS = 2
DURATION_S = 1.0


def run(policy: str):
    spec = RunSpec(
        scenario=("vr_gaming",) * SESSIONS,
        accelerator="J",
        pes=8192,
        granularity="segment",
        duration_s=DURATION_S,
        dvfs_policy=policy,
    )
    return execute(spec)


def main() -> None:
    print(f"{SESSIONS} x vr_gaming on J@8192PE, segment dispatch, "
          f"{DURATION_S:g}s streamed\n")
    baseline_energy = None
    header = (f"{'policy':<14s}{'energy mJ':>11s}{'vs static':>11s}"
              f"{'missed':>8s}{'mean score':>12s}  operating points")
    print(header)
    for policy in ("static", "slack", "race_to_idle"):
        report = run(policy)
        result = report.result
        energy = result.total_energy_mj()
        if baseline_energy is None:
            baseline_energy = energy
        missed = sum(s.missed_deadlines() for s in result.sessions)
        points = Counter(
            record.dvfs or "nominal" for record in result.records
        )
        mix = ", ".join(
            f"{name} x{count}" for name, count in points.most_common()
        )
        print(f"{policy:<14s}{energy:>11.1f}"
              f"{energy / baseline_energy - 1.0:>+10.1%}"
              f"{missed:>8d}{report.mean_overall:>12.3f}  {mix}")
    print(
        "\nThe slack governor only downshifts when the stretched run "
        "fits the request's\nremaining deadline budget and ends before "
        "the next scheduled event, so it\nsaves energy without missing "
        "deadlines static met; race_to_idle shows the\nopposite corner "
        "of the trade."
    )


if __name__ == "__main__":
    main()
