"""Flash crowd rescued by the QoE control plane.

Sixteen VR-gaming tenants pile onto one accelerator — roughly four
times what it can serve — and every stream starts missing deadlines.
The demo runs the same overload under each admission policy:

1. **none** — the historical runtime: no controller, QoE collapses
   fleet-wide.
2. **shed** — the fleet-wide miss EWMA trips and sessions are dropped
   highest-id-first until the survivors fit; brutal but effective.
3. **degrade** — struggling sessions are switched mid-run to cheaper
   model variants from the degradation ladder (rate scaling +
   quantisation quality proxy), priced through the cost table; the
   crowd keeps playing at reduced fidelity.

Every run is appended to a throwaway run database, and the rendered
report — including the QoE/throughput/energy Pareto frontier across
the three policies — is printed at the end, which is exactly the
`xrbench report` workflow.

Run:  PYTHONPATH=src python examples/admission_qoe.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.api import ADMISSION_POLICIES, RunSpec, execute
from repro.eval import ReportGenerator, RunDatabase
from repro.runtime import quality_retention

SESSIONS = 16
DURATION_S = 0.5


def flash_crowd(policy: str, db: RunDatabase) -> None:
    spec = RunSpec(
        scenario="vr_gaming", accelerator="J", pes=8192,
        sessions=SESSIONS, duration_s=DURATION_S, admission=policy,
    )
    report = execute(spec)
    record = db.append(spec, report)
    m = record.metrics
    print(f"{policy}:")
    print(
        f"  miss rate {m['miss_rate']:.3f}  qoe {m['qoe']:.3f}  "
        f"throughput {m['throughput_rps']:.0f} req/s  "
        f"quality {m['quality_proxy']:.3f}"
    )
    for sim in report.result.sessions:
        stamp = sim.admission
        if stamp is None or (not stamp.shed and not stamp.actions):
            continue
        if stamp.shed:
            print(
                f"    session {sim.session_id}: SHED ({stamp.shed_reason})"
            )
        else:
            quality = quality_retention(
                sim.scenario, stamp.degradation_level
            )
            when = ", ".join(
                f"{a.kind}->L{a.level}@{a.time_s * 1e3:.0f}ms"
                for a in stamp.actions
            )
            print(
                f"    session {sim.session_id}: degraded to level "
                f"{stamp.degradation_level} (quality {quality:.3f}; "
                f"{when})"
            )
    print()


def main() -> None:
    print(
        f"flash crowd: {SESSIONS} vr_gaming tenants on J@8192PE for "
        f"{DURATION_S}s\n"
    )
    with tempfile.TemporaryDirectory() as tmp:
        db = RunDatabase(Path(tmp) / "runs.jsonl")
        for policy in ADMISSION_POLICIES:
            flash_crowd(policy, db)
        print(ReportGenerator.from_database(db).markdown())


if __name__ == "__main__":
    main()
