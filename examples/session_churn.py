"""Dynamic multi-tenancy: session churn, phase changes and preemption.

Three escalating demos of the dynamic-session subsystem:

1. **Churn** — the one-knob declarative path: a ``RunSpec`` with
   ``churn=0.4`` gives each of four tenants a deterministic lifetime
   window (arrivals fray over the first 40% of the run, departures over
   the last 40%).  Per-session QoE normalises by *active* duration, so a
   tenant online for a third of the run is not scored as if it dropped
   two thirds of its frames.
2. **Phase transitions** — the API path: a session that starts in AR
   gaming and switches to social interaction mid-run, built directly
   from :class:`~repro.runtime.SessionSpec` and
   :class:`~repro.runtime.SessionPhase`.
3. **Deadline-aware preemption** — under segment granularity, resuming
   segment chains normally outrank all fresh work; ``preemptive=True``
   lets EDF displace a stale chain at a segment boundary (never
   mid-segment) when fresher work is more urgent.

Run:  python examples/session_churn.py
"""

from __future__ import annotations

from repro.api import RunSpec, execute
from repro.hardware import build_accelerator
from repro.runtime import (
    MultiScenarioSimulator,
    SessionPhase,
    SessionSpec,
    make_scheduler,
)
from repro.workload import churn_windows, get_scenario

DURATION_S = 0.75


def churned_run() -> None:
    spec = RunSpec(
        scenario="vr_gaming", accelerator="J", sessions=4,
        duration_s=DURATION_S, churn=0.4,
    )
    print(f"1) {spec.describe()}")
    windows = churn_windows(4, DURATION_S, 0.4, spec.seed)
    report = execute(spec)
    for window, session in zip(windows, report.result.sessions):
        score = report.session(session.session_id).score
        print(
            f"   session {session.session_id}: online "
            f"{window.arrival_s:.2f}s..{window.departure_s:.2f}s "
            f"(active {session.window_s:.2f}s of {DURATION_S}s) "
            f"qoe={score.qoe:.3f} overall={score.overall:.3f}"
        )
    print()


def phased_run() -> None:
    print("2) one tenant switches activity mid-run (AR gaming -> social)")
    simulator = MultiScenarioSimulator(
        sessions=[
            SessionSpec(0, get_scenario("vr_gaming"), seed=0),
            SessionSpec(
                1,
                get_scenario("ar_gaming"),
                seed=1,
                phases=(SessionPhase(
                    at_s=DURATION_S / 2,
                    scenario=get_scenario("social_interaction_a"),
                ),),
            ),
        ],
        system=build_accelerator("J", 8192),
        scheduler=make_scheduler("latency_greedy"),
        duration_s=DURATION_S,
    )
    result = simulator.run()
    phased = result.session(1)
    print(f"   session 1 is scored against {phased.scenario.name!r}")
    by_model: dict[str, int] = {}
    for record in phased.records:
        by_model[record.model_code] = by_model.get(record.model_code, 0) + 1
    print(f"   executions per model: {by_model}")
    print()


def preemptive_run() -> None:
    print("3) EDF segment preemption (4 sessions, segment granularity)")
    base = RunSpec(
        scenario="vr_gaming", accelerator="J", sessions=4,
        duration_s=DURATION_S, granularity="segment", scheduler="edf",
    )
    for preemptive in (False, True):
        report = execute(base.replace(preemptive=preemptive))
        missed = sum(
            r.score.total_missed_deadlines for r in report.session_reports
        )
        label = "preemptive" if preemptive else "resume-first"
        print(
            f"   {label:>12s}: mean overall="
            f"{report.mean_overall:.3f}, {missed} missed deadlines"
        )
    print()


def main() -> None:
    churned_run()
    phased_run()
    preemptive_run()


if __name__ == "__main__":
    main()
