"""Herald-style model splitting on the saturated AR-gaming workload.

The paper credits multi-DNN workloads with an "expanded computation
scheduling space" (Kwon et al., HPCA 2021 — Herald): models can be split
at layer boundaries and their segments pipelined across sub-accelerators.
This example splits PlaneRCNN — the model that saturates every 4K-PE
system — into 1..4 segments on the heterogeneous accelerator J and shows
the classic pipelining trade-off: segment chains lift PD's *throughput*
(QoE: frames stop dropping) but cannot fix its *latency* (each frame
still flows through every segment, so deadlines stay missed), and the
extra scheduling slots squeeze the co-running models.

Run:  python examples/model_splitting.py
"""

from __future__ import annotations

from repro.core import score_simulation
from repro.hardware import build_accelerator
from repro.runtime import (
    LatencyGreedyScheduler,
    SegmentedCostTable,
    Simulator,
    segment_scenario,
)
from repro.workload import get_scenario


def run(segments: int, total_pes: int = 4096):
    base = get_scenario("ar_gaming")
    if segments == 1:
        scenario, table = base, SegmentedCostTable()
    else:
        scenario, table = segment_scenario(base, "PD", segments)
    sim = Simulator(
        scenario=scenario,
        system=build_accelerator("J", total_pes),
        scheduler=LatencyGreedyScheduler(),
        duration_s=1.0,
        costs=table,
    ).run()
    return sim, score_simulation(sim)


def main() -> None:
    print("AR gaming on accelerator J @ 4K PEs, PlaneRCNN split k ways:\n")
    print(f"{'k':>3s} {'overall':>8s} {'rt':>6s} {'qoe':>6s} "
          f"{'drops':>7s} {'PD qoe':>7s} {'PD rt':>6s}")
    for k in (1, 2, 3, 4):
        sim, score = run(k)
        pd_code = "PD" if k == 1 else f"PD.{k - 1}"
        pd = score.model(pd_code)
        print(
            f"{k:>3d} {score.overall:8.3f} {score.rt:6.2f} "
            f"{score.qoe:6.2f} {sim.frame_drop_rate():7.1%} "
            f"{pd.qoe:7.2f} {pd.mean_unit('rt'):6.2f}"
        )
    print(
        "\nSplitting rescues PD's frame rate (QoE -> 1.0) but not its\n"
        "latency: every frame still traverses the full pipeline, so the\n"
        "real-time score stays pinned at zero — throughput and latency\n"
        "are different battles, which is exactly why XRBench scores both."
    )


if __name__ == "__main__":
    main()
