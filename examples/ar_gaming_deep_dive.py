"""Deep dive: why hardware utilisation is the wrong metric (Section 4.2.2).

Reproduces the Figure 6 analysis interactively: the 4K-PE accelerator J
shows a *denser* execution timeline (higher utilisation) on AR gaming
than its 8K-PE sibling, yet it drops ~10x more frames and its plane-
detection model never meets a deadline.  The XRBench score catches this;
utilisation alone would rank the systems backwards.

Run:  python examples/ar_gaming_deep_dive.py
"""

from __future__ import annotations

from repro import Harness, build_accelerator


def main() -> None:
    harness = Harness()

    for total_pes in (4096, 8192):
        system = build_accelerator("J", total_pes)
        report = harness.run_scenario("ar_gaming", system)
        sim, score = report.simulation, report.score

        print(f"=== accelerator J @ {total_pes} PEs ===")
        print(
            # Raw busy fraction, clamped only for display.
            f"utilisation {min(1.0, sim.mean_utilization()):6.1%}   "
            f"drops {sim.frame_drop_rate():6.1%}   "
            f"overall score {score.overall:.2f}"
        )
        print(report.timeline(width=96, until_s=0.6))

        # Per-model accounting: PD is what starves.
        for m in score.model_scores:
            delays = report.delay_over_deadline_ms()
            print(
                f"  {m.model_code}: executed {m.frames_executed}/"
                f"{m.frames_streamed}, missed {m.missed_deadlines} "
                f"deadlines (mean lateness {delays[m.model_code]:.1f} ms), "
                f"rt={m.mean_unit('rt'):.2f}, qoe={m.qoe:.2f}"
            )
        print()

    print(
        "Takeaway: the 4K system is busier (looks 'better utilised') but\n"
        "delivers the worse experience — exactly the paper's argument for\n"
        "the composite XRBench score over raw utilisation."
    )


if __name__ == "__main__":
    main()
