"""Setup shim.

Kept alongside pyproject.toml so the package installs in minimal offline
environments that lack the ``wheel`` package (where PEP-517 editable
installs fail with "invalid command 'bdist_wheel'"):

    pip install -e . --no-build-isolation   # normal environments
    python setup.py develop                 # wheel-less fallback
"""

from setuptools import setup

setup()
