"""Figure 7: ES->GE dynamic-cascading probability sweep.

The paper runs 200 trials per point; the bench uses 30 to keep the
regeneration quick (pass --figure7-trials through run_figure7 directly
for the full count — the trend is stable well below 200).
"""

from __future__ import annotations

import pytest

from repro.eval import format_figure7, run_figure7

TRIALS = 30


@pytest.fixture(scope="module")
def figure7_rows(harness):
    return run_figure7(harness, trials=TRIALS)


def test_figure7_regeneration(benchmark, harness):
    rows = benchmark.pedantic(
        run_figure7, args=(harness,), kwargs={"trials": TRIALS},
        rounds=1, iterations=1,
    )
    assert len(rows) == 8  # 2 accelerators x 4 probabilities
    print()
    print(format_figure7(rows))


def test_figure7_j_outscores_b(figure7_rows):
    """J is the paper's high-score design, B the low-score one."""
    b_scores = [r.overall for r in figure7_rows if r.acc_id == "B"]
    j_scores = [r.overall for r in figure7_rows if r.acc_id == "J"]
    assert min(j_scores) > max(b_scores)


def test_figure7_overall_roughly_stable(figure7_rows):
    """Both designs maintain their overall score across the sweep."""
    for acc in ("B", "J"):
        scores = [r.overall for r in figure7_rows if r.acc_id == acc]
        assert max(scores) - min(scores) < 0.15, acc


def test_figure7_b_sheds_qoe_under_pressure(figure7_rows):
    """Paper: B's QoE declines (~0.06) as cascading rises to 100%."""
    b = sorted(
        (r for r in figure7_rows if r.acc_id == "B"),
        key=lambda r: r.probability,
    )
    assert b[-1].qoe <= b[0].qoe + 0.01


def test_figure7_j_qoe_flat(figure7_rows):
    j = [r.qoe for r in figure7_rows if r.acc_id == "J"]
    assert max(j) - min(j) < 0.05
