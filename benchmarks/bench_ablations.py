"""Ablation benches for the design choices DESIGN.md calls out.

Not paper figures — these quantify the knobs of the reproduction itself:
scheduler policy, jitter, the RT-score constant k, the Enmax energy
budget, slack-aware DVFS, and weight quantisation.
"""

from __future__ import annotations

from repro.eval import (
    dvfs_ablation,
    enmax_sensitivity,
    jitter_ablation,
    quantization_ablation,
    rt_k_sensitivity,
    scheduler_ablation,
)


def test_ablation_scheduler(benchmark, cost_table):
    rows = benchmark.pedantic(
        scheduler_ablation, args=(cost_table,), rounds=1, iterations=1
    )
    print()
    for r in rows:
        print(f"  scheduler={r.setting:<16s} overall={r.overall:.3f} "
              f"rt={r.rt:.3f} qoe={r.qoe:.3f}")
    assert len(rows) == 3


def test_ablation_jitter(benchmark, cost_table):
    rows = benchmark.pedantic(
        jitter_ablation, args=(cost_table,), kwargs={"seeds": 10},
        rounds=1, iterations=1,
    )
    mean, spread = rows
    print()
    print(f"  jitter: mean overall={mean.overall:.3f}, "
          f"seed spread={spread.overall:.4f}")
    assert spread.overall < 0.3


def test_ablation_rt_k(benchmark, cost_table):
    rows = benchmark.pedantic(
        rt_k_sensitivity, args=(cost_table,), rounds=1, iterations=1
    )
    print()
    for r in rows:
        print(f"  {r.setting:<8s} overall={r.overall:.3f} rt={r.rt:.3f}")
    # Softer k forgives the AR-gaming deadline misses more.
    assert rows[0].rt >= rows[-1].rt


def test_ablation_enmax(benchmark, cost_table):
    rows = benchmark.pedantic(
        enmax_sensitivity, args=(cost_table,), rounds=1, iterations=1
    )
    print()
    for r in rows:
        print(f"  {r.setting:<16s} overall={r.overall:.3f}")
    assert rows[0].overall <= rows[-1].overall


def test_ablation_dvfs(benchmark, cost_table):
    result = benchmark.pedantic(
        dvfs_ablation, args=(cost_table,), rounds=1, iterations=1
    )
    print()
    for code, row in result.items():
        print(
            f"  {code}: f={row['chosen_frequency']:.1f} "
            f"saving={row['energy_saving']:+.1%} "
            f"({row['nominal_energy_mj']:.1f} -> "
            f"{row['scaled_energy_mj']:.1f} mJ)"
        )
    # Aggregate saving across the suite's models must be positive: most
    # models have slack to burn.
    savings = [r["energy_saving"] for r in result.values()]
    assert sum(savings) / len(savings) > 0.1


def test_ablation_model_splitting(benchmark):
    """Herald-style PD segmentation on the saturated 4K J system."""
    from repro.core import score_simulation
    from repro.hardware import build_accelerator
    from repro.runtime import (
        LatencyGreedyScheduler,
        SegmentedCostTable,
        Simulator,
        segment_scenario,
    )
    from repro.workload import get_scenario

    def sweep():
        out = {}
        for k in (1, 2, 4):
            base = get_scenario("ar_gaming")
            if k == 1:
                scenario, table = base, SegmentedCostTable()
            else:
                scenario, table = segment_scenario(base, "PD", k)
            sim = Simulator(
                scenario=scenario, system=build_accelerator("J", 4096),
                scheduler=LatencyGreedyScheduler(), duration_s=1.0,
                costs=table,
            ).run()
            score = score_simulation(sim)
            pd = score.model("PD" if k == 1 else f"PD.{k - 1}")
            out[k] = {"overall": score.overall, "pd_qoe": pd.qoe}
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for k, row in result.items():
        print(f"  PD x{k}: overall={row['overall']:.3f} "
              f"PD qoe={row['pd_qoe']:.2f}")
    # Pipelining must lift the saturating model's delivered frame rate.
    assert result[2]["pd_qoe"] > result[1]["pd_qoe"]


def test_ablation_quantization(benchmark):
    result = benchmark.pedantic(
        quantization_ablation, kwargs={"codes": ("KD", "AS")},
        rounds=1, iterations=1,
    )
    print()
    for code, by_bits in result.items():
        for bits, row in by_bits.items():
            print(
                f"  {code} int{bits}: quality={row['measured_quality']:.2f} "
                f"acc_score={row['accuracy_score']:.3f} "
                f"meets_goal={bool(row['meets_goal'])}"
            )
    for code in result:
        assert result[code][8]["accuracy_score"] >= (
            result[code][4]["accuracy_score"]
        )
