"""Runtime-throughput microbenchmark: what the cost cache buys.

Compiles the workload flags into one declarative
:class:`repro.api.RunSpec` and runs it twice through the single
:func:`repro.api.execute` funnel — once pricing every dispatch with
:class:`UncachedCostTable` (full analytical re-evaluation per query, the
naive baseline) and once with :class:`CachedCostTable` (dict-probe
dispatch path) — and emits a JSON blob with simulated-requests/sec and
the cost-cache hit rate, to seed the performance trajectory of future
PRs.

Usage::

    PYTHONPATH=src python benchmarks/bench_runtime_throughput.py
    PYTHONPATH=src python benchmarks/bench_runtime_throughput.py \
        --scenario ar_gaming --sessions 8 --repeat 5
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.api import RunSpec, execute
from repro.core import MultiSessionReport
from repro.costmodel import CachedCostTable, CostTable, UncachedCostTable
from repro.hardware import ACCELERATOR_IDS
from repro.workload import SCENARIO_ORDER


def build_spec(args) -> RunSpec:
    # A per-session scenario tuple (even of length 1) routes the spec
    # through the multi-tenant engine, so --sessions 1 still benchmarks
    # the dispatch path this file's numbers have always measured.
    return RunSpec(
        scenario=(args.scenario,) * args.sessions,
        accelerator=args.accelerator,
        pes=args.pes,
        scheduler=args.scheduler,
        granularity=args.granularity,
        duration_s=args.duration,
        seed=args.seed,
    )


def run_once(spec: RunSpec, costs):
    """One funnel pass with an injected dispatch-path cost table."""
    start = time.perf_counter()
    report = execute(spec, dispatch_costs=costs)
    elapsed = time.perf_counter() - start
    assert isinstance(report, MultiSessionReport)
    result = report.result
    requests = sum(len(s.requests) for s in result.sessions)
    return result, requests, elapsed


def measure(spec: RunSpec, repeat: int, make_table):
    """Best-of-N wall time for one table flavour."""
    best = None
    for _ in range(repeat):
        result, requests, elapsed = run_once(spec, make_table())
        if best is None or elapsed < best[2]:
            best = (result, requests, elapsed)
    result, requests, elapsed = best
    return {
        "simulated_requests": requests,
        "wall_time_s": round(elapsed, 6),
        "requests_per_sec": round(requests / elapsed, 2),
    }, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", default="vr_gaming",
                        choices=list(SCENARIO_ORDER))
    parser.add_argument("--accelerator", default="J",
                        choices=list(ACCELERATOR_IDS))
    parser.add_argument("--pes", type=int, default=8192)
    parser.add_argument("--sessions", type=int, default=4)
    parser.add_argument("--duration", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scheduler", default="latency_greedy")
    parser.add_argument("--granularity", default="model",
                        choices=["model", "segment"])
    parser.add_argument("--repeat", type=int, default=3,
                        help="take the best of N runs (default 3)")
    args = parser.parse_args(argv)
    if args.sessions < 1:
        parser.error(f"--sessions must be >= 1, got {args.sessions}")
    if args.repeat < 1:
        parser.error(f"--repeat must be >= 1, got {args.repeat}")

    spec = build_spec(args)
    uncached, _ = measure(spec, args.repeat, UncachedCostTable)
    cached, cached_result = measure(
        spec, args.repeat, lambda: CachedCostTable(base=CostTable())
    )
    stats = cached_result.cost_stats
    payload = {
        "workload": spec.to_dict(),
        "uncached": uncached,
        "cached": cached,
        "speedup": round(
            cached["requests_per_sec"] / uncached["requests_per_sec"], 2
        ),
        "cost_cache_hit_rate": round(stats.hit_rate, 4) if stats else None,
    }
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
