"""Runtime-throughput benchmark: single-cell mode and the sweep suite.

Two modes share one workload definition:

* **Single cell** (default): compiles the workload flags into one
  declarative :class:`repro.api.RunSpec` and runs it twice through the
  single :func:`repro.api.execute` funnel — once pricing every dispatch
  with :class:`UncachedCostTable` (full analytical re-evaluation per
  query, the naive baseline) and once with :class:`CachedCostTable`
  (dict-probe dispatch path) — and prints a JSON blob with
  simulated-requests/sec and the cost-cache hit rate.

* **Suite** (``--suite``): sweeps sessions x granularity x churn x DVFS
  policy x admission policy (defaults: {1, 2, 4, 16} x {model, segment}
  x {0.0} x {static, slack} x {none}) over the cached dispatch path and
  writes ``BENCH_runtime.json``, the repo's runtime perf trajectory.
  ``--suite-churn 0.0 0.25`` adds dynamic-session cells, exercising the
  JOIN/LEAVE path under load; ``--suite-dvfs static slack`` (the
  default) records each cell's total energy and deadline misses per
  governor policy, so the trajectory file shows the energy saved by
  slack-aware DVFS at fixed QoE.  ``--suite-admission none degrade``
  adds QoE-control cells: each non-none cell also records how many
  sessions were shed, the degradation levels reached and the mean
  retained model quality, quantifying what the controller paid for its
  deadline-miss reduction.  Passing ``--baseline FILE`` (a previous
  suite emission) adds per-cell ``baseline_requests_per_sec`` and
  ``speedup`` fields, which is how before/after numbers for a PR are
  produced.

``--profile`` (single-cell mode) runs the cached dispatch path under
cProfile and prints the hotspot listing to stderr — how the 16-session
cell behind this file's optimisation work was profiled.
``--check-against FILE`` (suite mode) compares the fresh sweep to a
committed trajectory file and exits non-zero if any matching cell's
requests_per_sec dropped more than 15% — the bench non-regression gate.

Usage::

    PYTHONPATH=src python benchmarks/bench_runtime_throughput.py
    PYTHONPATH=src python benchmarks/bench_runtime_throughput.py \
        --scenario ar_gaming --sessions 8 --repeat 5
    PYTHONPATH=src python benchmarks/bench_runtime_throughput.py \
        --sessions 16 --repeat 3 --profile
    PYTHONPATH=src python benchmarks/bench_runtime_throughput.py \
        --suite --output BENCH_runtime.json --baseline BENCH_runtime.json
    PYTHONPATH=src python benchmarks/bench_runtime_throughput.py \
        --suite --check-against BENCH_runtime.json --output /tmp/fresh.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.api import (
    ADMISSION_POLICIES,
    DVFS_POLICIES,
    FAULT_PROFILES,
    RunSpec,
    execute,
)
from repro.core import MultiSessionReport
from repro.costmodel import CachedCostTable, CostTable, UncachedCostTable
from repro.hardware import ACCELERATOR_IDS
from repro.runtime import quality_retention
from repro.workload import SCENARIO_ORDER

SUITE_SESSIONS = (1, 2, 4, 16)
SUITE_GRANULARITIES = ("model", "segment")
SUITE_DVFS = ("static", "slack")
SUITE_ADMISSION = ("none",)
SUITE_FAULTS = ("none",)


def build_spec(args, sessions=None, granularity=None,
               churn=None, dvfs=None, admission=None,
               faults=None) -> RunSpec:
    # A per-session scenario tuple (even of length 1) routes the spec
    # through the multi-tenant engine, so --sessions 1 still benchmarks
    # the dispatch path this file's numbers have always measured.
    return RunSpec(
        scenario=(args.scenario,) * (sessions or args.sessions),
        accelerator=args.accelerator,
        pes=args.pes,
        scheduler=args.scheduler,
        granularity=granularity or args.granularity,
        duration_s=args.duration,
        seed=args.seed,
        churn=args.churn if churn is None else churn,
        dvfs_policy=dvfs if dvfs is not None else args.dvfs,
        admission=admission if admission is not None else args.admission,
        faults=faults if faults is not None else args.faults,
    )


def energy_and_deadlines(result) -> dict:
    """Per-cell energy/QoE facts: what the dvfs axis trades."""
    completed = sum(len(s.completed()) for s in result.sessions)
    missed = sum(s.missed_deadlines() for s in result.sessions)
    return {
        "total_energy_mj": round(result.total_energy_mj(), 3),
        "completed_requests": completed,
        "missed_deadlines": missed,
        "deadline_miss_rate": round(
            missed / completed if completed else 0.0, 4
        ),
    }


def admission_facts(result) -> dict:
    """Per-cell QoE-control facts: what a non-none policy paid.

    ``mean_quality_proxy`` averages each surviving session's retained
    model quality (shed sessions count as 0 — their user got nothing),
    so the degrade-vs-none quality cost is a single number per cell.
    """
    shed = 0
    levels = []
    qualities = []
    for sim in result.sessions:
        record = sim.admission
        if record is not None and record.shed:
            shed += 1
            qualities.append(0.0)
            continue
        level = record.degradation_level if record is not None else 0
        levels.append(level)
        qualities.append(quality_retention(sim.scenario, level))
    return {
        "shed_sessions": shed,
        "max_degradation_level": max(levels, default=0),
        "degraded_sessions": sum(1 for lv in levels if lv > 0),
        "mean_quality_proxy": round(
            sum(qualities) / len(qualities), 4
        ) if qualities else 1.0,
    }


def faults_facts(result, mean_qoe: float,
                 baseline_qoe: float | None = None) -> dict:
    """Per-cell resilience facts: what a non-none fault profile cost.

    ``qoe_retention_vs_none`` compares the cell's mean session QoE to
    the matching ``faults="none"`` cell from the same sweep — the
    fault-free twin — so the QoE price of riding out the profile's
    outages is a single number per cell.
    """
    records = [s.faults for s in result.sessions if s.faults is not None]
    latencies = [
        latency for f in records for latency in f.recovery_latencies_s
    ]
    facts = {
        "fault_killed": sum(f.killed for f in records),
        "fault_retries": sum(f.retries for f in records),
        "fault_recovered": sum(f.recovered for f in records),
        "fault_lost": sum(f.lost for f in records),
        "mean_recovery_latency_ms": (
            round(sum(latencies) / len(latencies) * 1e3, 3)
            if latencies else None
        ),
        "mean_session_qoe": round(mean_qoe, 4),
    }
    if baseline_qoe is not None and baseline_qoe > 0:
        facts["qoe_retention_vs_none"] = round(mean_qoe / baseline_qoe, 4)
    return facts


def run_once(spec: RunSpec, costs):
    """One funnel pass with an injected dispatch-path cost table."""
    start = time.perf_counter()
    report = execute(spec, dispatch_costs=costs)
    elapsed = time.perf_counter() - start
    assert isinstance(report, MultiSessionReport)
    requests = sum(len(s.requests) for s in report.result.sessions)
    return report, requests, elapsed


def measure(spec: RunSpec, repeat: int, make_table):
    """Median-of-N wall time for one table flavour.

    The headline fields (``wall_time_s``/``requests_per_sec``) are the
    median repeat — stable where a single draw is noisy at sub-10ms
    cells — and ``wall_time_min_s``/``wall_time_max_s`` record the
    spread so a cell whose repeats disagree wildly is visible in the
    trajectory file.  The simulated workload itself is deterministic
    (every repeat schedules identically); only wall time varies.
    """
    times = []
    report = requests = None
    for _ in range(repeat):
        report, requests, elapsed = run_once(spec, make_table())
        times.append(elapsed)
    times.sort()
    elapsed = times[len(times) // 2] if repeat % 2 else (
        (times[repeat // 2 - 1] + times[repeat // 2]) / 2.0
    )
    return {
        "simulated_requests": requests,
        "wall_time_s": round(elapsed, 6),
        "requests_per_sec": round(requests / elapsed, 2),
        "wall_time_min_s": round(times[0], 6),
        "wall_time_max_s": round(times[-1], 6),
        "repeats": repeat,
    }, report


def profile_cell(spec: RunSpec, repeat: int, limit: int = 30) -> None:
    """cProfile ``repeat`` cached-path runs and print hotspots to stderr.

    Table construction happens outside the profiled region, so the
    listing shows the dispatch loop itself — the thing the cell's
    requests/sec measures — not benchmark setup.
    """
    import cProfile
    import pstats

    tables = [CachedCostTable(base=CostTable()) for _ in range(repeat)]
    profiler = cProfile.Profile()
    profiler.enable()
    for costs in tables:
        execute(spec, dispatch_costs=costs)
    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stderr)
    stats.strip_dirs().sort_stats("cumulative").print_stats(limit)


def check_against(payload: dict, baseline_path: str,
                  tolerance: float = 0.15) -> list[str]:
    """Compare suite cells to a committed run; list >tolerance drops.

    Cells are matched on (sessions, granularity, churn, dvfs_policy,
    admission, faults); cells only one side has are ignored (the sweep
    may grow).  A drop beyond ``tolerance`` on ``requests_per_sec`` is a
    regression.
    """
    with open(baseline_path) as fh:
        committed = json.load(fh)
    committed_cells = {
        (c["sessions"], c["granularity"], c.get("churn", 0.0),
         c.get("dvfs_policy", "static"), c.get("admission", "none"),
         c.get("faults", "none")): c
        for c in committed.get("cells", [])
    }
    failures = []
    for cell in payload["cells"]:
        key = (cell["sessions"], cell["granularity"], cell["churn"],
               cell["dvfs_policy"], cell.get("admission", "none"),
               cell.get("faults", "none"))
        before = committed_cells.get(key)
        if before is None:
            continue
        ratio = cell["requests_per_sec"] / before["requests_per_sec"]
        if ratio < 1.0 - tolerance:
            failures.append(
                f"{key}: {cell['requests_per_sec']:.1f} req/s is "
                f"{(1.0 - ratio) * 100:.1f}% below the committed "
                f"{before['requests_per_sec']:.1f} req/s"
            )
    return failures


def run_single(args) -> dict:
    """Uncached-vs-cached comparison at one (sessions, granularity)."""
    spec = build_spec(args)
    uncached, _ = measure(spec, args.repeat, UncachedCostTable)
    cached, cached_report = measure(
        spec, args.repeat, lambda: CachedCostTable(base=CostTable())
    )
    stats = cached_report.result.cost_stats
    return {
        "workload": spec.to_dict(),
        "uncached": uncached,
        "cached": cached,
        "speedup": round(
            cached["requests_per_sec"] / uncached["requests_per_sec"], 2
        ),
        "cost_cache_hit_rate": round(stats.hit_rate, 4) if stats else None,
    }


def run_cell(args, sessions, granularity, churn, dvfs, admission,
             faults, baseline_cells, fault_free_qoe) -> dict:
    """Measure one suite cell and stamp its per-axis facts."""
    spec = build_spec(args, sessions=sessions, granularity=granularity,
                      churn=churn, dvfs=dvfs, admission=admission,
                      faults=faults)
    cached, report = measure(
        spec, args.repeat, lambda: CachedCostTable(base=CostTable()),
    )
    result = report.result
    stats = result.cost_stats
    mean_qoe = (
        sum(r.score.qoe for r in report.session_reports)
        / len(report.session_reports)
    )
    cell = {
        "sessions": sessions,
        "granularity": granularity,
        "churn": churn,
        "dvfs_policy": dvfs,
        "admission": admission,
        "faults": faults,
        **cached,
        **energy_and_deadlines(result),
        "cost_cache_hit_rate": (
            round(stats.hit_rate, 4) if stats else None
        ),
    }
    if admission != "none":
        cell.update(admission_facts(result))
    twin_key = (sessions, granularity, churn, dvfs, admission)
    if faults == "none":
        fault_free_qoe[twin_key] = mean_qoe
    else:
        cell.update(faults_facts(
            result, mean_qoe, fault_free_qoe.get(twin_key)
        ))
    before = baseline_cells.get(
        (sessions, granularity, churn, dvfs, admission, faults)
    )
    if before:
        cell["baseline_requests_per_sec"] = before["requests_per_sec"]
        cell["speedup"] = round(
            cell["requests_per_sec"] / before["requests_per_sec"], 2
        )
    fault_note = ""
    if faults != "none":
        fault_note = (
            f"  {cell['fault_killed']}k/{cell['fault_recovered']}r/"
            f"{cell['fault_lost']}l faults"
        )
    print(
        f"  {granularity:>7s} x {sessions:>2d} sessions"
        f" (churn {churn:g}, dvfs {dvfs}, "
        f"admission {admission}, faults {faults}): "
        f"{cell['requests_per_sec']:>9.1f} req/s  "
        f"{cell['total_energy_mj']:>9.1f} mJ  "
        f"{cell['missed_deadlines']:>3d} missed"
        + fault_note
        + (f"  ({cell['speedup']}x vs baseline)"
           if "speedup" in cell else ""),
        file=sys.stderr,
    )
    return cell


def run_suite(args) -> dict:
    """Sessions x granularity x churn x DVFS x admission x faults sweep
    (cached dispatch path)."""
    baseline_cells: dict[tuple, dict] = {}
    if args.baseline:
        with open(args.baseline) as fh:
            previous = json.load(fh)
        baseline_cells = {
            (c["sessions"], c["granularity"], c.get("churn", 0.0),
             c.get("dvfs_policy", "static"),
             c.get("admission", "none"),
             c.get("faults", "none")): c
            for c in previous.get("cells", [])
        }
    cells = []
    # Mean session QoE of each faults="none" cell, keyed by the rest of
    # the cell coordinates — the fault-free twin every faulted cell's
    # qoe_retention_vs_none compares against.  The faults axis iterates
    # outermost with "none" first (when present), so twins exist by the
    # time faulted cells need them.
    fault_free_qoe: dict[tuple, float] = {}
    profiles = list(args.suite_faults)
    if "none" in profiles:
        profiles = ["none"] + [p for p in profiles if p != "none"]
    for faults in profiles:
        for admission in args.suite_admission:
            for dvfs in args.suite_dvfs:
                for churn in args.suite_churn:
                    for granularity in args.suite_granularities:
                        for sessions in args.suite_sessions:
                            cells.append(run_cell(
                                args, sessions, granularity, churn, dvfs,
                                admission, faults, baseline_cells,
                                fault_free_qoe,
                            ))
    # The workload block records everything the cells share; sessions,
    # granularity, churn, dvfs_policy, admission and faults are
    # per-cell, so the spec shown is per-cell too.
    shared = build_spec(args, sessions=1, granularity="model",
                        churn=0.0, dvfs="static",
                        admission="none", faults="none").to_dict()
    for swept in ("scenario", "sessions", "granularity", "churn",
                  "dvfs_policy", "admission", "faults"):
        shared.pop(swept, None)
    shared["scenario"] = args.scenario
    return {
        "benchmark": "runtime_throughput",
        "workload": shared,
        "repeat": args.repeat,
        "cells": cells,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", default="vr_gaming",
                        choices=list(SCENARIO_ORDER))
    parser.add_argument("--accelerator", default="J",
                        choices=list(ACCELERATOR_IDS))
    parser.add_argument("--pes", type=int, default=8192)
    parser.add_argument("--sessions", type=int, default=4)
    parser.add_argument("--duration", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scheduler", default="latency_greedy")
    parser.add_argument("--granularity", default="model",
                        choices=["model", "segment"])
    parser.add_argument("--churn", type=float, default=0.0,
                        help="session churn fraction (0..0.5; default 0)")
    parser.add_argument("--dvfs", default="static",
                        choices=list(DVFS_POLICIES),
                        help="runtime DVFS governor policy "
                             "(default static)")
    parser.add_argument("--admission", default="none",
                        choices=list(ADMISSION_POLICIES),
                        help="QoE admission controller policy "
                             "(default none)")
    parser.add_argument("--faults", default="none",
                        choices=list(FAULT_PROFILES),
                        help="fault-injection profile (default none)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="take the best of N runs (default 3)")
    parser.add_argument("--suite", action="store_true",
                        help="sweep sessions x granularity and write "
                             "the BENCH_runtime.json trajectory file")
    parser.add_argument("--suite-sessions", type=int, nargs="+",
                        default=list(SUITE_SESSIONS), metavar="N",
                        help="session counts the suite sweeps")
    parser.add_argument("--suite-granularities", nargs="+",
                        default=list(SUITE_GRANULARITIES),
                        choices=["model", "segment"], metavar="G",
                        help="granularities the suite sweeps")
    parser.add_argument("--suite-churn", type=float, nargs="+",
                        default=[0.0], metavar="F",
                        help="churn fractions the suite sweeps "
                             "(default: just 0.0, the static case)")
    parser.add_argument("--suite-dvfs", nargs="+",
                        default=list(SUITE_DVFS),
                        choices=list(DVFS_POLICIES),
                        metavar="P",
                        help="DVFS governor policies the suite sweeps "
                             "(default: static slack, recording the "
                             "energy saved at fixed QoE)")
    parser.add_argument("--suite-admission", nargs="+",
                        default=list(SUITE_ADMISSION),
                        choices=list(ADMISSION_POLICIES),
                        metavar="A",
                        help="admission policies the suite sweeps "
                             "(default: just none; adding shed/degrade "
                             "records each cell's QoE-control facts)")
    parser.add_argument("--suite-faults", nargs="+",
                        default=list(SUITE_FAULTS),
                        choices=list(FAULT_PROFILES),
                        metavar="F",
                        help="fault profiles the suite sweeps "
                             "(default: just none; adding single/flaky/"
                             "thermal records each cell's resilience "
                             "facts and QoE retention vs the fault-free "
                             "twin)")
    parser.add_argument("--output", default="BENCH_runtime.json",
                        help="suite mode: where to write the JSON")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="suite mode: previous suite JSON to "
                             "compute per-cell speedups against")
    parser.add_argument("--check-against", default=None, metavar="FILE",
                        dest="check_against",
                        help="suite mode: committed suite JSON to gate "
                             "on — exit 1 if any matching cell's "
                             "requests_per_sec drops more than 15%%")
    parser.add_argument("--profile", action="store_true",
                        help="single-cell mode: cProfile the cached "
                             "dispatch path for the configured cell and "
                             "print the hotspots to stderr")
    args = parser.parse_args(argv)
    if args.sessions < 1:
        parser.error(f"--sessions must be >= 1, got {args.sessions}")
    if args.repeat < 1:
        parser.error(f"--repeat must be >= 1, got {args.repeat}")
    if any(s < 1 for s in args.suite_sessions):
        parser.error("--suite-sessions values must be >= 1")
    if any(not 0.0 <= c <= 0.5 for c in args.suite_churn):
        parser.error("--suite-churn values must be in [0, 0.5]")

    if args.profile and args.suite:
        parser.error("--profile is a single-cell mode flag")
    if args.check_against and not args.suite:
        parser.error("--check-against requires --suite")

    if args.suite:
        payload = run_suite(args)
        with open(args.output, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.output} ({len(payload['cells'])} cells)",
              file=sys.stderr)
        print(json.dumps(payload, indent=2))
        if args.check_against:
            failures = check_against(payload, args.check_against)
            if failures:
                print("throughput regression vs "
                      f"{args.check_against}:", file=sys.stderr)
                for line in failures:
                    print(f"  {line}", file=sys.stderr)
                return 1
            print(f"no cell regressed >15% vs {args.check_against}",
                  file=sys.stderr)
    elif args.profile:
        profile_cell(build_spec(args), args.repeat)
    else:
        print(json.dumps(run_single(args), indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
