"""Figure 5: the full accelerator x scenario score sweep.

Regenerates all eight subplots — 13 accelerators x {4K, 8K} x 7 scenarios
plus the cross-scenario average — and checks the headline shapes the
paper reports from this figure.
"""

from __future__ import annotations

import pytest

from repro.eval import best_accelerator, format_figure5, run_figure5


@pytest.fixture(scope="module")
def figure5_rows(harness):
    return run_figure5(harness)


def test_figure5_regeneration(benchmark, harness):
    rows = benchmark.pedantic(
        run_figure5, args=(harness,), rounds=1, iterations=1
    )
    # 13 accelerators x 2 budgets x (7 scenarios + 1 average).
    assert len(rows) == 13 * 2 * 8
    print()
    print(format_figure5(rows, "overall"))
    print()
    print(format_figure5(rows, "rt"))


def test_figure5_scores_bounded(figure5_rows):
    for row in figure5_rows:
        for v in (row.rt, row.energy, row.qoe, row.overall):
            assert 0.0 <= v <= 1.0, row


def test_figure5_ar_gaming_hardest_at_4k(figure5_rows):
    """AR gaming (the PD-saturated scenario) has the lowest 4K scores."""
    by_scenario: dict[str, list[float]] = {}
    for row in figure5_rows:
        if row.pe_budget == "4K" and row.scenario != "average":
            by_scenario.setdefault(row.scenario, []).append(row.overall)
    means = {s: sum(v) / len(v) for s, v in by_scenario.items()}
    assert min(means, key=means.get) == "ar_gaming"


def test_figure5_winner_diversity(figure5_rows):
    """Observation 1: scenarios prefer different accelerators."""
    winners = {
        scenario: best_accelerator(figure5_rows, scenario, "4K")
        for scenario in ("social_interaction_a", "ar_assistant",
                         "ar_gaming", "vr_gaming")
    }
    assert len(set(winners.values())) >= 2, winners


def test_section4_observations(benchmark, harness):
    """The executable EXPERIMENTS.md: every Section 4 claim must hold."""
    from repro.eval import format_observations, verify_observations

    observations = benchmark.pedantic(
        verify_observations, args=(harness,), rounds=1, iterations=1
    )
    print()
    print(format_observations(observations))
    assert all(o.holds for o in observations)


def test_figure5_average_panel(figure5_rows):
    """Subplot (h): the averages exist for every accelerator."""
    averages = [r for r in figure5_rows if r.scenario == "average"]
    assert len(averages) == 26
    assert all(0.0 < r.overall <= 1.0 for r in averages)
