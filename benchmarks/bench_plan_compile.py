"""Compilation-layer benches: compile_plan latency and cache reuse.

Not a paper figure — this times the planner seam PR 9 introduced so the
"planning is cheap" assumption behind per-cell sweep estimates and the
seed-grid plan cache stays measured, not folklore.  Three facts:

* compiling a static plan is sub-millisecond-ish (pure name resolution
  plus churn-window math, no cost model);
* segment-granularity compilation (the split_graph work) is the
  expensive shape, and ``reuse=`` skips exactly that part;
* a full dry-run estimate (compile + price through a shared cached
  cost table) stays far below actually executing the cell.
"""

from __future__ import annotations

from repro.api import RunSpec, compile_plan, estimate_plan, execute_plan
from repro.costmodel import CachedCostTable

STATIC = RunSpec(scenario="vr_gaming", sessions=4, duration_s=0.25)
SEGMENTED = RunSpec(
    scenario="vr_gaming", sessions=4, duration_s=0.25,
    granularity="segment", churn=0.25, faults="flaky",
)


def test_compile_static_plan(benchmark):
    plan = benchmark(compile_plan, STATIC)
    assert plan.mode == "sessions"
    assert plan.segment_chains == ()


def test_compile_segmented_plan(benchmark):
    plan = benchmark(compile_plan, SEGMENTED)
    assert plan.segment_chains
    assert plan.faults is not None


def test_compile_with_chain_reuse(benchmark):
    """The plan-cache fast path: seed variants adopt cached chains."""
    first = compile_plan(SEGMENTED)

    def recompile():
        return compile_plan(SEGMENTED.replace(seed=99), reuse=first)

    plan = benchmark(recompile)
    assert plan.segment_chains == first.segment_chains
    assert plan.fingerprint != first.fingerprint


def test_estimate_from_shared_cost_table(benchmark, cost_table):
    shared = CachedCostTable(cost_table)
    plan = compile_plan(STATIC)
    estimate_plan(plan, costs=shared)  # warm the per-model analysis

    est = benchmark(estimate_plan, plan, costs=shared)
    assert est["expected_requests"] > 0
    print()
    print(f"  estimate: {est['expected_requests']} requests, "
          f"busy {est['est_busy_engine_s'] * 1e3:.2f} ms, "
          f"{est['est_energy_mj']:.0f} mJ")


def test_estimate_is_cheaper_than_executing(cost_table):
    """The dry-run promise: estimating a cell never simulates it."""
    import time

    shared = CachedCostTable(cost_table)
    plan = compile_plan(STATIC)
    estimate_plan(plan, costs=shared)  # warm

    t0 = time.perf_counter()
    estimate_plan(plan, costs=shared)
    estimate_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    execute_plan(plan, costs=cost_table)
    execute_s = time.perf_counter() - t0

    print()
    print(f"  estimate {estimate_s * 1e3:.2f} ms vs "
          f"execute {execute_s * 1e3:.2f} ms "
          f"({execute_s / max(estimate_s, 1e-9):.0f}x)")
    assert estimate_s < execute_s
