"""Figure 6: AR-gaming timelines on accelerator J, 4K vs 8K PEs."""

from __future__ import annotations

import pytest

from repro.eval import format_figure6, run_figure6


@pytest.fixture(scope="module")
def figure6(harness):
    return run_figure6(harness)


def test_figure6_regeneration(benchmark, harness):
    results = benchmark.pedantic(
        run_figure6, args=(harness,), rounds=1, iterations=1
    )
    print()
    print(format_figure6(results))


def test_figure6_4k_drops_far_more(figure6):
    """Paper: 47.1% drops at 4K vs 2.3% at 8K."""
    assert figure6["4K"].drop_rate > 0.25
    assert figure6["8K"].drop_rate < 0.10


def test_figure6_utilization_misleads(figure6):
    """The 4K system is (at least) as busy yet scores far worse."""
    assert figure6["4K"].utilization >= figure6["8K"].utilization - 0.02
    assert figure6["4K"].report.overall < figure6["8K"].report.overall - 0.1


def test_figure6_pd_fails_on_4k(figure6):
    """The 4K system starves PD (the paper: 'completely fails to run')."""
    pd_4k = figure6["4K"].report.score.model("PD")
    assert pd_4k.mean_unit("rt") < 0.05
    assert pd_4k.qoe < 0.75


def test_figure6_8k_rt_limited_by_pd_only(figure6):
    """8K panel: PD misses deadlines, HT/DE mostly fine (paper RT 0.68)."""
    score = figure6["8K"].report.score
    assert score.model("PD").mean_unit("rt") < 0.1
    assert score.model("DE").mean_unit("rt") > 0.9
    assert 0.3 < score.rt < 0.9
