"""Tables 1, 2, 3, 5 and 7: the definitional tables of the paper."""

from __future__ import annotations

from repro.eval import table1, table2, table3, table5, table6, table7
from repro.workload import SCENARIOS, UNIT_MODELS


def test_table1(benchmark):
    text = benchmark(table1)
    print()
    print(text)
    # 11 unit models, three categories.
    assert sum(1 for m in UNIT_MODELS.values()) == 11
    for fragment in ("Hand Tracking", "PlaneRCNN", "LibriSpeech",
                     "AUC PCK, GT 0.948"):
        assert fragment in text


def test_table2(benchmark):
    text = benchmark(table2)
    print()
    print(text)
    assert len(SCENARIOS) == 7
    assert "VR gaming" in text or "vr_gaming" in text
    # The dependency annotations reproduce Table 2's D/C markers.
    assert "ES->GE:D" in text and "KD->SR:C" in text


def test_table3(benchmark):
    text = benchmark(table3)
    print()
    print(text)
    for fragment in ("camera", "lidar", "microphone",
                     "60 FPS", "3 FPS"):
        assert fragment in text


def test_table5(benchmark):
    text = benchmark(table5)
    print()
    print(text)
    for fragment in ("FDA", "SFDA", "HDA", "WS@4096PE",
                     "WS@3072PE + OS@1024PE"):
        assert fragment in text


def test_table6(benchmark):
    text = benchmark(table6)
    print()
    print(text)
    for fragment in ("MLPerf Inference", "ILLIXR", "XRBench"):
        assert fragment in text


def test_table7(benchmark):
    text = benchmark(table7)
    print()
    print(text)
    for fragment in ("EM-24L", "SelfAttention", "DWCONV", "RoIAlign"):
        assert fragment in text
