"""Figure 8: the real-time score function across k values."""

from __future__ import annotations

import pytest

from repro.eval import format_figure8, run_figure8


@pytest.fixture(scope="module")
def figure8_series():
    return run_figure8()


def test_figure8_regeneration(benchmark):
    series = benchmark.pedantic(run_figure8, rounds=3, iterations=1)
    assert [s.k for s in series] == [0.0, 1.0, 15.0, 50.0]
    print()
    print(format_figure8(series))


def test_figure8_k0_is_deadline_insensitive(figure8_series):
    """k = 0: the score is completely unrelated to the deadline."""
    k0 = next(s for s in figure8_series if s.k == 0.0)
    assert all(v == 0.5 for v in k0.scores)


def test_figure8_all_curves_cross_half_at_deadline(figure8_series):
    """Every sigmoid passes through 0.5 where latency equals the window."""
    for series in figure8_series:
        if series.k == 0:
            continue
        idx = series.latencies_s.index(1.0)
        assert series.scores[idx] == pytest.approx(0.5)


def test_figure8_larger_k_sharper(figure8_series):
    """k orders the curves by steepness around the deadline."""
    at_1_2 = {}
    for series in figure8_series:
        idx = min(
            range(len(series.latencies_s)),
            key=lambda i: abs(series.latencies_s[i] - 1.2),
        )
        at_1_2[series.k] = series.scores[idx]
    assert at_1_2[50.0] < at_1_2[15.0] < at_1_2[1.0] <= at_1_2[0.0]


def test_figure8_saturates(figure8_series):
    k15 = next(s for s in figure8_series if s.k == 15.0)
    assert k15.scores[0] > 0.999      # latency 0
    assert k15.scores[-1] < 0.001     # latency 2 s vs 1 s window
