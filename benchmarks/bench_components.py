"""Component micro-benchmarks: cost model, runtime, scoring, numpy engine.

Not paper figures — these track the performance of the reproduction's own
building blocks so regressions in the simulator or analytical model show
up in benchmark history.
"""

from __future__ import annotations

import pytest

from repro.core import score_simulation
from repro.costmodel import CostModel, Dataflow
from repro.hardware import build_accelerator
from repro.nn import GraphExecutor
from repro.runtime import LatencyGreedyScheduler, Simulator
from repro.workload import LoadGenerator, get_scenario
from repro.zoo import build_model


def test_costmodel_analyze_pd(benchmark):
    """Analytical analysis of the heaviest model (49 layers)."""
    graph = build_model("PD")
    cm = CostModel(dataflow=Dataflow.WS, num_pes=4096)
    cost = benchmark(cm.model_cost, graph)
    assert cost.latency_s > 0


def test_costmodel_table_lookup_cached(benchmark, cost_table):
    """Memoised lookups must be effectively free."""
    cost_table.cost("PD", Dataflow.WS, 4096)  # warm
    result = benchmark(cost_table.cost, "PD", Dataflow.WS, 4096)
    assert result.latency_s > 0


def test_loadgen_vr_gaming(benchmark):
    scenario = get_scenario("vr_gaming")

    def generate():
        return LoadGenerator(scenario, 1.0, seed=0).root_requests()

    requests = benchmark(generate)
    assert len(requests) == 105


def test_simulator_ar_gaming(benchmark, cost_table):
    """One second of the most saturated scenario."""
    scenario = get_scenario("ar_gaming")
    system = build_accelerator("J", 4096)

    def simulate():
        return Simulator(
            scenario=scenario, system=system,
            scheduler=LatencyGreedyScheduler(),
            duration_s=1.0, costs=cost_table,
        ).run()

    result = benchmark(simulate)
    assert result.requests


def test_scoring_pipeline(benchmark, cost_table):
    scenario = get_scenario("ar_assistant")
    result = Simulator(
        scenario=scenario, system=build_accelerator("M", 8192),
        scheduler=LatencyGreedyScheduler(), duration_s=1.0,
        costs=cost_table,
    ).run()
    score = benchmark(score_simulation, result)
    assert 0.0 <= score.overall <= 1.0


def test_full_suite_one_system(benchmark, harness):
    """The end-to-end cost of one suite evaluation (7 scenarios)."""
    system = build_accelerator("J", 8192)
    report = benchmark.pedantic(
        harness.run_suite, args=(system,), rounds=1, iterations=1
    )
    assert 0.0 <= report.xrbench_score <= 1.0


@pytest.mark.parametrize("code", ["KD", "GE"])
def test_numpy_forward_pass(benchmark, code):
    """Reference-model inference on the numpy engine (light models)."""
    graph = build_model(code)
    executor = GraphExecutor(graph, seed=0)
    executor.run()  # warm the weight cache

    out = benchmark.pedantic(executor.run, rounds=2, iterations=1)
    assert out.shape == graph.out_shape
