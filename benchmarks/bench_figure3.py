"""Figure 3: the Social Interaction A scheduling deep-dive."""

from __future__ import annotations

import pytest

from repro.eval.figure3 import format_figure3, run_figure3


@pytest.fixture(scope="module")
def figure3(harness):
    return run_figure3(harness)


def test_figure3_regeneration(benchmark, harness):
    rows, report = benchmark.pedantic(
        run_figure3, args=(harness,), rounds=1, iterations=1
    )
    print()
    print(format_figure3(rows, report))
    assert rows


def test_figure3_all_models_appear(figure3):
    rows, _ = figure3
    assert {r.model_code for r in rows} == {"HT", "ES", "GE", "DR"}


def test_figure3_ge_follows_es(figure3):
    """The data dependency: GE frame f starts after ES frame f ends."""
    rows, _ = figure3
    es_end = {r.model_frame: r.end_ms for r in rows if r.model_code == "ES"}
    for ge in (r for r in rows if r.model_code == "GE"):
        assert ge.model_frame in es_end
        assert ge.start_ms >= es_end[ge.model_frame] - 1e-9


def test_figure3_half_rate_models_skip_frames(figure3):
    """HT and DR at 30 FPS consume every other 60 FPS sensor frame."""
    rows, report = figure3
    plan = None
    from repro.workload import FramePlan

    for sm in report.simulation.scenario.models:
        if sm.code == "HT":
            plan = FramePlan(sm)
    assert plan.sensor_frame_for(1) == 2

    ht = sorted(
        (r for r in rows if r.model_code == "HT"),
        key=lambda r: r.model_frame,
    )
    if len(ht) >= 2:
        # Consecutive HT frames are ~1/30 s apart in input time.
        gap = ht[1].request_ms - ht[0].request_ms
        assert gap == pytest.approx(1000 / 30, abs=2.0)


def test_figure3_dr_waits_for_lidar(figure3):
    """DR's request time is the max of its camera and lidar arrivals."""
    rows, report = figure3
    dr = [r for r in rows if r.model_code == "DR"]
    assert dr
    from repro.workload import FramePlan

    sm = report.simulation.scenario.get("DR")
    plan = FramePlan(sm)
    for row in dr:
        expected = plan.request_time_s(row.model_frame, seed=0) * 1e3
        assert row.request_ms == pytest.approx(expected, abs=1e-6)
