"""Shared fixtures for the benchmark harness.

Every ``bench_*`` module regenerates one of the paper's tables or
figures (see DESIGN.md's per-experiment index) and times the regeneration
with pytest-benchmark.  Regenerated rows are printed so running

    pytest benchmarks/ --benchmark-only -s

reproduces the paper's evaluation output in one go.
"""

from __future__ import annotations

import pytest

from repro.core import Harness
from repro.costmodel import CostTable

collect_ignore: list[str] = []


def pytest_configure(config):
    # Benchmarks live in bench_*.py files.
    config.addinivalue_line("markers", "figure: paper-figure regeneration")


@pytest.fixture(scope="session")
def cost_table() -> CostTable:
    return CostTable()


@pytest.fixture(scope="session")
def harness(cost_table: CostTable) -> Harness:
    return Harness(costs=cost_table)
