"""The thirteen accelerator configurations of Table 5.

Styles:

* A/B/C — FDA: one monolithic engine with the WS / OS / RS dataflow.
* D/E/F — SFDA: two same-dataflow engines, 1:1 PE partitioning.
* G/H/I — SFDA: four same-dataflow engines, 1:1:1:1 partitioning.
* J     — HDA: WS + OS, 1:1.
* K     — HDA: WS + OS, 3:1.
* L     — HDA: WS + OS, 1:3.
* M     — HDA: WS + OS + WS + OS, 1:1:1:1.

Each is instantiated at a total PE budget of 4096 ("4K") or 8192 ("8K"),
as in Section 4.1.
"""

from __future__ import annotations

from typing import Callable

from repro.costmodel import Dataflow
from repro.registry import accelerators as ACCELERATOR_REGISTRY

from .accelerator import AcceleratorStyle, AcceleratorSystem, SubAccelerator

__all__ = [
    "ACCELERATOR_IDS",
    "PE_BUDGETS",
    "build_accelerator",
    "register_accelerator",
    "all_accelerators",
]

ACCELERATOR_IDS: tuple[str, ...] = tuple("ABCDEFGHIJKLM")

#: "4K" and "8K" PE budgets of Section 4.1.
PE_BUDGETS: dict[str, int] = {"4K": 4096, "8K": 8192}

_WS, _OS, _RS = Dataflow.WS, Dataflow.OS, Dataflow.RS

#: acc id -> (style, [(dataflow, share)...]); shares are integer ratios.
_LAYOUTS: dict[str, tuple[str, list[tuple[Dataflow, int]]]] = {
    "A": (AcceleratorStyle.FDA, [(_WS, 1)]),
    "B": (AcceleratorStyle.FDA, [(_OS, 1)]),
    "C": (AcceleratorStyle.FDA, [(_RS, 1)]),
    "D": (AcceleratorStyle.SFDA, [(_WS, 1), (_WS, 1)]),
    "E": (AcceleratorStyle.SFDA, [(_OS, 1), (_OS, 1)]),
    "F": (AcceleratorStyle.SFDA, [(_RS, 1), (_RS, 1)]),
    "G": (AcceleratorStyle.SFDA, [(_WS, 1)] * 4),
    "H": (AcceleratorStyle.SFDA, [(_OS, 1)] * 4),
    "I": (AcceleratorStyle.SFDA, [(_RS, 1)] * 4),
    "J": (AcceleratorStyle.HDA, [(_WS, 1), (_OS, 1)]),
    "K": (AcceleratorStyle.HDA, [(_WS, 3), (_OS, 1)]),
    "L": (AcceleratorStyle.HDA, [(_WS, 1), (_OS, 3)]),
    "M": (AcceleratorStyle.HDA, [(_WS, 1), (_OS, 1), (_WS, 1), (_OS, 1)]),
}


def _layout_factory(
    acc_id: str, style: str, layout: list[tuple[Dataflow, int]]
) -> Callable[[int], AcceleratorSystem]:
    """A registry factory building one Table-5 layout at any PE budget."""

    def build(total_pes: int) -> AcceleratorSystem:
        total_shares = sum(share for _, share in layout)
        if total_pes % total_shares:
            raise ValueError(
                f"total_pes={total_pes} not divisible by partition "
                f"{total_shares} for accelerator {acc_id}"
            )
        unit = total_pes // total_shares
        subs = tuple(
            SubAccelerator(index=i, dataflow=df, num_pes=unit * share)
            for i, (df, share) in enumerate(layout)
        )
        return AcceleratorSystem(
            acc_id=acc_id, style=style, total_pes=total_pes, subs=subs
        )

    return build


def register_accelerator(
    acc_id: str,
    factory: Callable[[int], AcceleratorSystem] | None = None,
    *,
    overwrite: bool = False,
):
    """Name-address an accelerator design; usable as a decorator.

    ``factory`` takes a total PE budget and returns the built
    :class:`AcceleratorSystem`.  Registered designs are buildable
    everywhere an accelerator name is accepted — ``build_accelerator``,
    ``RunSpec.accelerator`` and the CLI (via ``--spec``).
    """
    return ACCELERATOR_REGISTRY.register(acc_id, factory, overwrite=overwrite)


for _acc_id, (_style, _layout) in _LAYOUTS.items():
    register_accelerator(_acc_id, _layout_factory(_acc_id, _style, _layout))


def build_accelerator(acc_id: str, total_pes: int = 4096) -> AcceleratorSystem:
    """Instantiate accelerator ``acc_id`` ("A".."M", or any registered
    design) with ``total_pes``."""
    factory = ACCELERATOR_REGISTRY.get(acc_id)
    return factory(total_pes)


def all_accelerators(total_pes: int = 4096) -> list[AcceleratorSystem]:
    """All thirteen Table-5 configurations at one PE budget."""
    return [build_accelerator(a, total_pes) for a in ACCELERATOR_IDS]
