"""The thirteen accelerator configurations of Table 5.

Styles:

* A/B/C — FDA: one monolithic engine with the WS / OS / RS dataflow.
* D/E/F — SFDA: two same-dataflow engines, 1:1 PE partitioning.
* G/H/I — SFDA: four same-dataflow engines, 1:1:1:1 partitioning.
* J     — HDA: WS + OS, 1:1.
* K     — HDA: WS + OS, 3:1.
* L     — HDA: WS + OS, 1:3.
* M     — HDA: WS + OS + WS + OS, 1:1:1:1.

Each is instantiated at a total PE budget of 4096 ("4K") or 8192 ("8K"),
as in Section 4.1.
"""

from __future__ import annotations

from repro.costmodel import Dataflow

from .accelerator import AcceleratorStyle, AcceleratorSystem, SubAccelerator

__all__ = [
    "ACCELERATOR_IDS",
    "PE_BUDGETS",
    "build_accelerator",
    "all_accelerators",
]

ACCELERATOR_IDS: tuple[str, ...] = tuple("ABCDEFGHIJKLM")

#: "4K" and "8K" PE budgets of Section 4.1.
PE_BUDGETS: dict[str, int] = {"4K": 4096, "8K": 8192}

_WS, _OS, _RS = Dataflow.WS, Dataflow.OS, Dataflow.RS

#: acc id -> (style, [(dataflow, share)...]); shares are integer ratios.
_LAYOUTS: dict[str, tuple[str, list[tuple[Dataflow, int]]]] = {
    "A": (AcceleratorStyle.FDA, [(_WS, 1)]),
    "B": (AcceleratorStyle.FDA, [(_OS, 1)]),
    "C": (AcceleratorStyle.FDA, [(_RS, 1)]),
    "D": (AcceleratorStyle.SFDA, [(_WS, 1), (_WS, 1)]),
    "E": (AcceleratorStyle.SFDA, [(_OS, 1), (_OS, 1)]),
    "F": (AcceleratorStyle.SFDA, [(_RS, 1), (_RS, 1)]),
    "G": (AcceleratorStyle.SFDA, [(_WS, 1)] * 4),
    "H": (AcceleratorStyle.SFDA, [(_OS, 1)] * 4),
    "I": (AcceleratorStyle.SFDA, [(_RS, 1)] * 4),
    "J": (AcceleratorStyle.HDA, [(_WS, 1), (_OS, 1)]),
    "K": (AcceleratorStyle.HDA, [(_WS, 3), (_OS, 1)]),
    "L": (AcceleratorStyle.HDA, [(_WS, 1), (_OS, 3)]),
    "M": (AcceleratorStyle.HDA, [(_WS, 1), (_OS, 1), (_WS, 1), (_OS, 1)]),
}


def build_accelerator(acc_id: str, total_pes: int = 4096) -> AcceleratorSystem:
    """Instantiate accelerator ``acc_id`` ("A".."M") with ``total_pes``."""
    try:
        style, layout = _LAYOUTS[acc_id]
    except KeyError:
        raise KeyError(
            f"unknown accelerator id {acc_id!r}; "
            f"available: {''.join(ACCELERATOR_IDS)}"
        ) from None
    total_shares = sum(share for _, share in layout)
    if total_pes % total_shares:
        raise ValueError(
            f"total_pes={total_pes} not divisible by partition "
            f"{total_shares} for accelerator {acc_id}"
        )
    unit = total_pes // total_shares
    subs = tuple(
        SubAccelerator(index=i, dataflow=df, num_pes=unit * share)
        for i, (df, share) in enumerate(layout)
    )
    return AcceleratorSystem(
        acc_id=acc_id, style=style, total_pes=total_pes, subs=subs
    )


def all_accelerators(total_pes: int = 4096) -> list[AcceleratorSystem]:
    """All thirteen Table-5 configurations at one PE budget."""
    return [build_accelerator(a, total_pes) for a in ACCELERATOR_IDS]
