"""Simulated accelerator hardware: engines, systems, Table-5 configs."""

from .accelerator import AcceleratorStyle, AcceleratorSystem, SubAccelerator
from .configs import (
    ACCELERATOR_IDS,
    PE_BUDGETS,
    all_accelerators,
    build_accelerator,
    register_accelerator,
)

__all__ = [
    "ACCELERATOR_IDS",
    "AcceleratorStyle",
    "AcceleratorSystem",
    "PE_BUDGETS",
    "SubAccelerator",
    "all_accelerators",
    "build_accelerator",
    "register_accelerator",
]
