"""Accelerator system descriptions.

A :class:`SubAccelerator` is one independently-schedulable engine (a PE
array with a fixed dataflow).  An :class:`AcceleratorSystem` is the whole
simulated chip: one sub-accelerator for FDA styles, several for SFDA/HDA
styles (Table 5).  The hardware-occupancy condition of appendix B.2 —
one engine runs one model at a time — is enforced by the runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel import (
    CostModel,
    CostTable,
    Dataflow,
    DvfsPoint,
    ModelCost,
    scale_cost,
)

__all__ = ["SubAccelerator", "AcceleratorSystem", "AcceleratorStyle"]


@dataclass(frozen=True)
class SubAccelerator:
    """One engine of an accelerator system."""

    index: int
    dataflow: Dataflow
    num_pes: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"index must be >= 0, got {self.index}")
        if self.num_pes < 1:
            raise ValueError(f"num_pes must be >= 1, got {self.num_pes}")

    def cost_model(self) -> CostModel:
        return CostModel(dataflow=self.dataflow, num_pes=self.num_pes)

    def describe(self) -> str:
        return f"{self.dataflow.value}@{self.num_pes}PE"


class AcceleratorStyle:
    """The three accelerator styles of Table 5."""

    FDA = "FDA"
    SFDA = "SFDA"
    HDA = "HDA"


@dataclass(frozen=True)
class AcceleratorSystem:
    """A complete accelerator configuration (one row of Table 5)."""

    acc_id: str            # "A" .. "M"
    style: str             # FDA / SFDA / HDA
    total_pes: int
    subs: tuple[SubAccelerator, ...]

    def __post_init__(self) -> None:
        if not self.subs:
            raise ValueError(f"accelerator {self.acc_id} has no engines")
        if sum(s.num_pes for s in self.subs) != self.total_pes:
            raise ValueError(
                f"accelerator {self.acc_id}: engine PEs "
                f"{[s.num_pes for s in self.subs]} do not sum to "
                f"{self.total_pes}"
            )
        indices = [s.index for s in self.subs]
        if indices != list(range(len(self.subs))):
            raise ValueError(
                f"accelerator {self.acc_id}: engine indices must be "
                f"0..{len(self.subs) - 1}, got {indices}"
            )
        dataflows = {s.dataflow for s in self.subs}
        if self.style == AcceleratorStyle.FDA and len(self.subs) != 1:
            raise ValueError("FDA systems have exactly one engine")
        if self.style == AcceleratorStyle.SFDA and len(dataflows) != 1:
            raise ValueError("SFDA systems use a single dataflow style")
        if self.style == AcceleratorStyle.HDA and len(dataflows) < 2:
            raise ValueError("HDA systems mix dataflow styles")

    @property
    def num_subs(self) -> int:
        return len(self.subs)

    def model_cost(self, table: CostTable, task_code: str, sub_index: int) -> ModelCost:
        """Cost of running ``task_code`` on engine ``sub_index``."""
        sub = self.subs[sub_index]
        return table.cost(task_code, sub.dataflow, sub.num_pes)

    def engine_cost(
        self,
        table: CostTable,
        task_code: str,
        sub_index: int,
        dvfs: DvfsPoint | None = None,
    ) -> ModelCost:
        """DVFS-aware cost lookup through the dispatch-path cache.

        A :class:`~repro.costmodel.CachedCostTable` answers from its
        (task, engine, DVFS) memo; any other table falls back to the
        plain per-engine lookup plus on-the-fly DVFS scaling.
        """
        sub = self.subs[sub_index]
        lookup = getattr(table, "engine_cost", None)
        if lookup is not None:
            return lookup(task_code, sub, dvfs)
        cost = table.cost(task_code, sub.dataflow, sub.num_pes)
        if dvfs is not None:
            cost = scale_cost(cost, dvfs)
        return cost

    def describe(self) -> str:
        engines = " + ".join(s.describe() for s in self.subs)
        return f"{self.acc_id} ({self.style}, {self.total_pes}PE): {engines}"
