"""The ``xrlint`` rule engine: files in, :class:`Finding` objects out.

The engine is deliberately small and dependency-free (``ast`` +
``tokenize`` only): it walks a set of Python files, hands each parsed
module to every selected :class:`~repro.lint.rules.Rule`, applies the
suppression comments found in the source, and renders the surviving
findings as human-readable text or as the JSON shape documented by
``schema/lintreport.schema.json``.

Suppressions are line-scoped comments with *required* justification
text::

    total = time.time()  # xrlint: disable=D001 -- wall time is the output here

* A suppression without justification does **not** suppress — it raises
  an ``X001`` finding instead, so "just silence it" is never free.
* A justified suppression that matches no finding on its line raises
  ``X002`` (stale suppressions rot; delete them with the violation).
* ``X001``/``X002`` are engine-level meta findings and cannot
  themselves be suppressed.

Suppressed findings stay in the report (``suppressed: true`` in JSON)
so reviewers can audit the justifications; only *unsuppressed* findings
drive the exit code.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .rules import Rule

__all__ = [
    "Finding",
    "FileContext",
    "Project",
    "LintReport",
    "Suppression",
    "find_root",
    "collect_files",
    "run_lint",
]

#: JSON report layout version (bumped on incompatible shape changes).
REPORT_VERSION = 1

#: Matches suppression comments of the form ``<RULE>[,<RULE>...]`` with
#: an optional ``-- <why>`` tail (required for the suppression to take
#: effect; see the module docstring for the full syntax).
_SUPPRESS_RE = re.compile(
    r"xrlint:\s*disable=(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
    r"(?:\s*--\s*(?P<why>.*\S))?\s*$"
)

#: Directory names never descended into when collecting files.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".ruff_cache", ".mypy_cache"})


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    The tuple ``(rule, path, line, message, suppressed)`` is the stable
    public shape: ``schema/lintreport.schema.json`` pins it and
    ``xrbench lint --format json`` emits exactly these keys per finding
    (plus ``justification`` for suppressed ones).
    """

    rule: str
    path: str
    line: int
    message: str
    suppressed: bool = False
    justification: str | None = None

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "suppressed": self.suppressed,
        }
        if self.justification is not None:
            out["justification"] = self.justification
        return out

    def render(self) -> str:
        text = f"{self.path}:{self.line}: {self.rule} {self.message}"
        if self.suppressed:
            text += f"  [suppressed: {self.justification}]"
        return text


@dataclass(frozen=True)
class Suppression:
    """One ``# xrlint: disable=...`` comment, parsed."""

    line: int
    rules: tuple[str, ...]
    justification: str | None


@dataclass(frozen=True)
class FileContext:
    """One parsed source file, as handed to per-file rule checks."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    suppressions: tuple[Suppression, ...]


class Project:
    """The lint root plus every parsed file — the project-rule view.

    Project-level rules (schema drift, registry completeness) need files
    *beyond* the linted set — the JSON schemas, or an api module when
    only ``runtime/`` was linted.  :meth:`module` and :meth:`read_json`
    fall back to reading from ``root`` on disk, returning ``None`` when
    the file does not exist so rules degrade silently on partial trees
    (fixture projects, third-party checkouts).
    """

    def __init__(self, root: Path, files: Sequence[FileContext]):
        self.root = root
        self.files = tuple(files)
        self._by_relpath = {ctx.relpath: ctx for ctx in self.files}
        self._disk_cache: dict[str, ast.Module | None] = {}
        self._json_cache: dict[str, Any] = {}

    def module(self, relpath: str) -> ast.Module | None:
        """The parsed AST for ``relpath``, linted or loaded from disk."""
        ctx = self._by_relpath.get(relpath)
        if ctx is not None:
            return ctx.tree
        if relpath not in self._disk_cache:
            path = self.root / relpath
            tree: ast.Module | None = None
            if path.is_file():
                try:
                    tree = ast.parse(
                        path.read_text(encoding="utf-8"), filename=str(path)
                    )
                except SyntaxError:
                    tree = None
            self._disk_cache[relpath] = tree
        return self._disk_cache[relpath]

    def read_json(self, relpath: str) -> Any | None:
        """A JSON document under the root, or ``None`` when absent."""
        if relpath not in self._json_cache:
            path = self.root / relpath
            data: Any | None = None
            if path.is_file():
                try:
                    data = json.loads(path.read_text(encoding="utf-8"))
                except (OSError, json.JSONDecodeError):
                    data = None
            self._json_cache[relpath] = data
        return self._json_cache[relpath]

    def glob(self, pattern: str) -> list[Path]:
        """Sorted on-disk matches under the root (project-rule sweeps)."""
        return sorted(self.root.glob(pattern))


@dataclass(frozen=True)
class LintReport:
    """Everything one lint run produced.

    ``findings`` are sorted ``(path, line, rule)``; ``files_checked``
    counts parsed files; ``rules`` names the rule ids that ran.
    """

    root: str
    rules: tuple[str, ...]
    files_checked: int
    findings: tuple[Finding, ...]

    @property
    def unsuppressed(self) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if not f.suppressed)

    @property
    def exit_code(self) -> int:
        return 1 if self.unsuppressed else 0

    def to_dict(self) -> dict[str, Any]:
        suppressed = len(self.findings) - len(self.unsuppressed)
        return {
            "version": REPORT_VERSION,
            "root": self.root,
            "rules": list(self.rules),
            "files_checked": self.files_checked,
            "findings": [f.to_dict() for f in self.findings],
            "summary": {
                "total": len(self.findings),
                "suppressed": suppressed,
                "unsuppressed": len(self.unsuppressed),
            },
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        lines = [f.render() for f in self.findings]
        suppressed = len(self.findings) - len(self.unsuppressed)
        summary = (
            f"xrlint: {self.files_checked} file(s), "
            f"{len(self.unsuppressed)} finding(s)"
        )
        if suppressed:
            summary += f" (+{suppressed} suppressed)"
        lines.append(summary)
        return "\n".join(lines)


def find_root(start: Path | None = None) -> Path:
    """The repository root: nearest ancestor holding ``setup.py``,
    ``pyproject.toml`` or ``.git`` (falling back to ``start`` itself)."""
    here = (start or Path.cwd()).resolve()
    if here.is_file():
        here = here.parent
    for candidate in (here, *here.parents):
        for marker in ("setup.py", "pyproject.toml", ".git"):
            if (candidate / marker).exists():
                return candidate
    return here


def collect_files(paths: Sequence[Path]) -> list[Path]:
    """Every ``.py`` file under ``paths`` (sorted, duplicates dropped)."""
    out: list[Path] = []
    seen: set[Path] = set()
    for path in paths:
        path = path.resolve()
        if path.is_dir():
            found = sorted(
                p
                for p in path.rglob("*.py")
                if not _SKIP_DIRS.intersection(p.parts)
            )
        elif path.suffix == ".py":
            found = [path]
        else:
            raise ValueError(f"not a Python file or directory: {path}")
        for p in found:
            if p not in seen:
                seen.add(p)
                out.append(p)
    return out


def parse_suppressions(source: str) -> tuple[Suppression, ...]:
    """Every ``# xrlint: disable=`` comment in ``source``.

    Comments are found with :mod:`tokenize` (not substring search), so
    string literals *talking about* suppressions do not suppress.
    """
    out: list[Suppression] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        comments = []
    for line, comment in comments:
        match = _SUPPRESS_RE.search(comment)
        if match is None:
            continue
        rules = tuple(
            r.strip() for r in match.group("rules").split(",") if r.strip()
        )
        out.append(
            Suppression(
                line=line, rules=rules, justification=match.group("why")
            )
        )
    return tuple(out)


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root).as_posix()
    except ValueError:
        return path.resolve().as_posix()


def _load_context(path: Path, root: Path) -> FileContext | Finding:
    source = path.read_text(encoding="utf-8")
    relpath = _relpath(path, root)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return Finding(
            rule="E000",
            path=relpath,
            line=exc.lineno or 1,
            message=f"syntax error: {exc.msg}",
        )
    return FileContext(
        path=path,
        relpath=relpath,
        source=source,
        tree=tree,
        suppressions=parse_suppressions(source),
    )


def _apply_suppressions(
    findings: Iterable[Finding],
    contexts: dict[str, FileContext],
    selected: frozenset[str],
) -> list[Finding]:
    """Mark suppressed findings and raise the X001/X002 meta findings."""
    out: list[Finding] = []
    fired: set[tuple[str, int, str]] = set()
    for finding in findings:
        ctx = contexts.get(finding.path)
        suppressed = finding
        if ctx is not None:
            for sup in ctx.suppressions:
                if sup.line != finding.line or finding.rule not in sup.rules:
                    continue
                if not sup.justification:
                    continue  # unjustified comments never suppress (X001)
                fired.add((finding.path, sup.line, finding.rule))
                suppressed = Finding(
                    rule=finding.rule,
                    path=finding.path,
                    line=finding.line,
                    message=finding.message,
                    suppressed=True,
                    justification=sup.justification,
                )
                break
        out.append(suppressed)
    for ctx in contexts.values():
        for sup in ctx.suppressions:
            if not sup.justification:
                out.append(
                    Finding(
                        rule="X001",
                        path=ctx.relpath,
                        line=sup.line,
                        message=(
                            "suppression is missing its justification; "
                            "write '# xrlint: disable="
                            f"{','.join(sup.rules)} -- <why>'"
                        ),
                    )
                )
                continue
            for rule_id in sup.rules:
                # A suppression for a rule that did not run this pass
                # (--rule selection) is not provably stale.
                if rule_id not in selected:
                    continue
                if (ctx.relpath, sup.line, rule_id) not in fired:
                    out.append(
                        Finding(
                            rule="X002",
                            path=ctx.relpath,
                            line=sup.line,
                            message=(
                                f"suppression for {rule_id} matches no "
                                "finding on this line; delete it"
                            ),
                        )
                    )
    return out


def run_lint(
    paths: Sequence[Path | str] | None = None,
    *,
    root: Path | str | None = None,
    rules: Sequence["Rule"] | None = None,
) -> LintReport:
    """Lint ``paths`` (default: ``<root>/src/repro``) with ``rules``.

    ``root`` anchors relative finding paths and is where project-level
    rules look for ``schema/`` and the api modules; it is auto-detected
    from the first path (nearest ``setup.py``/``.git`` ancestor) when
    not given.  ``rules`` defaults to every registered rule.
    """
    if rules is None:
        from .rules import all_rules

        rules = all_rules()
    resolved_paths = [Path(p) for p in (paths or ())]
    if root is None:
        root_path = find_root(resolved_paths[0] if resolved_paths else None)
    else:
        root_path = Path(root).resolve()
    if not resolved_paths:
        default = root_path / "src" / "repro"
        if not default.is_dir():
            raise ValueError(
                f"no paths given and {default} does not exist; "
                "pass explicit paths or --root"
            )
        resolved_paths = [default]

    contexts: dict[str, FileContext] = {}
    findings: list[Finding] = []
    for path in collect_files(resolved_paths):
        loaded = _load_context(path, root_path)
        if isinstance(loaded, Finding):
            findings.append(loaded)
            continue
        contexts[loaded.relpath] = loaded

    project = Project(root_path, tuple(contexts.values()))
    for rule in rules:
        for ctx in project.files:
            for line, message in rule.check_file(ctx):
                findings.append(
                    Finding(
                        rule=rule.id,
                        path=ctx.relpath,
                        line=line,
                        message=message,
                    )
                )
        for relpath, line, message in rule.check_project(project):
            findings.append(
                Finding(rule=rule.id, path=relpath, line=line, message=message)
            )

    findings = _apply_suppressions(
        findings, contexts, frozenset(rule.id for rule in rules)
    )
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return LintReport(
        root=str(root_path),
        rules=tuple(rule.id for rule in rules),
        files_checked=len(contexts),
        findings=tuple(findings),
    )
