"""``python -m repro.lint`` — the standalone xrlint entry point."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
