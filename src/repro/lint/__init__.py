"""``xrlint`` — AST-based determinism & contract linter for this repo.

The golden sha256 schedule checksums prove ``execute(spec)`` stayed
deterministic *after the fact*; this package catches the classes of
change that would eventually break them — wall-clock reads, unseeded
RNG, set-iteration-order tie-breaks — plus the executable contracts
(schema/dataclass drift, registry completeness, ``__slots__`` on hot
records) *at lint time*.

Quickstart::

    from repro.lint import run_lint

    report = run_lint(["src/repro"])   # or run_lint() from the repo root
    assert not report.unsuppressed, report.render()

Command line: ``xrbench lint [--format json] [--rule D001] [paths]``
or the equivalent standalone ``python -m repro.lint``.  See the
README's "Static analysis" section for the rule catalogue and the
suppression syntax.
"""

from .engine import (
    FileContext,
    Finding,
    LintReport,
    Project,
    Suppression,
    run_lint,
)
from .rules import HOT_RECORDS, Rule, all_rules, resolve_rules, rules

__all__ = [
    "FileContext",
    "Finding",
    "HOT_RECORDS",
    "LintReport",
    "Project",
    "Rule",
    "Suppression",
    "all_rules",
    "resolve_rules",
    "rules",
    "run_lint",
]
