"""The shipped ``xrlint`` rules: determinism (D···) and contract (C···).

Every rule is a :class:`Rule` object registered in the module-level
``rules`` :class:`repro.registry.Registry` under both its id ("D001")
and its slug ("no-wall-clock"), so ``--rule`` lookups inherit the
registry's did-you-mean ``KeyError`` messages.

Rules come in two shapes:

* **per-file** (``check_file``): pure ``ast`` visitors over one parsed
  module — the determinism rules and the ``__slots__`` contract.
* **project-level** (``check_project``): cross-file contracts that
  diff source against ``schema/*.json`` or against sibling modules —
  schema/dataclass drift and registry completeness.

Path scoping is deliberate, not incidental: D001 exempts
``benchmarks/`` and ``tests/`` (wall time *is* the measurement there),
and D003 only fires under ``runtime/`` paths, where iteration order
feeds dispatch tie-breaks and therefore the golden schedule checksums.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Sequence

from repro.registry import Registry

from .engine import FileContext, Project

__all__ = [
    "Rule",
    "rules",
    "all_rules",
    "resolve_rules",
    "HOT_RECORDS",
    "TIMING_SHIM_ALLOWLIST",
]

#: Paths (relative, posix) where wall-clock reads are legitimate: the
#: benchmark harnesses measure wall time by design, and tests may pin
#: timing behaviour.  Add explicit shim modules here with a review.
TIMING_SHIM_ALLOWLIST: tuple[str, ...] = ("benchmarks/", "tests/")

#: Paths where the seeded-RNG rule does not apply (load generators for
#: plots and ad-hoc example scripts are allowed stateful RNG).
RNG_EXEMPT_PATHS: tuple[str, ...] = ("benchmarks/", "tests/", "examples/")

#: Hot-record registry (rule C001): classes on the dispatch hot path
#: that PR 6 slotted for attribute-access speed and footprint.  Any
#: class *with one of these names* must keep ``__slots__`` (explicitly
#: or via ``@dataclass(slots=True)``) — reintroducing a ``__dict__``
#: here is a silent perf regression the benchmarks only catch later.
HOT_RECORDS: tuple[str, ...] = (
    "WorkItem",
    "ExecutionRecord",
    "ExecutionEngine",
    "InferenceRequest",
    "SegmentChain",
    "ChainSuffix",
)

#: Wall-clock callables banned by D001, as canonical dotted names.
_WALL_CLOCK_CALLS: frozenset[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.today",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)

#: numpy RNG constructors that are fine *when seeded* (D002): the
#: ``_unit_roll``/``_jitter_unit`` idiom derives a seed from a sha256
#: digest and builds a one-shot generator from it.
_SEEDED_RNG_CONSTRUCTORS: frozenset[str] = frozenset(
    {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox"}
)


class Rule:
    """One lint rule: an id, a slug, and file/project check hooks."""

    id: str = ""
    name: str = ""
    description: str = ""

    def check_file(self, ctx: FileContext) -> Iterator[tuple[int, str]]:
        """Yield ``(line, message)`` findings for one parsed file."""
        return iter(())

    def check_project(
        self, project: Project
    ) -> Iterator[tuple[str, int, str]]:
        """Yield ``(relpath, line, message)`` cross-file findings."""
        return iter(())


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------


def _import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name -> canonical dotted prefix, from the module's imports.

    ``import numpy as np`` maps ``np -> numpy``; ``from time import
    perf_counter as pc`` maps ``pc -> time.perf_counter``; ``from
    datetime import datetime`` maps ``datetime -> datetime.datetime``.
    Relative imports are ignored (they cannot name stdlib/numpy).
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                target = alias.name if alias.asname else local
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            module = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{module}.{alias.name}"
    return aliases


def _dotted(node: ast.AST, aliases: dict[str, str]) -> str | None:
    """The canonical dotted name of an attribute chain, or ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id, node.id)
    parts.append(root)
    return ".".join(reversed(parts))


def _path_matches(relpath: str, prefixes: Iterable[str]) -> bool:
    """Whether a posix relpath lives under any of the path prefixes."""
    return any(
        relpath.startswith(prefix) or f"/{prefix}" in relpath
        for prefix in prefixes
    )


def _tuple_literal(
    tree: ast.Module, name: str
) -> tuple[int, tuple[str, ...]] | None:
    """A module-level ``NAME = ("a", "b", ...)`` literal, with its line."""
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == name:
                if isinstance(value, (ast.Tuple, ast.List)):
                    items: list[str] = []
                    for element in value.elts:
                        if not (
                            isinstance(element, ast.Constant)
                            and isinstance(element.value, str)
                        ):
                            return None
                        items.append(element.value)
                    return node.lineno, tuple(items)
    return None


def _dataclass_fields(cls: ast.ClassDef) -> tuple[str, ...]:
    """The annotated field names of a dataclass body (ClassVar skipped)."""
    fields: list[str] = []
    for node in cls.body:
        if not isinstance(node, ast.AnnAssign):
            continue
        if not isinstance(node.target, ast.Name):
            continue
        annotation = ast.unparse(node.annotation)
        if "ClassVar" in annotation:
            continue
        fields.append(node.target.id)
    return tuple(fields)


def _find_class(tree: ast.Module, name: str) -> ast.ClassDef | None:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


# ---------------------------------------------------------------------------
# D001 — no-wall-clock
# ---------------------------------------------------------------------------


class NoWallClock(Rule):
    id = "D001"
    name = "no-wall-clock"
    description = (
        "wall-clock reads (time.time, datetime.now, perf_counter, ...) "
        "are banned outside benchmarks/ and allowlisted timing shims: "
        "simulated time is the only clock the runtime may observe"
    )

    def check_file(self, ctx: FileContext) -> Iterator[tuple[int, str]]:
        if _path_matches(ctx.relpath, TIMING_SHIM_ALLOWLIST):
            return
        aliases = _import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func, aliases)
            if dotted in _WALL_CLOCK_CALLS:
                yield (
                    node.lineno,
                    f"wall-clock read {dotted}() — the runtime is "
                    "simulated-time only; measure wall time in "
                    "benchmarks/ or an allowlisted timing shim",
                )


# ---------------------------------------------------------------------------
# D002 — seeded-rng-only
# ---------------------------------------------------------------------------


class SeededRngOnly(Rule):
    id = "D002"
    name = "seeded-rng-only"
    description = (
        "stateful/unseeded RNG (random.*, np.random.* module calls) is "
        "banned in src/repro/: randomness must flow through seeded "
        "generator construction (the _unit_roll/_jitter_unit idiom)"
    )

    def check_file(self, ctx: FileContext) -> Iterator[tuple[int, str]]:
        if _path_matches(ctx.relpath, RNG_EXEMPT_PATHS):
            return
        aliases = _import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func, aliases)
            if dotted is None:
                continue
            if dotted == "random" or dotted.startswith("random."):
                yield (
                    node.lineno,
                    f"stdlib random call {dotted}() draws from hidden "
                    "global state; derive draws from seeded keys "
                    "(the _unit_roll/_jitter_unit idiom)",
                )
            elif dotted.startswith("numpy.random."):
                tail = dotted.rsplit(".", 1)[1]
                if tail not in _SEEDED_RNG_CONSTRUCTORS:
                    yield (
                        node.lineno,
                        f"{dotted}() uses numpy's global RNG state; "
                        "construct a seeded Generator via "
                        "default_rng(seed) instead",
                    )
                elif not node.args and not node.keywords:
                    yield (
                        node.lineno,
                        f"{dotted}() without a seed is entropy-seeded "
                        "and breaks run reproducibility; pass an "
                        "explicit seed",
                    )


# ---------------------------------------------------------------------------
# D003 — no-order-dependent-iteration
# ---------------------------------------------------------------------------


class _SetIterationVisitor(ast.NodeVisitor):
    """Flag iteration over sets inside one scope, in statement order.

    Tracks simple local bindings (``seen = set()``, ``seen: set[str]
    = ...``) so ``for x in seen`` is caught too; rebinding a name to a
    non-set clears it.  ``sorted(...)``/``min``/``max``/``sum``/``any``
    /``all``/``len`` consume sets order-independently and are fine;
    ``list``/``tuple``/``enumerate`` materialise the unordered view and
    are flagged anywhere they appear.
    """

    _ORDER_SAFE = frozenset(
        {"sorted", "min", "max", "sum", "any", "all", "len", "frozenset",
         "set"}
    )
    _ORDER_LEAKS = frozenset({"list", "tuple", "enumerate"})

    def __init__(self) -> None:
        self.findings: list[tuple[int, str]] = []
        self._set_names: set[str] = set()

    # -- set-ness inference ---------------------------------------------------

    def _is_set_expr(self, node: ast.expr | None) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        if isinstance(node, ast.Name):
            return node.id in self._set_names
        return False

    def _bind(self, target: ast.expr, is_set: bool) -> None:
        if isinstance(target, ast.Name):
            if is_set:
                self._set_names.add(target.id)
            else:
                self._set_names.discard(target.id)

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        for target in node.targets:
            self._bind(target, self._is_set_expr(node.value))

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        annotation = ast.unparse(node.annotation)
        is_set = annotation.startswith(("set", "frozenset")) or (
            node.value is not None and self._is_set_expr(node.value)
        )
        self._bind(node.target, is_set)

    # -- nested scopes get a fresh visitor ------------------------------------

    def _visit_scope(self, node: ast.AST) -> None:
        nested = _SetIterationVisitor()
        for child in ast.iter_child_nodes(node):
            nested.visit(child)
        self.findings.extend(nested.findings)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scope(node)

    # -- the actual checks ----------------------------------------------------

    def _flag(self, node: ast.expr, how: str) -> None:
        self.findings.append(
            (
                node.lineno,
                f"{how} iterates a set in hash order; dispatch "
                "tie-breaks must not depend on it — sort first "
                "(sorted(...)) or keep an explicitly ordered structure",
            )
        )

    def visit_For(self, node: ast.For) -> None:
        if self._is_set_expr(node.iter):
            self._flag(node.iter, "for-loop")
        self.generic_visit(node)

    def _check_comprehension(
        self, node: ast.expr, generators: Sequence[ast.comprehension]
    ) -> None:
        for gen in generators:
            if self._is_set_expr(gen.iter):
                self._flag(gen.iter, "comprehension")

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehension(node, node.generators)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._check_comprehension(node, node.generators)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_comprehension(node, node.generators)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_comprehension(node, node.generators)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in self._ORDER_LEAKS
            and node.args
            and self._is_set_expr(node.args[0])
        ):
            self._flag(node, f"{node.func.id}(set)")
        self.generic_visit(node)


class NoOrderDependentIteration(Rule):
    id = "D003"
    name = "no-order-dependent-iteration"
    description = (
        "inside runtime/ (dispatch, queues, fleet), iterating a set — "
        "directly, via a bound name, or via list()/tuple()/enumerate() "
        "— leaks hash order into schedule tie-breaks; sort first"
    )

    def check_file(self, ctx: FileContext) -> Iterator[tuple[int, str]]:
        if not _path_matches(ctx.relpath, ("runtime/",)):
            return
        visitor = _SetIterationVisitor()
        visitor.visit(ctx.tree)
        yield from sorted(visitor.findings)


# ---------------------------------------------------------------------------
# C001 — slots-on-hot-records
# ---------------------------------------------------------------------------


def _declares_slots(cls: ast.ClassDef) -> bool:
    for node in cls.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        if (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and node.target.id == "__slots__"
        ):
            return True
    for decorator in cls.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        func = decorator.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name != "dataclass":
            continue
        for keyword in decorator.keywords:
            if (
                keyword.arg == "slots"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return True
    return False


class SlotsOnHotRecords(Rule):
    id = "C001"
    name = "slots-on-hot-records"
    description = (
        "classes named in the hot-record registry (WorkItem, "
        "ExecutionRecord, ...) must declare __slots__ (directly or via "
        "@dataclass(slots=True)): they are allocated per streamed frame"
    )

    def check_file(self, ctx: FileContext) -> Iterator[tuple[int, str]]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name not in HOT_RECORDS:
                continue
            if not _declares_slots(node):
                yield (
                    node.lineno,
                    f"hot record {node.name} has no __slots__; declare "
                    "them (or @dataclass(slots=True)) — these objects "
                    "are allocated per streamed frame on the dispatch "
                    "hot path",
                )


# ---------------------------------------------------------------------------
# C002 — schema-dataclass-drift
# ---------------------------------------------------------------------------


class SchemaDataclassDrift(Rule):
    id = "C002"
    name = "schema-dataclass-drift"
    description = (
        "RunSpec/DispatchPlan dataclass fields must match the key sets "
        "of schema/runspec.schema.json and schema/dispatchplan."
        "schema.json — a field added on one side only drifts silently"
    )

    #: (module, class, schema file, path to the properties mapping).
    CONTRACTS: tuple[tuple[str, str, str, tuple[str, ...]], ...] = (
        (
            "src/repro/api/spec.py",
            "RunSpec",
            "schema/runspec.schema.json",
            ("definitions", "runspec", "properties"),
        ),
        (
            "src/repro/api/plan.py",
            "DispatchPlan",
            "schema/dispatchplan.schema.json",
            ("properties",),
        ),
    )

    def check_project(
        self, project: Project
    ) -> Iterator[tuple[str, int, str]]:
        for module_path, class_name, schema_path, pointer in self.CONTRACTS:
            tree = project.module(module_path)
            schema = project.read_json(schema_path)
            if tree is None or schema is None:
                continue
            cls = _find_class(tree, class_name)
            if cls is None:
                yield (
                    module_path,
                    1,
                    f"expected dataclass {class_name} is missing (the "
                    f"{schema_path} contract has no counterpart)",
                )
                continue
            node = schema
            for key in pointer:
                node = node.get(key, {}) if isinstance(node, dict) else {}
            if not isinstance(node, dict) or not node:
                yield (
                    module_path,
                    cls.lineno,
                    f"{schema_path} has no properties at "
                    f"{'/'.join(pointer)}; cannot check {class_name}",
                )
                continue
            fields = set(_dataclass_fields(cls))
            keys = set(node)
            for missing in sorted(fields - keys):
                yield (
                    module_path,
                    cls.lineno,
                    f"{class_name}.{missing} has no key in "
                    f"{schema_path}; add it to the schema (serialized "
                    "specs would fail validation)",
                )
            for extra in sorted(keys - fields):
                yield (
                    module_path,
                    cls.lineno,
                    f"{schema_path} key {extra!r} has no {class_name} "
                    "field; remove it or add the field (round-trips "
                    "would drop it)",
                )


# ---------------------------------------------------------------------------
# C003 — registry-completeness
# ---------------------------------------------------------------------------


def _register_model_code(decorator: ast.expr) -> str | None:
    """The task code of an ``@register_model("XX")`` decorator, if any."""
    if not isinstance(decorator, ast.Call):
        return None
    func = decorator.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    if name != "register_model":
        return None
    if decorator.args and isinstance(decorator.args[0], ast.Constant):
        value = decorator.args[0].value
        if isinstance(value, str):
            return value
    return ""


class RegistryCompleteness(Rule):
    id = "C003"
    name = "registry-completeness"
    description = (
        "every zoo/ model module registers exactly one builder via "
        "@register_model, codes are unique and match TASK_CODES, and "
        "the *_POLICIES tuples agree across api/spec.py, the runtime "
        "modules, the JSON-schema enums and the CLI choices"
    )

    #: Policy tuples: spec-module name -> (runtime module, schema key).
    POLICY_CONTRACTS: tuple[tuple[str, str, str], ...] = (
        ("DVFS_POLICIES", "src/repro/runtime/governor.py", "dvfs_policy"),
        ("ADMISSION_POLICIES", "src/repro/runtime/admission.py", "admission"),
        ("FAULT_PROFILES", "src/repro/runtime/faults.py", "faults"),
    )

    #: CLI flag -> the spec tuple its choices must come from.
    CLI_CHOICES: tuple[tuple[str, str], ...] = (
        ("--dvfs", "DVFS_POLICIES"),
        ("--admission", "ADMISSION_POLICIES"),
        ("--faults", "FAULT_PROFILES"),
    )

    def check_project(
        self, project: Project
    ) -> Iterator[tuple[str, int, str]]:
        yield from self._check_zoo(project)
        yield from self._check_policies(project)

    # -- zoo completeness -----------------------------------------------------

    def _check_zoo(self, project: Project) -> Iterator[tuple[str, int, str]]:
        zoo_dir = project.root / "src" / "repro" / "zoo"
        if not zoo_dir.is_dir():
            return
        codes: dict[str, str] = {}
        for path in project.glob("src/repro/zoo/*.py"):
            if path.name in ("__init__.py", "registry.py"):
                continue
            relpath = path.relative_to(project.root).as_posix()
            tree = project.module(relpath)
            if tree is None:
                continue
            registered: list[tuple[int, str]] = []
            for node in tree.body:
                if not isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                for decorator in node.decorator_list:
                    code = _register_model_code(decorator)
                    if code is None:
                        continue
                    if code == "":
                        yield (
                            relpath,
                            node.lineno,
                            "@register_model needs a literal task-code "
                            "string argument",
                        )
                        continue
                    registered.append((node.lineno, code))
            if not registered:
                yield (
                    relpath,
                    1,
                    "zoo module registers no model builder; decorate "
                    "its build function with @register_model(\"<code>\")",
                )
                continue
            if len(registered) > 1:
                yield (
                    relpath,
                    registered[1][0],
                    f"zoo module registers {len(registered)} builders; "
                    "exactly one @register_model per module",
                )
            for line, code in registered:
                if code in codes:
                    yield (
                        relpath,
                        line,
                        f"task code {code!r} is already registered by "
                        f"{codes[code]}; codes must be unique",
                    )
                else:
                    codes[code] = relpath
        registry_rel = "src/repro/zoo/registry.py"
        registry_tree = project.module(registry_rel)
        if registry_tree is None or not codes:
            return
        literal = _tuple_literal(registry_tree, "TASK_CODES")
        if literal is None:
            return
        line, task_codes = literal
        if set(task_codes) != set(codes):
            missing = sorted(set(codes) - set(task_codes))
            stale = sorted(set(task_codes) - set(codes))
            detail = []
            if missing:
                detail.append(f"registered but not listed: {missing}")
            if stale:
                detail.append(f"listed but never registered: {stale}")
            yield (
                registry_rel,
                line,
                "TASK_CODES disagrees with the @register_model "
                f"decorators ({'; '.join(detail)})",
            )

    # -- policy tuple sync ----------------------------------------------------

    def _check_policies(
        self, project: Project
    ) -> Iterator[tuple[str, int, str]]:
        spec_rel = "src/repro/api/spec.py"
        spec_tree = project.module(spec_rel)
        if spec_tree is None:
            return
        schema = project.read_json("schema/runspec.schema.json")
        spec_props = {}
        if isinstance(schema, dict):
            spec_props = (
                schema.get("definitions", {})
                .get("runspec", {})
                .get("properties", {})
            )
        for name, runtime_rel, schema_key in self.POLICY_CONTRACTS:
            spec_literal = _tuple_literal(spec_tree, name)
            if spec_literal is None:
                continue
            line, spec_values = spec_literal
            runtime_tree = project.module(runtime_rel)
            if runtime_tree is not None:
                runtime_literal = _tuple_literal(runtime_tree, name)
                if (
                    runtime_literal is not None
                    and runtime_literal[1] != spec_values
                ):
                    yield (
                        spec_rel,
                        line,
                        f"{name} {spec_values} disagrees with "
                        f"{runtime_rel} ({runtime_literal[1]}); the two "
                        "mirror each other by contract",
                    )
            enum = None
            prop = spec_props.get(schema_key)
            if isinstance(prop, dict):
                enum = prop.get("enum")
            if enum is not None and tuple(enum) != spec_values:
                yield (
                    spec_rel,
                    line,
                    f"{name} {spec_values} disagrees with the "
                    f"schema/runspec.schema.json enum for "
                    f"{schema_key!r} ({tuple(enum)})",
                )
        yield from self._check_cli_choices(project, spec_tree)

    def _check_cli_choices(
        self, project: Project, spec_tree: ast.Module
    ) -> Iterator[tuple[str, int, str]]:
        cli_rel = "src/repro/cli.py"
        cli_tree = project.module(cli_rel)
        if cli_tree is None:
            return
        for node in ast.walk(cli_tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_argument"
                and node.args
                and isinstance(node.args[0], ast.Constant)
            ):
                continue
            flag = node.args[0].value
            expected_name = dict(self.CLI_CHOICES).get(flag)
            if expected_name is None:
                continue
            choices = next(
                (k.value for k in node.keywords if k.arg == "choices"), None
            )
            if choices is None:
                continue
            spec_literal = _tuple_literal(spec_tree, expected_name)
            expected = spec_literal[1] if spec_literal else None
            if (
                isinstance(choices, ast.Call)
                and isinstance(choices.func, ast.Name)
                and choices.func.id in ("list", "tuple")
                and len(choices.args) == 1
                and isinstance(choices.args[0], ast.Name)
            ):
                if choices.args[0].id != expected_name:
                    yield (
                        cli_rel,
                        node.lineno,
                        f"{flag} choices come from "
                        f"{choices.args[0].id}, not {expected_name}; "
                        "CLI choices must mirror the spec tuple",
                    )
                continue
            if isinstance(choices, (ast.List, ast.Tuple)):
                values = tuple(
                    e.value
                    for e in choices.elts
                    if isinstance(e, ast.Constant)
                )
                if expected is not None and values != expected:
                    yield (
                        cli_rel,
                        node.lineno,
                        f"{flag} literal choices {values} disagree with "
                        f"{expected_name} {expected}; use "
                        f"list({expected_name}) instead",
                    )


# ---------------------------------------------------------------------------
# Registration
# ---------------------------------------------------------------------------

#: All shipped rules, in id order.  X001/X002 (suppression hygiene) are
#: engine-level meta findings, not selectable rules — see engine.py.
_RULES: tuple[Rule, ...] = (
    NoWallClock(),
    SeededRngOnly(),
    NoOrderDependentIteration(),
    SlotsOnHotRecords(),
    SchemaDataclassDrift(),
    RegistryCompleteness(),
)

#: Lookup registry: every rule under both its id and its slug, so
#: ``--rule`` accepts either and typos get did-you-mean KeyErrors.
rules = Registry("lint rule")
for _rule in _RULES:
    rules.register(_rule.id, _rule)
    rules.register(_rule.name, _rule)


def all_rules() -> tuple[Rule, ...]:
    """Every shipped rule, in id order."""
    return _RULES


def resolve_rules(names: Sequence[str] | None) -> tuple[Rule, ...]:
    """Resolve ``--rule`` selections (ids or slugs) to rule objects.

    Unknown names raise the registry's suggesting ``KeyError``; ``None``
    or empty selects every rule.  Order and uniqueness follow the
    shipped id order regardless of selection order.
    """
    if not names:
        return _RULES
    selected = {id(rules.get(name)) for name in names}
    return tuple(rule for rule in _RULES if id(rule) in selected)
