"""The ``xrlint`` command line, shared by its two entry points.

``xrbench lint ...`` (the subcommand) and ``python -m repro.lint ...``
(standalone, importable without numpy) both funnel into :func:`run`.
Exit codes: 0 — no unsuppressed findings; 1 — findings; 2 — usage
errors (unknown rule, bad path).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence, TextIO

from .engine import run_lint
from .rules import all_rules, resolve_rules

__all__ = ["add_lint_arguments", "run", "main"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared ``lint`` flags (used by ``xrbench`` and ``__main__``)."""
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: <root>/src/repro)",
    )
    parser.add_argument(
        "--format", default="text", choices=["text", "json"],
        help="output format (json follows schema/lintreport.schema.json)",
    )
    parser.add_argument(
        "--rule", action="append", default=None, metavar="RULE",
        help="run only this rule (id like D001 or slug like "
             "no-wall-clock; repeatable)",
    )
    parser.add_argument(
        "--root", default=None, metavar="DIR",
        help="repository root for relative paths and project rules "
             "(default: auto-detected from the first path)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list the shipped rules and exit",
    )


def run(
    paths: Sequence[str],
    *,
    output_format: str = "text",
    rule_names: Sequence[str] | None = None,
    root: str | None = None,
    list_rules: bool = False,
    stdout: TextIO | None = None,
) -> int:
    """Run the linter; returns the process exit code."""
    out = stdout if stdout is not None else sys.stdout
    if list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.name}", file=out)
            print(f"      {rule.description}", file=out)
        return 0
    try:
        rules = resolve_rules(rule_names)
        report = run_lint(paths or None, root=root, rules=rules)
    except KeyError as exc:
        # str(KeyError) is the repr of its argument, which would wrap
        # the registry's did-you-mean message in stray quotes.
        print(exc.args[0] if exc.args else exc, file=sys.stderr)
        return 2
    except (ValueError, OSError) as exc:
        print(exc, file=sys.stderr)
        return 2
    if output_format == "json":
        print(report.to_json(), file=out)
    else:
        print(report.render(), file=out)
    return report.exit_code


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="xrlint: determinism & contract linter for the "
                    "XRBench reproduction",
    )
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    return run(
        args.paths,
        output_format=args.format,
        rule_names=args.rule,
        root=args.root,
        list_rules=args.list_rules,
    )
