"""Declarative run API: one serializable entry point for all execution.

The paper's value is scenario diversity scored under one methodology;
this package makes the *run description* itself a first-class, frozen,
JSON-round-trippable value so every front end — the Python API, the
``xrbench`` CLI, the eval figure drivers, the benchmarks, and future
distributed workers — compiles through one funnel:

    RunSpec  ── execute() ──>  ScenarioReport
    Sweep ─ expand ─> [RunSpec] ── Experiment.run() ──> [Report]

Quickstart::

    from repro.api import RunSpec, Sweep, Experiment, execute

    # One run, declaratively.
    report = execute(RunSpec(scenario="ar_gaming", accelerator="J"))
    print(report.summary())

    # The same spec, over the wire and back, byte-identical results.
    spec = RunSpec.from_json(report_spec_json)

    # A cartesian sweep on two worker processes.
    sweep = Sweep(
        base=RunSpec(scenario="ar_gaming", duration_s=0.5),
        grid={"scenario": ("ar_gaming", "vr_gaming"),
              "accelerator": ("A", "J")},
    )
    reports = Experiment.from_sweep(sweep).run(workers=2)

Every name a spec mentions (scenario, scheduler, accelerator, score
preset) resolves through :mod:`repro.registry`, so third-party
registrations are addressable from JSON without code changes.
:class:`repro.core.Harness` remains as a thin compatibility facade over
the same helpers.
"""

from .events import (
    CollectingSink,
    EventSink,
    ProgressEvent,
    StreamSink,
)
from .execute import (
    Experiment,
    Report,
    execute,
    execute_plan,
    run_full_suite,
    run_session_group,
    run_single_scenario,
)
from .plan import (
    DispatchPlan,
    PlanSession,
    compile_plan,
    diff_plans,
    estimate_plan,
    workload_fingerprint,
)
from .spec import (
    ADMISSION_POLICIES,
    DVFS_POLICIES,
    FAULT_PROFILES,
    RunSpec,
    Sweep,
)

__all__ = [
    "ADMISSION_POLICIES",
    "CollectingSink",
    "DVFS_POLICIES",
    "DispatchPlan",
    "EventSink",
    "FAULT_PROFILES",
    "Experiment",
    "PlanSession",
    "ProgressEvent",
    "Report",
    "RunSpec",
    "StreamSink",
    "Sweep",
    "compile_plan",
    "diff_plans",
    "estimate_plan",
    "execute",
    "execute_plan",
    "run_full_suite",
    "run_session_group",
    "run_single_scenario",
]
