"""The single execution funnel: ``execute(spec) -> Report``.

Every front end — :class:`repro.core.Harness` (now a facade), the CLI,
the eval figure drivers, the benchmarks — runs specs through this module.
The three run shapes share one implementation each:

* :func:`run_single_scenario` — one scenario, one system
  (:class:`~repro.core.ScenarioReport`).
* :func:`run_session_group` — N concurrent tenant sessions multiplexed
  onto one system (:class:`~repro.core.MultiSessionReport`).
* :func:`run_full_suite` — the seven-scenario suite
  (:class:`~repro.core.BenchmarkReport`).

:func:`execute` resolves a :class:`~repro.api.RunSpec`'s names through
:mod:`repro.registry`, routes on :attr:`RunSpec.mode` and streams
:class:`~repro.api.events.ProgressEvent` records to pluggable sinks.

:class:`Experiment` executes spec lists — serially through one shared
:class:`~repro.costmodel.CachedCostTable` (so a 13-accelerator x
7-scenario sweep analyses each (model, engine) pair once), or on a
process pool (``workers > 1``) for wall-clock parallelism.  Both paths
produce identical reports: cost caching is a speed layer, never a
results layer, and every spec carries its own seeds.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.core.aggregate import score_sessions, score_simulation
from repro.core.config import ScoreConfig, get_score_preset
from repro.core.report import (
    BenchmarkReport,
    MultiSessionReport,
    ScenarioReport,
)
from repro.costmodel import CachedCostTable, CostTable
from repro.hardware import AcceleratorSystem, build_accelerator
from repro.runtime import (
    MultiScenarioSimulator,
    SessionSpec,
    Simulator,
    make_scheduler,
)
from repro.workload import (
    UsageScenario,
    benchmark_suite,
    churn_windows,
    get_scenario,
)

from .events import EventSink, ProgressEvent, emit
from .plan import (
    DispatchPlan,
    PlanSession,
    compile_plan,
    workload_fingerprint,
)
from .spec import RunSpec, Sweep

__all__ = [
    "Report",
    "execute",
    "execute_plan",
    "Experiment",
    "run_single_scenario",
    "run_session_group",
    "run_full_suite",
]

#: What :func:`execute` returns, depending on :attr:`RunSpec.mode`.
Report = ScenarioReport | MultiSessionReport | BenchmarkReport


def _resolve(scenario: UsageScenario | str) -> UsageScenario:
    return get_scenario(scenario) if isinstance(scenario, str) else scenario


def run_single_scenario(
    scenario: UsageScenario | str,
    system: AcceleratorSystem,
    *,
    scheduler: str = "latency_greedy",
    duration_s: float = 1.0,
    seed: int = 0,
    score: ScoreConfig | None = None,
    frame_loss: float = 0.0,
    costs: CostTable | None = None,
    measured_quality: dict[str, float] | None = None,
) -> ScenarioReport:
    """Simulate and score one scenario on one system."""
    simulator = Simulator(
        scenario=_resolve(scenario),
        system=system,
        scheduler=make_scheduler(scheduler),
        duration_s=duration_s,
        seed=seed,
        costs=costs if costs is not None else CostTable(),
        frame_loss_probability=frame_loss,
    )
    result = simulator.run()
    scored = score_simulation(
        result, score if score is not None else ScoreConfig(),
        measured_quality,
    )
    return ScenarioReport(simulation=result, score=scored)


def run_session_group(
    scenarios: Sequence[UsageScenario | str],
    system: AcceleratorSystem,
    *,
    scheduler: str = "latency_greedy",
    duration_s: float = 1.0,
    base_seed: int = 0,
    score: ScoreConfig | None = None,
    frame_loss: float = 0.0,
    costs: CostTable | None = None,
    dispatch_costs: CostTable | None = None,
    granularity: str = "model",
    segments_per_model: int = 2,
    churn: float = 0.0,
    preemptive: bool = False,
    dvfs_policy: str = "static",
    admission: str = "none",
    faults: str = "none",
    measured_quality: dict[str, float] | None = None,
) -> MultiSessionReport:
    """Multiplex concurrent scenario sessions onto one system.

    Sessions get consecutive seeds from ``base_seed``.  ``churn > 0``
    gives each session a deterministic lifetime window from
    :func:`repro.workload.churn_windows` (seeded by ``base_seed``), so
    tenants arrive late and depart early; ``preemptive=True`` asks a
    capable scheduler (edf, rate_monotonic) to displace resuming segment
    chains with more urgent waiting work at segment boundaries.
    ``dvfs_policy`` selects the runtime DVFS governor consulted at every
    dispatch boundary (``"static"``, ``"slack"``, ``"race_to_idle"``);
    ``admission`` the QoE admission controller consulted at session
    joins and periodic control ticks (``"none"``, ``"shed"``,
    ``"degrade"``); ``faults`` the seeded fault-injection profile whose
    engine-failure/thermal events the event loop rides out (``"none"``,
    ``"single"``, ``"flaky"``, ``"thermal"`` — seeded by ``base_seed``).
    Dispatch-path pricing flows through a :class:`CachedCostTable`
    layered over ``costs`` unless ``dispatch_costs`` supplies the table
    directly (the throughput benchmark uses that to compare cache
    flavours).
    """
    if not scenarios:
        raise ValueError("at least one session is required")
    resolved = [_resolve(s) for s in scenarios]
    windows = churn_windows(len(resolved), duration_s, churn, base_seed)
    specs = [
        SessionSpec(
            session_id=i,
            scenario=sc,
            seed=base_seed + i,
            frame_loss_probability=frame_loss,
            arrival_s=window.arrival_s,
            departure_s=window.departure_s,
        )
        for i, (sc, window) in enumerate(zip(resolved, windows))
    ]
    if dispatch_costs is None:
        dispatch_costs = CachedCostTable(
            base=costs if costs is not None else CostTable()
        )
    simulator = MultiScenarioSimulator(
        sessions=specs,
        system=system,
        scheduler=make_scheduler(
            scheduler, **({"preemptive": True} if preemptive else {})
        ),
        duration_s=duration_s,
        costs=dispatch_costs,
        granularity=granularity,
        segments_per_model=segments_per_model,
        dvfs_policy=dvfs_policy,
        admission=admission,
        faults=faults,
        fault_seed=base_seed,
    )
    result = simulator.run()
    score_cfg = score if score is not None else ScoreConfig()
    scores = score_sessions(result, score_cfg, measured_quality)
    reports = tuple(
        ScenarioReport(simulation=session, score=scored)
        for session, scored in zip(result.sessions, scores)
    )
    return MultiSessionReport(result=result, session_reports=reports)


def run_full_suite(
    system: AcceleratorSystem,
    *,
    scheduler: str = "latency_greedy",
    duration_s: float = 1.0,
    seed: int = 0,
    score: ScoreConfig | None = None,
    frame_loss: float = 0.0,
    costs: CostTable | None = None,
    sinks: Sequence[EventSink] = (),
    label: str = "",
    churn: float = 0.0,
    dvfs_policy: str = "static",
    admission: str = "none",
    faults: str = "none",
) -> BenchmarkReport:
    """Run the full seven-scenario suite (Definition 5's Omega).

    ``churn > 0`` runs each scenario as one dynamically-arriving tenant
    session (same deterministic lifetime plan as multi-session runs), so
    suite-level exports carry per-session active-duration accounting.
    A non-static ``dvfs_policy`` — or a non-``"none"`` ``admission``
    policy or ``faults`` profile — likewise routes each scenario through
    the multi-tenant engine, where the DVFS governor, admission
    controller and fault machinery live.
    """
    costs = costs if costs is not None else CostTable()
    suite = benchmark_suite()
    reports = []
    for i, scenario in enumerate(suite):
        if (
            churn > 0
            or dvfs_policy != "static"
            or admission != "none"
            or faults != "none"
        ):
            group = run_session_group(
                [scenario], system,
                scheduler=scheduler, duration_s=duration_s,
                base_seed=seed, score=score, frame_loss=frame_loss,
                costs=costs, churn=churn, dvfs_policy=dvfs_policy,
                admission=admission, faults=faults,
            )
            report = group.session_reports[0]
        else:
            report = run_single_scenario(
                scenario, system,
                scheduler=scheduler, duration_s=duration_s, seed=seed,
                score=score, frame_loss=frame_loss, costs=costs,
            )
        emit(sinks, ProgressEvent(
            kind="scenario_finished",
            label=label or scenario.name,
            index=i,
            total=len(suite),
            payload={"scenario": scenario.name, "overall": report.overall},
        ))
        reports.append(report)
    return BenchmarkReport(system=system, scenario_reports=reports)


def execute(
    spec: RunSpec,
    *,
    system: AcceleratorSystem | None = None,
    costs: CostTable | None = None,
    dispatch_costs: CostTable | None = None,
    score: ScoreConfig | None = None,
    measured_quality: dict[str, float] | None = None,
    sinks: Sequence[EventSink] = (),
    index: int = 0,
    total: int = 1,
) -> Report:
    """Execute one spec and return its report.

    Compile-then-execute: the spec is compiled into a
    :class:`~repro.api.DispatchPlan` and handed to
    :func:`execute_plan` — the planner/executor seam.  The keyword
    overrides exist for callers that already hold richer objects than a
    spec can serialize — a pre-built ``system`` (ignoring
    ``spec.accelerator``/``spec.pes``; the plan is compiled against it,
    so fault schedules see its engine count), a shared cost table, or
    an inline :class:`ScoreConfig` replacing the named preset.  The
    spec-only call is the fully-declarative path.
    """
    return execute_plan(
        compile_plan(spec, system=system),
        system=system, costs=costs, dispatch_costs=dispatch_costs,
        score=score, measured_quality=measured_quality,
        sinks=sinks, index=index, total=total,
    )


def _planned_sessions(
    rows: Sequence[PlanSession],
) -> list[SessionSpec]:
    """Plan rows as executor session specs (scenarios resolved by name)."""
    return [
        SessionSpec(
            session_id=row.session_id,
            scenario=get_scenario(row.scenario),
            seed=row.seed,
            frame_loss_probability=row.frame_loss,
            arrival_s=row.arrival_s,
            departure_s=row.departure_s,
        )
        for row in rows
    ]


def _planned_group(
    plan: DispatchPlan,
    rows: Sequence[PlanSession],
    system: AcceleratorSystem,
    *,
    score: ScoreConfig,
    costs: CostTable | None,
    dispatch_costs: CostTable | None,
    measured_quality: dict[str, float] | None,
    granularity: str,
    segments_per_model: int,
    preemptive: bool,
) -> MultiSessionReport:
    """One multi-tenant group, built from plan rows instead of a spec.

    The plan is consumed, not re-derived: session lifetime windows come
    from its session table, the fault schedule from its compiled
    :class:`~repro.runtime.faults.FaultPlan`, and the segment-chain
    codes from its chain table (the simulator verifies them against the
    deterministic re-split).
    """
    if dispatch_costs is None:
        dispatch_costs = CachedCostTable(
            base=costs if costs is not None else CostTable()
        )
    fault_plan = plan.fault_plan()
    simulator = MultiScenarioSimulator(
        sessions=_planned_sessions(rows),
        system=system,
        scheduler=make_scheduler(
            plan.scheduler, **({"preemptive": True} if preemptive else {})
        ),
        duration_s=plan.duration_s,
        costs=dispatch_costs,
        granularity=granularity,
        segments_per_model=segments_per_model,
        dvfs_policy=plan.dvfs_policy,
        admission=plan.admission,
        faults=fault_plan if fault_plan is not None else "none",
        fault_seed=plan.seed,
        segment_plan=(
            plan.chain_codes() if granularity == "segment" else None
        ),
    )
    result = simulator.run()
    scores = score_sessions(result, score, measured_quality)
    reports = tuple(
        ScenarioReport(simulation=session, score=scored)
        for session, scored in zip(result.sessions, scores)
    )
    return MultiSessionReport(result=result, session_reports=reports)


def _planned_suite(
    plan: DispatchPlan,
    system: AcceleratorSystem,
    *,
    score: ScoreConfig,
    costs: CostTable | None,
    sinks: Sequence[EventSink],
) -> BenchmarkReport:
    """The full suite from a plan's per-scenario session rows.

    Mirrors :func:`run_full_suite` exactly: dynamic machinery (churn,
    governors, admission, faults) routes each scenario through the
    multi-tenant engine at whole-model granularity; the static case
    keeps the single-tenant simulator.
    """
    costs = costs if costs is not None else CostTable()
    reports = []
    total = len(plan.sessions)
    for i, row in enumerate(plan.sessions):
        if plan.dynamic:
            group = _planned_group(
                plan, [row], system,
                score=score, costs=costs, dispatch_costs=None,
                measured_quality=None,
                # run_full_suite never forwarded granularity: suite
                # scenarios dispatch whole models.
                granularity="model", segments_per_model=2,
                preemptive=False,
            )
            report = group.session_reports[0]
        else:
            report = run_single_scenario(
                row.scenario, system,
                scheduler=plan.scheduler, duration_s=plan.duration_s,
                seed=row.seed, score=score, frame_loss=row.frame_loss,
                costs=costs,
            )
        emit(sinks, ProgressEvent(
            kind="scenario_finished",
            label=row.scenario,
            index=i,
            total=total,
            payload={"scenario": row.scenario, "overall": report.overall},
        ))
        reports.append(report)
    return BenchmarkReport(system=system, scenario_reports=reports)


def execute_plan(
    plan: DispatchPlan,
    *,
    system: AcceleratorSystem | None = None,
    costs: CostTable | None = None,
    dispatch_costs: CostTable | None = None,
    score: ScoreConfig | None = None,
    measured_quality: dict[str, float] | None = None,
    sinks: Sequence[EventSink] = (),
    index: int = 0,
    total: int = 1,
) -> Report:
    """Execute a compiled :class:`~repro.api.DispatchPlan`.

    The executor half of the planner/executor split: consumes the
    plan's resolved session table, fault schedule, segment-chain table
    and policy bindings without re-deriving them from the spec.  A plan
    round-tripped through :meth:`DispatchPlan.to_json` /
    :meth:`DispatchPlan.from_json` replays to identical results.
    """
    if score is None:
        score = get_score_preset(plan.score_preset)
    if system is None:
        system = build_accelerator(plan.accelerator, plan.pes)
    label = plan.describe()
    emit(sinks, ProgressEvent(
        kind="spec_started", label=label, index=index, total=total,
    ))
    if plan.mode == "suite":
        report: Report = _planned_suite(
            plan, system, score=score, costs=costs, sinks=sinks,
        )
    elif plan.mode == "sessions":
        report = _planned_group(
            plan, plan.sessions, system,
            score=score, costs=costs, dispatch_costs=dispatch_costs,
            measured_quality=measured_quality,
            granularity=plan.granularity,
            segments_per_model=plan.segments_per_model,
            preemptive=plan.preemptive,
        )
    else:
        (row,) = plan.sessions
        report = run_single_scenario(
            row.scenario, system,
            scheduler=plan.scheduler, duration_s=plan.duration_s,
            seed=row.seed, score=score, frame_loss=row.frame_loss,
            costs=costs, measured_quality=measured_quality,
        )
    emit(sinks, ProgressEvent(
        kind="spec_finished", label=label, index=index, total=total,
        payload={"overall": _overall(report)},
    ))
    return report


def _overall(report: Report) -> float:
    """The headline score of any report shape (for progress payloads)."""
    if isinstance(report, BenchmarkReport):
        return report.xrbench_score
    if isinstance(report, MultiSessionReport):
        return report.mean_overall
    return report.overall


def _execute_worker(
    spec_dict: Mapping[str, Any], costs: CostTable | None = None
) -> Report:
    """Process-pool entry point: specs travel as plain dicts.

    The worker re-imports ``repro``, so registries re-bootstrap with the
    built-ins plus anything registered at import time; names registered
    dynamically in the parent resolve here only under the ``fork`` start
    method (see :meth:`Experiment.run`).
    """
    try:
        spec = RunSpec.from_dict(spec_dict)
    except KeyError as exc:
        raise KeyError(
            f"{exc.args[0]} (in a worker process: names registered at "
            f"runtime must come from a module imported in the worker, "
            f"or run with workers=1)"
        ) from None
    return execute(spec, costs=costs)


#: How many serial in-process attempts a sweep cell whose pool worker
#: died (e.g. OOM-killed) gets before the sweep fails.
WORKER_RETRY_LIMIT = 2


def _pooled_result(
    spec: RunSpec,
    future: Any,
    costs: CostTable | None,
    sinks: Sequence[EventSink],
    index: int,
    total: int,
) -> tuple[Report, int]:
    """One pooled cell's report, riding out worker-process deaths.

    A :class:`BrokenProcessPool` means the *worker* died (OOM killer,
    segfaulting native code, a crashed interpreter) — not that the spec
    is invalid — so the cell is retried serially, in this process, up to
    :data:`WORKER_RETRY_LIMIT` times before the sweep fails.  Spec-level
    exceptions (bad names, validation errors) are deterministic and
    re-raise immediately.  Returns ``(report, retries_used)``.
    """
    try:
        return future.result(), 0
    except BrokenProcessPool as exc:
        error: BaseException = exc
    for attempt in range(1, WORKER_RETRY_LIMIT + 1):
        emit(sinks, ProgressEvent(
            kind="spec_retried", label=spec.describe(),
            index=index, total=total,
            payload={"attempt": attempt, "error": type(error).__name__},
        ))
        try:
            return execute(spec, costs=costs), attempt
        except BrokenProcessPool as exc:  # pragma: no cover - defensive
            error = exc
    raise RuntimeError(
        f"spec {spec.describe()!r} failed {WORKER_RETRY_LIMIT + 1} "
        f"times (worker process died); giving up"
    ) from error


@dataclass(frozen=True)
class Experiment:
    """A named, ordered collection of specs executed as one unit.

    Serial runs (``workers=1``) share one :class:`CachedCostTable`, so
    repeated (model, engine, DVFS) pricing across specs is analysed
    once.  ``workers > 1`` fans specs out to a process pool; results
    are returned in spec order and are identical to serial execution
    (each spec is self-contained and carries its own seeds, and any
    caller-supplied ``costs`` table is shipped to the workers).  One
    caveat: scenario/scheduler/accelerator names registered dynamically
    at runtime resolve in pooled workers only under the ``fork``
    process start method — under ``spawn``/``forkserver`` the worker
    re-imports built-ins only, so put custom registrations in an
    imported module or run serially.
    """

    name: str = "experiment"
    specs: tuple[RunSpec, ...] = ()

    def __post_init__(self) -> None:
        if isinstance(self.specs, list):
            object.__setattr__(self, "specs", tuple(self.specs))

    @classmethod
    def from_sweep(cls, sweep: Sweep, name: str = "sweep") -> "Experiment":
        return cls(name=name, specs=tuple(sweep.expand()))

    def __len__(self) -> int:
        return len(self.specs)

    def run(
        self,
        *,
        workers: int = 1,
        sinks: Sequence[EventSink] = (),
        costs: CostTable | None = None,
    ) -> list[Report]:
        """Execute every spec; reports come back in spec order."""
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        specs = list(self.specs)
        total = len(specs)
        emit(sinks, ProgressEvent(
            kind="experiment_started", label=self.name, total=max(total, 1),
            payload={"specs": total, "workers": workers},
        ))
        retried_cells: list[str] = []
        plan_cache_hits: int | None = None
        if workers == 1 or total <= 1:
            shared = CachedCostTable(
                base=costs if costs is not None else CostTable()
            )
            # Plan cache keyed on the workload fingerprint (the spec
            # minus its seed): sweep cells sharing a workload reuse the
            # seed-independent compilation — notably the segment-chain
            # table — instead of recompiling it per cell.
            plans: dict[str, DispatchPlan] = {}
            plan_cache_hits = 0
            reports = []
            for i, spec in enumerate(specs):
                cached = plans.get(workload_fingerprint(spec))
                if cached is not None:
                    plan_cache_hits += 1
                plan = compile_plan(spec, reuse=cached)
                plans[plan.workload_fingerprint] = plan
                reports.append(execute_plan(
                    plan, costs=shared, sinks=sinks, index=i, total=total,
                ))
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = []
                for i, spec in enumerate(specs):
                    # Mirror the serial event stream (workers cannot
                    # emit to parent-side sinks themselves; per-scenario
                    # suite events are the one omission).
                    emit(sinks, ProgressEvent(
                        kind="spec_started", label=spec.describe(),
                        index=i, total=total,
                    ))
                    futures.append(
                        pool.submit(_execute_worker, spec.to_dict(), costs)
                    )
                reports = []
                retried: list[str] = []
                for i, (spec, future) in enumerate(zip(specs, futures)):
                    report, retries = _pooled_result(
                        spec, future, costs, sinks, i, total
                    )
                    if retries:
                        retried.append(spec.describe())
                    emit(sinks, ProgressEvent(
                        kind="spec_finished", label=spec.describe(),
                        index=i, total=total,
                        payload={"overall": _overall(report)},
                    ))
                    reports.append(report)
                retried_cells = retried
        finished_payload: dict[str, Any] = {"specs": total}
        if plan_cache_hits is not None:
            finished_payload["plan_cache_hits"] = plan_cache_hits
        if retried_cells:
            finished_payload["retried"] = retried_cells
        emit(sinks, ProgressEvent(
            kind="experiment_finished", label=self.name,
            index=max(total - 1, 0), total=max(total, 1),
            payload=finished_payload,
        ))
        return reports

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "specs": [spec.to_dict() for spec in self.specs],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Experiment":
        return cls(
            name=data.get("name", "experiment"),
            specs=tuple(
                RunSpec.from_dict(d) for d in data.get("specs", ())
            ),
        )
