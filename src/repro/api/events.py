"""Structured progress events for spec execution.

Long sweeps (13 accelerators x 7 scenarios x seeds) need observable
progress without coupling the funnel to any output device.  The funnel
emits :class:`ProgressEvent` records to every sink passed in; a sink is
anything with an ``emit(event)`` method.  Two are provided:
:class:`CollectingSink` (testing/programmatic) and :class:`StreamSink`
(human-readable lines on a stream, e.g. stderr for the CLI).

Event kinds, in emission order:

* ``experiment_started`` / ``experiment_finished`` — one experiment.
* ``spec_started`` / ``spec_finished`` — one :class:`~repro.api.RunSpec`.
* ``scenario_finished`` — one scenario inside a ``suite=True`` spec.

``payload`` carries kind-specific details (scores, counts, names) as
plain data so sinks can serialize events wholesale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import IO, Any, Iterable, Mapping, Protocol

__all__ = [
    "ProgressEvent",
    "EventSink",
    "CollectingSink",
    "StreamSink",
    "emit",
]


@dataclass(frozen=True)
class ProgressEvent:
    """One step of an executing spec, experiment or suite."""

    kind: str
    label: str = ""
    index: int = 0
    total: int = 1
    payload: Mapping[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        head = f"[{self.index + 1}/{self.total}] {self.kind}"
        if self.label:
            head += f": {self.label}"
        overall = self.payload.get("overall")
        if overall is not None:
            head += f" (overall={overall:.3f})"
        return head


class EventSink(Protocol):
    """Anything that can receive progress events."""

    def emit(self, event: ProgressEvent) -> None: ...


class CollectingSink:
    """Accumulates events in order (tests, programmatic monitoring)."""

    def __init__(self) -> None:
        self.events: list[ProgressEvent] = []

    def emit(self, event: ProgressEvent) -> None:
        self.events.append(event)

    def kinds(self) -> list[str]:
        return [e.kind for e in self.events]


class StreamSink:
    """Writes one human-readable line per event to a text stream."""

    def __init__(self, stream: IO[str]) -> None:
        self.stream = stream

    def emit(self, event: ProgressEvent) -> None:
        self.stream.write(event.describe() + "\n")
        self.stream.flush()


def emit(sinks: Iterable[EventSink], event: ProgressEvent) -> None:
    """Deliver one event to every sink."""
    for sink in sinks:
        sink.emit(event)
