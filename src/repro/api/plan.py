"""The compilation layer: ``compile_plan(spec) -> DispatchPlan``.

A :class:`DispatchPlan` is the frozen, JSON-round-trippable artifact
between "what the user asked for" (a :class:`~repro.api.RunSpec`) and
"what the event loop does" (:mod:`repro.runtime.multisim`).  It holds
the *fully resolved* run:

* the session table — per-session scenario, seed, frame loss and the
  churn-derived ``(arrival_s, departure_s)`` lifetime window, plus the
  resolved ``(start, stop, scenario)`` phase timeline;
* the per-model segment-chain table (which models split under segment
  granularity, and into exactly which dispatch codes);
* the compiled :class:`~repro.runtime.faults.FaultPlan` event schedule;
* the DVFS ladder and policy bindings, the admission policy and its
  resolved control-tick schedule;
* a sha256 ``fingerprint`` over the whole artifact, and a
  ``workload_fingerprint`` over the spec *minus its seed* — the plan
  cache key that lets sweep cells sharing a workload skip
  recompilation (:meth:`repro.api.Experiment.run`).

Planning is pure: compiling never touches a cost table or an engine.
The executor (:func:`repro.api.execute_plan`) consumes the plan —
session windows, fault events and segment-chain codes are *read*, not
re-derived — and the legacy :func:`repro.api.execute` path is exactly
compile-then-execute, pinned bit-identical by the golden schedule
checksums.

``schema/dispatchplan.schema.json`` validates the serialized form;
``xrbench plan`` emits it and ``xrbench plan --diff`` renders
:func:`diff_plans` between two artifacts.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:
    from repro.runtime.faults import FaultPlan

from repro.costmodel import DEFAULT_DVFS_POINTS, CostTable
from repro.hardware import AcceleratorSystem, build_accelerator
from repro.workload import benchmark_suite, churn_windows, get_scenario

from .spec import RunSpec

__all__ = [
    "PLAN_VERSION",
    "DispatchPlan",
    "PlanSession",
    "compile_plan",
    "diff_plans",
    "estimate_plan",
    "workload_fingerprint",
]

#: Bumped whenever the serialized plan layout changes incompatibly.
PLAN_VERSION = 1


def _canonical(data: Any) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def _sha256(data: Any) -> str:
    return hashlib.sha256(_canonical(data).encode("utf-8")).hexdigest()


def workload_fingerprint(spec: RunSpec) -> str:
    """sha256 over the spec *minus its seed* — the plan-cache key.

    Two specs that differ only in ``seed`` describe the same workload:
    their plans share every seed-independent table (notably the
    segment-chain table, the expensive part of compilation), so sweep
    cells keyed equal here reuse a prior cell's compilation.
    """
    data = spec.to_dict()
    data.pop("seed", None)
    return _sha256(data)


@dataclass(frozen=True)
class PlanSession:
    """One resolved session row of the plan's scenario/session table.

    ``timeline`` is the session's active life as ``(start_s, stop_s,
    scenario)`` triples — arrival/departure clipped to the streamed
    duration, one window per phase (specs express a single phase today;
    the shape already covers mid-run scenario swaps).
    """

    session_id: int
    scenario: str
    seed: int
    frame_loss: float = 0.0
    arrival_s: float = 0.0
    departure_s: float | None = None
    timeline: tuple[tuple[float, float, str], ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "session_id": self.session_id,
            "scenario": self.scenario,
            "seed": self.seed,
            "frame_loss": self.frame_loss,
            "arrival_s": self.arrival_s,
            "departure_s": self.departure_s,
            "timeline": [list(w) for w in self.timeline],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlanSession":
        return cls(
            session_id=int(data["session_id"]),
            scenario=str(data["scenario"]),
            seed=int(data["seed"]),
            frame_loss=float(data.get("frame_loss", 0.0)),
            arrival_s=float(data.get("arrival_s", 0.0)),
            departure_s=(
                float(data["departure_s"])
                if data.get("departure_s") is not None
                else None
            ),
            timeline=tuple(
                (float(w[0]), float(w[1]), str(w[2]))
                for w in data.get("timeline", ())
            ),
        )


@dataclass(frozen=True)
class DispatchPlan:
    """A fully resolved run, ready for the executor and for inspection.

    Everything the event loop needs that is derivable from the spec is
    resolved here once: session lifetimes, fault events, segment-chain
    codes, policy bindings.  The plan round-trips through
    :meth:`to_json`/:meth:`from_json` without loss, and
    :func:`repro.api.execute_plan` replays a round-tripped plan to
    bit-identical results.
    """

    spec: RunSpec
    mode: str
    accelerator: str
    pes: int
    num_engines: int
    scheduler: str
    preemptive: bool
    granularity: str
    segments_per_model: int
    duration_s: float
    seed: int
    frame_loss: float
    score_preset: str
    churn: float
    sessions: tuple[PlanSession, ...]
    #: ``(model_code, (piece codes...))`` pairs, in dispatch-planning
    #: order.  Empty under model granularity; models that cannot split
    #: are simply absent (they run whole).
    segment_chains: tuple[tuple[str, tuple[str, ...]], ...] = ()
    #: The compiled :class:`~repro.runtime.faults.FaultPlan` as plain
    #: data, or ``None`` for the fault-free run.
    faults: dict[str, Any] | None = None
    admission: str = "none"
    #: Seconds between admission control ticks (``None`` without a
    #: controller), and the resolved tick schedule the event loop posts.
    admission_period_s: float | None = None
    control_ticks_s: tuple[float, ...] = ()
    dvfs_policy: str = "static"
    #: The operating-point ladder the run's governor (and thermal
    #: clamps) choose from, as ``{"name", "frequency_scale"}`` rows.
    dvfs_ladder: tuple[dict[str, Any], ...] = ()
    version: int = PLAN_VERSION
    fingerprint: str = field(default="", compare=False)
    workload_fingerprint: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.fingerprint:
            object.__setattr__(self, "fingerprint", _sha256(self._content()))
        if not self.workload_fingerprint:
            object.__setattr__(
                self, "workload_fingerprint", workload_fingerprint(self.spec)
            )

    def _content(self) -> dict[str, Any]:
        """The fingerprinted payload: everything but the fingerprints."""
        data = self.to_dict()
        data.pop("fingerprint", None)
        data.pop("workload_fingerprint", None)
        return data

    # -- derived views --------------------------------------------------------

    def chain_codes(self) -> dict[str, tuple[str, ...]]:
        """The segment-chain table as a mapping (executor input)."""
        return dict(self.segment_chains)

    def fault_plan(self) -> FaultPlan | None:
        """The plan's :class:`~repro.runtime.faults.FaultPlan`, or None."""
        if self.faults is None:
            return None
        from repro.runtime.faults import FaultPlan

        return FaultPlan.from_dict(self.faults)

    @property
    def dynamic(self) -> bool:
        """Whether execution needs the multi-tenant machinery per group."""
        return (
            self.churn > 0
            or self.dvfs_policy != "static"
            or self.admission != "none"
            or self.faults is not None
        )

    def describe(self) -> str:
        return self.spec.describe()

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": self.version,
            "spec": self.spec.to_dict(),
            "mode": self.mode,
            "accelerator": self.accelerator,
            "pes": self.pes,
            "num_engines": self.num_engines,
            "scheduler": self.scheduler,
            "preemptive": self.preemptive,
            "granularity": self.granularity,
            "segments_per_model": self.segments_per_model,
            "duration_s": self.duration_s,
            "seed": self.seed,
            "frame_loss": self.frame_loss,
            "score_preset": self.score_preset,
            "churn": self.churn,
            "sessions": [s.to_dict() for s in self.sessions],
            "segment_chains": {
                code: list(codes) for code, codes in self.segment_chains
            },
            "faults": self.faults,
            "admission": self.admission,
            "admission_period_s": self.admission_period_s,
            "control_ticks_s": list(self.control_ticks_s),
            "dvfs_policy": self.dvfs_policy,
            "dvfs_ladder": [dict(p) for p in self.dvfs_ladder],
            "fingerprint": self.fingerprint,
            "workload_fingerprint": self.workload_fingerprint,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DispatchPlan":
        version = int(data.get("version", PLAN_VERSION))
        if version != PLAN_VERSION:
            raise ValueError(
                f"unsupported DispatchPlan version {version}; "
                f"this build reads version {PLAN_VERSION}"
            )
        plan = cls(
            spec=RunSpec.from_dict(data["spec"]),
            mode=str(data["mode"]),
            accelerator=str(data["accelerator"]),
            pes=int(data["pes"]),
            num_engines=int(data["num_engines"]),
            scheduler=str(data["scheduler"]),
            preemptive=bool(data["preemptive"]),
            granularity=str(data["granularity"]),
            segments_per_model=int(data["segments_per_model"]),
            duration_s=float(data["duration_s"]),
            seed=int(data["seed"]),
            frame_loss=float(data.get("frame_loss", 0.0)),
            score_preset=str(data.get("score_preset", "default")),
            churn=float(data.get("churn", 0.0)),
            sessions=tuple(
                PlanSession.from_dict(s) for s in data.get("sessions", ())
            ),
            segment_chains=tuple(
                (str(code), tuple(str(c) for c in codes))
                for code, codes in dict(
                    data.get("segment_chains", {})
                ).items()
            ),
            faults=(
                dict(data["faults"])
                if data.get("faults") is not None
                else None
            ),
            admission=str(data.get("admission", "none")),
            admission_period_s=(
                float(data["admission_period_s"])
                if data.get("admission_period_s") is not None
                else None
            ),
            control_ticks_s=tuple(
                float(t) for t in data.get("control_ticks_s", ())
            ),
            dvfs_policy=str(data.get("dvfs_policy", "static")),
            dvfs_ladder=tuple(
                dict(p) for p in data.get("dvfs_ladder", ())
            ),
            version=version,
        )
        recorded = data.get("fingerprint")
        if recorded and recorded != plan.fingerprint:
            raise ValueError(
                f"plan fingerprint mismatch: the artifact records "
                f"{recorded[:12]}… but its content hashes to "
                f"{plan.fingerprint[:12]}… — the file was edited after "
                f"compilation"
            )
        return plan

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "DispatchPlan":
        return cls.from_dict(json.loads(text))


def _session_rows(
    spec: RunSpec, names: tuple[str, ...]
) -> tuple[PlanSession, ...]:
    """The resolved session table for a sessions-mode spec.

    Mirrors the historical :func:`repro.api.run_session_group` wiring
    exactly: consecutive seeds from ``spec.seed`` and the deterministic
    churn windows seeded by it.
    """
    windows = churn_windows(
        len(names), spec.duration_s, spec.churn, spec.seed
    )
    rows = []
    for i, (name, window) in enumerate(zip(names, windows)):
        end = spec.duration_s
        if window.departure_s is not None:
            end = min(window.departure_s, spec.duration_s)
        rows.append(PlanSession(
            session_id=i,
            scenario=name,
            seed=spec.seed + i,
            frame_loss=spec.frame_loss,
            arrival_s=window.arrival_s,
            departure_s=window.departure_s,
            timeline=((window.arrival_s, end, name),),
        ))
    return tuple(rows)


def _suite_rows(spec: RunSpec) -> tuple[PlanSession, ...]:
    """One row per suite scenario, in suite order.

    Each scenario runs as its own (single-session) group, so the
    ``session_id`` is the within-group id 0 — exactly what the
    historical :func:`repro.api.run_full_suite` wiring produced.  Under
    churn every scenario gets the same one-session window plan (it is
    seeded by the spec seed, not the scenario).
    """
    rows = []
    for scenario in benchmark_suite():
        if spec.churn > 0:
            (window,) = churn_windows(
                1, spec.duration_s, spec.churn, spec.seed
            )
            arrival, departure = window.arrival_s, window.departure_s
        else:
            arrival, departure = 0.0, None
        end = spec.duration_s
        if departure is not None:
            end = min(departure, spec.duration_s)
        rows.append(PlanSession(
            session_id=0,
            scenario=scenario.name,
            seed=spec.seed,
            frame_loss=spec.frame_loss,
            arrival_s=arrival,
            departure_s=departure,
            timeline=((arrival, end, scenario.name),),
        ))
    return tuple(rows)


def _plan_chains(
    spec: RunSpec, names: tuple[str, ...]
) -> tuple[tuple[str, tuple[str, ...]], ...]:
    """The per-model segment-chain code table, in planning order.

    Mirrors ``MultiScenarioSimulator._plan_segments`` — same model
    iteration order, same :func:`split_graph` decisions — but records
    only the *decision* (which models split, into which codes); the
    executor materialises the piece graphs deterministically.
    """
    if spec.granularity != "segment" or spec.segments_per_model < 2:
        return ()
    from repro.runtime.segmentation import dispatch_segment_code, split_graph

    chains: list[tuple[str, tuple[str, ...]]] = []
    seen: set[str] = set()
    for name in names:
        for sm in get_scenario(name).models:
            if sm.code in seen:
                continue
            seen.add(sm.code)
            try:
                pieces = split_graph(sm.model.graph, spec.segments_per_model)
            except ValueError:
                continue
            chains.append((sm.code, tuple(
                dispatch_segment_code(sm.code, idx, len(pieces))
                for idx in range(len(pieces))
            )))
    return tuple(chains)


def compile_plan(
    spec: RunSpec,
    *,
    system: AcceleratorSystem | None = None,
    reuse: DispatchPlan | None = None,
) -> DispatchPlan:
    """Compile a spec into its fully resolved :class:`DispatchPlan`.

    Pure: resolves names, derives session windows, compiles the fault
    schedule and the segment-chain table — no cost-model analysis and
    no execution.  ``system`` substitutes a pre-built accelerator for
    the spec's named one (the same override :func:`repro.api.execute`
    accepts), which matters to the fault plan's engine count.  ``reuse``
    is a previously compiled plan for the *same workload* (equal
    :func:`workload_fingerprint`); its seed-independent segment-chain
    table is adopted instead of being re-derived — the plan-cache fast
    path for sweep cells differing only in seed.
    """
    if system is None:
        system = build_accelerator(spec.accelerator, spec.pes)
    mode = spec.mode
    if mode == "suite":
        rows = _suite_rows(spec)
    elif mode == "sessions":
        names = (
            spec.scenario
            if isinstance(spec.scenario, tuple)
            else (spec.scenario,) * spec.sessions
        )
        rows = _session_rows(spec, names)
    else:
        rows = (PlanSession(
            session_id=0,
            scenario=spec.scenario,
            seed=spec.seed,
            frame_loss=spec.frame_loss,
            timeline=((0.0, spec.duration_s, spec.scenario),),
        ),)

    workload = workload_fingerprint(spec)
    if mode == "sessions":
        if (
            reuse is not None
            and reuse.workload_fingerprint == workload
            and reuse.num_engines == system.num_subs
        ):
            chains = reuse.segment_chains
        else:
            chains = _plan_chains(spec, tuple(r.scenario for r in rows))
    else:
        # The suite path dispatches whole models (run_full_suite never
        # forwarded granularity) and the single path has no chains.
        chains = ()

    faults = None
    if spec.faults != "none":
        from repro.runtime.faults import make_fault_plan

        fplan = make_fault_plan(
            spec.faults, system.num_subs, spec.duration_s, seed=spec.seed
        )
        faults = fplan.to_dict() if fplan is not None else None

    admission_period: float | None = None
    ticks: tuple[float, ...] = ()
    if spec.admission != "none":
        from repro.runtime.admission import make_admission

        controller = make_admission(spec.admission)
        if controller is not None:
            admission_period = controller.period_s
            tick_times = []
            tick = 1
            while tick * controller.period_s < spec.duration_s:
                tick_times.append(tick * controller.period_s)
                tick += 1
            ticks = tuple(tick_times)

    if spec.dvfs_policy != "static":
        from repro.runtime.governor import make_governor

        governor = make_governor(spec.dvfs_policy)
        points = tuple(getattr(governor, "points", DEFAULT_DVFS_POINTS))
    else:
        points = DEFAULT_DVFS_POINTS
    ladder = tuple(
        {"name": p.name, "frequency_scale": p.frequency_scale}
        for p in points
    )

    return DispatchPlan(
        spec=spec,
        mode=mode,
        accelerator=spec.accelerator,
        pes=spec.pes,
        num_engines=system.num_subs,
        scheduler=spec.scheduler,
        preemptive=spec.preemptive,
        granularity=spec.granularity,
        segments_per_model=spec.segments_per_model,
        duration_s=spec.duration_s,
        seed=spec.seed,
        frame_loss=spec.frame_loss,
        score_preset=spec.score_preset,
        churn=spec.churn,
        sessions=rows,
        segment_chains=chains,
        faults=faults,
        admission=spec.admission,
        admission_period_s=admission_period,
        control_ticks_s=ticks,
        dvfs_policy=spec.dvfs_policy,
        dvfs_ladder=ladder,
        workload_fingerprint=workload,
    )


# -- plan diffing -------------------------------------------------------------

_ABSENT = "<absent>"


def diff_plans(a: DispatchPlan, b: DispatchPlan) -> list[dict[str, Any]]:
    """Structured field-by-field differences between two plans.

    Returns ``{"path", "a", "b"}`` entries in depth-first key order —
    empty when the plans are identical.  Lists of unequal length are
    reported as one summary entry instead of element noise, so an A/B
    of two scheduler policies reads as a handful of lines, not a dump.
    """
    entries: list[dict[str, Any]] = []

    def walk(path: str, va: Any, vb: Any) -> None:
        if isinstance(va, dict) and isinstance(vb, dict):
            for key in sorted(set(va) | set(vb)):
                walk(
                    f"{path}.{key}" if path else str(key),
                    va.get(key, _ABSENT),
                    vb.get(key, _ABSENT),
                )
        elif isinstance(va, list) and isinstance(vb, list):
            if len(va) != len(vb):
                entries.append({
                    "path": path,
                    "a": f"<{len(va)} items>",
                    "b": f"<{len(vb)} items>",
                })
            else:
                for i, (xa, xb) in enumerate(zip(va, vb)):
                    walk(f"{path}[{i}]", xa, xb)
        elif va != vb:
            entries.append({"path": path, "a": va, "b": vb})

    walk("", a.to_dict(), b.to_dict())
    return entries


# -- pre-execution cost estimates ---------------------------------------------


def estimate_plan(
    plan: DispatchPlan,
    *,
    costs: CostTable | None = None,
    system: AcceleratorSystem | None = None,
) -> dict[str, Any]:
    """Cost/duration estimates for a compiled plan, before any CPU burns.

    Prices every planned session window through the cost table: each
    model's expected frame count (window x target FPS) times its
    cheapest-engine latency/energy at the nominal operating point.
    ``est_busy_engine_s`` is total engine-busy demand;
    ``est_makespan_s`` divides it across the fleet — a lower bound on
    simulated wall-clock, useful for ranking sweep cells, not a
    schedule.  Passing one shared :class:`~repro.costmodel.CachedCostTable`
    across many plans amortises the per-(model, engine) analysis.
    """
    if system is None:
        system = build_accelerator(plan.accelerator, plan.pes)
    if costs is None:
        from repro.costmodel import CachedCostTable

        costs = CachedCostTable()
    expected_requests = 0
    busy_s = 0.0
    energy_mj = 0.0
    for row in plan.sessions:
        for start, stop, name in row.timeline:
            window = stop - start
            if window <= 0:
                continue
            for sm in get_scenario(name).models:
                frames = int(window * sm.target_fps)
                if frames <= 0:
                    continue
                best = min(
                    (
                        system.engine_cost(costs, sm.code, sub.index)
                        for sub in system.subs
                    ),
                    key=lambda c: c.latency_s,
                )
                expected_requests += frames
                busy_s += frames * best.latency_s
                energy_mj += frames * best.energy_mj
    return {
        "sessions": len(plan.sessions),
        "duration_s": plan.duration_s,
        "expected_requests": expected_requests,
        "est_busy_engine_s": round(busy_s, 9),
        "est_energy_mj": round(energy_mj, 6),
        "est_makespan_s": round(
            busy_s / max(plan.num_engines, 1), 9
        ),
    }
