"""Declarative run descriptions: the serializable front door.

A :class:`RunSpec` is a frozen, JSON-round-trippable description of one
benchmark run — scenario(s) x system x scheduler x sessions x
granularity x duration/seed/score knobs.  Every front end (the Python
API, the ``xrbench`` CLI, the eval figure drivers, benchmarks, and any
future distributed worker) compiles down to a spec and hands it to
:func:`repro.api.execute`; nothing else constructs simulators directly.

A :class:`Sweep` expands a cartesian grid of field values over a base
spec into a list of specs — the serializable form of "13 accelerators x
7 scenarios".  :class:`repro.api.Experiment` executes such lists.

All names inside a spec (scenario, accelerator, scheduler, score preset)
resolve through :mod:`repro.registry`, so constructing a spec validates
them eagerly with did-you-mean errors, and third-party registrations are
usable from JSON without code changes.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import warnings
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro import registry
from repro.core.config import DEFAULT_DURATION_S

__all__ = [
    "ADMISSION_POLICIES",
    "DVFS_POLICIES",
    "FAULT_PROFILES",
    "RunSpec",
    "Sweep",
]

#: Dispatch granularities (mirrors ``repro.runtime.GRANULARITIES``
#: without importing the runtime at spec-construction time).
_GRANULARITIES = ("model", "segment")

#: Upper bound of the churn knob (mirrors ``repro.workload.MAX_CHURN``):
#: arrivals and departures each fray over ``churn * duration`` seconds,
#: and past one half the two bands would overlap.
_MAX_CHURN = 0.5

#: Runtime DVFS governor policies (mirrors
#: ``repro.runtime.DVFS_POLICIES`` without importing the runtime at
#: spec-construction time; a test pins the two — and the JSON-schema
#: enum — to each other).  Public: the CLI and benchmarks read their
#: ``--dvfs`` choices from here.
DVFS_POLICIES = ("static", "slack", "race_to_idle")

#: QoE admission-control policies (mirrors
#: ``repro.runtime.ADMISSION_POLICIES`` without importing the runtime at
#: spec-construction time; a test pins the two — and the JSON-schema
#: enum — to each other).  Public: the CLI and benchmarks read their
#: ``--admission`` choices from here.
ADMISSION_POLICIES = ("none", "shed", "degrade")

#: Fault-injection profiles (mirrors
#: ``repro.runtime.FAULT_PROFILES`` without importing the runtime at
#: spec-construction time; a test pins the two — and the JSON-schema
#: enum — to each other).  Public: the CLI and benchmarks read their
#: ``--faults`` choices from here.
FAULT_PROFILES = ("none", "single", "flaky", "thermal")


@dataclass(frozen=True)
class RunSpec:
    """One benchmark run, declaratively.

    ``scenario`` is a registered scenario name, a tuple of per-session
    names (which fixes the session count), or ``None`` for a
    ``suite=True`` spec.  All other fields are plain JSON scalars; the
    whole spec round-trips through :meth:`to_dict`/:meth:`from_dict` and
    :meth:`to_json`/:meth:`from_json` without loss.
    """

    scenario: str | tuple[str, ...] | None = None
    accelerator: str = "J"
    pes: int = 4096
    scheduler: str = "latency_greedy"
    suite: bool = False
    sessions: int = 1
    granularity: str = "model"
    segments_per_model: int = 2
    duration_s: float = DEFAULT_DURATION_S
    seed: int = 0
    frame_loss: float = 0.0
    score_preset: str = "default"
    #: Session-churn intensity: arrivals spread over the first
    #: ``churn * duration_s`` seconds and departures over the last, via
    #: the deterministic plan in :func:`repro.workload.churn_windows`.
    #: 0 (the default) is the static all-alive case.
    churn: float = 0.0
    #: Deadline-aware segment preemption: at segment boundaries the
    #: scheduler may displace a resuming segment chain with more urgent
    #: waiting work.  Requires ``granularity="segment"`` (the only place
    #: preemption points exist) and a policy that implements the
    #: ``should_preempt`` hook (edf, rate_monotonic).
    preemptive: bool = False
    #: Runtime DVFS governor: ``"static"`` (the default — every dispatch
    #: at the engine's configured point, bit-identical to the historical
    #: runtime), ``"slack"`` (spend deadline slack on slower, cheaper
    #: operating points per dispatch) or ``"race_to_idle"`` (always the
    #: fastest ladder point).
    dvfs_policy: str = "static"
    #: QoE admission control: ``"none"`` (the default — open loop,
    #: bit-identical to the historical runtime), ``"shed"``
    #: (reject/drop lowest-priority sessions under overload) or
    #: ``"degrade"`` (switch struggling sessions' models to cheaper
    #: variants mid-run, driven by the observed deadline-miss EWMA).
    admission: str = "none"
    #: Fault injection: ``"none"`` (the default — no fault machinery,
    #: bit-identical to the historical runtime), ``"single"`` (one
    #: engine dies mid-run and recovers late), ``"flaky"`` (three short
    #: outages on varying engines) or ``"thermal"`` (one engine hits a
    #: DVFS ceiling mid-run and later cools off).  The event timeline is
    #: deterministic from ``(faults, seed)`` and the plan is compiled —
    #: and capacity-validated — at spec construction.
    faults: str = "none"

    def __post_init__(self) -> None:
        scenario = self.scenario
        if isinstance(scenario, list):
            scenario = tuple(scenario)
            object.__setattr__(self, "scenario", scenario)
        if self.suite:
            if scenario is not None:
                raise ValueError(
                    "suite specs run the full scenario suite; "
                    f"drop scenario={scenario!r} or set suite=False"
                )
        else:
            if scenario is None:
                raise ValueError(
                    "a scenario name (or tuple of names) is required "
                    "unless suite=True"
                )
        if isinstance(scenario, tuple):
            if not scenario:
                raise ValueError("scenario tuple must not be empty")
            if self.sessions == 1:
                object.__setattr__(self, "sessions", len(scenario))
            elif self.sessions != len(scenario):
                raise ValueError(
                    f"sessions={self.sessions} contradicts the "
                    f"{len(scenario)} per-session scenario names"
                )
        if self.sessions < 1:
            raise ValueError(f"sessions must be >= 1, got {self.sessions}")
        if self.pes < 1:
            raise ValueError(f"pes must be >= 1, got {self.pes}")
        if self.granularity not in _GRANULARITIES:
            raise ValueError(
                f"granularity must be one of {_GRANULARITIES}, "
                f"got {self.granularity!r}"
            )
        if self.segments_per_model < 1:
            raise ValueError(
                f"segments_per_model must be >= 1, "
                f"got {self.segments_per_model}"
            )
        if self.duration_s <= 0:
            raise ValueError(
                f"duration_s must be > 0, got {self.duration_s}"
            )
        if self.seed < 0:
            raise ValueError(f"seed must be >= 0, got {self.seed}")
        if not 0.0 <= self.frame_loss < 1.0:
            raise ValueError(
                f"frame_loss must be in [0, 1), got {self.frame_loss}"
            )
        if not 0.0 <= self.churn <= _MAX_CHURN:
            raise ValueError(
                f"churn must be in [0, {_MAX_CHURN}], got {self.churn}"
            )
        if self.dvfs_policy not in DVFS_POLICIES:
            raise ValueError(
                f"dvfs_policy must be one of {DVFS_POLICIES}, "
                f"got {self.dvfs_policy!r}"
            )
        if self.admission not in ADMISSION_POLICIES:
            raise ValueError(
                f"admission must be one of {ADMISSION_POLICIES}, "
                f"got {self.admission!r}"
            )
        if self.faults not in FAULT_PROFILES:
            raise ValueError(
                f"faults must be one of {FAULT_PROFILES}, "
                f"got {self.faults!r}"
            )
        # Resolve every name through the registries so typos fail at
        # construction time with did-you-mean errors, not mid-run.
        for name in self.scenario_names():
            registry.scenarios.get(name)
        scheduler_cls = registry.schedulers.get(self.scheduler)
        accelerator_factory = registry.accelerators.get(self.accelerator)
        registry.score_presets.get(self.score_preset)
        if self.faults != "none":
            # Compile the seeded fault plan now: a profile whose outage
            # windows would fail every engine of this accelerator
            # simultaneously (e.g. "single" on a one-engine system) is
            # rejected here, at spec-compile time, with the plan's
            # no-capacity error instead of stalling mid-run.  Lazy
            # import keeps the runtime off the spec module's import
            # path.
            from repro.runtime.faults import make_fault_plan

            system = accelerator_factory(self.pes)
            make_fault_plan(
                self.faults, system.num_subs, self.duration_s,
                seed=self.seed,
            )
        if self.preemptive:
            # Preemption only ever acts at segment boundaries; accepting
            # it elsewhere would be a silent no-op.
            if self.suite or self.granularity != "segment":
                raise ValueError(
                    "preemptive=True only acts at segment boundaries; "
                    "set granularity='segment' (and drop suite=True)"
                )
            if not callable(
                getattr(scheduler_cls, "should_preempt", None)
            ):
                raise ValueError(
                    f"preemptive=True needs a scheduler with a "
                    f"should_preempt hook; {self.scheduler!r} has none "
                    f"(edf and rate_monotonic do)"
                )

    # -- derived views --------------------------------------------------------

    def scenario_names(self) -> tuple[str, ...]:
        """The distinct scenario names this spec mentions (empty for suite)."""
        if self.scenario is None:
            return ()
        if isinstance(self.scenario, tuple):
            return self.scenario
        return (self.scenario,)

    @property
    def mode(self) -> str:
        """How :func:`repro.api.execute` will route this spec.

        ``"suite"`` -> :class:`~repro.core.BenchmarkReport`;
        ``"sessions"`` -> :class:`~repro.core.MultiSessionReport`;
        ``"single"`` -> :class:`~repro.core.ScenarioReport`.
        """
        if self.suite:
            return "suite"
        if (
            isinstance(self.scenario, tuple)
            or self.sessions > 1
            or self.granularity != "model"  # includes every preemptive spec
            or self.churn > 0
            or self.dvfs_policy != "static"  # governors live in multisim
            or self.admission != "none"  # controllers live in multisim
            or self.faults != "none"  # fault machinery lives in multisim
        ):
            return "sessions"
        return "single"

    def describe(self) -> str:
        """One-line human-readable label (used by progress sinks)."""
        if self.suite:
            what = "suite"
        elif isinstance(self.scenario, tuple):
            what = "+".join(self.scenario)
        else:
            what = self.scenario
        extra = ""
        if self.sessions > 1:
            extra += f" x{self.sessions}"
        if self.granularity != "model":
            extra += f" [{self.granularity}]"
        if self.churn > 0:
            extra += f" churn={self.churn:g}"
        if self.preemptive:
            extra += " preemptive"
        if self.dvfs_policy != "static":
            extra += f" dvfs={self.dvfs_policy}"
        if self.admission != "none":
            extra += f" admission={self.admission}"
        if self.faults != "none":
            extra += f" faults={self.faults}"
        return (
            f"{what}{extra} on {self.accelerator}@{self.pes}PE "
            f"({self.scheduler}, {self.duration_s}s, seed {self.seed})"
        )

    def replace(self, **changes: Any) -> "RunSpec":
        """A copy with fields replaced (re-validated)."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def for_suite(cls, accelerator: str = "J", **kwargs: Any) -> "RunSpec":
        """A full seven-scenario suite spec."""
        return cls(suite=True, accelerator=accelerator, **kwargs)

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form: JSON scalars only, field order preserved."""
        out: dict[str, Any] = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = list(value)
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSpec":
        """Rebuild a spec from :meth:`to_dict` output (strict keys)."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown RunSpec fields {unknown}; known: {sorted(known)}"
            )
        return cls(**dict(data))

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class Sweep:
    """A cartesian grid of :class:`RunSpec` variations over a base spec.

    ``grid`` maps RunSpec field names to the values to sweep, e.g.::

        Sweep(
            base=RunSpec(scenario="ar_gaming"),
            grid={"scenario": ("ar_gaming", "vr_gaming"),
                  "accelerator": ("A", "J")},
        )

    :meth:`expand` yields one validated spec per grid point, varying the
    *last* grid field fastest (``itertools.product`` order), so sweeps
    are deterministic and resumable by index.
    """

    base: RunSpec
    grid: Any = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        pairs = tuple(
            (name, tuple(values)) for name, values in dict(self.grid).items()
        )
        known = {f.name for f in dataclasses.fields(RunSpec)}
        for name, values in pairs:
            if name not in known:
                raise ValueError(
                    f"grid field {name!r} is not a RunSpec field; "
                    f"known: {sorted(known)}"
                )
            if not values:
                raise ValueError(f"grid field {name!r} has no values")
        object.__setattr__(self, "grid", pairs)

    def __len__(self) -> int:
        total = 1
        for _, values in self.grid:
            total *= len(values)
        return total

    def expand(self) -> list[RunSpec]:
        """All *distinct* grid points as specs, first occurrence kept.

        Overlapping axis values (``{"seed": (0, 0, 1)}``, or two axes
        that collapse to the same spec) would otherwise execute — and
        plan-cache — identical cells repeatedly; duplicates are dropped
        with a :class:`UserWarning` naming the count.  ``len(sweep)``
        still counts raw grid points.
        """
        if not self.grid:
            return [self.base]
        names = [name for name, _ in self.grid]
        out: list[RunSpec] = []
        seen: set[RunSpec] = set()
        duplicates = 0
        for combo in itertools.product(*(values for _, values in self.grid)):
            spec = self.base.replace(**dict(zip(names, combo)))
            if spec in seen:
                duplicates += 1
                continue
            seen.add(spec)
            out.append(spec)
        if duplicates:
            warnings.warn(
                f"sweep grid has overlapping axis values: dropped "
                f"{duplicates} duplicate cell(s) of {len(self)} "
                f"grid points",
                stacklevel=2,
            )
        return out

    def __iter__(self) -> Iterable[RunSpec]:
        return iter(self.expand())

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "base": self.base.to_dict(),
            "grid": {
                name: list(values) for name, values in self.grid
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Sweep":
        return cls(
            base=RunSpec.from_dict(data["base"]),
            grid=data.get("grid", {}),
        )

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Sweep":
        return cls.from_dict(json.loads(text))
