"""Command-line interface: ``xrbench``.

Subcommands:

* ``run`` — run one scenario on one accelerator and print the report.
* ``suite`` — run the full seven-scenario suite on one accelerator.
* ``figure5`` / ``figure6`` / ``figure7`` / ``figure8`` — regenerate the
  paper's evaluation figures as text tables.
* ``tables`` — print the definitional tables (1, 2, 3, 5, 6, 7).
* ``models`` — per-model layer summaries and cost-model estimates.
* ``ablations`` / ``pareto`` / ``stats`` — design-choice ablations,
  Pareto-frontier analysis and multi-seed statistics.
* ``export`` — suite results as a submission payload, JSON or CSV.
"""

from __future__ import annotations

import argparse
import sys

from repro.core import Harness, HarnessConfig
from repro.costmodel import CostTable, Dataflow
from repro.hardware import ACCELERATOR_IDS, build_accelerator
from repro.workload import SCENARIO_ORDER, UNIT_MODELS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="xrbench",
        description="XRBench (MLSys 2023) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--pes", type=int, default=4096,
            help="total PE budget (default 4096)",
        )
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--duration", type=float, default=1.0,
            help="streamed seconds per run (default 1.0)",
        )
        p.add_argument(
            "--scheduler", default="latency_greedy",
            choices=["latency_greedy", "round_robin", "edf",
                     "rate_monotonic"],
        )
        p.add_argument(
            "--frame-loss", type=float, default=0.0,
            help="failure injection: sensor frame-loss probability",
        )

    run_p = sub.add_parser("run", help="run one scenario on one accelerator")
    run_p.add_argument("scenario", choices=list(SCENARIO_ORDER))
    run_p.add_argument("accelerator", choices=list(ACCELERATOR_IDS))
    run_p.add_argument("--timeline", action="store_true",
                       help="print the execution timeline")
    run_p.add_argument(
        "--sessions", type=int, default=1,
        help="concurrent tenant sessions multiplexed onto the system "
             "(distinct seeds; default 1)",
    )
    run_p.add_argument(
        "--granularity", default="model", choices=["model", "segment"],
        help="dispatch whole models, or split models at segment "
             "boundaries so long inferences yield engines (default model)",
    )
    run_p.add_argument(
        "--segments", type=int, default=2,
        help="target segments per model at --granularity segment "
             "(default 2)",
    )
    add_common(run_p)

    suite_p = sub.add_parser("suite", help="run the full scenario suite")
    suite_p.add_argument("accelerator", choices=list(ACCELERATOR_IDS))
    add_common(suite_p)

    fig5_p = sub.add_parser("figure5", help="regenerate Figure 5")
    fig5_p.add_argument(
        "--metric", default="overall",
        choices=["rt", "energy", "qoe", "overall"],
    )
    add_common(fig5_p)

    fig6_p = sub.add_parser("figure6", help="regenerate Figure 6")
    fig6_p.add_argument("--accelerator", default="J",
                        choices=list(ACCELERATOR_IDS))
    add_common(fig6_p)

    fig7_p = sub.add_parser("figure7", help="regenerate Figure 7")
    fig7_p.add_argument("--trials", type=int, default=200)
    add_common(fig7_p)

    sub.add_parser("figure8", help="regenerate Figure 8")

    tables_p = sub.add_parser("tables", help="print definitional tables")
    tables_p.add_argument(
        "--which", default="all",
        choices=["1", "2", "3", "5", "6", "7", "all"],
    )

    models_p = sub.add_parser("models", help="model summaries and costs")
    models_p.add_argument("--code", choices=list(UNIT_MODELS), default=None)
    models_p.add_argument("--pes", type=int, default=4096)

    ablate_p = sub.add_parser("ablations", help="design-choice ablations")
    ablate_p.add_argument(
        "--which", default="all",
        choices=["scheduler", "jitter", "k", "enmax", "dvfs",
                 "quantization", "all"],
    )

    sub.add_parser(
        "observations",
        help="verify the paper's Section 4 claims against this build",
    )

    pareto_p = sub.add_parser(
        "pareto", help="Pareto frontier over accelerator designs"
    )
    pareto_p.add_argument("--pes", type=int, default=4096)

    stats_p = sub.add_parser(
        "stats", help="multi-seed statistics for a dynamic scenario"
    )
    stats_p.add_argument("scenario", choices=list(SCENARIO_ORDER))
    stats_p.add_argument("accelerator", choices=list(ACCELERATOR_IDS))
    stats_p.add_argument("--seeds", type=int, default=20)
    add_common(stats_p)

    export_p = sub.add_parser(
        "export", help="suite results as JSON submission or CSV"
    )
    export_p.add_argument("accelerator", choices=list(ACCELERATOR_IDS))
    export_p.add_argument("--format", default="submission",
                          choices=["submission", "json", "csv"])
    export_p.add_argument("--breakdowns", action="store_true")
    add_common(export_p)

    return parser


def _harness(args: argparse.Namespace) -> Harness:
    return Harness(
        config=HarnessConfig(
            duration_s=args.duration,
            seed=args.seed,
            scheduler=args.scheduler,
            frame_loss_probability=getattr(args, "frame_loss", 0.0),
        )
    )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "run":
        harness = _harness(args)
        system = build_accelerator(args.accelerator, args.pes)
        if args.sessions < 1:
            print(f"--sessions must be >= 1, got {args.sessions}",
                  file=sys.stderr)
            return 2
        if args.segments < 1:
            print(f"--segments must be >= 1, got {args.segments}",
                  file=sys.stderr)
            return 2
        if args.sessions > 1 or args.granularity != "model":
            multi = harness.run_sessions(
                args.scenario,
                system,
                num_sessions=args.sessions,
                granularity=args.granularity,
                segments_per_model=args.segments,
            )
            print(multi.summary())
            if args.timeline:
                from repro.runtime import render_timeline

                for session in multi.result.sessions:
                    print(f"-- session {session.session_id} --")
                    print(render_timeline(session))
            return 0
        report = harness.run_scenario(args.scenario, system)
        print(report.summary())
        if args.timeline:
            print(report.timeline())
        return 0

    if args.command == "suite":
        harness = _harness(args)
        system = build_accelerator(args.accelerator, args.pes)
        print(harness.run_suite(system).summary())
        return 0

    if args.command == "figure5":
        from repro.eval import format_figure5, run_figure5

        rows = run_figure5(_harness(args))
        print(format_figure5(rows, args.metric))
        return 0

    if args.command == "figure6":
        from repro.eval import format_figure6, run_figure6

        print(format_figure6(run_figure6(_harness(args), args.accelerator)))
        return 0

    if args.command == "figure7":
        from repro.eval import format_figure7, run_figure7

        print(format_figure7(run_figure7(_harness(args), trials=args.trials)))
        return 0

    if args.command == "figure8":
        from repro.eval import format_figure8, run_figure8

        print(format_figure8(run_figure8()))
        return 0

    if args.command == "tables":
        from repro.eval import table1, table2, table3, table5, table6, table7

        tables = {"1": table1, "2": table2, "3": table3, "5": table5,
                  "6": table6, "7": table7}
        which = tables.keys() if args.which == "all" else [args.which]
        print("\n\n".join(tables[w]() for w in which))
        return 0

    if args.command == "models":
        costs = CostTable()
        codes = [args.code] if args.code else list(UNIT_MODELS)
        for code in codes:
            model = UNIT_MODELS[code]
            graph = model.graph
            print(
                f"{code} ({model.task}): {graph.total_macs / 1e9:.2f} GMACs, "
                f"{graph.total_params / 1e6:.2f} M params, "
                f"{graph.num_layers} layers"
            )
            for df in Dataflow:
                c = costs.cost(code, df, args.pes)
                print(
                    f"  {df.value}@{args.pes}PE: {c.latency_ms:7.2f} ms, "
                    f"{c.energy_mj:7.1f} mJ, util {c.utilization:.1%}"
                )
        return 0

    if args.command == "ablations":
        from repro.eval import (
            dvfs_ablation,
            enmax_sensitivity,
            jitter_ablation,
            quantization_ablation,
            rt_k_sensitivity,
            scheduler_ablation,
        )

        costs = CostTable()
        which = args.which
        if which in ("scheduler", "all"):
            print("scheduler ablation (ar_gaming, J@8K):")
            for r in scheduler_ablation(costs):
                print(f"  {r.setting:<16s} overall={r.overall:.3f} "
                      f"rt={r.rt:.3f} qoe={r.qoe:.3f}")
        if which in ("jitter", "all"):
            mean, spread = jitter_ablation(costs)
            print("jitter ablation (social_interaction_a, A@4K):")
            print(f"  mean overall={mean.overall:.3f}; "
                  f"seed spread={spread.overall:.4f}")
        if which in ("k", "all"):
            print("RT-score k sensitivity (ar_gaming, J@8K):")
            for r in rt_k_sensitivity(costs):
                print(f"  {r.setting:<8s} overall={r.overall:.3f} "
                      f"rt={r.rt:.3f}")
        if which in ("enmax", "all"):
            print("Enmax sensitivity (ar_assistant, C@4K):")
            for r in enmax_sensitivity(costs):
                print(f"  {r.setting:<16s} overall={r.overall:.3f}")
        if which in ("dvfs", "all"):
            print("slack-aware DVFS (WS@4K):")
            for code, row in dvfs_ablation(costs).items():
                print(f"  {code}: f={row['chosen_frequency']:.1f} "
                      f"saving={row['energy_saving']:+.1%}")
        if which in ("quantization", "all"):
            print("weight quantisation (numpy engine):")
            for code, by_bits in quantization_ablation().items():
                for bits, row in by_bits.items():
                    print(f"  {code} int{bits}: "
                          f"acc_score={row['accuracy_score']:.3f} "
                          f"meets_goal={bool(row['meets_goal'])}")
        return 0

    if args.command == "observations":
        from repro.eval import format_observations, verify_observations

        observations = verify_observations()
        print(format_observations(observations))
        return 0 if all(o.holds for o in observations) else 1

    if args.command == "pareto":
        from repro.eval import evaluate_designs, pareto_frontier

        points = evaluate_designs(total_pes=args.pes)
        frontier = {p.acc_id for p in pareto_frontier(points)}
        print(f"Design space at {args.pes} PEs "
              f"(score / mean energy / mean drops):")
        for p in sorted(points, key=lambda p: -p.xrbench_score):
            marker = "*" if p.acc_id in frontier else " "
            print(f" {marker} {p.acc_id}  {p.xrbench_score:.3f}  "
                  f"{p.mean_energy_mj:7.1f} mJ  {p.mean_drop_rate:6.1%}")
        print("(* = Pareto-optimal)")
        return 0

    if args.command == "stats":
        from repro.eval import run_seed_sweep

        harness = _harness(args)
        system = build_accelerator(args.accelerator, args.pes)
        sweep = run_seed_sweep(harness, args.scenario, system,
                               seeds=args.seeds)
        print(sweep.describe())
        return 0

    if args.command == "export":
        from repro.core import benchmark_to_dict, submission, to_csv

        harness = _harness(args)
        report = harness.run_suite(
            build_accelerator(args.accelerator, args.pes)
        )
        if args.format == "submission":
            print(submission(report, include_breakdowns=args.breakdowns))
        elif args.format == "json":
            import json

            print(json.dumps(benchmark_to_dict(report), indent=2))
        else:
            print(to_csv(report), end="")
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
