"""Command-line interface: ``xrbench``.

Every executing subcommand parses its flags into a single declarative
:class:`repro.api.RunSpec` and runs it through the one
:func:`repro.api.execute` funnel — the CLI is a spec compiler, not a
second execution path.

Subcommands:

* ``run`` — run one scenario (or a spec file via ``--spec``) and print
  the report.
* ``suite`` — run the full seven-scenario suite on one accelerator.
* ``plan`` — compile a spec into its frozen
  :class:`repro.api.DispatchPlan` artifact (JSON, validated in CI
  against ``schema/dispatchplan.schema.json``) without executing
  anything; ``--diff A.json B.json`` renders a structured
  field-by-field diff between two compiled plans.
* ``sweep`` — expand a cartesian scenario x accelerator grid and run it
  (optionally on worker processes); ``--dry-run`` emits the expanded
  specs plus per-cell plan fingerprints and cost/duration estimates
  from the compiled plans, as JSON for external runners (validated in
  CI against ``schema/runspec.schema.json``).
* ``figure5`` / ``figure6`` / ``figure7`` / ``figure8`` — regenerate the
  paper's evaluation figures as text tables.
* ``tables`` — print the definitional tables (1, 2, 3, 5, 6, 7).
* ``models`` — per-model layer summaries and cost-model estimates.
* ``ablations`` / ``pareto`` / ``stats`` — design-choice ablations,
  Pareto-frontier analysis and multi-seed statistics.
* ``export`` — suite results as a submission payload, JSON or CSV.
* ``report`` — render the persistent run database (``--record`` on the
  executing subcommands appends to it) as markdown or HTML, including
  the QoE/throughput/energy Pareto frontier across admission policies.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.api import (
    ADMISSION_POLICIES,
    DVFS_POLICIES,
    FAULT_PROFILES,
    Experiment,
    RunSpec,
    StreamSink,
    Sweep,
    execute,
)
from repro.core import Harness, HarnessConfig
from repro.costmodel import CostTable, Dataflow
from repro.hardware import ACCELERATOR_IDS
from repro.lint.cli import add_lint_arguments, run as run_lint_command
from repro.workload import SCENARIO_ORDER, UNIT_MODELS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="xrbench",
        description="XRBench (MLSys 2023) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Flags default to None so "not passed" is distinguishable from
    # "passed the default value": _spec_from_args fills in the RunSpec
    # defaults, and `run --spec` treats any explicitly-passed flag as an
    # override of the corresponding spec field.
    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--pes", type=int, default=None,
            help="total PE budget (default 4096)",
        )
        p.add_argument("--seed", type=int, default=None)
        p.add_argument(
            "--duration", type=float, default=None,
            help="streamed seconds per run (default 1.0)",
        )
        p.add_argument(
            "--scheduler", default=None,
            choices=["latency_greedy", "round_robin", "edf",
                     "rate_monotonic"],
        )
        p.add_argument(
            "--frame-loss", type=float, default=None,
            help="failure injection: sensor frame-loss probability",
        )
        p.add_argument(
            "--score-preset", default=None,
            help="named scoring preset (default 'default')",
        )

    def add_dynamics(p: argparse.ArgumentParser) -> None:
        """Session-churn and DVFS flags (run/suite/sweep/export)."""
        p.add_argument(
            "--churn", type=float, default=None, metavar="F",
            help="session churn: arrivals spread over the first F and "
                 "departures over the last F fraction of the duration "
                 "(0..0.5; default 0 = static sessions)",
        )
        p.add_argument(
            "--dvfs", default=None, choices=list(DVFS_POLICIES),
            help="runtime DVFS governor: static (default; fixed "
                 "per-engine operating points), slack (spend deadline "
                 "slack on slower, cheaper points per dispatch) or "
                 "race_to_idle (always the fastest point)",
        )
        p.add_argument(
            "--admission", default=None, choices=list(ADMISSION_POLICIES),
            help="QoE admission controller: none (default), shed "
                 "(reject/drop lowest-priority sessions under overload) "
                 "or degrade (switch struggling sessions to cheaper "
                 "model variants mid-run)",
        )
        p.add_argument(
            "--faults", default=None, choices=list(FAULT_PROFILES),
            help="fault-injection profile: none (default), single (one "
                 "engine dies mid-run and recovers late), flaky (three "
                 "short outages on varying engines) or thermal (one "
                 "engine hits a DVFS ceiling mid-run); the event "
                 "timeline is deterministic from (profile, seed)",
        )
        p.add_argument(
            "--record", nargs="?", const="runs/runs.jsonl", default=None,
            metavar="DB.jsonl",
            help="append this run's metrics to the JSON-lines run "
                 "database (default path runs/runs.jsonl); render it "
                 "later with 'xrbench report'",
        )

    run_p = sub.add_parser("run", help="run one scenario on one accelerator")
    run_p.add_argument("scenario", nargs="?", default=None,
                       choices=list(SCENARIO_ORDER))
    run_p.add_argument("accelerator", nargs="?", default=None,
                       choices=list(ACCELERATOR_IDS))
    run_p.add_argument(
        "--spec", default=None, metavar="SPEC.json",
        help="load the RunSpec from a JSON file (mutually exclusive with "
             "the positionals); flags set to non-default values override "
             "the corresponding spec fields",
    )
    run_p.add_argument("--timeline", action="store_true",
                       help="print the execution timeline")
    run_p.add_argument(
        "--sessions", type=int, default=None,
        help="concurrent tenant sessions multiplexed onto the system "
             "(distinct seeds; default 1)",
    )
    run_p.add_argument(
        "--granularity", default=None, choices=["model", "segment"],
        help="dispatch whole models, or split models at segment "
             "boundaries so long inferences yield engines (default model)",
    )
    run_p.add_argument(
        "--segments", type=int, default=None,
        help="target segments per model at --granularity segment "
             "(default 2)",
    )
    run_p.add_argument(
        "--preemptive", action="store_const", const=True, default=None,
        help="deadline-aware segment preemption at segment boundaries "
             "(needs --granularity segment and --scheduler edf or "
             "rate_monotonic)",
    )
    add_common(run_p)
    add_dynamics(run_p)

    suite_p = sub.add_parser("suite", help="run the full scenario suite")
    suite_p.add_argument("accelerator", choices=list(ACCELERATOR_IDS))
    add_common(suite_p)
    add_dynamics(suite_p)

    plan_p = sub.add_parser(
        "plan",
        help="compile a spec into its DispatchPlan artifact, or diff two "
             "compiled plans",
    )
    plan_p.add_argument("scenario", nargs="?", default=None,
                        choices=list(SCENARIO_ORDER))
    plan_p.add_argument("accelerator", nargs="?", default=None,
                        choices=list(ACCELERATOR_IDS))
    plan_p.add_argument(
        "--spec", default=None, metavar="SPEC.json",
        help="load the RunSpec from a JSON file (mutually exclusive with "
             "the positionals); flags set to non-default values override "
             "the corresponding spec fields",
    )
    plan_p.add_argument(
        "--diff", nargs=2, default=None, metavar=("A.json", "B.json"),
        help="render a structured field-by-field diff between two "
             "compiled plan artifacts instead of compiling one",
    )
    plan_p.add_argument(
        "--json", action="store_true",
        help="with --diff: emit the diff entries as a JSON array",
    )
    plan_p.add_argument(
        "--output", default=None, metavar="PLAN.json",
        help="write the compiled plan here instead of stdout",
    )
    plan_p.add_argument("--sessions", type=int, default=None)
    plan_p.add_argument("--granularity", default=None,
                        choices=["model", "segment"])
    plan_p.add_argument("--segments", type=int, default=None)
    plan_p.add_argument("--preemptive", action="store_const", const=True,
                        default=None)
    add_common(plan_p)
    add_dynamics(plan_p)

    sweep_p = sub.add_parser(
        "sweep", help="run a cartesian scenario x accelerator grid"
    )
    sweep_p.add_argument(
        "--scenario", action="append", choices=list(SCENARIO_ORDER),
        help="repeatable; default: the full seven-scenario order",
    )
    sweep_p.add_argument(
        "--accelerator", action="append", choices=list(ACCELERATOR_IDS),
        help="repeatable; default: J",
    )
    sweep_p.add_argument(
        "--workers", type=int, default=1,
        help="process-pool workers (default 1: serial, shared cost cache)",
    )
    sweep_p.add_argument(
        "--dry-run", action="store_true",
        help="emit the expanded specs as JSON instead of executing",
    )
    sweep_p.add_argument(
        "--progress", action="store_true",
        help="stream per-spec progress events to stderr",
    )
    add_common(sweep_p)
    add_dynamics(sweep_p)

    fig5_p = sub.add_parser("figure5", help="regenerate Figure 5")
    fig5_p.add_argument(
        "--metric", default="overall",
        choices=["rt", "energy", "qoe", "overall"],
    )
    add_common(fig5_p)

    fig6_p = sub.add_parser("figure6", help="regenerate Figure 6")
    fig6_p.add_argument("--accelerator", default="J",
                        choices=list(ACCELERATOR_IDS))
    add_common(fig6_p)

    fig7_p = sub.add_parser("figure7", help="regenerate Figure 7")
    fig7_p.add_argument("--trials", type=int, default=200)
    add_common(fig7_p)

    sub.add_parser("figure8", help="regenerate Figure 8")

    tables_p = sub.add_parser("tables", help="print definitional tables")
    tables_p.add_argument(
        "--which", default="all",
        choices=["1", "2", "3", "5", "6", "7", "all"],
    )

    models_p = sub.add_parser("models", help="model summaries and costs")
    models_p.add_argument("--code", choices=list(UNIT_MODELS), default=None)
    models_p.add_argument("--pes", type=int, default=4096)

    ablate_p = sub.add_parser("ablations", help="design-choice ablations")
    ablate_p.add_argument(
        "--which", default="all",
        choices=["scheduler", "jitter", "k", "enmax", "dvfs",
                 "quantization", "all"],
    )

    sub.add_parser(
        "observations",
        help="verify the paper's Section 4 claims against this build",
    )

    pareto_p = sub.add_parser(
        "pareto", help="Pareto frontier over accelerator designs"
    )
    pareto_p.add_argument("--pes", type=int, default=4096)

    stats_p = sub.add_parser(
        "stats", help="multi-seed statistics for a dynamic scenario"
    )
    stats_p.add_argument("scenario", choices=list(SCENARIO_ORDER))
    stats_p.add_argument("accelerator", choices=list(ACCELERATOR_IDS))
    stats_p.add_argument("--seeds", type=int, default=20)
    add_common(stats_p)  # no dynamics flags: seed sweeps are single-mode

    export_p = sub.add_parser(
        "export", help="suite results as JSON submission or CSV"
    )
    export_p.add_argument("accelerator", choices=list(ACCELERATOR_IDS))
    export_p.add_argument("--format", default="submission",
                          choices=["submission", "json", "csv"])
    export_p.add_argument("--breakdowns", action="store_true")
    add_common(export_p)
    add_dynamics(export_p)

    report_p = sub.add_parser(
        "report", help="render the run database with its QoE Pareto tables"
    )
    report_p.add_argument(
        "--runs", default="runs/runs.jsonl", metavar="DB.jsonl",
        help="JSON-lines run database to render (default runs/runs.jsonl)",
    )
    report_p.add_argument(
        "--format", default="markdown", choices=["markdown", "html"],
    )
    report_p.add_argument(
        "--output", default=None, metavar="FILE",
        help="write the rendered report here instead of stdout",
    )

    lint_p = sub.add_parser(
        "lint",
        help="xrlint: determinism & contract static analysis "
             "(zero unsuppressed findings gates CI)",
    )
    add_lint_arguments(lint_p)

    return parser


#: run-subcommand flag -> (RunSpec field, default when the flag is not
#: passed).  Shared by _spec_from_args and the `run --spec` overrides.
_FLAG_FIELDS = {
    "pes": ("pes", 4096),
    "seed": ("seed", 0),
    "duration": ("duration_s", 1.0),
    "scheduler": ("scheduler", "latency_greedy"),
    "frame_loss": ("frame_loss", 0.0),
    "score_preset": ("score_preset", "default"),
    "sessions": ("sessions", 1),
    "granularity": ("granularity", "model"),
    "segments": ("segments_per_model", 2),
    "churn": ("churn", 0.0),
    "preemptive": ("preemptive", False),
    "dvfs": ("dvfs_policy", "static"),
    "admission": ("admission", "none"),
    "faults": ("faults", "none"),
}


def _flag(args: argparse.Namespace, name: str) -> object:
    """One flag's value, falling back to its default when not passed."""
    field, default = _FLAG_FIELDS[name]
    value = getattr(args, name, None)
    return default if value is None else value


def _spec_from_args(args: argparse.Namespace, **overrides) -> RunSpec:
    """Compile the common flags into a RunSpec, once, for every subcommand.

    ``overrides`` supplies the subcommand-specific fields (scenario,
    suite, sessions, ...); everything else comes from the shared flags.
    """
    return RunSpec(
        accelerator=overrides.pop(
            "accelerator", getattr(args, "accelerator", None) or "J"
        ),
        pes=_flag(args, "pes"),
        scheduler=_flag(args, "scheduler"),
        duration_s=_flag(args, "duration"),
        seed=_flag(args, "seed"),
        frame_loss=_flag(args, "frame_loss"),
        score_preset=_flag(args, "score_preset"),
        churn=_flag(args, "churn"),
        preemptive=_flag(args, "preemptive"),
        dvfs_policy=_flag(args, "dvfs"),
        admission=_flag(args, "admission"),
        faults=_flag(args, "faults"),
        **overrides,
    )


def _explicit_flags(args: argparse.Namespace) -> dict:
    """Explicitly-passed run flags, as RunSpec field overrides for --spec."""
    return {
        field: getattr(args, flag)
        for flag, (field, _) in _FLAG_FIELDS.items()
        if getattr(args, flag, None) is not None
    }


def _harness(args: argparse.Namespace) -> Harness:
    """Config carrier for the figure drivers (facade over the funnel)."""
    return Harness(
        config=HarnessConfig(
            duration_s=_flag(args, "duration"),
            seed=_flag(args, "seed"),
            scheduler=_flag(args, "scheduler"),
            frame_loss_probability=_flag(args, "frame_loss"),
        )
    )


def _record_runs(args: argparse.Namespace, pairs: list[tuple]) -> None:
    """Append (spec, report) pairs to the run database when --record set."""
    path = getattr(args, "record", None)
    if path is None:
        return
    from repro.eval import RunDatabase

    db = RunDatabase(path)
    for spec, report in pairs:
        db.append(spec, report)
    print(f"recorded {len(pairs)} run(s) to {db.path}", file=sys.stderr)


def _load_spec(path: str) -> RunSpec:
    with open(path, encoding="utf-8") as fh:
        return RunSpec.from_dict(json.load(fh))


def _fail(exc: BaseException) -> int:
    """Print a spec/run error cleanly to stderr and return exit code 2.

    ``str(KeyError)`` is the repr of its argument, which would wrap the
    registry's did-you-mean messages in stray quotes.
    """
    message = (
        exc.args[0]
        if isinstance(exc, KeyError) and exc.args
        else str(exc)
    )
    print(message, file=sys.stderr)
    return 2


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "lint":
        return run_lint_command(
            args.paths,
            output_format=args.format,
            rule_names=args.rule,
            root=args.root,
            list_rules=args.list_rules,
        )

    if args.command == "run":
        try:
            if args.spec is not None:
                if args.scenario is not None or args.accelerator is not None:
                    print("--spec replaces the scenario/accelerator "
                          "positionals; pass one or the other",
                          file=sys.stderr)
                    return 2
                spec = _load_spec(args.spec)
                overrides = _explicit_flags(args)
                if overrides:
                    spec = spec.replace(**overrides)
            else:
                if args.scenario is None or args.accelerator is None:
                    parser.error(
                        "run needs a scenario and an accelerator "
                        "(or --spec SPEC.json)"
                    )
                spec = _spec_from_args(
                    args,
                    scenario=args.scenario,
                    accelerator=args.accelerator,
                    sessions=_flag(args, "sessions"),
                    granularity=_flag(args, "granularity"),
                    segments_per_model=_flag(args, "segments"),
                )
            report = execute(spec)
        except (KeyError, ValueError, OSError) as exc:
            return _fail(exc)
        _record_runs(args, [(spec, report)])
        print(report.summary())
        if args.timeline:
            if spec.mode == "sessions":
                from repro.runtime import render_timeline

                for session in report.result.sessions:
                    print(f"-- session {session.session_id} --")
                    print(render_timeline(session))
            elif spec.mode == "suite":
                for scenario_report in report.scenario_reports:
                    name = scenario_report.simulation.scenario.name
                    print(f"-- {name} --")
                    print(scenario_report.timeline())
            else:
                print(report.timeline())
        return 0

    if args.command == "suite":
        try:
            spec = _spec_from_args(args, suite=True)
            report = execute(spec)
        except (KeyError, ValueError) as exc:
            return _fail(exc)
        _record_runs(args, [(spec, report)])
        print(report.summary())
        return 0

    if args.command == "plan":
        from repro.api import DispatchPlan, compile_plan, diff_plans

        if args.diff is not None:
            if args.scenario is not None or args.spec is not None:
                print("--diff takes two compiled plan files; drop the "
                      "scenario/--spec arguments", file=sys.stderr)
                return 2
            try:
                loaded = []
                for path in args.diff:
                    with open(path, encoding="utf-8") as fh:
                        loaded.append(DispatchPlan.from_json(fh.read()))
                entries = diff_plans(*loaded)
            except (KeyError, ValueError, OSError) as exc:
                return _fail(exc)
            if args.json:
                print(json.dumps(entries, indent=2))
            elif not entries:
                print("plans are identical")
            else:
                for entry in entries:
                    print(f"{entry['path']}: {entry['a']!r} -> "
                          f"{entry['b']!r}")
            return 0
        try:
            if args.spec is not None:
                if args.scenario is not None or args.accelerator is not None:
                    print("--spec replaces the scenario/accelerator "
                          "positionals; pass one or the other",
                          file=sys.stderr)
                    return 2
                spec = _load_spec(args.spec)
                overrides = _explicit_flags(args)
                if overrides:
                    spec = spec.replace(**overrides)
            else:
                if args.scenario is None or args.accelerator is None:
                    parser.error(
                        "plan needs a scenario and an accelerator (or "
                        "--spec SPEC.json, or --diff A.json B.json)"
                    )
                spec = _spec_from_args(
                    args,
                    scenario=args.scenario,
                    accelerator=args.accelerator,
                    sessions=_flag(args, "sessions"),
                    granularity=_flag(args, "granularity"),
                    segments_per_model=_flag(args, "segments"),
                )
            plan = compile_plan(spec)
        except (KeyError, ValueError, OSError) as exc:
            return _fail(exc)
        rendered = plan.to_json(indent=2)
        if args.output is None:
            print(rendered)
        else:
            with open(args.output, "w", encoding="utf-8") as fh:
                fh.write(rendered + "\n")
            print(f"wrote {args.output} "
                  f"(fingerprint {plan.fingerprint[:12]})", file=sys.stderr)
        return 0

    if args.command == "sweep":
        if args.workers < 1:
            parser.error(f"--workers must be >= 1, got {args.workers}")
        scenarios = tuple(args.scenario or SCENARIO_ORDER)
        accelerators = tuple(args.accelerator or ("J",))
        try:
            base = _spec_from_args(
                args, scenario=scenarios[0], accelerator=accelerators[0]
            )
            sweep = Sweep(
                base=base,
                grid={"scenario": scenarios, "accelerator": accelerators},
            )
            specs = sweep.expand()
        except (KeyError, ValueError) as exc:
            return _fail(exc)
        if args.dry_run:
            # Per-cell plan fingerprints and cost/duration estimates:
            # one shared cached cost table prices every cell, and cells
            # sharing a workload fingerprint reuse a prior compilation.
            from repro.api import compile_plan, estimate_plan
            from repro.api import workload_fingerprint as workload_fp
            from repro.costmodel import CachedCostTable

            shared = CachedCostTable(CostTable())
            plans: dict[str, object] = {}
            cells = []
            try:
                for spec in specs:
                    plan = compile_plan(
                        spec, reuse=plans.get(workload_fp(spec))
                    )
                    plans[plan.workload_fingerprint] = plan
                    cells.append({
                        "fingerprint": plan.fingerprint,
                        "workload_fingerprint": plan.workload_fingerprint,
                        "estimate": estimate_plan(plan, costs=shared),
                    })
            except (KeyError, ValueError) as exc:
                return _fail(exc)
            print(json.dumps(
                {
                    "sweep": sweep.to_dict(),
                    "specs": [spec.to_dict() for spec in specs],
                    "cells": cells,
                },
                indent=2,
            ))
            return 0
        sinks = [StreamSink(sys.stderr)] if args.progress else []
        experiment = Experiment(name="cli-sweep", specs=tuple(specs))
        try:
            reports = experiment.run(workers=args.workers, sinks=sinks)
        except (KeyError, ValueError) as exc:
            return _fail(exc)
        _record_runs(args, list(zip(specs, reports)))
        print(f"{'scenario':<22s}{'acc':>4s}{'pes':>6s}{'overall':>9s}"
              f"{'rt':>7s}{'qoe':>7s}")
        for spec, report in zip(specs, reports):
            if spec.mode == "sessions":
                # Churned/preemptive sweeps route through the
                # multi-tenant engine: report session means.
                scores = [r.score for r in report.session_reports]
                overall = sum(s.overall for s in scores) / len(scores)
                rt = sum(s.rt for s in scores) / len(scores)
                qoe = sum(s.qoe for s in scores) / len(scores)
            else:
                s = report.score
                overall, rt, qoe = s.overall, s.rt, s.qoe
            print(f"{spec.scenario:<22s}{spec.accelerator:>4s}"
                  f"{spec.pes:>6d}{overall:>9.3f}{rt:>7.3f}"
                  f"{qoe:>7.3f}")
        return 0

    if args.command == "figure5":
        from repro.eval import format_figure5, run_figure5

        rows = run_figure5(_harness(args))
        print(format_figure5(rows, args.metric))
        return 0

    if args.command == "figure6":
        from repro.eval import format_figure6, run_figure6

        print(format_figure6(run_figure6(_harness(args), args.accelerator)))
        return 0

    if args.command == "figure7":
        from repro.eval import format_figure7, run_figure7

        print(format_figure7(run_figure7(_harness(args), trials=args.trials)))
        return 0

    if args.command == "figure8":
        from repro.eval import format_figure8, run_figure8

        print(format_figure8(run_figure8()))
        return 0

    if args.command == "tables":
        from repro.eval import table1, table2, table3, table5, table6, table7

        tables = {"1": table1, "2": table2, "3": table3, "5": table5,
                  "6": table6, "7": table7}
        which = tables.keys() if args.which == "all" else [args.which]
        print("\n\n".join(tables[w]() for w in which))
        return 0

    if args.command == "models":
        costs = CostTable()
        codes = [args.code] if args.code else list(UNIT_MODELS)
        for code in codes:
            model = UNIT_MODELS[code]
            graph = model.graph
            print(
                f"{code} ({model.task}): {graph.total_macs / 1e9:.2f} GMACs, "
                f"{graph.total_params / 1e6:.2f} M params, "
                f"{graph.num_layers} layers"
            )
            for df in Dataflow:
                c = costs.cost(code, df, args.pes)
                print(
                    f"  {df.value}@{args.pes}PE: {c.latency_ms:7.2f} ms, "
                    f"{c.energy_mj:7.1f} mJ, util {c.utilization:.1%}"
                )
        return 0

    if args.command == "ablations":
        from repro.eval import (
            dvfs_ablation,
            enmax_sensitivity,
            jitter_ablation,
            quantization_ablation,
            rt_k_sensitivity,
            scheduler_ablation,
        )

        costs = CostTable()
        which = args.which
        if which in ("scheduler", "all"):
            print("scheduler ablation (ar_gaming, J@8K):")
            for r in scheduler_ablation(costs):
                print(f"  {r.setting:<16s} overall={r.overall:.3f} "
                      f"rt={r.rt:.3f} qoe={r.qoe:.3f}")
        if which in ("jitter", "all"):
            mean, spread = jitter_ablation(costs)
            print("jitter ablation (social_interaction_a, A@4K):")
            print(f"  mean overall={mean.overall:.3f}; "
                  f"seed spread={spread.overall:.4f}")
        if which in ("k", "all"):
            print("RT-score k sensitivity (ar_gaming, J@8K):")
            for r in rt_k_sensitivity(costs):
                print(f"  {r.setting:<8s} overall={r.overall:.3f} "
                      f"rt={r.rt:.3f}")
        if which in ("enmax", "all"):
            print("Enmax sensitivity (ar_assistant, C@4K):")
            for r in enmax_sensitivity(costs):
                print(f"  {r.setting:<16s} overall={r.overall:.3f}")
        if which in ("dvfs", "all"):
            print("slack-aware DVFS (WS@4K):")
            for code, row in dvfs_ablation(costs).items():
                print(f"  {code}: f={row['chosen_frequency']:.1f} "
                      f"saving={row['energy_saving']:+.1%}")
        if which in ("quantization", "all"):
            print("weight quantisation (numpy engine):")
            for code, by_bits in quantization_ablation().items():
                for bits, row in by_bits.items():
                    print(f"  {code} int{bits}: "
                          f"acc_score={row['accuracy_score']:.3f} "
                          f"meets_goal={bool(row['meets_goal'])}")
        return 0

    if args.command == "observations":
        from repro.eval import format_observations, verify_observations

        observations = verify_observations()
        print(format_observations(observations))
        return 0 if all(o.holds for o in observations) else 1

    if args.command == "pareto":
        from repro.eval import evaluate_designs, pareto_frontier

        points = evaluate_designs(total_pes=args.pes)
        frontier = {p.acc_id for p in pareto_frontier(points)}
        print(f"Design space at {args.pes} PEs "
              f"(score / mean energy / mean drops):")
        for p in sorted(points, key=lambda p: -p.xrbench_score):
            marker = "*" if p.acc_id in frontier else " "
            print(f" {marker} {p.acc_id}  {p.xrbench_score:.3f}  "
                  f"{p.mean_energy_mj:7.1f} mJ  {p.mean_drop_rate:6.1%}")
        print("(* = Pareto-optimal)")
        return 0

    if args.command == "stats":
        from repro.eval import seed_sweep

        try:
            spec = _spec_from_args(
                args, scenario=args.scenario, accelerator=args.accelerator
            )
            sweep = seed_sweep(spec, seeds=args.seeds)
        except (KeyError, ValueError) as exc:
            return _fail(exc)
        print(sweep.describe())
        return 0

    if args.command == "export":
        from repro.api import compile_plan
        from repro.core import benchmark_to_dict, submission, to_csv

        try:
            spec = _spec_from_args(args, suite=True)
            plan = compile_plan(spec)
            report = execute(spec)
        except (KeyError, ValueError) as exc:
            return _fail(exc)
        _record_runs(args, [(spec, report)])
        if args.format == "submission":
            print(submission(report, include_breakdowns=args.breakdowns))
        elif args.format == "json":
            print(json.dumps(
                benchmark_to_dict(
                    report,
                    plan_fingerprint=plan.fingerprint,
                    workload_fingerprint=plan.workload_fingerprint,
                ),
                indent=2,
            ))
        else:
            print(to_csv(report, plan_fingerprint=plan.fingerprint), end="")
        return 0

    if args.command == "report":
        from repro.eval import ReportGenerator, RunDatabase

        db = RunDatabase(args.runs)
        generator = ReportGenerator.from_database(db)
        if generator.skipped_lines:
            lines = ", ".join(
                str(lineno) for lineno, _ in generator.skipped_lines
            )
            print(
                f"warning: {db.path}: skipped "
                f"{len(generator.skipped_lines)} malformed line(s) "
                f"({lines}) — likely a crashed writer's truncated tail",
                file=sys.stderr,
            )
        if not generator.records:
            print(f"no runs recorded at {db.path}; run with --record first",
                  file=sys.stderr)
            return 2
        rendered = generator.render(args.format)
        if args.output is None:
            print(rendered, end="")
        else:
            with open(args.output, "w", encoding="utf-8") as fh:
                fh.write(rendered)
            print(f"wrote {args.output}", file=sys.stderr)
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
