"""Executes a :class:`ModelGraph` forward pass with numpy.

Weights are materialised lazily from a seeded RNG, so a graph can be run
end-to-end on synthetic data without any stored checkpoints — this is the
"reference implementation" role the paper's open-source models play, with
the datasets replaced by synthetic tensors of the right shapes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from . import ops
from .graph import ModelGraph
from .layers import LayerSpec, OpType

__all__ = ["GraphExecutor", "random_input"]

#: Weight scale keeps activations numerically tame through deep graphs.
_WEIGHT_SCALE = 0.05


def random_input(graph: ModelGraph, seed: int = 0) -> np.ndarray:
    """Synthetic input tensor matching the graph's input shape."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal(graph.input_shape).astype(np.float64)


@dataclass
class GraphExecutor:
    """Runs a model graph layer by layer.

    Attributes:
        graph: the model to execute.
        seed: RNG seed for the synthetic weights.
        record_activations: keep every intermediate output (for tests).
    """

    graph: ModelGraph
    seed: int = 0
    record_activations: bool = False
    activations: dict[str, np.ndarray] = field(default_factory=dict)
    _weights: dict[str, dict[str, np.ndarray]] = field(default_factory=dict)

    def weights_for(self, layer: LayerSpec) -> dict[str, np.ndarray]:
        """Lazily create and cache the synthetic weights of a layer."""
        if layer.name in self._weights:
            return self._weights[layer.name]
        # Seeded from a content hash, not Python's hash(): the latter is
        # salted per process (PYTHONHASHSEED), which would make synthetic
        # weights — and every quality proxy derived from them —
        # irreproducible across runs.
        key = f"{self.graph.name}:{layer.name}:{self.seed}"
        digest = hashlib.sha256(key.encode()).digest()
        rng = np.random.default_rng(int.from_bytes(digest[:8], "little"))

        def randn(*shape: int) -> np.ndarray:
            return rng.standard_normal(shape) * _WEIGHT_SCALE

        cin = layer.in_shape[0]
        cout = layer.out_shape[0]
        w: dict[str, np.ndarray] = {}
        if layer.op in (OpType.CONV2D, OpType.DECONV2D):
            w["weight"] = randn(
                cout, cin // layer.groups, layer.kernel, layer.kernel
            )
            w["bias"] = randn(cout)
        elif layer.op is OpType.DWCONV2D:
            w["weight"] = randn(cin, layer.kernel, layer.kernel)
            w["bias"] = randn(cin)
        elif layer.op is OpType.FC:
            w["weight"] = randn(cout, layer.in_elems)
            w["bias"] = randn(cout)
        elif layer.op is OpType.ATTENTION:
            dim = cin
            for key in ("wq", "wk", "wv", "wo"):
                w[key] = randn(dim, dim)
        elif layer.op is OpType.LAYERNORM:
            w["gamma"] = np.ones(cin)
            w["beta"] = np.zeros(cin)
        self._weights[layer.name] = w
        return w

    def _run_layer(
        self, layer: LayerSpec, x: np.ndarray, residual: np.ndarray | None
    ) -> np.ndarray:
        w = self.weights_for(layer)
        if layer.op is OpType.CONV2D:
            out = ops.conv2d(
                x,
                w["weight"],
                w["bias"],
                stride=layer.stride,
                padding=layer.padding,
                groups=layer.groups,
            )
            return ops.relu(out)
        if layer.op is OpType.DWCONV2D:
            out = ops.dwconv2d(
                x, w["weight"], w["bias"], stride=layer.stride, padding=layer.padding
            )
            return ops.relu(out)
        if layer.op is OpType.DECONV2D:
            out = ops.deconv2d(x, w["weight"], w["bias"], stride=layer.stride)
            return ops.relu(out)
        if layer.op is OpType.FC:
            return ops.fc(x, w["weight"], w["bias"]).reshape(layer.out_shape)
        if layer.op is OpType.ATTENTION:
            return ops.multihead_attention(
                x, w["wq"], w["wk"], w["wv"], w["wo"], layer.heads
            )
        if layer.op is OpType.LAYERNORM:
            return ops.layernorm(x, w["gamma"], w["beta"])
        if layer.op is OpType.MAXPOOL:
            return ops.maxpool2d(x, layer.kernel, layer.stride)
        if layer.op is OpType.AVGPOOL:
            return ops.avgpool2d(x, layer.kernel, layer.stride)
        if layer.op is OpType.GLOBALPOOL:
            return ops.global_avgpool(x)
        if layer.op is OpType.UPSAMPLE:
            return ops.upsample_nearest(x, layer.stride)
        if layer.op is OpType.ADD:
            if residual is None:
                raise ValueError(f"ADD layer {layer.name!r} missing residual")
            if residual.shape != x.shape:
                raise ValueError(
                    f"ADD layer {layer.name!r}: residual shape "
                    f"{residual.shape} != input {x.shape}"
                )
            return x + residual
        if layer.op is OpType.CONCAT:
            if residual is None:
                raise ValueError(f"CONCAT layer {layer.name!r} missing residual")
            return np.concatenate([x, residual], axis=0)
        if layer.op is OpType.RESHAPE:
            return x.reshape(layer.out_shape)
        if layer.op is OpType.ROIALIGN:
            return ops.roialign_fold(
                x, layer.extra["rois"], layer.out_shape[1]
            )
        raise NotImplementedError(f"op {layer.op} not executable")

    def run(self, x: np.ndarray | None = None) -> np.ndarray:
        """Forward pass; returns the final output tensor."""
        if x is None:
            x = random_input(self.graph, self.seed)
        if tuple(x.shape) != self.graph.input_shape:
            raise ValueError(
                f"input shape {x.shape} != model input {self.graph.input_shape}"
            )
        # Keep only the activations that later layers reference.
        needed: set[str] = {
            layer.residual_from
            for layer in self.graph.layers
            if layer.residual_from is not None
        }
        stash: dict[str, np.ndarray] = {}
        for layer in self.graph.layers:
            residual = stash.get(layer.residual_from) if layer.residual_from else None
            x = self._run_layer(layer, x, residual)
            if tuple(x.shape) != layer.out_shape:
                raise AssertionError(
                    f"layer {layer.name!r} produced {x.shape}, spec says "
                    f"{layer.out_shape}"
                )
            if layer.name in needed:
                stash[layer.name] = x
            if self.record_activations:
                self.activations[layer.name] = x
        return x
