"""Model graphs and a builder for constructing them.

A :class:`ModelGraph` is an ordered sequence of bound :class:`LayerSpec`
objects.  The sequence order is the execution order; residual/skip inputs
reference earlier layers by name.  :class:`GraphBuilder` tracks the current
tensor shape so zoo definitions read like the usual "stack of layers"
pseudo-code from the original model papers.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from .layers import ConvDims, LayerSpec, OpType, conv_out_hw

__all__ = ["ModelGraph", "GraphBuilder"]


@dataclass(frozen=True)
class ModelGraph:
    """A validated, immutable DNN description."""

    name: str
    input_shape: tuple[int, int, int]
    layers: tuple[LayerSpec, ...]

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError(f"model {self.name!r} has no layers")
        seen: set[str] = set()
        prev_out = self.input_shape
        for layer in self.layers:
            if layer.name in seen:
                raise ValueError(
                    f"duplicate layer name {layer.name!r} in {self.name!r}"
                )
            if layer.residual_from is not None and layer.residual_from not in seen:
                raise ValueError(
                    f"layer {layer.name!r} references unknown residual "
                    f"source {layer.residual_from!r}"
                )
            if layer.in_shape != prev_out:
                raise ValueError(
                    f"shape mismatch at {layer.name!r}: expects "
                    f"{layer.in_shape}, previous layer produces {prev_out}"
                )
            seen.add(layer.name)
            prev_out = layer.out_shape

    # -- aggregate accounting ---------------------------------------------

    @property
    def out_shape(self) -> tuple[int, int, int]:
        return self.layers[-1].out_shape

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    @property
    def total_params(self) -> int:
        return sum(layer.params for layer in self.layers)

    @property
    def total_weight_bytes(self) -> int:
        return sum(layer.weight_bytes for layer in self.layers)

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def compute_layers(self) -> list[LayerSpec]:
        """Layers that perform MACs, in execution order."""
        return [layer for layer in self.layers if layer.op.is_compute]

    def conv_dims(self) -> list[ConvDims]:
        """The (K,C,Y,X,R,S) dims of every compute layer, in order."""
        dims = [layer.conv_dims() for layer in self.layers]
        return [d for d in dims if d is not None]

    def operator_mix(self) -> dict[str, int]:
        """Operator-type histogram (reproduces Table 7's operator column)."""
        counts = Counter(layer.op.value for layer in self.layers)
        return dict(sorted(counts.items(), key=lambda kv: -kv[1]))

    def major_operators(self, top: int = 3) -> list[str]:
        """The ``top`` most frequent compute-relevant operator names."""
        interesting = [
            layer.op.value
            for layer in self.layers
            if layer.op
            not in (OpType.ADD, OpType.CONCAT, OpType.LAYERNORM)
            or layer.op is OpType.LAYERNORM
        ]
        counts = Counter(interesting)
        return [op for op, _ in counts.most_common(top)]

    def find(self, name: str) -> LayerSpec:
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no layer named {name!r} in model {self.name!r}")

    def summary(self) -> str:
        """Multi-line table of all layers plus totals."""
        lines = [f"Model {self.name}  (input {self.input_shape})"]
        lines += [layer.describe() for layer in self.layers]
        lines.append(
            f"TOTAL macs={self.total_macs:,d} params={self.total_params:,d}"
        )
        return "\n".join(lines)


@dataclass
class GraphBuilder:
    """Incrementally builds a :class:`ModelGraph`.

    The builder tracks the running output shape; each method appends one
    bound layer and returns the builder for chaining.  Layer names are
    auto-generated (``conv3``, ``dw7``, ...) unless given.
    """

    model_name: str
    input_shape: tuple[int, int, int]
    _layers: list[LayerSpec] = field(default_factory=list)
    _counter: int = 0

    @property
    def shape(self) -> tuple[int, int, int]:
        """Current output shape."""
        if self._layers:
            return self._layers[-1].out_shape
        return self.input_shape

    def _next_name(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def _append(self, layer: LayerSpec) -> "GraphBuilder":
        self._layers.append(layer)
        return self

    @property
    def last_name(self) -> str:
        """Name of the most recently added layer (for residual wiring)."""
        if not self._layers:
            raise ValueError("no layers added yet")
        return self._layers[-1].name

    # -- compute layers -----------------------------------------------------

    def conv(
        self,
        out_ch: int,
        kernel: int = 3,
        stride: int = 1,
        padding: int | None = None,
        groups: int = 1,
        name: str | None = None,
    ) -> "GraphBuilder":
        """Conv2D (+BN+activation folded)."""
        cin, h, w = self.shape
        if padding is None:
            padding = kernel // 2
        oh, ow = conv_out_hw(h, w, kernel, stride, padding)
        return self._append(
            LayerSpec(
                name=name or self._next_name("conv"),
                op=OpType.CONV2D,
                in_shape=(cin, h, w),
                out_shape=(out_ch, oh, ow),
                kernel=kernel,
                stride=stride,
                padding=padding,
                groups=groups,
            )
        )

    def dwconv(
        self,
        kernel: int = 3,
        stride: int = 1,
        padding: int | None = None,
        name: str | None = None,
    ) -> "GraphBuilder":
        """Depthwise Conv2D: channel count is preserved."""
        cin, h, w = self.shape
        if padding is None:
            padding = kernel // 2
        oh, ow = conv_out_hw(h, w, kernel, stride, padding)
        return self._append(
            LayerSpec(
                name=name or self._next_name("dw"),
                op=OpType.DWCONV2D,
                in_shape=(cin, h, w),
                out_shape=(cin, oh, ow),
                kernel=kernel,
                stride=stride,
                padding=padding,
                groups=cin,
            )
        )

    def deconv(
        self,
        out_ch: int,
        kernel: int = 4,
        stride: int = 2,
        name: str | None = None,
    ) -> "GraphBuilder":
        """Transposed convolution that upsamples spatial dims by ``stride``."""
        cin, h, w = self.shape
        return self._append(
            LayerSpec(
                name=name or self._next_name("deconv"),
                op=OpType.DECONV2D,
                in_shape=(cin, h, w),
                out_shape=(out_ch, h * stride, w * stride),
                kernel=kernel,
                stride=stride,
            )
        )

    def fc(self, out_features: int, name: str | None = None) -> "GraphBuilder":
        """Fully-connected layer; flattens whatever the current shape is."""
        shape = self.shape
        return self._append(
            LayerSpec(
                name=name or self._next_name("fc"),
                op=OpType.FC,
                in_shape=shape,
                out_shape=(out_features, 1, 1),
            )
        )

    def attention(self, heads: int = 8, name: str | None = None) -> "GraphBuilder":
        """Multi-head self-attention over the current (dim, 1, L) tensor."""
        shape = self.shape
        return self._append(
            LayerSpec(
                name=name or self._next_name("attn"),
                op=OpType.ATTENTION,
                in_shape=shape,
                out_shape=shape,
                heads=heads,
            )
        )

    def layernorm(self, name: str | None = None) -> "GraphBuilder":
        shape = self.shape
        return self._append(
            LayerSpec(
                name=name or self._next_name("ln"),
                op=OpType.LAYERNORM,
                in_shape=shape,
                out_shape=shape,
            )
        )

    # -- memory-only layers ---------------------------------------------------

    def pool(
        self,
        kernel: int = 2,
        stride: int | None = None,
        kind: str = "max",
        name: str | None = None,
    ) -> "GraphBuilder":
        cin, h, w = self.shape
        stride = stride or kernel
        oh, ow = conv_out_hw(h, w, kernel, stride, 0)
        op = OpType.MAXPOOL if kind == "max" else OpType.AVGPOOL
        return self._append(
            LayerSpec(
                name=name or self._next_name("pool"),
                op=op,
                in_shape=(cin, h, w),
                out_shape=(cin, oh, ow),
                kernel=kernel,
                stride=stride,
            )
        )

    def global_pool(self, name: str | None = None) -> "GraphBuilder":
        cin, h, w = self.shape
        return self._append(
            LayerSpec(
                name=name or self._next_name("gap"),
                op=OpType.GLOBALPOOL,
                in_shape=(cin, h, w),
                out_shape=(cin, 1, 1),
                kernel=max(h, w),
            )
        )

    def upsample(self, scale: int = 2, name: str | None = None) -> "GraphBuilder":
        cin, h, w = self.shape
        return self._append(
            LayerSpec(
                name=name or self._next_name("up"),
                op=OpType.UPSAMPLE,
                in_shape=(cin, h, w),
                out_shape=(cin, h * scale, w * scale),
                stride=scale,
            )
        )

    def reshape(
        self, new_shape: tuple[int, int, int], name: str | None = None
    ) -> "GraphBuilder":
        """Zero-cost view change; element count must be preserved."""
        cin, h, w = self.shape
        if cin * h * w != new_shape[0] * new_shape[1] * new_shape[2]:
            raise ValueError(
                f"reshape {self.shape} -> {new_shape} changes element count"
            )
        return self._append(
            LayerSpec(
                name=name or self._next_name("reshape"),
                op=OpType.RESHAPE,
                in_shape=(cin, h, w),
                out_shape=new_shape,
            )
        )

    def add(self, residual_from: str, name: str | None = None) -> "GraphBuilder":
        """Elementwise residual add with an earlier layer's output."""
        shape = self.shape
        return self._append(
            LayerSpec(
                name=name or self._next_name("add"),
                op=OpType.ADD,
                in_shape=shape,
                out_shape=shape,
                residual_from=residual_from,
            )
        )

    def concat(self, residual_from: str, extra_ch: int, name: str | None = None) -> "GraphBuilder":
        """Channel concat with an earlier layer's output (``extra_ch`` wide)."""
        cin, h, w = self.shape
        return self._append(
            LayerSpec(
                name=name or self._next_name("cat"),
                op=OpType.CONCAT,
                in_shape=(cin, h, w),
                out_shape=(cin + extra_ch, h, w),
                residual_from=residual_from,
            )
        )

    def roialign(self, rois: int, out_size: int, name: str | None = None) -> "GraphBuilder":
        """RoIAlign: crops ``rois`` regions to ``out_size`` squares.

        The RoI batch is folded into the spatial extent so downstream heads
        see a single (C, out, out*rois) tensor.
        """
        cin, _, _ = self.shape
        return self._append(
            LayerSpec(
                name=name or self._next_name("roi"),
                op=OpType.ROIALIGN,
                in_shape=self.shape,
                out_shape=(cin, out_size, out_size * rois),
                extra={"rois": rois},
            )
        )

    # -- composite blocks ------------------------------------------------------

    def residual_block(self, channels: int, stride: int = 1) -> "GraphBuilder":
        """Basic ResNet block: conv-conv(+projection)-add."""
        entry = self.last_name if self._layers else None
        self.conv(channels, 3, stride)
        first = self.last_name
        self.conv(channels, 3, 1)
        if stride == 1 and entry is not None:
            cin = self._layers[-1].out_shape[0]
            src_shape = self.find_shape(entry)
            if src_shape == self._layers[-1].out_shape and cin == channels:
                self.add(entry)
                return self
        # Projection shortcut is folded into the second conv's cost; the
        # residual add still references the first conv of the block.
        self.add(first)
        return self

    def inverted_residual(
        self, out_ch: int, expand: int = 6, stride: int = 1, kernel: int = 3
    ) -> "GraphBuilder":
        """MobileNet/FBNet inverted-residual block (expand-dw-project)."""
        cin, _, _ = self.shape
        entry = self.last_name if self._layers else None
        hidden = cin * expand
        self.conv(hidden, 1)
        self.dwconv(kernel, stride)
        self.conv(out_ch, 1)
        if stride == 1 and cin == out_ch and entry is not None:
            if self.find_shape(entry) == self.shape:
                self.add(entry)
        return self

    def transformer_block(
        self, heads: int = 8, ffn_mult: int = 4
    ) -> "GraphBuilder":
        """Pre-norm transformer encoder block (attention + FFN)."""
        dim = self.shape[0]
        self.layernorm()
        pre_attn = self.last_name
        self.attention(heads)
        self.add(pre_attn)
        self.layernorm()
        pre_ffn = self.last_name
        # The FFN is two 1x1 convolutions over the sequence.
        self.conv(dim * ffn_mult, 1)
        self.conv(dim, 1)
        self.add(pre_ffn)
        return self

    def find_shape(self, layer_name: str) -> tuple[int, int, int]:
        for layer in self._layers:
            if layer.name == layer_name:
                return layer.out_shape
        raise KeyError(f"layer {layer_name!r} not found")

    def build(self) -> ModelGraph:
        return ModelGraph(
            name=self.model_name,
            input_shape=self.input_shape,
            layers=tuple(self._layers),
        )
