"""Post-training quantisation simulation.

The paper's evaluation runs every model "8bit-quantized without other
optimizations" and sets quality targets at 95% of published performance
precisely so that quantised submissions can still pass (Table 1's note).
This module simulates that pipeline on the numpy reference models:

* :func:`quantize_tensor` / :func:`dequantize_tensor` — symmetric
  per-tensor affine quantisation.
* :class:`QuantizedExecutor` — runs a graph with weights (and optionally
  activations) round-tripped through int8, introducing realistic
  quantisation noise.
* :func:`quality_proxy` — turns the output divergence between the float
  and quantised runs into a *measured quality* value against a model's
  quality goal, which feeds the accuracy score (Definition 12) — closing
  the loop the paper's harness closes with real datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.workload.quality import MetricType, QualityGoal

from .executor import GraphExecutor, random_input
from .graph import ModelGraph

__all__ = [
    "quantize_tensor",
    "dequantize_tensor",
    "QuantizedExecutor",
    "quality_proxy",
]


def quantize_tensor(
    x: np.ndarray, bits: int = 8
) -> tuple[np.ndarray, float]:
    """Symmetric per-tensor quantisation.

    Returns the integer tensor and its scale; ``x ~ q * scale``.
    """
    if bits < 2 or bits > 16:
        raise ValueError(f"bits must be in [2, 16], got {bits}")
    qmax = 2 ** (bits - 1) - 1
    max_abs = float(np.max(np.abs(x))) if x.size else 0.0
    if max_abs == 0.0:
        return np.zeros_like(x, dtype=np.int32), 1.0
    scale = max_abs / qmax
    q = np.clip(np.round(x / scale), -qmax - 1, qmax).astype(np.int32)
    return q, scale


def dequantize_tensor(q: np.ndarray, scale: float) -> np.ndarray:
    """Inverse of :func:`quantize_tensor`."""
    if scale <= 0:
        raise ValueError(f"scale must be > 0, got {scale}")
    return q.astype(np.float64) * scale


@dataclass
class QuantizedExecutor(GraphExecutor):
    """A graph executor whose weights are int8 round-tripped.

    Setting ``quantize_activations`` additionally fake-quantises every
    layer output, modelling a fully-integer inference pipeline.
    """

    bits: int = 8
    quantize_activations: bool = False
    _quant_cache: dict[str, dict[str, np.ndarray]] = field(
        default_factory=dict
    )

    def weights_for(self, layer) -> dict[str, np.ndarray]:
        if layer.name in self._quant_cache:
            return self._quant_cache[layer.name]
        float_weights = super().weights_for(layer)
        quantized: dict[str, np.ndarray] = {}
        for key, tensor in float_weights.items():
            if key in ("gamma", "beta", "bias"):
                quantized[key] = tensor  # norm/bias kept high precision
            else:
                q, scale = quantize_tensor(tensor, self.bits)
                quantized[key] = dequantize_tensor(q, scale)
        self._quant_cache[layer.name] = quantized
        return quantized

    def _run_layer(self, layer, x, residual):
        out = super()._run_layer(layer, x, residual)
        if self.quantize_activations:
            q, scale = quantize_tensor(out, self.bits)
            out = dequantize_tensor(q, scale)
        return out


def quality_proxy(
    graph: ModelGraph,
    goal: QualityGoal,
    bits: int = 8,
    seed: int = 0,
    quantize_activations: bool = False,
) -> float:
    """Measured-quality proxy for a quantised model.

    Runs the float and quantised executors on the same synthetic input and
    maps the relative output error onto the model's quality metric: zero
    error reproduces the target exactly; error degrades HiB metrics
    multiplicatively downward and LiB metrics upward.  This mirrors how the
    real harness would re-measure accuracy after an optimisation and feed
    it into the accuracy score.
    """
    x = random_input(graph, seed)
    reference = GraphExecutor(graph, seed=seed).run(x)
    quantized = QuantizedExecutor(
        graph, seed=seed, bits=bits,
        quantize_activations=quantize_activations,
    ).run(x)
    denom = float(np.linalg.norm(reference))
    rel_error = (
        float(np.linalg.norm(quantized - reference)) / denom
        if denom > 0
        else 0.0
    )
    # Published-performance anchor: targets are 95% of the original paper's
    # score, so the float model sits at target / 0.95.
    float_quality = (
        goal.target / 0.95
        if goal.metric_type is MetricType.HIGHER_IS_BETTER
        else goal.target * 0.95
    )
    if goal.metric_type is MetricType.HIGHER_IS_BETTER:
        return float_quality * max(0.0, 1.0 - rel_error)
    return float_quality * (1.0 + rel_error)
