"""Numpy DNN substrate: layer specs, model graphs, ops and an executor."""

from .executor import GraphExecutor, random_input
from .graph import GraphBuilder, ModelGraph
from .layers import BYTES_PER_ELEM, ConvDims, LayerSpec, OpType
from .quantize import QuantizedExecutor, dequantize_tensor, quality_proxy, quantize_tensor

__all__ = [
    "QuantizedExecutor",
    "dequantize_tensor",
    "quality_proxy",
    "quantize_tensor",
    "BYTES_PER_ELEM",
    "ConvDims",
    "GraphBuilder",
    "GraphExecutor",
    "LayerSpec",
    "ModelGraph",
    "OpType",
    "random_input",
]
