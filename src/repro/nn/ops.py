"""Numpy forward kernels for every layer primitive.

These are reference implementations in the spirit of the guide's advice:
vectorised numpy, no Python-level loops over pixels.  Convolutions use
im2col + matmul; depthwise convolutions use a batched einsum over the
patch tensor.  They exist so the zoo models can actually be *executed*
(examples, numerical tests, operator validation), not to win speed races —
the analytical cost model is what the benchmark harness uses for timing.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "im2col",
    "conv2d",
    "dwconv2d",
    "deconv2d",
    "fc",
    "maxpool2d",
    "avgpool2d",
    "global_avgpool",
    "upsample_nearest",
    "relu",
    "softmax",
    "layernorm",
    "multihead_attention",
    "roialign_fold",
]


def relu(x: np.ndarray) -> np.ndarray:
    """Elementwise ReLU."""
    return np.maximum(x, 0.0)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)


def im2col(
    x: np.ndarray, kernel: int, stride: int, padding: int
) -> tuple[np.ndarray, int, int]:
    """Unfold ``(C, H, W)`` into ``(C*k*k, OH*OW)`` patch columns.

    Returns the column matrix plus the output spatial dims.
    """
    c, h, w = x.shape
    if padding:
        x = np.pad(x, ((0, 0), (padding, padding), (padding, padding)))
    ph, pw = x.shape[1], x.shape[2]
    oh = (ph - kernel) // stride + 1
    ow = (pw - kernel) // stride + 1
    if oh <= 0 or ow <= 0:
        raise ValueError(
            f"im2col produces empty output: input {(h, w)}, k={kernel}, "
            f"s={stride}, p={padding}"
        )
    # Strided view: (C, OH, OW, k, k) without copying.
    sc, sh, sw = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(c, oh, ow, kernel, kernel),
        strides=(sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    cols = view.transpose(0, 3, 4, 1, 2).reshape(c * kernel * kernel, oh * ow)
    return np.ascontiguousarray(cols), oh, ow


def conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    stride: int = 1,
    padding: int = 0,
    groups: int = 1,
) -> np.ndarray:
    """2-D convolution.  ``x``: (C, H, W); ``weight``: (K, C/groups, k, k)."""
    cin = x.shape[0]
    k_out, c_per_group, kh, kw = weight.shape
    if kh != kw:
        raise ValueError(f"only square kernels supported, got {(kh, kw)}")
    if cin != c_per_group * groups:
        raise ValueError(
            f"channel mismatch: input {cin}, weight expects "
            f"{c_per_group * groups} (groups={groups})"
        )
    if groups == 1:
        cols, oh, ow = im2col(x, kh, stride, padding)
        out = weight.reshape(k_out, -1) @ cols
    else:
        k_per_group = k_out // groups
        outs = []
        for g in range(groups):
            xg = x[g * c_per_group : (g + 1) * c_per_group]
            wg = weight[g * k_per_group : (g + 1) * k_per_group]
            cols, oh, ow = im2col(xg, kh, stride, padding)
            outs.append(wg.reshape(k_per_group, -1) @ cols)
        out = np.concatenate(outs, axis=0)
    out = out.reshape(k_out, oh, ow)
    if bias is not None:
        out = out + bias[:, None, None]
    return out


def dwconv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Depthwise convolution.  ``weight``: (C, k, k)."""
    c, h, w = x.shape
    if weight.shape[0] != c:
        raise ValueError(
            f"depthwise weight channels {weight.shape[0]} != input {c}"
        )
    kernel = weight.shape[1]
    if padding:
        x = np.pad(x, ((0, 0), (padding, padding), (padding, padding)))
    ph, pw = x.shape[1], x.shape[2]
    oh = (ph - kernel) // stride + 1
    ow = (pw - kernel) // stride + 1
    sc, sh, sw = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(c, oh, ow, kernel, kernel),
        strides=(sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    out = np.einsum("cyxrs,crs->cyx", view, weight, optimize=True)
    if bias is not None:
        out = out + bias[:, None, None]
    return out


def deconv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    stride: int = 2,
) -> np.ndarray:
    """Transposed convolution producing an exactly ``stride``-x upsampled map.

    Implemented as nearest-neighbour dilation followed by a same-padded
    convolution — numerically a valid transposed-conv variant and
    shape-exact for the graphs in the zoo.
    """
    upsampled = upsample_nearest(x, stride)
    kernel = weight.shape[-1]
    out = conv2d(upsampled, weight, bias, stride=1, padding=kernel // 2)
    # Even kernels with same-padding overshoot by one pixel; crop to the
    # exact stride-multiple output size.
    target_h, target_w = x.shape[1] * stride, x.shape[2] * stride
    return out[:, :target_h, :target_w]


def fc(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None) -> np.ndarray:
    """Fully-connected layer over a flattened input."""
    flat = x.reshape(-1)
    if weight.shape[1] != flat.shape[0]:
        raise ValueError(
            f"fc weight expects {weight.shape[1]} inputs, got {flat.shape[0]}"
        )
    out = weight @ flat
    if bias is not None:
        out = out + bias
    return out


def _pool(x: np.ndarray, kernel: int, stride: int, reducer) -> np.ndarray:
    c, h, w = x.shape
    oh = (h - kernel) // stride + 1
    ow = (w - kernel) // stride + 1
    sc, sh, sw = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(c, oh, ow, kernel, kernel),
        strides=(sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    return reducer(view, axis=(3, 4))


def maxpool2d(x: np.ndarray, kernel: int = 2, stride: int | None = None) -> np.ndarray:
    """Max pooling."""
    return _pool(x, kernel, stride or kernel, np.max)


def avgpool2d(x: np.ndarray, kernel: int = 2, stride: int | None = None) -> np.ndarray:
    """Average pooling."""
    return _pool(x, kernel, stride or kernel, np.mean)


def global_avgpool(x: np.ndarray) -> np.ndarray:
    """Global average pooling to (C, 1, 1)."""
    return x.mean(axis=(1, 2), keepdims=True)


def upsample_nearest(x: np.ndarray, scale: int = 2) -> np.ndarray:
    """Nearest-neighbour spatial upsampling."""
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale}")
    return np.repeat(np.repeat(x, scale, axis=1), scale, axis=2)


def layernorm(
    x: np.ndarray, gamma: np.ndarray, beta: np.ndarray, eps: float = 1e-5
) -> np.ndarray:
    """Layer normalisation over the channel axis of a (C, H, W) tensor."""
    mean = x.mean(axis=0, keepdims=True)
    var = x.var(axis=0, keepdims=True)
    normed = (x - mean) / np.sqrt(var + eps)
    return normed * gamma[:, None, None] + beta[:, None, None]


def multihead_attention(
    x: np.ndarray,
    wq: np.ndarray,
    wk: np.ndarray,
    wv: np.ndarray,
    wo: np.ndarray,
    heads: int,
) -> np.ndarray:
    """Multi-head self-attention over a (dim, 1, L) tensor.

    All projection matrices are (dim, dim).  Returns a tensor of the same
    shape as the input.
    """
    dim, h, w = x.shape
    if dim % heads:
        raise ValueError(f"dim {dim} not divisible by heads {heads}")
    seq = h * w
    tokens = x.reshape(dim, seq).T  # (L, dim)
    q = tokens @ wq.T
    k = tokens @ wk.T
    v = tokens @ wv.T
    head_dim = dim // heads
    # (heads, L, head_dim)
    qh = q.reshape(seq, heads, head_dim).transpose(1, 0, 2)
    kh = k.reshape(seq, heads, head_dim).transpose(1, 0, 2)
    vh = v.reshape(seq, heads, head_dim).transpose(1, 0, 2)
    scores = qh @ kh.transpose(0, 2, 1) / np.sqrt(head_dim)
    attn = softmax(scores, axis=-1)
    ctx = attn @ vh  # (heads, L, head_dim)
    merged = ctx.transpose(1, 0, 2).reshape(seq, dim)
    out = merged @ wo.T
    return out.T.reshape(dim, h, w)


def roialign_fold(x: np.ndarray, rois: int, out_size: int) -> np.ndarray:
    """A deterministic stand-in for RoIAlign.

    Crops ``rois`` evenly-spaced square regions and resizes each to
    ``out_size`` via average pooling, folding the RoI batch into the width
    axis — matching the shape contract of ``GraphBuilder.roialign``.
    """
    c, h, w = x.shape
    out = np.empty((c, out_size, out_size * rois), dtype=x.dtype)
    for i in range(rois):
        # Evenly-spaced crop anchors across the feature map.
        y0 = (i * max(1, h - out_size)) // max(1, rois)
        x0 = (i * max(1, w - out_size)) // max(1, rois)
        crop = x[:, y0 : y0 + out_size, x0 : x0 + out_size]
        ch, cw = crop.shape[1], crop.shape[2]
        if (ch, cw) != (out_size, out_size):
            pad = ((0, 0), (0, out_size - ch), (0, out_size - cw))
            crop = np.pad(crop, pad)
        out[:, :, i * out_size : (i + 1) * out_size] = crop
    return out
