"""DNN layer primitives.

Every unit model in the zoo is described as a graph of these layer specs.
A spec is *bound*: it knows its input and output shapes, so MAC counts,
parameter counts and tensor byte sizes are exact properties of the object.
The analytical cost model consumes the same specs through
:meth:`LayerSpec.conv_dims`, which maps each compute layer onto the
(K, C, Y, X, R, S) convolution-dimension nomenclature used by MAESTRO-style
dataflow analysis (fully-connected and attention layers are expressed as
1x1 convolutions / GEMMs in that space).

Shapes are channel-first ``(C, H, W)`` tuples; batch size is always 1, which
matches the latency-critical single-frame inference setting of the paper.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

__all__ = [
    "OpType",
    "ConvDims",
    "LayerSpec",
    "conv_out_hw",
    "BYTES_PER_ELEM",
]

#: All tensors are int8-quantised in the paper's evaluation (Section 4.1:
#: "8bit-quantized without other optimizations").
BYTES_PER_ELEM: int = 1


class OpType(enum.Enum):
    """Operator categories, matching Table 7's "Major Operators" column."""

    CONV2D = "CONV2D"
    DWCONV2D = "DWCONV"
    DECONV2D = "DeCONV"
    FC = "FC"
    MAXPOOL = "Maxpool"
    AVGPOOL = "Avgpool"
    GLOBALPOOL = "GlobalPool"
    UPSAMPLE = "Upsample"
    ADD = "SkipConnection"
    CONCAT = "Concat"
    ATTENTION = "SelfAttention"
    LAYERNORM = "Layernorm"
    ROIALIGN = "RoIAlign"
    RESHAPE = "Reshape"

    @property
    def is_compute(self) -> bool:
        """Whether the op performs MACs the cost model must map to PEs."""
        return self in _COMPUTE_OPS


_COMPUTE_OPS = frozenset(
    {
        OpType.CONV2D,
        OpType.DWCONV2D,
        OpType.DECONV2D,
        OpType.FC,
        OpType.ATTENTION,
    }
)


def conv_out_hw(
    h: int, w: int, kernel: int, stride: int, padding: int
) -> tuple[int, int]:
    """Standard convolution output spatial dims."""
    oh = (h + 2 * padding - kernel) // stride + 1
    ow = (w + 2 * padding - kernel) // stride + 1
    if oh <= 0 or ow <= 0:
        raise ValueError(
            f"conv collapses spatial dims: in {(h, w)}, k={kernel}, "
            f"s={stride}, p={padding} -> {(oh, ow)}"
        )
    return oh, ow


@dataclass(frozen=True)
class ConvDims:
    """The (K, C, Y, X, R, S) loop-nest dims of a compute layer.

    ``K`` output channels, ``C`` input channels per group, ``Y``/``X``
    output spatial dims, ``R``/``S`` kernel dims, ``groups`` convolution
    groups (``groups == C_total`` for depthwise).  A GEMM of shape
    (M, N, Kdim) maps to ``Y*X = M``, ``K = N``, ``C = Kdim``, ``R = S = 1``.
    """

    k: int
    c: int
    y: int
    x: int
    r: int
    s: int
    groups: int = 1

    def __post_init__(self) -> None:
        for name in ("k", "c", "y", "x", "r", "s", "groups"):
            v = getattr(self, name)
            if v < 1:
                raise ValueError(f"ConvDims.{name} must be >= 1, got {v}")

    @property
    def macs(self) -> int:
        """Multiply-accumulates of the whole layer (all groups)."""
        return self.groups * self.k * self.c * self.y * self.x * self.r * self.s


@dataclass(frozen=True)
class LayerSpec:
    """One bound layer of a model graph.

    Attributes:
        name: unique layer name within its graph.
        op: operator category.
        in_shape: input tensor shape ``(C, H, W)``.
        out_shape: output tensor shape ``(C, H, W)``.
        kernel: square kernel size (conv/pool/deconv), else 0.
        stride: stride (conv/pool/deconv), else 1.
        padding: spatial zero padding, else 0.
        groups: convolution groups (``in channels`` for depthwise).
        heads: attention heads (attention layers only).
        residual_from: name of an earlier layer whose output is the second
            operand (ADD/CONCAT) — ``None`` for pure-sequential layers.
        bias: whether the layer carries a bias vector.
    """

    name: str
    op: OpType
    in_shape: tuple[int, int, int]
    out_shape: tuple[int, int, int]
    kernel: int = 0
    stride: int = 1
    padding: int = 0
    groups: int = 1
    heads: int = 1
    residual_from: str | None = None
    bias: bool = True
    extra: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("layer name must be non-empty")
        for label, shape in (("in", self.in_shape), ("out", self.out_shape)):
            if len(shape) != 3 or any(d < 1 for d in shape):
                raise ValueError(
                    f"{label}_shape must be 3 positive dims, got {shape}"
                )
        if self.stride < 1:
            raise ValueError(f"stride must be >= 1, got {self.stride}")
        if self.groups < 1:
            raise ValueError(f"groups must be >= 1, got {self.groups}")

    # -- tensor accounting ------------------------------------------------

    @property
    def in_elems(self) -> int:
        c, h, w = self.in_shape
        return c * h * w

    @property
    def out_elems(self) -> int:
        c, h, w = self.out_shape
        return c * h * w

    @property
    def in_bytes(self) -> int:
        return self.in_elems * BYTES_PER_ELEM

    @property
    def out_bytes(self) -> int:
        return self.out_elems * BYTES_PER_ELEM

    # -- weights and compute ----------------------------------------------

    @property
    def params(self) -> int:
        """Trainable parameter count of the layer."""
        cin, _, _ = self.in_shape
        cout, oh, ow = self.out_shape
        if self.op in (OpType.CONV2D, OpType.DECONV2D):
            n = (cin // self.groups) * cout * self.kernel * self.kernel
            return n + (cout if self.bias else 0)
        if self.op is OpType.DWCONV2D:
            return cin * self.kernel * self.kernel + (cout if self.bias else 0)
        if self.op is OpType.FC:
            return self.in_elems * cout + (cout if self.bias else 0)
        if self.op is OpType.ATTENTION:
            dim = cin
            # Q, K, V and output projections.
            return 4 * (dim * dim + (dim if self.bias else 0))
        if self.op is OpType.LAYERNORM:
            return 2 * cin
        return 0

    @property
    def weight_bytes(self) -> int:
        return self.params * BYTES_PER_ELEM

    def conv_dims(self) -> ConvDims | None:
        """Map the layer onto (K, C, Y, X, R, S) loop dims.

        Returns ``None`` for layers that perform no MACs (pooling,
        upsampling, skip connections, ...).  Attention layers are mapped to
        an equivalent single GEMM whose MAC count equals the sum of the
        QKV/output projections and the score/context batched matmuls.
        """
        cin, ih, iw = self.in_shape
        cout, oh, ow = self.out_shape
        if self.op in (OpType.CONV2D, OpType.DECONV2D):
            return ConvDims(
                k=cout // self.groups,
                c=cin // self.groups,
                y=oh,
                x=ow,
                r=self.kernel,
                s=self.kernel,
                groups=self.groups,
            )
        if self.op is OpType.DWCONV2D:
            return ConvDims(
                k=1, c=1, y=oh, x=ow, r=self.kernel, s=self.kernel, groups=cin
            )
        if self.op is OpType.FC:
            return ConvDims(k=cout, c=self.in_elems, y=1, x=1, r=1, s=1)
        if self.op is OpType.ATTENTION:
            # Sequence length L is carried in the spatial extent; embedding
            # dim is the channel extent.
            seq = ih * iw
            dim = cin
            proj_macs = 4 * seq * dim * dim
            attn_macs = 2 * seq * seq * dim
            total = proj_macs + attn_macs
            # Equivalent GEMM: M = seq, N = dim, K = total/(seq*dim).
            k_equiv = max(1, int(round(total / (seq * dim))))
            return ConvDims(k=dim, c=k_equiv, y=seq, x=1, r=1, s=1)
        return None

    @property
    def macs(self) -> int:
        """Multiply-accumulate count of this layer (0 for memory-only ops)."""
        dims = self.conv_dims()
        if dims is None:
            return 0
        return dims.macs

    @property
    def flops(self) -> int:
        """2x MACs, the conventional FLOP count."""
        return 2 * self.macs

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.name:<24s} {self.op.value:<14s} "
            f"{str(self.in_shape):<18s}-> {str(self.out_shape):<18s} "
            f"macs={self.macs:>12,d} params={self.params:>10,d}"
        )


def attention_macs(seq: int, dim: int) -> int:
    """Exact MAC count of one self-attention layer (helper for tests)."""
    return 4 * seq * dim * dim + 2 * seq * seq * dim


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division (used throughout dataflow analysis)."""
    if b <= 0:
        raise ValueError(f"divisor must be > 0, got {b}")
    return -(-a // b)


def human_count(n: float) -> str:
    """Format a large count as e.g. ``12.3M`` / ``4.5G`` for reports."""
    for unit, scale in (("G", 1e9), ("M", 1e6), ("K", 1e3)):
        if abs(n) >= scale:
            return f"{n / scale:.2f}{unit}"
    return f"{n:.0f}"


def shape_elems(shape: tuple[int, ...]) -> int:
    """Number of elements of a shape tuple."""
    return math.prod(shape)
