"""Persistent run database and QoE Pareto reports.

The admission-control plane only pays off when its trade-offs are
visible: shedding buys per-survivor QoE with throughput, degrading buys
deadline hits with model quality.  This module gives those trade-offs a
durable home — every :func:`repro.api.execute` result can be appended to
an on-disk JSON-lines database (``runs/runs.jsonl`` by default), and a
:class:`ReportGenerator` renders the accumulated runs as markdown or
HTML tables plus a QoE/throughput/energy Pareto frontier across
admission policies, reusing :func:`repro.eval.pareto.pareto_frontier`
over :class:`repro.eval.pareto.QoePoint` records.

The database is append-only and schema-light on purpose: each line is a
self-contained record ``{"spec": ..., "metrics": ..., "sessions": ...}``
so partial writes from crashed runs corrupt at most their own line, and
old databases keep loading as fields are added.
"""

from __future__ import annotations

import html
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.report import (
    BenchmarkReport,
    MultiSessionReport,
    ScenarioReport,
)
from repro.runtime.admission import quality_retention

from .pareto import QoePoint, pareto_frontier

__all__ = [
    "DEFAULT_DB_PATH",
    "ReportGenerator",
    "RunDatabase",
    "RunRecord",
    "summarize_report",
]

DEFAULT_DB_PATH = Path("runs") / "runs.jsonl"

# Metric keys every record carries; ReportGenerator renders them in this
# order.  (key, column header, format spec)
_METRIC_COLUMNS = (
    ("qoe", "QoE", ".3f"),
    ("throughput_rps", "throughput (req/s)", ".1f"),
    ("energy_mj", "energy (mJ)", ".1f"),
    ("miss_rate", "miss rate", ".3f"),
    ("quality_proxy", "quality", ".3f"),
)


@dataclass(frozen=True)
class RunRecord:
    """One persisted run: the spec that produced it plus its metrics.

    ``plan`` stamps the compiled :class:`~repro.api.DispatchPlan` that
    executed the run — its full ``fingerprint`` and the seed-independent
    ``workload_fingerprint`` — so the report generator can group runs of
    the identical plan under different seeds.  Records appended before
    the stamp existed load with an empty block.
    """

    spec: dict
    metrics: dict
    sessions: tuple[dict, ...] = ()
    plan: dict = field(default_factory=dict)

    @property
    def policy(self) -> str:
        return str(self.spec.get("admission", "none"))

    @property
    def plan_fingerprint(self) -> str | None:
        value = self.plan.get("fingerprint")
        return str(value) if value else None

    @property
    def workload_fingerprint(self) -> str | None:
        value = self.plan.get("workload_fingerprint")
        return str(value) if value else None

    @property
    def label(self) -> str:
        """Short row label: scenario/mode plus the admission policy."""
        if self.spec.get("suite") or self.spec.get("mode") == "suite":
            name = "suite"
        else:
            scenario = self.spec.get("scenario")
            if isinstance(scenario, (list, tuple)):
                scenario = scenario[0] if scenario else None
            name = "?" if scenario is None else str(scenario)
        return f"{name}[{self.policy}]"

    def qoe_point(self) -> QoePoint:
        return QoePoint(
            label=self.label,
            qoe=float(self.metrics["qoe"]),
            throughput_rps=float(self.metrics["throughput_rps"]),
            energy_mj=float(self.metrics["energy_mj"]),
        )

    def to_dict(self) -> dict:
        data = {
            "spec": self.spec,
            "metrics": self.metrics,
            "sessions": list(self.sessions),
        }
        if self.plan:
            data["plan"] = self.plan
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        return cls(
            spec=dict(data["spec"]),
            metrics=dict(data["metrics"]),
            sessions=tuple(data.get("sessions", ())),
            plan=dict(data.get("plan", {})),
        )


def _session_row(report: ScenarioReport) -> dict:
    """Per-session detail row, including the admission-control stamp."""
    sim, score = report.simulation, report.score
    completed = len(sim.completed())
    row = {
        "session_id": sim.session_id,
        "scenario": sim.scenario.name,
        "overall": score.overall,
        "qoe": score.qoe,
        "frames_streamed": len(sim.requests),
        "frames_executed": completed,
        "frames_dropped": len(sim.dropped()),
        "missed_deadlines": score.total_missed_deadlines,
        "energy_mj": sim.total_energy_mj(),
        "shed": False,
        "shed_reason": None,
        "degradation_level": 0,
        "quality_proxy": 1.0,
    }
    record = sim.admission
    if record is not None:
        row["shed"] = record.shed
        row["shed_reason"] = record.shed_reason
        row["degradation_level"] = record.degradation_level
        row["quality_proxy"] = quality_retention(
            sim.scenario, record.degradation_level
        )
    faults = sim.faults
    row["faulted_requests"] = 0
    row["fault_retries"] = 0
    row["fault_lost"] = 0
    if faults is not None:
        row["faulted_requests"] = faults.killed
        row["fault_retries"] = faults.retries
        row["fault_lost"] = faults.lost
    return row


def _aggregate(reports: list[ScenarioReport]) -> dict:
    """System-level metrics over a group of per-scenario/session reports."""
    executed = sum(len(r.simulation.completed()) for r in reports)
    missed = sum(r.score.total_missed_deadlines for r in reports)
    duration = max(r.simulation.duration_s for r in reports)
    qoes = [r.score.qoe for r in reports]
    return {
        "qoe": sum(qoes) / len(qoes),
        "throughput_rps": executed / duration,
        "energy_mj": sum(r.simulation.total_energy_mj() for r in reports),
        "miss_rate": missed / executed if executed else 0.0,
        "mean_overall": sum(r.score.overall for r in reports) / len(reports),
        "frames_executed": executed,
        "missed_deadlines": missed,
    }


def summarize_report(spec, report) -> RunRecord:
    """Flatten any :func:`repro.api.execute` report into a RunRecord.

    ``spec`` may be a :class:`repro.api.RunSpec` or an already-serialized
    spec dict (the worker-process path hands dicts around).
    """
    spec_dict = spec if isinstance(spec, dict) else spec.to_dict()
    if isinstance(report, ScenarioReport):
        reports = [report]
    elif isinstance(report, BenchmarkReport):
        reports = list(report.scenario_reports)
    elif isinstance(report, MultiSessionReport):
        reports = list(report.session_reports)
    else:
        raise TypeError(f"cannot summarize report type {type(report)!r}")
    metrics = _aggregate(reports)
    sessions = tuple(_session_row(r) for r in reports)
    # Aggregate quality across sessions: degraded or shed sessions pull
    # the run-level quality proxy below 1.0 (a shed session's retained
    # quality is 0 — its user got nothing).
    qualities = [
        0.0 if row["shed"] else row["quality_proxy"] for row in sessions
    ]
    metrics["quality_proxy"] = sum(qualities) / len(qualities)
    # Stamp which compiled plan this run executed.  Compilation is pure
    # and deterministic, so recompiling here yields exactly the plan the
    # executor consumed; records of the same plan under different seeds
    # share the workload fingerprint.
    from repro.api import RunSpec, compile_plan

    spec_obj = RunSpec.from_dict(spec_dict) if isinstance(spec, dict) else spec
    plan = compile_plan(spec_obj)
    return RunRecord(
        spec=spec_dict,
        metrics=metrics,
        sessions=sessions,
        plan={
            "fingerprint": plan.fingerprint,
            "workload_fingerprint": plan.workload_fingerprint,
        },
    )


class RunDatabase:
    """Append-only JSON-lines store of :class:`RunRecord` entries.

    Appends are crash-safe: each record is one ``O_APPEND`` write of a
    complete line, flushed and fsynced before the append returns, so
    concurrent writers interleave whole lines and a crashed writer can
    corrupt at most the file's tail.  :meth:`load` skips blank lines and
    *tolerates* malformed ones — truncated or garbled lines (the residue
    of a crash mid-write) are counted in :attr:`skipped_lines` instead
    of poisoning the whole database; ``xrbench report`` surfaces the
    count as a warning.
    """

    def __init__(self, path: str | Path = DEFAULT_DB_PATH) -> None:
        self.path = Path(path)
        #: ``(lineno, reason)`` of malformed lines the last :meth:`load`
        #: skipped; empty after loading a healthy database.
        self.skipped_lines: list[tuple[int, str]] = []

    def append(self, spec, report) -> RunRecord:
        """Summarize ``report`` and persist it; returns the record."""
        record = summarize_report(spec, report)
        self.append_record(record)
        return record

    def append_record(self, record: RunRecord) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        data = (
            json.dumps(record.to_dict(), sort_keys=True) + "\n"
        ).encode("utf-8")
        # One O_APPEND write of the whole line + fsync: the kernel makes
        # single-write appends atomic with respect to other appenders,
        # and the fsync means an acknowledged record survives a crash
        # of this process (a crash *mid-write* leaves a truncated tail
        # line, which load() skips and counts).
        fd = os.open(
            self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
        )
        try:
            os.write(fd, data)
            os.fsync(fd)
        finally:
            os.close(fd)

    def load(self) -> list[RunRecord]:
        """All intact records in append order; empty if no database yet.

        Malformed lines are skipped and recorded in
        :attr:`skipped_lines` — a crashed writer's truncated tail must
        not take the rest of the database down with it.
        """
        self.skipped_lines = []
        if not self.path.exists():
            return []
        records: list[RunRecord] = []
        with self.path.open(encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(RunRecord.from_dict(json.loads(line)))
                except (json.JSONDecodeError, KeyError, TypeError) as exc:
                    self.skipped_lines.append((lineno, str(exc)))
        return records

    def __len__(self) -> int:
        return len(self.load())


@dataclass
class ReportGenerator:
    """Render a run database as markdown or HTML with a Pareto section.

    Runs are grouped by admission policy; each policy group becomes one
    :class:`QoePoint` (metrics averaged across the group's runs) and the
    non-dominated policies form the frontier table.
    """

    records: list[RunRecord] = field(default_factory=list)
    #: Malformed database lines the load skipped (surfaced as a report
    #: warning so silent corruption never masquerades as a clean DB).
    skipped_lines: list[tuple[int, str]] = field(default_factory=list)

    @classmethod
    def from_database(cls, db: RunDatabase) -> "ReportGenerator":
        records = db.load()
        return cls(records=records, skipped_lines=list(db.skipped_lines))

    def policy_points(self) -> list[QoePoint]:
        """One QoE/throughput/energy point per admission policy."""
        groups: dict[str, list[RunRecord]] = {}
        for record in self.records:
            groups.setdefault(record.policy, []).append(record)
        points = []
        for policy in sorted(groups):
            runs = groups[policy]
            points.append(
                QoePoint(
                    label=policy,
                    qoe=_mean([r.metrics["qoe"] for r in runs]),
                    throughput_rps=_mean(
                        [r.metrics["throughput_rps"] for r in runs]
                    ),
                    energy_mj=_mean([r.metrics["energy_mj"] for r in runs]),
                )
            )
        return points

    def frontier(self) -> list[QoePoint]:
        points = self.policy_points()
        return pareto_frontier(points) if points else []

    def workload_groups(self) -> list[tuple[str, list[RunRecord]]]:
        """Records grouped by workload fingerprint, first-seen order.

        Every group's runs executed the *identical compiled plan up to
        the seed* — the seed-replicate set whose spread is measurement
        noise, not workload difference.  Unstamped legacy records
        (appended before the plan stamp existed) are left out.
        """
        groups: dict[str, list[RunRecord]] = {}
        for record in self.records:
            fp = record.workload_fingerprint
            if fp is not None:
                groups.setdefault(fp, []).append(record)
        return list(groups.items())

    def _workload_rows(self) -> list[list[str]]:
        rows = []
        for fp, runs in self.workload_groups():
            seeds = [str(r.spec.get("seed", "?")) for r in runs]
            rows.append(
                [
                    fp[:12],
                    runs[0].label,
                    str(len(runs)),
                    ", ".join(seeds),
                    format(_mean([r.metrics["qoe"] for r in runs]), ".3f"),
                ]
            )
        return rows

    def _run_rows(self) -> list[list[str]]:
        rows = []
        for record in self.records:
            row = [record.label, record.policy]
            for key, _header, fmt in _METRIC_COLUMNS:
                value = record.metrics.get(key)
                row.append("-" if value is None else format(value, fmt))
            rows.append(row)
        return rows

    def _frontier_rows(self) -> tuple[list[QoePoint], list[list[str]]]:
        frontier = self.frontier()
        on_frontier = {p.label for p in frontier}
        rows = []
        for point in self.policy_points():
            rows.append(
                [
                    point.label,
                    format(point.qoe, ".3f"),
                    format(point.throughput_rps, ".1f"),
                    format(point.energy_mj, ".1f"),
                    "yes" if point.label in on_frontier else "no",
                ]
            )
        return frontier, rows

    def markdown(self) -> str:
        """GitHub-flavoured markdown: run table + policy Pareto table."""
        run_headers = ["run", "admission"] + [
            header for _key, header, _fmt in _METRIC_COLUMNS
        ]
        lines = ["# XRBench run report", "", f"{len(self.records)} runs.", ""]
        if self.skipped_lines:
            lines += [
                f"> **Warning:** skipped {len(self.skipped_lines)} "
                "malformed database line(s) "
                f"({', '.join(str(n) for n, _ in self.skipped_lines)}) — "
                "likely a crashed writer's truncated tail.",
                "",
            ]
        lines += ["## Runs", ""]
        lines += _markdown_table(run_headers, self._run_rows())
        workload_rows = self._workload_rows()
        if workload_rows:
            lines += [
                "",
                "## Seed replicates by workload fingerprint",
                "",
                "Runs in one group executed the identical compiled plan "
                "up to the seed.",
                "",
            ]
            lines += _markdown_table(
                ["workload", "run", "runs", "seeds", "mean QoE"],
                workload_rows,
            )
        frontier, rows = self._frontier_rows()
        lines += ["", "## QoE Pareto frontier by admission policy", ""]
        if rows:
            lines += _markdown_table(
                ["policy", "QoE", "throughput (req/s)", "energy (mJ)",
                 "frontier"],
                rows,
            )
            lines += [
                "",
                "Frontier (best QoE first): "
                + ", ".join(p.label for p in frontier),
            ]
        else:
            lines.append("No runs recorded.")
        return "\n".join(lines) + "\n"

    def html(self) -> str:
        """Self-contained HTML page with the same tables."""
        run_headers = ["run", "admission"] + [
            header for _key, header, _fmt in _METRIC_COLUMNS
        ]
        frontier, frontier_rows = self._frontier_rows()
        parts = [
            "<!DOCTYPE html>",
            "<html><head><meta charset='utf-8'>",
            "<title>XRBench run report</title>",
            "<style>table{border-collapse:collapse}"
            "td,th{border:1px solid #999;padding:4px 8px;"
            "font-family:monospace}</style>",
            "</head><body>",
            "<h1>XRBench run report</h1>",
            f"<p>{len(self.records)} runs.</p>",
        ]
        if self.skipped_lines:
            parts.append(
                "<p><strong>Warning:</strong> skipped "
                f"{len(self.skipped_lines)} malformed database line(s) "
                "&mdash; likely a crashed writer's truncated tail.</p>"
            )
        parts += [
            "<h2>Runs</h2>",
            _html_table(run_headers, self._run_rows()),
        ]
        workload_rows = self._workload_rows()
        if workload_rows:
            parts += [
                "<h2>Seed replicates by workload fingerprint</h2>",
                "<p>Runs in one group executed the identical compiled "
                "plan up to the seed.</p>",
                _html_table(
                    ["workload", "run", "runs", "seeds", "mean QoE"],
                    workload_rows,
                ),
            ]
        parts.append("<h2>QoE Pareto frontier by admission policy</h2>")
        if frontier_rows:
            parts.append(
                _html_table(
                    ["policy", "QoE", "throughput (req/s)", "energy (mJ)",
                     "frontier"],
                    frontier_rows,
                )
            )
            parts.append(
                "<p>Frontier (best QoE first): "
                + html.escape(", ".join(p.label for p in frontier))
                + "</p>"
            )
        else:
            parts.append("<p>No runs recorded.</p>")
        parts.append("</body></html>")
        return "\n".join(parts) + "\n"

    def render(self, fmt: str = "markdown") -> str:
        if fmt == "markdown":
            return self.markdown()
        if fmt == "html":
            return self.html()
        raise ValueError(
            f"unknown report format {fmt!r}; choose 'markdown' or 'html'"
        )


def _mean(values: list[float]) -> float:
    return sum(values) / len(values)


def _markdown_table(headers: list[str], rows: list[list[str]]) -> list[str]:
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return lines


def _html_table(headers: list[str], rows: list[list[str]]) -> str:
    head = "".join(f"<th>{html.escape(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{html.escape(c)}</td>" for c in row) + "</tr>"
        for row in rows
    )
    return f"<table><tr>{head}</tr>{body}</table>"
