"""Multi-seed statistics for the dynamic scenarios.

The artifact appendix warns that results on Outdoor Activity A/B and AR
Assistant are non-deterministic (their KD->SR control dependency is a
probabilistic trigger), and that Figure 7 averages 200 experiments.  This
module runs a scenario across seeds and reports mean, standard deviation
and a normal-approximation confidence interval per score component, so
users can report dynamic-scenario results responsibly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.api import RunSpec, execute
from repro.core import Harness
from repro.costmodel import CostTable
from repro.hardware import AcceleratorSystem

__all__ = ["ScoreStatistics", "SeedSweep", "run_seed_sweep", "seed_sweep"]

#: Two-sided z values for the confidence levels we expose.
_Z_VALUES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


@dataclass(frozen=True)
class ScoreStatistics:
    """Summary statistics of one score component across seeds."""

    name: str
    mean: float
    std: float
    minimum: float
    maximum: float
    n: int

    def confidence_interval(
        self, level: float = 0.95
    ) -> tuple[float, float]:
        """Normal-approximation CI of the mean."""
        try:
            z = _Z_VALUES[level]
        except KeyError:
            raise ValueError(
                f"unsupported confidence level {level}; "
                f"choose from {sorted(_Z_VALUES)}"
            ) from None
        half = z * self.std / math.sqrt(self.n) if self.n > 1 else 0.0
        return (self.mean - half, self.mean + half)

    def describe(self) -> str:
        lo, hi = self.confidence_interval()
        return (
            f"{self.name}: {self.mean:.3f} +/- {self.std:.3f} "
            f"(95% CI [{lo:.3f}, {hi:.3f}], n={self.n})"
        )


@dataclass(frozen=True)
class SeedSweep:
    """All component statistics for one scenario x system sweep."""

    scenario: str
    system: str
    statistics: dict[str, ScoreStatistics]

    def get(self, name: str) -> ScoreStatistics:
        try:
            return self.statistics[name]
        except KeyError:
            raise KeyError(
                f"no statistic {name!r}; available: "
                f"{sorted(self.statistics)}"
            ) from None

    def describe(self) -> str:
        lines = [f"{self.scenario} on {self.system}:"]
        for name in ("overall", "rt", "energy", "qoe", "drop_rate"):
            if name in self.statistics:
                lines.append("  " + self.statistics[name].describe())
        return "\n".join(lines)


def _summarise(name: str, values: list[float]) -> ScoreStatistics:
    n = len(values)
    mean = sum(values) / n
    variance = (
        sum((v - mean) ** 2 for v in values) / (n - 1) if n > 1 else 0.0
    )
    return ScoreStatistics(
        name=name,
        mean=mean,
        std=math.sqrt(variance),
        minimum=min(values),
        maximum=max(values),
        n=n,
    )


def seed_sweep(
    spec: RunSpec,
    seeds: int = 20,
    *,
    system: AcceleratorSystem | None = None,
    costs: CostTable | None = None,
    score=None,
) -> SeedSweep:
    """Run ``spec`` across ``seeds`` consecutive seeds and summarise.

    The declarative funnel path: the spec's own ``seed`` field is
    replaced by 0..seeds-1, everything else re-executes unchanged.  A
    pre-built ``system``/shared ``costs`` table may be supplied when the
    caller sweeps many systems.
    """
    if seeds < 1:
        raise ValueError(f"seeds must be >= 1, got {seeds}")
    if spec.mode != "single":
        raise ValueError(
            f"seed sweeps need a single-scenario spec, got mode "
            f"{spec.mode!r}"
        )
    costs = costs if costs is not None else CostTable()
    samples: dict[str, list[float]] = {
        "overall": [], "rt": [], "energy": [], "qoe": [], "drop_rate": [],
    }
    described = None
    for seed in range(seeds):
        report = execute(
            spec.replace(seed=seed), system=system, costs=costs,
            score=score,
        )
        described = report.simulation.system.describe()
        samples["overall"].append(report.score.overall)
        samples["rt"].append(report.score.rt)
        samples["energy"].append(report.score.energy)
        samples["qoe"].append(report.score.qoe)
        samples["drop_rate"].append(report.simulation.frame_drop_rate())
    return SeedSweep(
        scenario=spec.scenario,
        system=described,
        statistics={
            name: _summarise(name, values)
            for name, values in samples.items()
        },
    )


def run_seed_sweep(
    harness: Harness,
    scenario: str,
    system: AcceleratorSystem,
    seeds: int = 20,
) -> SeedSweep:
    """Facade-compatible wrapper: sweep seeds for a harness + system."""
    from repro import registry

    config = harness.config
    # The pre-built system overrides the spec's accelerator fields in
    # execute(); the name is a carrier only, so an unregistered custom
    # system falls back to a registered placeholder instead of failing
    # spec validation.
    acc_id = system.acc_id if system.acc_id in registry.accelerators else "J"
    spec = RunSpec(
        scenario=scenario,
        accelerator=acc_id,
        pes=system.total_pes,
        scheduler=config.scheduler,
        duration_s=config.duration_s,
        frame_loss=config.frame_loss_probability,
    )
    return seed_sweep(
        spec, seeds, system=system, costs=harness.costs,
        score=config.score,
    )
