"""Figure 3: the Social Interaction A execution deep-dive (Section 3.6).

The paper walks through one scheduling window of the Social Interaction A
scenario: ES and GE chained at 60 FPS, HT and the multi-modal DR at
30 FPS skipping every other sensor frame, DR waiting for both camera and
lidar.  This driver reproduces that walk-through from an actual
simulation: the per-frame event table (input arrival, start, end,
deadline) for the first frames, plus the engine timeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import Harness, ScenarioReport
from repro.hardware import build_accelerator

__all__ = ["Figure3Row", "run_figure3", "format_figure3"]


@dataclass(frozen=True)
class Figure3Row:
    """One inference of the deep-dive window."""

    model_code: str
    model_frame: int
    request_ms: float
    start_ms: float
    end_ms: float
    deadline_ms: float
    engine: int

    @property
    def met_deadline(self) -> bool:
        return self.end_ms <= self.deadline_ms


def run_figure3(
    harness: Harness | None = None,
    acc_id: str = "A",
    total_pes: int = 8192,
    frames_window_s: float = 3 / 60,
) -> tuple[list[Figure3Row], ScenarioReport]:
    """Simulate Social Interaction A and extract the first frames."""
    harness = harness or Harness()
    report = harness.run_scenario(
        "social_interaction_a", build_accelerator(acc_id, total_pes)
    )
    rows = [
        Figure3Row(
            model_code=r.model_code,
            model_frame=r.model_frame,
            request_ms=r.request_time_s * 1e3,
            start_ms=r.start_time_s * 1e3,
            end_ms=r.end_time_s * 1e3,
            deadline_ms=r.deadline_s * 1e3,
            engine=r.accelerator_id,
        )
        for r in report.simulation.completed()
        if r.request_time_s < frames_window_s
    ]
    rows.sort(key=lambda r: r.start_ms)
    return rows, report


def format_figure3(rows: list[Figure3Row], report: ScenarioReport) -> str:
    lines = [
        "Figure 3 — Social Interaction A deep dive (first frames)",
        f"{'model':<6s}{'frame':>6s}{'input':>9s}{'start':>9s}"
        f"{'end':>9s}{'deadline':>10s}{'engine':>7s}  met?",
    ]
    for r in rows:
        lines.append(
            f"{r.model_code:<6s}{r.model_frame:>6d}{r.request_ms:>8.2f}m"
            f"{r.start_ms:>8.2f}m{r.end_ms:>8.2f}m{r.deadline_ms:>9.2f}m"
            f"{r.engine:>7d}  {'yes' if r.met_deadline else 'LATE'}"
        )
    lines.append("")
    lines.append(report.timeline(width=90, until_s=0.1))
    return "\n".join(lines)
