"""Pareto-frontier analysis over accelerator designs.

Section 3.7: "XRBench reveals all individual scores to users to facilitate
Pareto frontier analysis".  This module computes frontiers over arbitrary
(higher-is-better, lower-is-better) objective pairs — most usefully
(XRBench score, mean energy per inference) — across the Table 5 designs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import Harness
from repro.hardware import ACCELERATOR_IDS, build_accelerator

__all__ = ["DesignPoint", "evaluate_designs", "pareto_frontier"]


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated accelerator design."""

    acc_id: str
    total_pes: int
    xrbench_score: float
    mean_energy_mj: float
    mean_drop_rate: float

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance: at least as good everywhere, better somewhere.

        Score is higher-is-better; energy and drop rate lower-is-better.
        """
        at_least = (
            self.xrbench_score >= other.xrbench_score
            and self.mean_energy_mj <= other.mean_energy_mj
            and self.mean_drop_rate <= other.mean_drop_rate
        )
        strictly = (
            self.xrbench_score > other.xrbench_score
            or self.mean_energy_mj < other.mean_energy_mj
            or self.mean_drop_rate < other.mean_drop_rate
        )
        return at_least and strictly


def evaluate_designs(
    harness: Harness | None = None,
    acc_ids: tuple[str, ...] = ACCELERATOR_IDS,
    total_pes: int = 4096,
) -> list[DesignPoint]:
    """Run the suite on every design and collect the objective values."""
    harness = harness or Harness()
    points = []
    for acc_id in acc_ids:
        system = build_accelerator(acc_id, total_pes)
        suite = harness.run_suite(system)
        energies: list[float] = []
        drops: list[float] = []
        for report in suite.scenario_reports:
            energies.extend(
                r.energy_mj for r in report.simulation.completed()
            )
            drops.append(report.simulation.frame_drop_rate())
        points.append(
            DesignPoint(
                acc_id=acc_id,
                total_pes=total_pes,
                xrbench_score=suite.xrbench_score,
                mean_energy_mj=sum(energies) / len(energies),
                mean_drop_rate=sum(drops) / len(drops),
            )
        )
    return points


def pareto_frontier(points: list[DesignPoint]) -> list[DesignPoint]:
    """The non-dominated subset, sorted by descending score."""
    if not points:
        raise ValueError("no design points given")
    frontier = [
        p for p in points
        if not any(q.dominates(p) for q in points if q is not p)
    ]
    return sorted(frontier, key=lambda p: -p.xrbench_score)
