"""Pareto-frontier analysis over accelerator designs and QoE policies.

Section 3.7: "XRBench reveals all individual scores to users to facilitate
Pareto frontier analysis".  This module computes frontiers over arbitrary
(higher-is-better, lower-is-better) objective pairs — most usefully
(XRBench score, mean energy per inference) — across the Table 5 designs,
and, for the QoE control plane, (QoE, throughput, energy) across
admission policies.

:func:`pareto_frontier` is duck-typed: any point with a ``dominates``
method and a ``sort_key`` property participates, so run-database reports
reuse the same frontier logic over :class:`QoePoint` records.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import Harness
from repro.hardware import ACCELERATOR_IDS, build_accelerator

__all__ = ["DesignPoint", "QoePoint", "evaluate_designs", "pareto_frontier"]


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated accelerator design."""

    acc_id: str
    total_pes: int
    xrbench_score: float
    mean_energy_mj: float
    mean_drop_rate: float

    @property
    def sort_key(self) -> float:
        """Frontier ordering: best (highest) score first."""
        return -self.xrbench_score

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance: at least as good everywhere, better somewhere.

        Score is higher-is-better; energy and drop rate lower-is-better.
        """
        at_least = (
            self.xrbench_score >= other.xrbench_score
            and self.mean_energy_mj <= other.mean_energy_mj
            and self.mean_drop_rate <= other.mean_drop_rate
        )
        strictly = (
            self.xrbench_score > other.xrbench_score
            or self.mean_energy_mj < other.mean_energy_mj
            or self.mean_drop_rate < other.mean_drop_rate
        )
        return at_least and strictly


@dataclass(frozen=True)
class QoePoint:
    """One evaluated run configuration in QoE/throughput/energy space.

    QoE and throughput are higher-is-better, energy lower-is-better —
    the triple the admission-control plane trades off: shedding raises
    per-survivor QoE but drops throughput; degrading holds throughput
    while spending quality.
    """

    label: str
    qoe: float
    throughput_rps: float
    energy_mj: float

    @property
    def sort_key(self) -> tuple[float, float]:
        """Frontier ordering: best QoE first, throughput breaks ties."""
        return (-self.qoe, -self.throughput_rps)

    def dominates(self, other: "QoePoint") -> bool:
        """At least as good on all three axes, strictly better on one."""
        at_least = (
            self.qoe >= other.qoe
            and self.throughput_rps >= other.throughput_rps
            and self.energy_mj <= other.energy_mj
        )
        strictly = (
            self.qoe > other.qoe
            or self.throughput_rps > other.throughput_rps
            or self.energy_mj < other.energy_mj
        )
        return at_least and strictly


def evaluate_designs(
    harness: Harness | None = None,
    acc_ids: tuple[str, ...] = ACCELERATOR_IDS,
    total_pes: int = 4096,
) -> list[DesignPoint]:
    """Run the suite on every design and collect the objective values."""
    harness = harness or Harness()
    points = []
    for acc_id in acc_ids:
        system = build_accelerator(acc_id, total_pes)
        suite = harness.run_suite(system)
        energies: list[float] = []
        drops: list[float] = []
        for report in suite.scenario_reports:
            energies.extend(
                r.energy_mj for r in report.simulation.completed()
            )
            drops.append(report.simulation.frame_drop_rate())
        points.append(
            DesignPoint(
                acc_id=acc_id,
                total_pes=total_pes,
                xrbench_score=suite.xrbench_score,
                mean_energy_mj=sum(energies) / len(energies),
                mean_drop_rate=sum(drops) / len(drops),
            )
        )
    return points


def pareto_frontier(points: list) -> list:
    """The non-dominated subset, sorted by each point's ``sort_key``.

    Accepts any homogeneous point list exposing ``dominates`` and
    ``sort_key`` (:class:`DesignPoint`, :class:`QoePoint`, or
    third-party types).  Duplicate points never dominate each other
    (dominance requires strict improvement somewhere), so ties survive
    onto the frontier together.
    """
    if not points:
        raise ValueError("no design points given")
    frontier = [
        p for p in points
        if not any(q.dominates(p) for q in points if q is not p)
    ]
    return sorted(frontier, key=lambda p: p.sort_key)
