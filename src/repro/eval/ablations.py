"""Ablation studies over the reproduction's design choices.

DESIGN.md calls out the knobs that shape results; each function here
isolates one of them:

* :func:`scheduler_ablation` — latency-greedy vs round-robin vs EDF
  (Section 3.5 makes the scheduler user-replaceable; this quantifies why).
* :func:`jitter_ablation` — scores with sensor jitter on vs off
  (Section 3.4 argues jitter is frequently disregarded but matters).
* :func:`rt_k_sensitivity` — how the deadline-sensitivity constant ``k``
  moves scenario scores (Figure 8's knob applied end to end).
* :func:`enmax_sensitivity` — how the ``Enmax`` energy budget reweights
  designs (Definition 11's bound).
* :func:`dvfs_ablation` — energy saved by running each model at the
  slowest DVFS point that still fits its deadline slack (appendix B.1's
  slack-into-energy argument).
* :func:`quantization_ablation` — accuracy-score impact of int8/int4
  weights on the light reference models, via the numpy engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import Harness, HarnessConfig, ScoreConfig
from repro.costmodel import CostTable, Dataflow
from repro.costmodel.dvfs import best_point_for_slack
from repro.hardware import build_accelerator
from repro.nn.quantize import quality_proxy
from repro.workload import UNIT_MODELS
from repro.workload.sensors import SENSORS
from repro.zoo import build_model

__all__ = [
    "AblationRow",
    "scheduler_ablation",
    "jitter_ablation",
    "rt_k_sensitivity",
    "enmax_sensitivity",
    "dvfs_ablation",
    "quantization_ablation",
]


@dataclass(frozen=True)
class AblationRow:
    """One (setting, metric) outcome."""

    setting: str
    scenario: str
    overall: float
    rt: float
    qoe: float
    detail: float = 0.0


def scheduler_ablation(
    cost_table: CostTable | None = None,
    scenario: str = "ar_gaming",
    acc_id: str = "J",
    total_pes: int = 8192,
) -> list[AblationRow]:
    """Score the same workload under each shipped scheduler."""
    costs = cost_table or CostTable()
    rows = []
    for name in ("latency_greedy", "round_robin", "edf"):
        harness = Harness(
            config=HarnessConfig(scheduler=name), costs=costs
        )
        score = harness.run_scenario(
            scenario, build_accelerator(acc_id, total_pes)
        ).score
        rows.append(
            AblationRow(
                setting=name, scenario=scenario,
                overall=score.overall, rt=score.rt, qoe=score.qoe,
            )
        )
    return rows


def jitter_ablation(
    cost_table: CostTable | None = None,
    scenario: str = "social_interaction_a",
    acc_id: str = "A",
    total_pes: int = 4096,
    seeds: int = 10,
) -> list[AblationRow]:
    """Quantify the score variance induced by sensor jitter.

    On a scenario whose only randomness is jitter (the default Social
    Interaction A cascades ES->GE deterministically), the seed only
    perturbs frame arrival times — so the across-seed spread of the
    scores *is* the jitter effect the paper says is "frequently
    disregarded".  Returns two rows: the seed-averaged scores
    ("jitter_mean") and the max-min spread ("jitter_spread").
    """
    costs = cost_table or CostTable()
    harness = Harness(costs=costs)
    system = build_accelerator(acc_id, total_pes)
    scores = [
        harness.run_scenario(scenario, system, seed=s).score
        for s in range(seeds)
    ]
    overall = [s.overall for s in scores]
    mean = sum(overall) / len(overall)
    spread = max(overall) - min(overall)
    return [
        AblationRow(
            setting="jitter_mean", scenario=scenario, overall=mean,
            rt=sum(s.rt for s in scores) / len(scores),
            qoe=sum(s.qoe for s in scores) / len(scores),
            detail=max(SENSORS["camera"].jitter_ms, 0.0),
        ),
        AblationRow(
            setting="jitter_spread", scenario=scenario, overall=spread,
            rt=max(s.rt for s in scores) - min(s.rt for s in scores),
            qoe=max(s.qoe for s in scores) - min(s.qoe for s in scores),
        ),
    ]


def rt_k_sensitivity(
    cost_table: CostTable | None = None,
    scenario: str = "ar_gaming",
    acc_id: str = "J",
    total_pes: int = 8192,
    ks: tuple[float, ...] = (1.0, 15.0, 50.0),
) -> list[AblationRow]:
    """Scenario scores under different deadline-sensitivity constants."""
    costs = cost_table or CostTable()
    rows = []
    for k in ks:
        harness = Harness(
            config=HarnessConfig(score=ScoreConfig(rt_k=k)), costs=costs
        )
        score = harness.run_scenario(
            scenario, build_accelerator(acc_id, total_pes)
        ).score
        rows.append(
            AblationRow(
                setting=f"k={k:g}", scenario=scenario,
                overall=score.overall, rt=score.rt, qoe=score.qoe,
                detail=k,
            )
        )
    return rows


def enmax_sensitivity(
    cost_table: CostTable | None = None,
    scenario: str = "ar_assistant",
    acc_id: str = "C",
    total_pes: int = 4096,
    enmaxes: tuple[float, ...] = (500.0, 1500.0, 4500.0),
) -> list[AblationRow]:
    """Scenario scores under different per-inference energy budgets."""
    costs = cost_table or CostTable()
    rows = []
    for enmax in enmaxes:
        harness = Harness(
            config=HarnessConfig(score=ScoreConfig(energy_max_mj=enmax)),
            costs=costs,
        )
        score = harness.run_scenario(
            scenario, build_accelerator(acc_id, total_pes)
        ).score
        rows.append(
            AblationRow(
                setting=f"Enmax={enmax:g}mJ", scenario=scenario,
                overall=score.overall, rt=score.rt, qoe=score.qoe,
                detail=enmax,
            )
        )
    return rows


def dvfs_ablation(
    cost_table: CostTable | None = None,
    total_pes: int = 4096,
    dataflow: Dataflow = Dataflow.WS,
) -> dict[str, dict[str, float]]:
    """Per-model energy savings from slack-aware DVFS.

    For each unit model at its most demanding shipped rate, picks the
    slowest operating point that still fits the deadline slack and
    reports nominal vs scaled energy.
    """
    costs = cost_table or CostTable()
    # Most demanding rate each model is shipped at (Table 2).
    rates = {"HT": 45, "ES": 60, "GE": 60, "KD": 3, "SR": 3, "SS": 10,
             "OD": 10, "AS": 30, "DE": 30, "DR": 30, "PD": 30}
    out: dict[str, dict[str, float]] = {}
    for code in UNIT_MODELS:
        cost = costs.cost(code, dataflow, total_pes)
        slack = 1.0 / rates[code]
        point, scaled = best_point_for_slack(cost, slack)
        out[code] = {
            "slack_ms": slack * 1e3,
            "nominal_latency_ms": cost.latency_ms,
            "nominal_energy_mj": cost.energy_mj,
            "chosen_frequency": point.frequency_scale,
            "scaled_latency_ms": scaled.latency_ms,
            "scaled_energy_mj": scaled.energy_mj,
            "energy_saving": 1.0 - scaled.energy_mj / cost.energy_mj,
        }
    return out


def quantization_ablation(
    codes: tuple[str, ...] = ("KD", "AS", "GE"),
    bit_widths: tuple[int, ...] = (8, 4),
) -> dict[str, dict[int, dict[str, float]]]:
    """Accuracy-score impact of weight quantisation on light models.

    Uses the numpy reference engine; heavier models are excluded for
    runtime reasons (their behaviour is architecture-wise identical).
    """
    from repro.core import accuracy_score

    out: dict[str, dict[int, dict[str, float]]] = {}
    for code in codes:
        model = UNIT_MODELS[code]
        graph = build_model(code)
        out[code] = {}
        for bits in bit_widths:
            measured = quality_proxy(graph, model.quality, bits=bits)
            out[code][bits] = {
                "measured_quality": measured,
                "accuracy_score": accuracy_score(model.quality, measured),
                "meets_goal": float(model.quality.is_met(measured)),
            }
    return out
