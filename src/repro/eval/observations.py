"""Automated verification of the paper's Section 4 claims.

Runs the full sweep once and checks each claim of Sections 4.2-4.4
programmatically, producing a pass/fail report — the executable version
of EXPERIMENTS.md.  The same properties are asserted (with slack) by the
integration test suite; this module exists so a user who changes the
calibration, a model, or the scheduler can immediately see which paper
shapes still hold.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import Harness
from repro.hardware import ACCELERATOR_IDS, build_accelerator
from repro.workload import SCENARIO_ORDER

__all__ = ["Observation", "verify_observations", "format_observations"]


@dataclass(frozen=True)
class Observation:
    """One verified claim."""

    claim: str
    source: str           # paper section
    holds: bool
    evidence: str


def _sweep(harness: Harness) -> dict[tuple[str, int, str], float]:
    out: dict[tuple[str, int, str], float] = {}
    for pes in (4096, 8192):
        for acc in ACCELERATOR_IDS:
            system = build_accelerator(acc, pes)
            for scenario in SCENARIO_ORDER:
                report = harness.run_scenario(scenario, system)
                out[(acc, pes, scenario)] = report.score.overall
    return out


def verify_observations(harness: Harness | None = None) -> list[Observation]:
    """Check every Section 4 claim against a fresh sweep."""
    harness = harness or Harness()
    sweep = _sweep(harness)
    observations: list[Observation] = []

    # 4.2.1 — the composite score is necessary.
    j4 = harness.run_scenario("ar_gaming", build_accelerator("J", 4096))
    j8 = harness.run_scenario("ar_gaming", build_accelerator("J", 8192))
    observations.append(
        Observation(
            claim="4K J fails AR gaming while 8K J delivers it",
            source="4.2.1 / Figure 6",
            holds=(
                j4.simulation.frame_drop_rate() > 0.2
                and j4.score.overall < j8.score.overall - 0.1
                and j8.score.qoe > 0.9
            ),
            evidence=(
                f"4K: overall={j4.score.overall:.2f} "
                f"drops={j4.simulation.frame_drop_rate():.0%}; "
                f"8K: overall={j8.score.overall:.2f} "
                f"qoe={j8.score.qoe:.2f}"
            ),
        )
    )

    # 4.2.2 — utilisation is the wrong metric.
    observations.append(
        Observation(
            claim="Higher utilisation does not mean better experience",
            source="4.2.2 / Figure 6",
            holds=(
                j4.simulation.mean_utilization()
                >= j8.simulation.mean_utilization() - 0.02
                and j4.score.overall < j8.score.overall
            ),
            evidence=(
                # Raw busy fraction, clamped only for display.
                f"util 4K={min(1.0, j4.simulation.mean_utilization()):.0%} "
                f"vs 8K={min(1.0, j8.simulation.mean_utilization()):.0%}; "
                f"overall "
                f"{j4.score.overall:.2f} vs {j8.score.overall:.2f}"
            ),
        )
    )

    # Observation 1 — scenarios prefer different accelerators.
    winners = {
        scenario: max(
            ACCELERATOR_IDS, key=lambda a: sweep[(a, 4096, scenario)]
        )
        for scenario in SCENARIO_ORDER
    }
    observations.append(
        Observation(
            claim="Every usage scenario prefers a different XR system",
            source="4.4 Observation 1",
            holds=len(set(winners.values())) >= 3,
            evidence=", ".join(f"{s}->{w}" for s, w in winners.items()),
        )
    )

    # Observation 2 — optimal style depends on chip size.
    changed = [
        scenario
        for scenario in SCENARIO_ORDER
        if winners[scenario]
        != max(ACCELERATOR_IDS, key=lambda a: sweep[(a, 8192, scenario)])
    ]
    observations.append(
        Observation(
            claim="Optimal accelerator styles depend on the chip size",
            source="4.4 Observation 2",
            holds=bool(changed),
            evidence=f"winner changes at 8K for: {', '.join(changed) or '-'}",
        )
    )

    # Observation 3 — multi-accelerator friendliness.
    assistant_multi = max(
        sweep[(a, 4096, "ar_assistant")] for a in "DEFGHIJKLM"
    )
    assistant_fda = max(sweep[(a, 4096, "ar_assistant")] for a in "ABC")
    vr_quads = max(sweep[(a, 4096, "vr_gaming")] for a in "GHIM")
    vr_a = sweep[("A", 4096, "vr_gaming")]
    observations.append(
        Observation(
            claim=(
                "Multi-accelerator systems win the many-model scenario; "
                "the monolithic FDA wins the few-model scenario"
            ),
            source="4.4 Observation 3",
            holds=(assistant_multi >= assistant_fda - 0.01 and vr_a > vr_quads),
            evidence=(
                f"ar_assistant: multi {assistant_multi:.2f} vs FDA "
                f"{assistant_fda:.2f}; vr_gaming: A {vr_a:.2f} vs best quad "
                f"{vr_quads:.2f}"
            ),
        )
    )
    return observations


def format_observations(observations: list[Observation]) -> str:
    lines = ["Section 4 claims, verified against this build:"]
    for obs in observations:
        status = "HOLDS " if obs.holds else "BROKEN"
        lines.append(f"[{status}] ({obs.source}) {obs.claim}")
        lines.append(f"         {obs.evidence}")
    return "\n".join(lines)
