"""Figure 7: dynamic-cascading probability sweep.

Varies the probability that Gaze Estimation is triggered after Eye
Segmentation (25% .. 100%) in the VR-gaming scenario, on accelerators B
(low score) and J (high score) with 4K PEs, averaging over repeated
trials as the paper does (200 experiments).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import Harness
from repro.hardware import build_accelerator
from repro.workload import get_scenario

__all__ = ["Figure7Row", "run_figure7", "format_figure7"]

DEFAULT_PROBABILITIES: tuple[float, ...] = (0.25, 0.50, 0.75, 1.00)


@dataclass(frozen=True)
class Figure7Row:
    """Mean scores for one (accelerator, cascading probability) cell."""

    acc_id: str
    probability: float
    rt: float
    energy: float
    qoe: float
    overall: float
    trials: int


def run_figure7(
    harness: Harness | None = None,
    acc_ids: tuple[str, ...] = ("B", "J"),
    probabilities: tuple[float, ...] = DEFAULT_PROBABILITIES,
    trials: int = 200,
    total_pes: int = 4096,
) -> list[Figure7Row]:
    """Sweep the ES->GE trigger probability, averaging ``trials`` seeds."""
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    harness = harness or Harness()
    base = get_scenario("vr_gaming")
    rows: list[Figure7Row] = []
    for acc_id in acc_ids:
        system = build_accelerator(acc_id, total_pes)
        for p in probabilities:
            scenario = base.with_dependency_probability("ES", "GE", p)
            acc = {"rt": 0.0, "energy": 0.0, "qoe": 0.0, "overall": 0.0}
            for seed in range(trials):
                score = harness.run_scenario(scenario, system, seed=seed).score
                acc["rt"] += score.rt
                acc["energy"] += score.energy
                acc["qoe"] += score.qoe
                acc["overall"] += score.overall
            rows.append(
                Figure7Row(
                    acc_id=acc_id,
                    probability=p,
                    rt=acc["rt"] / trials,
                    energy=acc["energy"] / trials,
                    qoe=acc["qoe"] / trials,
                    overall=acc["overall"] / trials,
                    trials=trials,
                )
            )
    return rows


def format_figure7(rows: list[Figure7Row]) -> str:
    lines = [
        "Figure 7 — VR gaming, ES->GE cascading probability sweep (4K PEs)",
        f"{'acc':<4s}{'prob':>6s}{'rt':>8s}{'energy':>8s}{'qoe':>8s}{'overall':>9s}",
    ]
    for r in rows:
        lines.append(
            f"{r.acc_id:<4s}{r.probability:>6.0%}{r.rt:>8.3f}"
            f"{r.energy:>8.3f}{r.qoe:>8.3f}{r.overall:>9.3f}"
        )
    return "\n".join(lines)
