"""Text renderings of the paper's definitional tables.

* Table 1 — unit tasks, proxy models, datasets and quality requirements.
* Table 2 — usage scenarios and target processing rates.
* Table 3 — input sources (sensors).
* Table 5 — accelerator styles A-M.
* Table 7 — concrete model instances with their operator mixes, derived
  live from the zoo graphs (so the table stays true to the code).
"""

from __future__ import annotations

from repro.hardware import ACCELERATOR_IDS, build_accelerator
from repro.nn.layers import human_count
from repro.workload import (
    SCENARIO_ORDER,
    SCENARIOS,
    SENSORS,
    UNIT_MODELS,
)
from repro.zoo import build_model

__all__ = ["table1", "table2", "table3", "table5", "table6", "table7"]


def table1() -> str:
    """Unit tasks and proxy unit models (Table 1)."""
    lines = [
        "Table 1 — XRBench unit tasks and proxy unit models",
        f"{'Category':<22s}{'Task':<26s}{'Model':<18s}"
        f"{'Dataset':<28s}{'Requirement'}",
    ]
    for model in UNIT_MODELS.values():
        lines.append(
            f"{model.category.value:<22s}{model.task + f' ({model.code})':<26s}"
            f"{model.model_name:<18s}{model.dataset:<28s}"
            f"{model.quality.describe()}"
        )
    return "\n".join(lines)


def table2() -> str:
    """Target processing rates per scenario (Table 2)."""
    codes = list(UNIT_MODELS)
    lines = [
        "Table 2 — Target processing rates (FPS)",
        f"{'Usage Scenario':<22s}"
        + "".join(f"{c:>5s}" for c in codes)
        + "  Description",
    ]
    for name in SCENARIO_ORDER:
        scenario = SCENARIOS[name]
        cells = []
        for code in codes:
            try:
                cells.append(f"{scenario.fps_of(code):>5.0f}")
            except KeyError:
                cells.append(f"{'-':>5s}")
        deps = " ".join(
            f"[{d.upstream}->{d.downstream}:"
            f"{d.kind.value[0].upper()}@{d.probability:.0%}]"
            for d in scenario.dependencies
        )
        lines.append(
            f"{name:<22s}" + "".join(cells) + f"  {scenario.description} {deps}"
        )
    return "\n".join(lines)


def table3() -> str:
    """Input sources (Table 3)."""
    lines = [
        "Table 3 — Input sources",
        f"{'Source':<14s}{'Type':<22s}{'Rate':>8s}{'Jitter':>12s}",
    ]
    for sensor in SENSORS.values():
        lines.append(
            f"{sensor.name:<14s}{sensor.input_type:<22s}"
            f"{sensor.fps:>5.0f} FPS{sensor.jitter_ms:>9.2f} ms"
        )
    return "\n".join(lines)


def table5(total_pes: int = 4096) -> str:
    """Accelerator styles (Table 5)."""
    lines = [
        f"Table 5 — Accelerator styles ({total_pes} PEs total)",
        f"{'ID':<4s}{'Style':<7s}{'Engines'}",
    ]
    for acc_id in ACCELERATOR_IDS:
        system = build_accelerator(acc_id, total_pes)
        engines = " + ".join(s.describe() for s in system.subs)
        lines.append(f"{acc_id:<4s}{system.style:<7s}{engines}")
    return "\n".join(lines)


#: Table 6's comparison matrix: benchmark -> (cascon-MTMM, dynamic,
#: real-time scenarios, ML focus, device scope, latency, energy, accuracy,
#: QoE).  "~" marks the paper's "partially supported" triangles.
_TABLE6_ROWS: tuple[tuple[str, str, str, str, str, str, str, str, str, str], ...] = (
    ("MLPerf Inference", "", "", "y", "y", "server", "y", "", "y", ""),
    ("MLPerf Tiny", "", "", "y", "y", "edge", "y", "y", "y", ""),
    ("MLPerf Mobile", "", "", "", "y", "mobile", "y", "", "y", ""),
    ("DeepBench", "", "", "", "y", "server/edge", "y", "", "", ""),
    ("AI Benchmark", "", "", "", "y", "mobile", "y", "", "", ""),
    ("EEMBC MLMark", "", "", "", "y", "edge", "y", "", "y", ""),
    ("AIBench", "y", "~", "y", "y", "server", "y", "", "y", "y"),
    ("AIoTBench", "", "", "", "y", "mobile/edge", "y", "", "y", ""),
    ("ILLIXR", "y", "~", "y", "", "edge", "y", "y", "~", "y"),
    ("VRMark", "", "", "y", "", "PC", "y", "", "", ""),
    ("XRBench", "y", "y", "y", "y", "edge", "y", "y", "y", "y"),
)


def table6() -> str:
    """Related-benchmark comparison (Table 6)."""
    header = (
        f"{'Benchmark':<18s}{'cascon':>7s}{'dyn':>5s}{'RT':>4s}"
        f"{'ML':>4s}{'scope':>13s}{'lat':>5s}{'en':>4s}{'acc':>5s}"
        f"{'QoE':>5s}"
    )
    lines = ["Table 6 — Existing benchmarks vs XRBench", header]
    for row in _TABLE6_ROWS:
        name, cascon, dyn, rt, ml, scope, lat, en, acc, qoe = row
        lines.append(
            f"{name:<18s}{cascon:>7s}{dyn:>5s}{rt:>4s}{ml:>4s}"
            f"{scope:>13s}{lat:>5s}{en:>4s}{acc:>5s}{qoe:>5s}"
        )
    return "\n".join(lines)


def table7() -> str:
    """Model instances and their operator mixes (Table 7), from the zoo."""
    lines = [
        "Table 7 — Model instances (derived from the zoo graphs)",
        f"{'Task':<6s}{'Instance':<26s}{'MACs':>9s}{'Params':>9s}"
        f"  Major operators",
    ]
    for code, model in UNIT_MODELS.items():
        graph = build_model(code)
        ops = ", ".join(graph.major_operators(4))
        lines.append(
            f"{code:<6s}{model.instance_name:<26s}"
            f"{human_count(graph.total_macs):>9s}"
            f"{human_count(graph.total_params):>9s}  {ops}"
        )
    return "\n".join(lines)
