"""Figure 8: the real-time score function for different ``k`` values.

Plots (as data series) the shifted sigmoid of Definition 10 over latency,
with a 1-second inference window, for k in {0, 1, 15, 50} — showing how
``k`` tunes deadline sensitivity from "indifferent" (k=0, flat 0.5) to a
step function (k -> infinity).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import realtime_score

__all__ = ["Figure8Series", "run_figure8", "format_figure8"]

DEFAULT_KS: tuple[float, ...] = (0.0, 1.0, 15.0, 50.0)


@dataclass(frozen=True)
class Figure8Series:
    """One curve: real-time score over latency for a fixed ``k``."""

    k: float
    latencies_s: tuple[float, ...]
    scores: tuple[float, ...]


def run_figure8(
    ks: tuple[float, ...] = DEFAULT_KS,
    slack_s: float = 1.0,
    max_latency_s: float = 2.0,
    points: int = 81,
) -> list[Figure8Series]:
    """Sample the RT-score curve like Figure 8 (slack = 1 s)."""
    if points < 2:
        raise ValueError(f"points must be >= 2, got {points}")
    latencies = np.linspace(0.0, max_latency_s, points)
    series = []
    for k in ks:
        scores = tuple(
            # Figure 8 plots the function on a seconds axis; the score
            # function is unit-agnostic as long as latency/slack/k agree.
            realtime_score(lat, slack_s, k)
            for lat in latencies
        )
        series.append(
            Figure8Series(k=k, latencies_s=tuple(latencies), scores=scores)
        )
    return series


def format_figure8(series: list[Figure8Series], samples: int = 9) -> str:
    lines = ["Figure 8 — RtScore(latency) with a 1 s window"]
    idx = np.linspace(0, len(series[0].latencies_s) - 1, samples).astype(int)
    header = "k \\ latency(s) " + "".join(
        f"{series[0].latencies_s[i]:>7.2f}" for i in idx
    )
    lines.append(header)
    for s in series:
        lines.append(
            f"k={s.k:<12.0f} " + "".join(f"{s.scores[i]:>7.3f}" for i in idx)
        )
    return "\n".join(lines)
