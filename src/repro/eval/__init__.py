"""Evaluation drivers: regenerate every table and figure of the paper."""

from .ablations import (
    AblationRow,
    dvfs_ablation,
    enmax_sensitivity,
    jitter_ablation,
    quantization_ablation,
    rt_k_sensitivity,
    scheduler_ablation,
)
from .observations import Observation, format_observations, verify_observations
from .pareto import DesignPoint, QoePoint, evaluate_designs, pareto_frontier
from .rundb import (
    DEFAULT_DB_PATH,
    ReportGenerator,
    RunDatabase,
    RunRecord,
    summarize_report,
)
from .stats import ScoreStatistics, SeedSweep, run_seed_sweep, seed_sweep

from .figure3 import Figure3Row, format_figure3, run_figure3
from .figure5 import Figure5Row, best_accelerator, format_figure5, run_figure5
from .figure6 import Figure6Result, format_figure6, run_figure6
from .figure7 import Figure7Row, format_figure7, run_figure7
from .figure8 import Figure8Series, format_figure8, run_figure8
from .tables import table1, table2, table3, table5, table6, table7

__all__ = [
    "AblationRow",
    "DEFAULT_DB_PATH",
    "DesignPoint",
    "QoePoint",
    "ReportGenerator",
    "RunDatabase",
    "RunRecord",
    "summarize_report",
    "dvfs_ablation",
    "enmax_sensitivity",
    "evaluate_designs",
    "jitter_ablation",
    "pareto_frontier",
    "quantization_ablation",
    "rt_k_sensitivity",
    "scheduler_ablation",
    "ScoreStatistics",
    "SeedSweep",
    "run_seed_sweep",
    "seed_sweep",
    "Observation",
    "format_observations",
    "verify_observations",
    "Figure3Row",
    "Figure5Row",
    "format_figure3",
    "run_figure3",
    "Figure6Result",
    "Figure7Row",
    "Figure8Series",
    "best_accelerator",
    "format_figure5",
    "format_figure6",
    "format_figure7",
    "format_figure8",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "table1",
    "table2",
    "table3",
    "table5",
    "table6",
    "table7",
]
