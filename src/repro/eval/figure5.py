"""Figure 5: score breakdowns for every accelerator and scenario.

Runs the full sweep — 13 accelerator styles x {4K, 8K} PEs x 7 usage
scenarios — and reports the four bars of each subplot (real-time, energy,
QoE and overall score) plus the cross-scenario average of subplot (h).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import RunSpec, execute
from repro.core import Harness
from repro.hardware import ACCELERATOR_IDS, PE_BUDGETS
from repro.workload import SCENARIO_ORDER

__all__ = ["Figure5Row", "run_figure5", "format_figure5"]


@dataclass(frozen=True)
class Figure5Row:
    """One bar group: (scenario, accelerator, PE budget) -> scores."""

    scenario: str
    acc_id: str
    pe_budget: str
    rt: float
    energy: float
    qoe: float
    overall: float


def run_figure5(
    harness: Harness | None = None,
    acc_ids: tuple[str, ...] = ACCELERATOR_IDS,
    pe_budgets: dict[str, int] | None = None,
    scenarios: tuple[str, ...] = SCENARIO_ORDER,
) -> list[Figure5Row]:
    """Produce every Figure 5 bar, including the (h) averages.

    The whole sweep is expressed as :class:`RunSpec` grid points run
    through the :func:`repro.api.execute` funnel; the ``harness``
    argument survives as a carrier for a shared cost table and run
    configuration.
    """
    harness = harness or Harness()
    config = harness.config
    budgets = pe_budgets or PE_BUDGETS
    rows: list[Figure5Row] = []
    for budget_name, total_pes in budgets.items():
        for acc_id in acc_ids:
            per_scenario = []
            for scenario in scenarios:
                spec = RunSpec(
                    scenario=scenario,
                    accelerator=acc_id,
                    pes=total_pes,
                    scheduler=config.scheduler,
                    duration_s=config.duration_s,
                    seed=config.seed,
                    frame_loss=config.frame_loss_probability,
                )
                report = execute(
                    spec, costs=harness.costs, score=config.score
                )
                s = report.score
                row = Figure5Row(
                    scenario=scenario,
                    acc_id=acc_id,
                    pe_budget=budget_name,
                    rt=s.rt,
                    energy=s.energy,
                    qoe=s.qoe,
                    overall=s.overall,
                )
                rows.append(row)
                per_scenario.append(row)
            n = len(per_scenario)
            rows.append(
                Figure5Row(
                    scenario="average",
                    acc_id=acc_id,
                    pe_budget=budget_name,
                    rt=sum(r.rt for r in per_scenario) / n,
                    energy=sum(r.energy for r in per_scenario) / n,
                    qoe=sum(r.qoe for r in per_scenario) / n,
                    overall=sum(r.overall for r in per_scenario) / n,
                )
            )
    return rows


def format_figure5(rows: list[Figure5Row], metric: str = "overall") -> str:
    """Render one metric as the Figure 5 grid (scenarios x accelerators)."""
    if metric not in ("rt", "energy", "qoe", "overall"):
        raise ValueError(f"unknown metric {metric!r}")
    budgets = sorted({r.pe_budget for r in rows})
    accs = sorted({r.acc_id for r in rows})
    scenarios = list(dict.fromkeys(r.scenario for r in rows))
    lines = [f"Figure 5 — {metric} score"]
    index = {(r.scenario, r.acc_id, r.pe_budget): r for r in rows}
    for budget in budgets:
        lines.append(f"[{budget} PEs]")
        lines.append(f"{'scenario':<22s}" + "".join(f"{a:>6s}" for a in accs))
        for scenario in scenarios:
            cells = []
            for acc in accs:
                row = index.get((scenario, acc, budget))
                cells.append(
                    f"{getattr(row, metric):6.2f}" if row else "     -"
                )
            lines.append(f"{scenario:<22s}" + "".join(cells))
    return "\n".join(lines)


def best_accelerator(
    rows: list[Figure5Row], scenario: str, pe_budget: str
) -> str:
    """The accelerator id with the highest overall score for a scenario."""
    candidates = [
        r for r in rows if r.scenario == scenario and r.pe_budget == pe_budget
    ]
    if not candidates:
        raise KeyError(f"no rows for {scenario!r} @ {pe_budget}")
    return max(candidates, key=lambda r: r.overall).acc_id
