"""Figure 6: AR-gaming execution timelines on accelerator J (4K vs 8K).

Reproduces the utilisation-is-the-wrong-metric argument of Section 4.2.2:
the 4K-PE system shows a denser timeline (higher utilisation) yet drops
far more frames and scores zero on real-time, while the 8K-PE system has
visible gaps but actually delivers the experience.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import Harness, ScenarioReport
from repro.hardware import build_accelerator

__all__ = ["Figure6Result", "run_figure6", "format_figure6"]


@dataclass(frozen=True)
class Figure6Result:
    """Timeline + headline stats for one PE budget."""

    pe_budget: str
    report: ScenarioReport

    @property
    def drop_rate(self) -> float:
        return self.report.simulation.frame_drop_rate()

    @property
    def utilization(self) -> float:
        return self.report.simulation.mean_utilization()


def run_figure6(
    harness: Harness | None = None, acc_id: str = "J"
) -> dict[str, Figure6Result]:
    """Run AR gaming on the 4K and 8K variants of one accelerator."""
    harness = harness or Harness()
    out: dict[str, Figure6Result] = {}
    for budget_name, total_pes in (("4K", 4096), ("8K", 8192)):
        system = build_accelerator(acc_id, total_pes)
        report = harness.run_scenario("ar_gaming", system)
        out[budget_name] = Figure6Result(pe_budget=budget_name, report=report)
    return out


def format_figure6(results: dict[str, Figure6Result], width: int = 90) -> str:
    """Timelines plus the score panels of Figure 6."""
    lines = ["Figure 6 — AR gaming execution timeline (accelerator J)"]
    for budget, res in results.items():
        s = res.report.score
        lines.append("")
        lines.append(
            f"({budget} PEs)  Realtime: {s.rt:.2f}  Energy: {s.energy:.2f}  "
            f"QoE: {s.qoe:.2f}  Overall: {s.overall:.2f}  "
            f"drops: {res.drop_rate:.1%}  "
            # Raw busy fraction; clamp only at display time.
            f"utilization: {min(1.0, res.utilization):.1%}"
        )
        lines.append(res.report.timeline(width=width, until_s=0.6))
    return "\n".join(lines)
