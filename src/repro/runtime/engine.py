"""Execution engines: per-sub-accelerator runtime state.

The multi-tenant runtime models each sub-accelerator as an
:class:`ExecutionEngine` that owns its occupancy state, busy-time
accounting, DVFS operating point, and an execution log.  Work arrives as
:class:`WorkItem` values — session-tagged and segment-granular, so a long
model split by :mod:`repro.runtime.segmentation` can yield the engine
between segments (a preemption point) and resume on whichever engine is
best then.

Engines append an :class:`ExecutionRecord` per occupancy interval; the
records are what :mod:`repro.runtime.timeline` renders, so segment-level
runs produce accurate Gantt charts (one bar per segment, not one bar per
request).
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field, replace
from typing import Iterator

from repro.costmodel import DvfsPoint, ModelCost
from repro.hardware import SubAccelerator
from repro.workload import InferenceRequest

__all__ = ["WorkItem", "ExecutionRecord", "ExecutionEngine", "EngineFleet"]


@dataclass(frozen=True, slots=True)
class WorkItem:
    """One schedulable unit: a request (or one segment of it) in a session.

    ``task_code`` is the cost-table code pricing this piece; ``None``
    means the whole model.  Segment items of the same request share the
    underlying :class:`InferenceRequest`, whose user-visible timing spans
    first-segment start to last-segment end.

    ``chain`` optionally carries the model's compile-time
    :class:`~repro.runtime.segmentation.SegmentChain` (piece codes and
    per-segment cost tables, resolved once at plan time), so successor
    lookups and governor budget reservations never re-derive the plan.
    The field is identity-irrelevant: two items describing the same
    dispatch compare equal whether or not a chain rides along.
    """

    request: InferenceRequest
    session_id: int = 0
    segment_index: int = 0
    num_segments: int = 1
    task_code: str | None = None
    chain: object | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.num_segments < 1:
            raise ValueError(
                f"num_segments must be >= 1, got {self.num_segments}"
            )
        if not 0 <= self.segment_index < self.num_segments:
            raise ValueError(
                f"segment_index {self.segment_index} out of range for "
                f"{self.num_segments} segments"
            )

    @property
    def code(self) -> str:
        """The cost-table task code of this piece of work."""
        return self.task_code or self.request.model_code

    @property
    def is_first_segment(self) -> bool:
        return self.segment_index == 0

    @property
    def is_final_segment(self) -> bool:
        return self.segment_index == self.num_segments - 1

    def successor(self, task_code: str | None) -> WorkItem:
        """The next segment of the same request."""
        if self.is_final_segment:
            raise ValueError(f"{self!r} has no successor segment")
        return replace(
            self, segment_index=self.segment_index + 1, task_code=task_code
        )

    def __repr__(self) -> str:  # keep logs compact
        seg = (
            f" seg {self.segment_index + 1}/{self.num_segments}"
            if self.num_segments > 1
            else ""
        )
        return (
            f"WI(s{self.session_id} {self.request.model_code}"
            f"#{self.request.model_frame}{seg})"
        )


@dataclass(frozen=True, slots=True)
class ExecutionRecord:
    """One engine occupancy interval (the unit of the execution timeline)."""

    sub_index: int
    session_id: int
    model_code: str
    model_frame: int
    segment_index: int
    num_segments: int
    start_s: float
    end_s: float
    energy_mj: float
    #: Name of the DVFS operating point this interval ran at (``None`` =
    #: nominal frequency).  A governed run re-decides per dispatch, so
    #: the record log doubles as the engine's frequency timeline.
    dvfs: str | None = None
    #: ``True`` when the interval was cut short by an engine failure
    #: (fault injection): ``end_s`` is the kill time, not the planned
    #: completion, and ``energy_mj`` is the energy spent up to it.
    aborted: bool = False

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass(slots=True)
class ExecutionEngine:
    """Runtime state of one sub-accelerator.

    Enforces the hardware-occupancy condition (one item at a time),
    accrues busy time, and logs every execution.  ``dvfs`` is the
    engine's configured *base* operating point (``None`` means nominal
    frequency); the *current* operating point starts there and may be
    moved per dispatch by a DVFS governor via
    :meth:`set_operating_point`, which logs every frequency transition.

    ``horizon_s`` bounds busy-time accounting: occupancy beyond it (the
    drain tail of in-flight work past the measurement window) is real
    wall-clock execution but must not count toward window-normalised
    utilization, so :meth:`begin` charges only the overlap with
    ``[0, horizon_s]``.  ``None`` (the default) charges the full
    occupancy, for callers that do their own windowing.
    """

    sub: SubAccelerator
    dvfs: DvfsPoint | None = None
    horizon_s: float | None = None
    busy_time_s: float = 0.0
    records: list[ExecutionRecord] = field(default_factory=list)
    #: (time_s, from, to) frequency transitions, oldest first.
    dvfs_transitions: list[
        tuple[float, DvfsPoint | None, DvfsPoint | None]
    ] = field(default_factory=list)
    #: Fault-injection health state: a failed engine accepts no work
    #: (and leaves the fleet's idle list); ``max_frequency_scale`` is
    #: the thermal ceiling on the DVFS ladder while throttled (``None``
    #: = unthrottled).  ``health_log`` records every transition as
    #: ``(time_s, "fail" | "recover" | "throttle:<point>" | "release")``.
    failed: bool = False
    max_frequency_scale: float | None = None
    health_log: list[tuple[float, str]] = field(default_factory=list)
    _point: DvfsPoint | None = field(default=None, repr=False)
    _current: WorkItem | None = field(default=None, repr=False)
    _started_s: float = field(default=0.0, repr=False)
    _until_s: float = field(default=0.0, repr=False)
    _energy_mj: float = field(default=0.0, repr=False)
    _thermal_point: DvfsPoint | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self._point = self.dvfs

    @property
    def index(self) -> int:
        return self.sub.index

    @property
    def idle(self) -> bool:
        return self._current is None

    @property
    def current(self) -> WorkItem | None:
        return self._current

    @property
    def busy_until_s(self) -> float:
        """When the engine frees up (meaningless while idle)."""
        return self._until_s

    @property
    def operating_point(self) -> DvfsPoint | None:
        """The point the engine currently runs at (``None`` = nominal)."""
        return self._point

    @property
    def effective_dvfs(self) -> DvfsPoint | None:
        """The base operating point, clamped by any thermal ceiling.

        The *identical* object as :attr:`dvfs` while unthrottled (or
        while the base point already respects the ceiling), so
        unthrottled pricing stays bit-identical to the historical path.
        """
        if self.max_frequency_scale is None:
            return self.dvfs
        base_scale = 1.0 if self.dvfs is None else self.dvfs.frequency_scale
        if base_scale <= self.max_frequency_scale:
            return self.dvfs
        return self._thermal_point

    def throttle(
        self,
        now_s: float,
        max_frequency_scale: float,
        ladder: tuple[DvfsPoint, ...],
    ) -> None:
        """Impose a thermal DVFS ceiling; picks the clamp point off
        ``ladder`` (the fastest point still under the ceiling, or the
        slowest point when none fits)."""
        permitted = [
            p for p in ladder if p.frequency_scale <= max_frequency_scale
        ]
        if permitted:
            point = max(permitted, key=lambda p: p.frequency_scale)
        else:
            point = min(ladder, key=lambda p: p.frequency_scale)
        self.max_frequency_scale = max_frequency_scale
        self._thermal_point = point
        self.health_log.append((now_s, f"throttle:{point.name}"))

    def release_thermal(self, now_s: float) -> None:
        """Lift the thermal ceiling (engine cooled off)."""
        self.max_frequency_scale = None
        self._thermal_point = None
        self.health_log.append((now_s, "release"))

    def abort(self, now_s: float) -> tuple[WorkItem, float, float]:
        """Kill the in-flight item (engine failure at ``now_s``).

        Logs a truncated, ``aborted`` execution record charging only the
        energy spent up to the kill, rolls the busy-time charge of the
        unexecuted remainder back out, and frees the engine.  Returns
        ``(item, planned_end_s, unspent_energy_mj)`` so the caller can
        undo the request-level accounting :meth:`begin`'s dispatch did.
        """
        item = self._current
        if item is None:
            raise ValueError(f"engine {self.index} is idle")
        span = self._until_s - self._started_s
        fraction = (now_s - self._started_s) / span if span > 0 else 1.0
        fraction = min(1.0, max(0.0, fraction))
        spent_mj = self._energy_mj * fraction
        self.records.append(
            ExecutionRecord(
                sub_index=self.index,
                session_id=item.session_id,
                model_code=item.request.model_code,
                model_frame=item.request.model_frame,
                segment_index=item.segment_index,
                num_segments=item.num_segments,
                start_s=self._started_s,
                end_s=now_s,
                energy_mj=spent_mj,
                dvfs=self._point.name if self._point is not None else None,
                aborted=True,
            )
        )
        planned_end_s = self._until_s
        if self.horizon_s is None:
            self.busy_time_s -= planned_end_s - now_s
        else:
            self.busy_time_s -= max(
                0.0,
                min(planned_end_s, self.horizon_s)
                - min(now_s, self.horizon_s),
            )
        self._current = None
        return item, planned_end_s, self._energy_mj - spent_mj

    def set_operating_point(
        self, point: DvfsPoint | None, now_s: float
    ) -> None:
        """Move the engine to ``point``, logging the transition.

        A no-op when the engine is already there, so ungoverned runs
        (every dispatch at the base point) log no transitions.
        """
        if point != self._point:
            self.dvfs_transitions.append((now_s, self._point, point))
            self._point = point

    def begin(self, item: WorkItem, now_s: float, cost: ModelCost) -> float:
        """Occupy the engine with ``item``; returns the completion time."""
        if self._current is not None:
            raise ValueError(
                f"engine {self.index} is already running {self._current!r} "
                f"(hardware-occupancy condition)"
            )
        if self.failed:
            raise ValueError(
                f"engine {self.index} is failed and cannot accept work"
            )
        self._current = item
        self._started_s = now_s
        self._until_s = now_s + cost.latency_s
        self._energy_mj = cost.energy_mj
        if self.horizon_s is None:
            self.busy_time_s += cost.latency_s
        else:
            # Clip the charge to the measurement window at accounting
            # time: the drain tail past the horizon still *runs* (the
            # records keep the true interval) but must not inflate
            # window-normalised utilization past 100%.
            self.busy_time_s += max(
                0.0,
                min(self._until_s, self.horizon_s)
                - min(now_s, self.horizon_s),
            )
        return self._until_s

    def finish(self, now_s: float) -> WorkItem:
        """Release the engine; logs the execution and returns its item."""
        item = self._current
        if item is None:
            raise ValueError(f"engine {self.index} is idle")
        self.records.append(
            ExecutionRecord(
                sub_index=self.index,
                session_id=item.session_id,
                model_code=item.request.model_code,
                model_frame=item.request.model_frame,
                segment_index=item.segment_index,
                num_segments=item.num_segments,
                start_s=self._started_s,
                end_s=self._until_s,
                energy_mj=self._energy_mj,
                dvfs=self._point.name if self._point is not None else None,
            )
        )
        self._current = None
        return item

    def describe(self) -> str:
        point = f" [{self._point.name}]" if self._point else ""
        return f"{self.sub.describe()}{point}"


def _engine_index(engine: ExecutionEngine) -> int:
    return engine.index


#: Sentinel for :meth:`EngineFleet.begin`: leave the operating point as
#: is (``None`` is a real point — nominal — so it cannot be the default).
_KEEP_POINT = object()


@dataclass
class EngineFleet:
    """The system's engines plus an incrementally-maintained idle set.

    All occupancy transitions flow through :meth:`begin`/:meth:`finish`,
    which keep ``idle`` — the index-ordered list of free engines — exact
    at all times.  The event loop therefore reads idleness in O(1)
    instead of scanning every engine on every dispatch pass, and
    schedulers receive the maintained list directly.  The list is *live*:
    it mutates as work starts and finishes, so schedulers must not hold
    on to it across calls.
    """

    engines: list[ExecutionEngine]
    _idle: list[ExecutionEngine] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._idle = sorted(
            (e for e in self.engines if e.idle and not e.failed),
            key=_engine_index,
        )

    @property
    def idle(self) -> list[ExecutionEngine]:
        """Free engines, index-ordered.  Live view — do not mutate."""
        return self._idle

    def begin(self, engine: ExecutionEngine, item: WorkItem,
              now_s: float, cost: ModelCost, dvfs=_KEEP_POINT) -> float:
        """Occupy ``engine`` with ``item``; returns the completion time.

        ``dvfs`` (a :class:`~repro.costmodel.DvfsPoint` or ``None`` for
        nominal) moves the engine to that operating point first — the
        one mutation path a DVFS governor uses, so every frequency
        transition is logged on the engine.  Omitted, the point is left
        untouched.
        """
        if dvfs is not _KEEP_POINT:
            engine.set_operating_point(dvfs, now_s)
        end_s = engine.begin(item, now_s, cost)
        self._idle.remove(engine)
        return end_s

    def finish(self, sub_index: int, now_s: float) -> WorkItem:
        """Release the engine at ``sub_index``; returns its work item."""
        engine = self.engines[sub_index]
        item = engine.finish(now_s)
        insort(self._idle, engine, key=_engine_index)
        return item

    def fail(
        self, sub_index: int, now_s: float
    ) -> tuple[WorkItem, float, float] | None:
        """Take the engine at ``sub_index`` out of service (fault event).

        An idle engine simply leaves the idle list; a busy one has its
        in-flight item killed via :meth:`ExecutionEngine.abort`, whose
        ``(item, planned_end_s, unspent_energy_mj)`` result is returned
        so the event loop can requeue the item and undo its accounting.
        Returns ``None`` when the engine was idle.
        """
        engine = self.engines[sub_index]
        if engine.failed:
            raise ValueError(f"engine {sub_index} is already failed")
        killed = None
        if engine.idle:
            self._idle.remove(engine)
        else:
            killed = engine.abort(now_s)
        engine.failed = True
        engine.health_log.append((now_s, "fail"))
        return killed

    def recover(self, sub_index: int, now_s: float) -> None:
        """Return the engine at ``sub_index`` to service (fault event)."""
        engine = self.engines[sub_index]
        if not engine.failed:
            raise ValueError(f"engine {sub_index} is not failed")
        engine.failed = False
        engine.health_log.append((now_s, "recover"))
        insort(self._idle, engine, key=_engine_index)

    def __len__(self) -> int:
        return len(self.engines)

    def __getitem__(self, index: int) -> ExecutionEngine:
        return self.engines[index]

    def __iter__(self) -> Iterator[ExecutionEngine]:
        return iter(self.engines)
