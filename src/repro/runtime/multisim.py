"""Multi-tenant execution engine: N scenario sessions on one system.

This is the production-shaped core of the runtime.  Where the seed
:class:`~repro.runtime.simulator.Simulator` drove exactly one scenario
against one accelerator, :class:`MultiScenarioSimulator` multiplexes any
number of independent *sessions* — each a scenario instance bound to its
own seed (a distinct user), with its own load generator, pending queue,
dependency tracker and QoE accounting — onto one shared
:class:`~repro.hardware.AcceleratorSystem` through a single event queue.

Key properties:

* **Segment-level dispatch** (``granularity="segment"``): every model
  whose graph admits residual-safe cuts is split into MAC-balanced
  segments (:func:`repro.runtime.segmentation.split_graph`) at
  simulator-build time.  A dispatched request occupies an engine for one
  segment at a time, yielding it between segments; the next segment may
  resume on a *different* engine (finer engine packing).  In-flight
  requests resume with priority over fresh work, so on a single-engine
  system the schedule — and therefore every completion count — is
  identical to whole-model dispatch (per-layer costs are additive across
  split points).
* **Dynamic sessions**: every session has a lifetime window
  (``arrival_s`` to ``departure_s``) and an optional sequence of
  mid-run :class:`SessionPhase` activity changes.  SESSION_JOIN /
  SESSION_LEAVE / SESSION_PHASE events admit and retire sessions
  incrementally in the maintained waiting/fleet state: a joining
  session's request stream starts at its arrival, a departing session's
  waiting work is retired (marked dropped — it was streamed but will
  never run), and a phase change swaps the session's scenario from that
  instant, retiring the previous activity's waiting work and pending
  segment chains.  Work is only ever *dispatched* inside a session's
  active window; a segment already running on an engine is never aborted
  (it drains, but spawns no successors or cascades once the session is
  gone or has switched activity).  Static sessions
  (arrive at 0, never leave, no phases) take exactly the historical code
  path — the golden schedule checksums pin this bit-identically.
* **Deadline-aware segment preemption** (opt-in): a scheduler exposing
  ``preemptive=True`` and ``should_preempt(...)`` is consulted at each
  segment boundary before a waiting segment chain resumes; EDF and
  rate-monotonic can displace the stale chain when fresher work is more
  urgent.  Preemption points stay at segment boundaries — never
  mid-segment — preserving the paper's preemption-point semantics.
* **Per-session accounting**: each session yields its own
  :class:`~repro.runtime.simulator.SimulationResult`, so existing scoring
  (:func:`repro.core.aggregate.score_simulation`) applies per session
  unchanged; dynamic sessions carry their active window so QoE-style
  rates normalise by *active* (not streamed) duration.  System-level busy
  time and the execution-record log live on the
  :class:`MultiSessionResult`.
* **Cost caching**: dispatch-path pricing flows through
  :meth:`repro.hardware.AcceleratorSystem.engine_cost`, which answers
  from a :class:`~repro.costmodel.CachedCostTable` keyed on
  (task, engine, DVFS state) when one is supplied.
* **Slack-aware DVFS** (``dvfs_policy``): a
  :class:`~repro.runtime.governor.DvfsGovernor` consulted at every
  dispatch boundary may move the engine's operating point per piece of
  work — the paper's Appendix B.1 slack-into-energy trade, live.  The
  default ``"static"`` policy installs no governor at all, keeping the
  historical dispatch path bit-identical.  Frequency transitions are
  logged per engine and each :class:`ExecutionRecord` carries the point
  it ran at.
* **Determinism**: sessions are iterated in id order, merged queues are
  sorted with session-id tie-breaks, lifecycle events are scheduled at
  build time (so they outrank same-instant work events), and all
  randomness — including the churn plan — flows through the per-session
  seeds: two runs with the same specs are bit-identical.
* **Incremental dispatch state**: the event loop never recomputes what it
  can maintain.  Waiting work lives in one
  :class:`~repro.runtime.queues.WaitingQueue` updated on
  arrival/dispatch/retirement (work items are built — and their segment
  plans resolved — once per request, not once per scheduler call);
  resumable segments sit in a heap; engine idleness is a set maintained
  by :class:`~repro.runtime.engine.EngineFleet` on begin/finish; and
  per-session record partitioning is a single pass at result-build time.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.costmodel import (
    DEFAULT_DVFS_POINTS,
    CachedCostTable,
    CostCacheStats,
    CostTable,
    DvfsPoint,
)
from repro.hardware import AcceleratorSystem
from repro.workload import (
    Dependency,
    InferenceRequest,
    LoadGenerator,
    UsageScenario,
    scale_rates,
)

from .admission import (
    DEGRADATION_LADDER,
    AdmissionController,
    AdmissionRecord,
    ControlAction,
    SessionView,
    make_admission,
)
from .engine import EngineFleet, ExecutionEngine, ExecutionRecord, WorkItem
from .events import EventKind, EventQueue
from .faults import FaultAction, FaultPlan, FaultRecord, make_fault_plan
from .governor import DispatchContext, DvfsGovernor, make_governor
from .queues import DependencyTracker, WaitingQueue
from .scheduler import Scheduler, SegmentScheduler, as_segment_scheduler
from .segmentation import SegmentChain, dispatch_segment_code, split_graph
from .simulator import SimulationResult

__all__ = [
    "GRANULARITIES",
    "SessionPhase",
    "SessionSpec",
    "MultiSessionResult",
    "MultiScenarioSimulator",
]

#: Dispatch granularities: whole models, or Herald-style segments.
GRANULARITIES: tuple[str, ...] = ("model", "segment")


@dataclass(frozen=True)
class SessionPhase:
    """A mid-run activity change: from ``at_s`` the session streams
    ``scenario`` instead of whatever it streamed before.

    Phase boundaries mirror the departure semantics: the session's
    waiting work *and* its pending segment chains are retired (the
    previous activity's frames are stale), while a segment already
    running on an engine finishes — its chain just stops at the next
    segment boundary.
    """

    at_s: float
    scenario: UsageScenario

    def __post_init__(self) -> None:
        if self.at_s <= 0:
            raise ValueError(
                f"phase transitions must happen mid-run (at_s > 0), "
                f"got {self.at_s}"
            )


@dataclass(frozen=True)
class SessionSpec:
    """One tenant: a scenario instance bound to a seed (a distinct user).

    ``arrival_s``/``departure_s`` bound the session's lifetime within the
    run: its request stream starts at arrival and no work of this session
    is dispatched at or after departure.  The defaults — arrive at 0,
    never depart, no phases — describe a static session and reproduce the
    historical behaviour exactly.  ``departure_s=None`` additionally
    means the session's in-flight work may drain past the streamed
    duration, as single-tenant runs always allowed.
    """

    session_id: int
    scenario: UsageScenario
    seed: int = 0
    frame_loss_probability: float = 0.0
    arrival_s: float = 0.0
    departure_s: float | None = None
    phases: tuple[SessionPhase, ...] = ()

    def __post_init__(self) -> None:
        if self.session_id < 0:
            raise ValueError(
                f"session_id must be >= 0, got {self.session_id}"
            )
        if self.arrival_s < 0:
            raise ValueError(
                f"arrival_s must be >= 0, got {self.arrival_s}"
            )
        if self.departure_s is not None and self.departure_s <= self.arrival_s:
            raise ValueError(
                f"session {self.session_id} departs at {self.departure_s} "
                f"but only arrives at {self.arrival_s}"
            )
        if isinstance(self.phases, list):
            object.__setattr__(self, "phases", tuple(self.phases))
        previous = self.arrival_s
        for phase in self.phases:
            if phase.at_s <= previous:
                raise ValueError(
                    f"session {self.session_id} phase transitions must be "
                    f"strictly increasing and after arrival "
                    f"({self.arrival_s}); got at_s={phase.at_s}"
                )
            previous = phase.at_s
        if self.departure_s is not None and previous >= self.departure_s:
            raise ValueError(
                f"session {self.session_id} has a phase transition at "
                f"{previous} at or after its departure ({self.departure_s})"
            )

    @property
    def dynamic(self) -> bool:
        """Whether this session has any lifetime dynamics at all."""
        return (
            self.arrival_s > 0
            or self.departure_s is not None
            or bool(self.phases)
        )


def _merged_scenario(scenarios: list[UsageScenario]) -> UsageScenario:
    """The union scenario a phased session is scored against.

    Models are deduplicated by code (first phase wins — the rates only
    feed per-phase load generation, which already ran); dependencies are
    deduplicated structurally.  Single-phase sessions pass through
    untouched.
    """
    if len(scenarios) == 1:
        return scenarios[0]
    models = {}
    for scenario in scenarios:
        for sm in scenario.models:
            models.setdefault(sm.code, sm)
    dependencies: dict[Dependency, None] = {}
    for scenario in scenarios:
        for dep in scenario.dependencies:
            dependencies.setdefault(dep)
    names = []
    for scenario in scenarios:
        if scenario.name not in names:
            names.append(scenario.name)
    return UsageScenario(
        name="+".join(names),
        description=(
            "phased session: " + ", then ".join(s.name for s in scenarios)
        ),
        models=tuple(models.values()),
        dependencies=tuple(dependencies),
    )


@dataclass
class _SessionState:
    """Mutable runtime state of one session.

    Waiting work is *not* per-session state: all sessions share the
    event loop's single :class:`~repro.runtime.queues.WaitingQueue`,
    which keys its drop policy on (session, model).  ``windows`` is the
    session's phase plan — ``(start_s, stop_s, scenario)`` triples
    covering its active lifetime; ``phase`` indexes the current one.
    ``loadgen``/``deps`` belong to the current phase and work in
    *phase-local* time (``offset_s`` translates to absolute run time).
    ``phase_of`` maps request ids to the phase that generated them, so
    completions of stale-phase work spawn no cascades.
    """

    spec: SessionSpec
    windows: list[tuple[float, float, UsageScenario]]
    requests: list[InferenceRequest]
    busy_time_s: dict[int, float]
    spawned: dict[str, int]
    phase: int = -1
    loadgen: LoadGenerator | None = None
    deps: DependencyTracker | None = None
    offset_s: float = 0.0
    active: bool = False
    phase_of: dict[int, int] = field(default_factory=dict)

    @property
    def active_duration_s(self) -> float:
        return sum(stop - start for start, stop, _ in self.windows)


@dataclass
class MultiSessionResult:
    """Outcome of one multi-tenant run.

    ``sessions`` holds one :class:`SimulationResult` per session (indexed
    by session id), each scoring-compatible with the single-tenant path.
    ``busy_time_s`` is the *system-level* per-engine busy time, clipped
    to the streamed duration at accounting time — occupancy is bounded
    by the window, so utilization never reads past 100%; the drain tail
    of in-flight work remains visible in ``records``.
    """

    system: AcceleratorSystem
    duration_s: float
    sessions: list[SimulationResult]
    records: list[ExecutionRecord]
    busy_time_s: dict[int, float]
    cost_stats: CostCacheStats | None = None
    #: Lazy id index: (the sessions list it was built from, the index).
    #: ``init=False`` keeps ``dataclasses.replace`` from copying a cache
    #: built against another instance's sessions.
    _session_index: tuple[
        list[SimulationResult], dict[int, SimulationResult]
    ] | None = field(default=None, init=False, repr=False, compare=False)

    @property
    def num_sessions(self) -> int:
        return len(self.sessions)

    def session(self, session_id: int) -> SimulationResult:
        """The session with ``session_id`` — a dict probe, not a scan.

        The id index is built lazily and rebuilt whenever ``sessions``
        is a different list (or a different size) than the one it was
        built from; raises ``KeyError`` for unknown ids.
        """
        cached = self._session_index
        if (
            cached is None
            or cached[0] is not self.sessions
            or len(cached[1]) != len(self.sessions)
        ):
            index = {s.session_id: s for s in self.sessions}
            self._session_index = (self.sessions, index)
        else:
            index = cached[1]
        try:
            return index[session_id]
        except KeyError:
            raise KeyError(
                f"no session {session_id} in this result"
            ) from None

    def all_requests(self) -> list[InferenceRequest]:
        return [r for s in self.sessions for r in s.requests]

    def total_energy_mj(self) -> float:
        """Total energy spent across all sessions, in millijoules.

        Summed over the engine occupancy log, so it is *honest*: energy
        burnt on segments whose request was later dropped (a departed
        session's drained chain) is counted — the hardware spent it.
        """
        return sum(record.energy_mj for record in self.records)

    def system_utilization(self, sub_index: int) -> float:
        """Busy fraction of one engine across all sessions.

        Busy time is clipped to the streamed duration at accounting
        time, so the fraction is a true occupancy share (<= 1.0 up to
        rounding) even when in-flight work drains past the horizon.
        """
        return self.busy_time_s.get(sub_index, 0.0) / self.duration_s

    def mean_system_utilization(self) -> float:
        subs = self.system.num_subs
        return sum(self.system_utilization(i) for i in range(subs)) / subs


@dataclass
class MultiScenarioSimulator:
    """Runs N concurrent scenario sessions on one accelerator system.

    Attributes:
        sessions: the tenant sessions to multiplex (ids must be unique).
            Each may carry an ``(arrival_s, departure_s)`` lifetime and
            mid-run :class:`SessionPhase` changes; the defaults are the
            static all-alive case.
        system: the shared accelerator system.
        scheduler: a legacy :class:`Scheduler` (adapted automatically) or
            a session-aware :class:`SegmentScheduler`.  If the policy
            keeps cross-run state it should expose ``reset()``, which is
            invoked at the start of every run so a shared instance gives
            order-independent results.
        duration_s: streamed seconds per session (must be positive).
        costs: the cost table; for segment granularity a table without a
            graph registry is wrapped in a :class:`CachedCostTable` so
            virtual segment codes are priceable.
        granularity: ``"model"`` (whole-model dispatch, the seed
            behaviour) or ``"segment"`` (split models yield engines at
            segment boundaries).
        segments_per_model: target segments per model under segment
            granularity; models without enough residual-safe cut points
            run whole.
        engine_dvfs: optional per-engine *base* DVFS operating points.
        dvfs_policy: runtime DVFS governor policy — ``"static"`` (every
            dispatch at the engine's base point, the historical
            behaviour, pinned by the golden schedule checksums),
            ``"slack"`` (greedy slack-into-energy via
            :func:`repro.costmodel.best_point_for_slack`) or
            ``"race_to_idle"`` (always the fastest ladder point).  A
            :class:`~repro.runtime.governor.DvfsGovernor` instance may
            be supplied directly for custom policies.
        admission: QoE admission-control policy — ``"none"`` (the
            open-loop historical path, pinned by the golden schedule
            checksums), ``"shed"`` (reject/drop lowest-priority sessions
            under overload) or ``"degrade"`` (switch struggling
            sessions' models to cheaper variants mid-run).  An
            :class:`~repro.runtime.admission.AdmissionController`
            instance may be supplied directly for custom policies.
        faults: hardware-fault injection — ``"none"`` (no plan installed,
            the historical path, pinned by the golden schedule
            checksums), a profile name from
            :data:`~repro.runtime.faults.FAULT_PROFILES` (a seeded
            :class:`~repro.runtime.faults.FaultPlan` is built from
            ``fault_seed``), or a :class:`FaultPlan` instance.  Engine
            failures kill and requeue in-flight work under the plan's
            retry budget; thermal events clamp the DVFS ladder.
        fault_seed: seed for string-named fault profiles (ignored when a
            plan instance is supplied).
        segment_plan: optional precompiled segment-chain table — model
            code to the exact piece codes it splits into (a
            :class:`~repro.api.DispatchPlan`'s ``segment_chains``).
            When supplied it is the authority: models absent from it
            run whole (no split is attempted), and a code mismatch
            against the deterministic re-split raises — plan/table
            drift must fail loudly, not reschedule quietly.  ``None``
            (the default) derives the chains as always.
    """

    sessions: list[SessionSpec]
    system: AcceleratorSystem
    scheduler: Scheduler | SegmentScheduler
    duration_s: float = 1.0
    costs: CostTable = field(default_factory=CachedCostTable)
    granularity: str = "model"
    segments_per_model: int = 2
    engine_dvfs: dict[int, DvfsPoint] = field(default_factory=dict)
    dvfs_policy: str | DvfsGovernor = "static"
    admission: str | AdmissionController = "none"
    faults: str | FaultPlan | None = "none"
    fault_seed: int = 0
    segment_plan: Mapping[str, Sequence[str]] | None = None

    def __post_init__(self) -> None:
        if not self.sessions:
            raise ValueError("at least one session is required")
        if self.duration_s <= 0:
            raise ValueError(
                f"duration_s must be > 0, got {self.duration_s} "
                f"(a zero-length run has no streamed frames and no "
                f"utilization denominator)"
            )
        ids = [spec.session_id for spec in self.sessions]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate session ids: {ids}")
        for spec in self.sessions:
            if spec.arrival_s >= self.duration_s:
                raise ValueError(
                    f"session {spec.session_id} arrives at "
                    f"{spec.arrival_s}, at or after the streamed duration "
                    f"{self.duration_s} — it would never be offered work"
                )
        if self.granularity not in GRANULARITIES:
            raise ValueError(
                f"granularity must be one of {GRANULARITIES}, "
                f"got {self.granularity!r}"
            )
        if self.segments_per_model < 1:
            raise ValueError(
                f"segments_per_model must be >= 1, "
                f"got {self.segments_per_model}"
            )
        for index in self.engine_dvfs:
            if not 0 <= index < self.system.num_subs:
                raise ValueError(
                    f"engine_dvfs references engine {index}, but the "
                    f"system has {self.system.num_subs}"
                )
        # Resolve the governor eagerly so a bad policy name fails at
        # construction time; "static" resolves to no governor at all —
        # the exact historical dispatch path.
        if isinstance(self.dvfs_policy, str):
            self._governor = make_governor(self.dvfs_policy)
        else:
            self._governor = self.dvfs_policy
        # Same pattern for the QoE control plane: "none" resolves to no
        # controller, so no control ticks are ever scheduled and the
        # event stream is the exact historical one.
        if isinstance(self.admission, str):
            self._controller = make_admission(self.admission)
        else:
            self._controller = self.admission
        # And for fault injection: "none" resolves to no plan, so no
        # fault events are ever scheduled and the event stream is the
        # exact historical one.  Building the plan here also runs its
        # validation (including the all-engines-down capacity veto) at
        # construction — i.e. spec-compile — time.
        if isinstance(self.faults, str):
            self._fault_plan = make_fault_plan(
                self.faults,
                self.system.num_subs,
                self.duration_s,
                seed=self.fault_seed,
            )
        else:
            self._fault_plan = self.faults
            if (
                self._fault_plan is not None
                and self._fault_plan.num_engines != self.system.num_subs
            ):
                raise ValueError(
                    f"fault plan describes "
                    f"{self._fault_plan.num_engines} engine(s) but the "
                    f"system has {self.system.num_subs}"
                )

    @classmethod
    def replicate(
        cls,
        scenario: UsageScenario,
        system: AcceleratorSystem,
        scheduler: Scheduler | SegmentScheduler,
        num_sessions: int,
        base_seed: int = 0,
        frame_loss_probability: float = 0.0,
        windows=None,
        **kwargs,
    ) -> MultiScenarioSimulator:
        """N sessions of the same scenario with consecutive seeds.

        ``windows`` optionally supplies one
        :class:`~repro.workload.SessionWindow` (or any object with
        ``arrival_s``/``departure_s``) per session — the churn plan.
        """
        if num_sessions < 1:
            raise ValueError(
                f"num_sessions must be >= 1, got {num_sessions}"
            )
        if windows is not None and len(windows) != num_sessions:
            raise ValueError(
                f"got {len(windows)} lifetime windows for "
                f"{num_sessions} sessions"
            )
        specs = []
        for i in range(num_sessions):
            window = windows[i] if windows is not None else None
            specs.append(SessionSpec(
                i, scenario, base_seed + i, frame_loss_probability,
                arrival_s=window.arrival_s if window else 0.0,
                departure_s=window.departure_s if window else None,
            ))
        return cls(sessions=specs, system=system, scheduler=scheduler,
                   **kwargs)

    # -- session lifetime planning -------------------------------------------

    def _phase_windows(
        self, spec: SessionSpec
    ) -> list[tuple[float, float, UsageScenario]]:
        """The session's active life as (start, stop, scenario) triples.

        Stops are clipped to the streamed duration; phases that start at
        or after the effective end are skipped (nothing would stream).
        """
        end = self.duration_s
        if spec.departure_s is not None:
            end = min(spec.departure_s, self.duration_s)
        starts = [spec.arrival_s] + [p.at_s for p in spec.phases]
        scenarios = [spec.scenario] + [p.scenario for p in spec.phases]
        windows = []
        for i, (start, scenario) in enumerate(zip(starts, scenarios)):
            stop = starts[i + 1] if i + 1 < len(starts) else end
            stop = min(stop, end)
            if start >= stop:
                continue
            windows.append((start, stop, scenario))
        return windows

    # -- segment planning ----------------------------------------------------

    def _plan_segments(self, costs) -> dict[str, SegmentChain]:
        """Per-model compile-time segment chains, registering segment graphs.

        Models that cannot be split (too few layers, no residual-safe
        cuts) are simply absent — the event loop gives them a lazy
        whole-model chain.  Phase scenarios' models are planned too — a
        session may only stream them mid-run.  Each plan is a
        :class:`~repro.runtime.segmentation.SegmentChain`: the piece
        codes plus prebuilt suffix views and a per-(engine, point)
        latency memo, resolved once here instead of per request.
        """
        plans: dict[str, SegmentChain] = {}
        if self.granularity != "segment" or self.segments_per_model < 2:
            return plans
        planned = self.segment_plan
        seen: set[str] = set()
        scenarios = []
        for spec in self.sessions:
            scenarios.append(spec.scenario)
            scenarios.extend(p.scenario for p in spec.phases)
        for scenario in scenarios:
            for sm in scenario.models:
                if sm.code in seen:
                    continue
                seen.add(sm.code)
                if planned is not None:
                    # A compiled plan is the authority on what splits:
                    # absent models run whole without re-attempting the
                    # (deterministically failing) split.
                    expected = planned.get(sm.code)
                    if expected is None:
                        continue
                    pieces = split_graph(
                        sm.model.graph, self.segments_per_model
                    )
                    if len(pieces) != len(expected):
                        raise ValueError(
                            f"segment plan drift: {sm.code!r} splits "
                            f"into {len(pieces)} piece(s) but the plan "
                            f"recorded {len(expected)}"
                        )
                else:
                    try:
                        pieces = split_graph(
                            sm.model.graph, self.segments_per_model
                        )
                    except ValueError:
                        continue
                codes: list[str | None] = []
                for idx, piece in enumerate(pieces):
                    # The code embeds the split count: a table reused
                    # across runs with different segments_per_model must
                    # never resolve against a stale graph (split_graph is
                    # deterministic, so same-count reuse is safe).
                    vcode = dispatch_segment_code(sm.code, idx, len(pieces))
                    if planned is not None and vcode != expected[idx]:
                        raise ValueError(
                            f"segment plan drift: piece {idx} of "
                            f"{sm.code!r} is {vcode!r} but the plan "
                            f"recorded {expected[idx]!r}"
                        )
                    if not costs.knows(vcode):
                        costs.register_graph(vcode, piece)
                    codes.append(vcode)
                plans[sm.code] = SegmentChain(sm.code, codes)
        return plans

    # -- the event loop ------------------------------------------------------

    def run(self) -> MultiSessionResult:
        # Stateful policies (rotors, inferred periods) start every run
        # clean, so back-to-back runs through one shared instance are
        # order-independent.
        reset = getattr(self.scheduler, "reset", None)
        if callable(reset):
            reset()
        scheduler = as_segment_scheduler(self.scheduler)
        preemptive = bool(getattr(scheduler, "preemptive", False))
        costs = self.costs
        if self.granularity == "segment" and not hasattr(
            costs, "register_graph"
        ):
            costs = CachedCostTable(base=costs)
        chains = self._plan_segments(costs)

        governor = self._governor
        fleet = EngineFleet([
            ExecutionEngine(
                sub=sub,
                dvfs=self.engine_dvfs.get(sub.index),
                # Busy-time charges clip to the streamed horizon, so the
                # drain tail of in-flight work cannot push
                # window-normalised utilization past 100%.
                horizon_s=self.duration_s,
            )
            for sub in self.system.subs
        ])
        idle = fleet.idle  # live, index-ordered; maintained by the fleet
        engines = fleet.engines
        # Candidate sweeps price through the table's dense per-fleet view
        # when it has one (CachedCostTable); the vectorised sweep prices
        # one (task, point) row, so it needs every engine at the same
        # base point — mixed engine_dvfs configurations keep the
        # per-engine lookup path.
        dense = getattr(costs, "dense_view", None)
        view = dense(self.system) if dense is not None else None
        base_points = {engine.dvfs for engine in fleet}
        # A fault plan with thermal events moves per-engine ceilings
        # mid-run, so the uniform-base dense sweep (one row for the
        # whole fleet) cannot be trusted — fall back to per-engine
        # pricing for the run.
        fplan = self._fault_plan
        uniform_base = len(base_points) == 1 and (
            fplan is None or not fplan.has_thermal
        )
        base_point = base_points.pop() if uniform_base else None
        events = EventQueue()
        states: dict[int, _SessionState] = {}
        for spec in sorted(self.sessions, key=lambda s: s.session_id):
            # Non-empty by construction: arrival_s < duration_s is
            # validated, and departures/phases are validated after it.
            windows = self._phase_windows(spec)
            states[spec.session_id] = _SessionState(
                spec=spec,
                windows=windows,
                requests=[],
                busy_time_s={i: 0.0 for i in range(self.system.num_subs)},
                spawned={},
            )
            # Lifecycle events are scheduled up front: their low sequence
            # numbers give them priority over same-instant work events.
            events.push(
                windows[0][0], EventKind.SESSION_JOIN,
                session_id=spec.session_id,
            )
            for start, _, _ in windows[1:]:
                events.push(
                    start, EventKind.SESSION_PHASE,
                    session_id=spec.session_id,
                )
            if spec.departure_s is not None:
                events.push(
                    min(spec.departure_s, self.duration_s),
                    EventKind.SESSION_LEAVE,
                    session_id=spec.session_id,
                )

        # The QoE control plane: per-session decision logs, the phases
        # cancelled by degrade actions (their pre-scheduled arrival
        # tails are uncounted, not charged as drops), and each session's
        # planned-activity baseline further degradation scales from.
        # All empty — and control ticks unscheduled — when no controller
        # is installed, leaving the historical event stream untouched.
        controller = self._controller
        control: dict[int, AdmissionRecord] = {}
        cancelled: dict[int, set[int]] = {}
        degrade_base: dict[int, UsageScenario | None] = {}
        if controller is not None:
            creset = getattr(controller, "reset", None)
            if callable(creset):
                creset()
            policy = (
                self.admission
                if isinstance(self.admission, str)
                else type(controller).__name__
            )
            for sid in states:
                control[sid] = AdmissionRecord(policy=policy)
                cancelled[sid] = set()
                degrade_base[sid] = None
            # Ticks are scheduled up front like lifecycle events (so
            # they outrank same-instant work events); they are
            # system-wide — the handler ignores the tagging session.
            tick_sid = min(states)
            tick = 1
            while tick * controller.period_s < self.duration_s:
                events.push(
                    tick * controller.period_s,
                    EventKind.CONTROL_TICK,
                    session_id=tick_sid,
                )
                tick += 1

        # Fault injection: the plan's events are scheduled up front like
        # lifecycle events (they are system-wide — the handler ignores
        # the tagging session).  All of this state stays empty — and no
        # fault events are ever scheduled — when the profile is "none",
        # leaving the historical event stream untouched.
        faults_log: dict[int, FaultRecord] = {}
        retry_items: dict[int, WorkItem] = {}
        retry_counts: dict[int, int] = {}
        kill_times: dict[int, float] = {}
        thermal_caps: dict[tuple[float, int], float] = {}
        thermal = fplan is not None and fplan.has_thermal
        if fplan is not None:
            fault_kinds = {
                "engine_fail": EventKind.ENGINE_FAIL,
                "engine_recover": EventKind.ENGINE_RECOVER,
                "thermal_throttle": EventKind.THERMAL_THROTTLE,
                "thermal_release": EventKind.THERMAL_RELEASE,
            }
            for sid in states:
                faults_log[sid] = FaultRecord(profile=fplan.profile)
            fault_sid = min(states)
            for fe in fplan.events:
                events.push(
                    fe.time_s,
                    fault_kinds[fe.kind],
                    sub_index=fe.engine_index,
                    session_id=fault_sid,
                )
                if fe.max_frequency_scale is not None:
                    thermal_caps[(fe.time_s, fe.engine_index)] = (
                        fe.max_frequency_scale
                    )
            # The throttle clamp points come off the governor's ladder
            # when one is installed, so governed and clamped choices
            # price the same points.
            thermal_ladder = tuple(
                getattr(governor, "points", DEFAULT_DVFS_POINTS)
            )

        #: In-flight requests waiting for their next segment, as a heap
        #: ordered like the waiting queue (oldest data first, session and
        #: model tie-breaks, then insertion order).  Resumed ahead of
        #: fresh work (a started request is never dropped mid-flight —
        #: only a session departure retires its chain), which also makes
        #: single-engine segment runs schedule-identical to whole-model
        #: runs.
        resumable: list[tuple[float, int, str, int, WorkItem]] = []
        resume_seq = itertools.count()

        #: Every session's waiting work, maintained in dispatch order on
        #: offer/take — schedulers read this view directly.
        waiting = WaitingQueue()

        def enter_phase(state: _SessionState, phase: int) -> None:
            """Swap the session onto phase ``phase`` and stream its roots.

            The phase's load generator works in phase-local time;
            request and deadline times are shifted to absolute run time
            here, once, as the requests are scheduled.
            """
            start, stop, scenario = state.windows[phase]
            loadgen = LoadGenerator(
                scenario,
                stop - start,
                state.spec.seed,
                frame_loss_probability=state.spec.frame_loss_probability,
            )
            state.phase = phase
            state.loadgen = loadgen
            state.deps = DependencyTracker(scenario)
            state.offset_s = start
            for sm in scenario.models:
                state.spawned.setdefault(sm.code, 0)
            for code, count in loadgen.expected_frames().items():
                state.spawned[code] += count
            sid = state.spec.session_id
            for request in loadgen.root_requests():
                request.request_time_s += start
                request.deadline_s += start
                state.phase_of[request.request_id] = phase
                events.push(
                    request.request_time_s,
                    EventKind.ARRIVAL,
                    request,
                    session_id=sid,
                )

        def retire_waiting(session_id: int,
                           include_resumable: bool) -> None:
            """Purge a departed/phase-changed session's pending work."""
            waiting.purge_session(session_id)
            if not include_resumable:
                return
            kept = [
                entry for entry in resumable
                if entry[4].session_id != session_id
            ]
            if len(kept) != len(resumable):
                for entry in resumable:
                    if entry[4].session_id == session_id:
                        entry[4].request.dropped = True
                resumable[:] = kept
                heapq.heapify(resumable)

        def cheapest_latency(code: str) -> float:
            """A task's best-engine latency, priced through the cache."""
            return min(
                self.system.engine_cost(
                    costs, code, engine.index, engine.dvfs
                ).latency_s
                for engine in engines
            )

        def apply_degrade(action: ControlAction) -> None:
            """Enter a degraded phase from the control instant.

            PR 4's SESSION_PHASE swap machinery is the mechanism: the
            session's current activity window is truncated at the
            action time, a window streaming the rate-scaled variant of
            the *planned* activity is spliced in after it, and the
            session enters it like any phase change.  The truncated
            phase is marked cancelled so its not-yet-arrived tail
            (scheduled when the phase was entered) is uncounted rather
            than charged as drops — the degraded stream replaces it
            from this instant, keeping QoE denominators honest.
            """
            sid = action.session_id
            state = states[sid]
            now_s = action.time_s
            start, stop, current = state.windows[state.phase]
            if stop - now_s <= 0:
                return
            base = degrade_base[sid]
            if base is None:
                base = degrade_base[sid] = current
            ladder = getattr(controller, "ladder", DEGRADATION_LADDER)
            degraded = scale_rates(
                base, ladder[action.level].rate_factor
            )
            state.windows[state.phase] = (start, now_s, current)
            state.windows.insert(state.phase + 1, (now_s, stop, degraded))
            cancelled[sid].add(state.phase)
            retire_waiting(sid, include_resumable=True)
            enter_phase(state, state.phase + 1)

        def fresh_item(request: InferenceRequest,
                       session_id: int) -> WorkItem:
            """The first schedulable piece of a newly-arrived request.

            Segment plans are resolved exactly once, here, and ride on
            the work item — as its compile-time chain — for the rest of
            the request's life: successors and governor reservations
            index the chain instead of re-probing the plan table.
            Models without a split plan get a lazy whole-model chain.
            """
            code = request.model_code
            chain = chains.get(code)
            if chain is None:
                chain = chains[code] = SegmentChain(code, (None,))
            codes = chain.codes
            return WorkItem(
                request=request,
                session_id=session_id,
                segment_index=0,
                num_segments=len(codes),
                task_code=codes[0],
                chain=chain,
            )

        def start(item: WorkItem, engine: ExecutionEngine,
                  now_s: float) -> None:
            state = states[item.session_id]
            request = item.request
            if governor is None:
                # effective_dvfs is the identical object as the base
                # point unless a thermal ceiling is active, so the
                # clamp probe stays off the fault-free hot path.
                point = engine.effective_dvfs if thermal else engine.dvfs
                cost = self.system.engine_cost(
                    costs, item.code, engine.index, point
                )
                end_s = fleet.begin(engine, item, now_s, cost)
            else:
                # The dispatch boundary is the governor's decision
                # point: it may move the engine's operating point for
                # this piece of work (cost lookups stay cached — the
                # table keys on the point).  The remaining chain is the
                # item's prebuilt suffix view, whose latency memo the
                # governor prices its reservations from.
                context = DispatchContext(
                    contended=bool(waiting) or bool(resumable),
                    next_event_s=events.next_time_s,
                    has_dependents=bool(
                        state.deps is not None
                        and state.deps.downstream_of(request.model_code)
                    ),
                )
                point = governor.select(
                    now_s, item, engine,
                    item.chain.suffixes[item.segment_index + 1],
                    self.system, costs, context,
                )
                cost = self.system.engine_cost(
                    costs, item.code, engine.index, point
                )
                end_s = fleet.begin(engine, item, now_s, cost, dvfs=point)
            if item.is_first_segment:
                request.start_time_s = now_s
                request.energy_mj = 0.0
            request.energy_mj += cost.energy_mj
            # A single scalar cannot express segment migration: this ends
            # up as the *final* segment's engine.  Exact per-segment
            # attribution lives in the ExecutionRecords.
            request.accelerator_id = engine.index
            # Per-session busy time clips to the session's active span
            # (arrival to departure/horizon): the drain tail past it is
            # real execution (the records keep it) but must not push the
            # session's window-normalised utilization past 100%.
            active_end_s = state.windows[-1][1]
            state.busy_time_s[engine.index] += max(
                0.0, min(end_s, active_end_s) - now_s
            )
            if item.is_final_segment:
                request.end_time_s = end_s
            events.push(
                end_s,
                EventKind.COMPLETION,
                request,
                engine.index,
                session_id=item.session_id,
            )

        def best_engine_for(item: WorkItem) -> ExecutionEngine:
            # Single idle engine: nothing to compare.  Uniform base
            # point + dense view: one latency-row sweep, lowest index
            # wins ties — the same choice as the ``min`` below, minus
            # the per-candidate keyed lookups.
            if len(idle) == 1:
                return idle[0]
            if view is not None and uniform_base:
                return engines[view.best_engine_index(
                    item.code, [e.index for e in idle], base_point
                )]
            if thermal:
                return min(
                    idle,
                    key=lambda e: (
                        self.system.engine_cost(
                            costs, item.code, e.index, e.effective_dvfs
                        ).latency_s,
                        e.index,
                    ),
                )
            return min(
                idle,
                key=lambda e: (
                    self.system.engine_cost(
                        costs, item.code, e.index, e.dvfs
                    ).latency_s,
                    e.index,
                ),
            )

        def kill(item: WorkItem, engine_index: int, now_s: float,
                 planned_end_s: float, unspent_mj: float) -> None:
            """Undo a killed dispatch's accounting and arm its retry.

            The engine-side rollback (truncated record, engine busy
            time) already happened in :meth:`ExecutionEngine.abort`;
            this unwinds what :func:`start` charged at dispatch — the
            session busy time and energy of the unexecuted remainder,
            and the optimistic ``end_time_s`` of a final segment — then
            either schedules a deterministic backoff retry or abandons
            the request as ``failed_faulted`` when the budget is spent.
            """
            sid = item.session_id
            state = states[sid]
            request = item.request
            rid = request.request_id
            # Roll back the session busy-time charge of [now, planned
            # end], clipped to the active window exactly like start()
            # clipped the original charge.
            active_end_s = state.windows[-1][1]
            state.busy_time_s[engine_index] -= max(
                0.0,
                min(planned_end_s, active_end_s)
                - min(now_s, active_end_s),
            )
            if request.energy_mj is not None:
                request.energy_mj -= unspent_mj
            if item.is_final_segment:
                # start() stamped the planned completion; it never
                # happened.
                request.end_time_s = None
            request.faulted = True
            kill_times.setdefault(rid, now_s)
            log = faults_log[sid]
            log.killed += 1
            attempt = retry_counts.get(rid, 0)
            log.actions.append(FaultAction(
                now_s, "kill", engine_index, rid, request.model_code,
                attempt=attempt,
            ))
            if attempt >= fplan.retry_budget:
                request.dropped = True
                request.failed_faulted = True
                log.actions.append(FaultAction(
                    now_s, "exhausted", engine_index, rid,
                    request.model_code, attempt=attempt,
                ))
                return
            retry_counts[rid] = attempt + 1
            request.fault_retries = attempt + 1
            log.retries += 1
            delay_s = round(fplan.backoff_s * (2 ** attempt), 9)
            retry_items[rid] = item
            push(
                round(now_s + delay_s, 9),
                EventKind.WORK_RETRY,
                request,
                session_id=sid,
            )
            log.actions.append(FaultAction(
                now_s, "retry_scheduled", engine_index, rid,
                request.model_code, attempt=attempt + 1,
            ))

        def dispatch(now_s: float) -> None:
            # Pass 1: resume in-flight segmented requests, oldest first.
            # A preemptive scheduler is consulted at each such segment
            # boundary and may displace the resuming chain with fresher,
            # more urgent waiting work (never mid-segment).
            while resumable and idle:
                if preemptive and waiting and scheduler.should_preempt(
                    now_s, resumable[0][4], waiting, self.system, costs
                ):
                    choice = scheduler.select(
                        now_s, waiting, idle, self.system, costs
                    )
                    if choice is not None:
                        item, engine = choice
                        if not engine.idle:
                            raise ValueError(
                                f"scheduler chose busy engine "
                                f"{engine.index} "
                                f"(idle: {[e.index for e in idle]})"
                            )
                        waiting.take(item)
                        start(item, engine, now_s)
                        continue
                item = heapq.heappop(resumable)[4]
                start(item, best_engine_for(item), now_s)
            # Pass 2: let the scheduler fill remaining idle engines.
            while idle:
                choice = scheduler.select(
                    now_s, waiting, idle, self.system, costs
                )
                if choice is None:
                    return
                item, engine = choice
                if not engine.idle:
                    raise ValueError(
                        f"scheduler chose busy engine {engine.index} "
                        f"(idle: {[e.index for e in idle]})"
                    )
                waiting.take(item)
                start(item, engine, now_s)

        # The drain loop below batches all events sharing the minimum
        # timestamp: one unconditional dispatch pass closes each batch,
        # and *between* batch members a dispatch runs only when it
        # provably is not a no-op — an engine is idle AND work could
        # start.  When no engine is idle both dispatch passes fall
        # through their ``idle`` guards without consulting the policy;
        # when nothing waits and nothing resumes, pass 1 is empty and
        # pass 2's scheduler call short-circuits on the empty waiting
        # view before touching any state.  Either way the skipped call
        # would have changed nothing, so schedules stay bit-identical to
        # the dispatch-per-event formulation (the golden checksums pin
        # this, including churned/preemptive/governed cells).
        ARRIVAL = EventKind.ARRIVAL
        COMPLETION = EventKind.COMPLETION
        SESSION_JOIN = EventKind.SESSION_JOIN
        SESSION_PHASE = EventKind.SESSION_PHASE
        CONTROL_TICK = EventKind.CONTROL_TICK
        ENGINE_FAIL = EventKind.ENGINE_FAIL
        ENGINE_RECOVER = EventKind.ENGINE_RECOVER
        THERMAL_THROTTLE = EventKind.THERMAL_THROTTLE
        THERMAL_RELEASE = EventKind.THERMAL_RELEASE
        WORK_RETRY = EventKind.WORK_RETRY
        heap = events._heap  # drained via pop_fields; peeked for batching
        pop_fields = events.pop_fields
        push = events.push
        finish = fleet.finish

        while heap:
            now_s, _, kind, request, sub_index, session_id = pop_fields()
            while True:
                state = states[session_id]
                if kind is ARRIVAL:
                    phase = state.phase_of.get(
                        request.request_id, state.phase
                    )
                    if (
                        controller is not None
                        and phase in cancelled[session_id]
                    ):
                        # The frame belongs to an activity a degrade
                        # action truncated: its tail was *replaced* by
                        # the degraded stream, so it was never offered
                        # — uncount it instead of charging a drop.
                        state.spawned[request.model_code] -= 1
                        state.phase_of.pop(request.request_id, None)
                    elif not state.active or phase != state.phase:
                        # Streamed, but the session departed (or switched
                        # activity) before the frame could even queue: it
                        # counts against QoE like any other drop.
                        state.requests.append(request)
                        request.dropped = True
                    else:
                        state.requests.append(request)
                        waiting.offer(fresh_item(request, session_id))
                elif kind is COMPLETION and fplan is not None and (
                    engines[sub_index].current is None
                    or engines[sub_index].current.request is not request
                    or engines[sub_index].busy_until_s != now_s
                ):
                    # Stale completion: the dispatch that scheduled this
                    # event was killed by an engine failure (and the
                    # engine may since have recovered onto other work),
                    # so there is nothing to finish.  Genuine
                    # completions always see their own item with
                    # busy_until_s at exactly this instant — the event
                    # time IS the float begin() returned.
                    pass
                elif kind is COMPLETION:
                    item = finish(sub_index, now_s)
                    if item.request is not request:
                        raise AssertionError(
                            "completion event does not match active "
                            "inference"
                        )
                    if item.is_final_segment:
                        if controller is not None:
                            # The controller's deadline-outcome feed:
                            # every finished request, stale or not —
                            # the hardware ran it, the user saw it.
                            controller.observe(
                                session_id,
                                request.end_time_s > request.deadline_s,
                            )
                        stale = (
                            not state.active
                            or state.phase_of.get(request.request_id)
                            != state.phase
                        )
                        if not stale:
                            for dep in state.deps.downstream_of(
                                request.model_code
                            ):
                                child = state.loadgen.spawn_dependent(
                                    dep,
                                    request.model_frame,
                                    now_s - state.offset_s,
                                )
                                if child is not None:
                                    child.request_time_s += state.offset_s
                                    child.deadline_s += state.offset_s
                                    state.phase_of[child.request_id] = (
                                        state.phase
                                    )
                                    # Triggered work is "streamed" for
                                    # QoE purposes the moment it spawns.
                                    state.spawned[child.model_code] += 1
                                    push(
                                        child.request_time_s,
                                        ARRIVAL,
                                        child,
                                        session_id=session_id,
                                    )
                    elif state.active and state.phase_of.get(
                        request.request_id
                    ) == state.phase:
                        successor = item.successor(
                            item.chain.codes[item.segment_index + 1]
                        )
                        heapq.heappush(resumable, (
                            request.request_time_s,
                            session_id,
                            request.model_code,
                            next(resume_seq),
                            successor,
                        ))
                    else:
                        # The session left — or switched activity — while
                        # this segment ran: the chain stops here (no
                        # stale dispatch) and the request never
                        # completes.
                        request.dropped = True
                elif kind is SESSION_JOIN:
                    if controller is None:
                        state.active = True
                    else:
                        action = controller.admit(now_s, session_id)
                        if action is None:
                            state.active = True
                        else:
                            # Rejected at the door: the user is still
                            # present (the stream counts against QoE
                            # as drops) but nothing is ever dispatched.
                            log = control[session_id]
                            log.shed = True
                            log.shed_reason = action.reason
                            log.actions += (action,)
                    enter_phase(state, 0)
                elif kind is SESSION_PHASE:
                    if state.active:
                        retire_waiting(session_id, include_resumable=True)
                        enter_phase(state, state.phase + 1)
                        if controller is not None:
                            # A planned activity change starts at full
                            # fidelity: the new scenario was never
                            # degraded (the action log keeps history).
                            degrade_base[session_id] = None
                            control[session_id].degradation_level = 0
                elif kind is CONTROL_TICK:
                    views = [
                        SessionView(
                            session_id=sid,
                            level=control[sid].degradation_level,
                            scenario=(
                                degrade_base[sid]
                                if degrade_base[sid] is not None
                                else s.windows[s.phase][2]
                            ),
                            remaining_s=s.windows[s.phase][1] - now_s,
                        )
                        for sid, s in sorted(states.items())
                        if s.active
                    ]
                    for action in controller.decide(
                        now_s, views, cheapest_latency, len(engines)
                    ):
                        log = control[action.session_id]
                        log.actions += (action,)
                        if action.kind == "shed":
                            log.shed = True
                            log.shed_reason = action.reason
                            victim = states[action.session_id]
                            victim.active = False
                            retire_waiting(
                                action.session_id, include_resumable=True
                            )
                        elif action.kind == "degrade":
                            log.degradation_level = action.level
                            apply_degrade(action)
                elif kind is ENGINE_FAIL:
                    killed = fleet.fail(sub_index, now_s)
                    if killed is not None:
                        k_item, planned_end_s, unspent_mj = killed
                        kill(k_item, sub_index, now_s, planned_end_s,
                             unspent_mj)
                elif kind is ENGINE_RECOVER:
                    fleet.recover(sub_index, now_s)
                elif kind is THERMAL_THROTTLE:
                    engines[sub_index].throttle(
                        now_s,
                        thermal_caps[(now_s, sub_index)],
                        thermal_ladder,
                    )
                elif kind is THERMAL_RELEASE:
                    engines[sub_index].release_thermal(now_s)
                elif kind is WORK_RETRY:
                    item = retry_items.pop(request.request_id, None)
                    if item is not None:
                        log = faults_log[session_id]
                        rid = request.request_id
                        if (
                            not state.active
                            or state.phase_of.get(rid) != state.phase
                        ):
                            # The session departed or switched activity
                            # while the backoff timer ran: nothing to
                            # requeue into.
                            request.dropped = True
                            request.failed_faulted = True
                            log.actions.append(FaultAction(
                                now_s, "session_gone", -1, rid,
                                request.model_code,
                                attempt=retry_counts.get(rid, 0),
                            ))
                        elif waiting.peek(
                            session_id, request.model_code
                        ) is not None:
                            # A fresher frame of the same model is
                            # already waiting: the freshness policy
                            # prefers it, so the stale retry is
                            # abandoned rather than displacing it.
                            request.dropped = True
                            request.failed_faulted = True
                            log.actions.append(FaultAction(
                                now_s, "superseded", -1, rid,
                                request.model_code,
                                attempt=retry_counts.get(rid, 0),
                            ))
                        else:
                            waiting.offer(item)
                            log.actions.append(FaultAction(
                                now_s, "requeued", -1, rid,
                                request.model_code,
                                attempt=retry_counts.get(rid, 0),
                            ))
                else:  # SESSION_LEAVE
                    state.active = False
                    retire_waiting(session_id, include_resumable=True)
                if not heap or heap[0][0] != now_s:
                    break
                if idle and (waiting or resumable):
                    dispatch(now_s)
                (now_s, _, kind, request, sub_index,
                 session_id) = pop_fields()
            dispatch(now_s)

        if fplan is not None:
            # Single source of truth for recovered/lost: every request a
            # fault ever touched either completed on a surviving engine
            # (recovered, with its first-kill-to-completion latency) or
            # is lost — exhausted retry budgets, superseded frames,
            # departed sessions, and retries still waiting when the run
            # drained all land here, so no killed work silently
            # vanishes.
            for sid, state in states.items():
                log = faults_log[sid]
                for request in state.requests:
                    if not request.faulted:
                        continue
                    if request.completed:
                        log.recovered += 1
                        log.recovery_latencies_s.append(round(
                            request.end_time_s
                            - kill_times[request.request_id],
                            9,
                        ))
                    else:
                        request.dropped = True
                        request.failed_faulted = True
                        log.lost += 1

        records = sorted(
            (record for engine in fleet for record in engine.records),
            key=lambda r: (r.start_s, r.sub_index),
        )
        # One pass partitions the global log per session (the global sort
        # is stable, so each slice stays (start_s, sub_index)-ordered).
        records_by_session: dict[int, list[ExecutionRecord]] = {
            sid: [] for sid in states
        }
        for record in records:
            records_by_session[record.session_id].append(record)
        session_results = [
            SimulationResult(
                scenario=_merged_scenario(
                    [scenario for _, _, scenario in state.windows]
                ),
                system=self.system,
                duration_s=self.duration_s,
                requests=state.requests,
                busy_time_s=state.busy_time_s,
                spawned_frames=state.spawned,
                records=records_by_session[sid],
                session_id=sid,
                active_duration_s=(
                    state.active_duration_s if state.spec.dynamic else None
                ),
                admission=control.get(sid),
                faults=faults_log.get(sid),
            )
            for sid, state in sorted(states.items())
        ]
        return MultiSessionResult(
            system=self.system,
            duration_s=self.duration_s,
            sessions=session_results,
            records=records,
            busy_time_s={e.index: e.busy_time_s for e in fleet},
            cost_stats=getattr(costs, "stats", None),
        )
