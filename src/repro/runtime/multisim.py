"""Multi-tenant execution engine: N scenario sessions on one system.

This is the production-shaped core of the runtime.  Where the seed
:class:`~repro.runtime.simulator.Simulator` drove exactly one scenario
against one accelerator, :class:`MultiScenarioSimulator` multiplexes any
number of independent *sessions* — each a scenario instance bound to its
own seed (a distinct user), with its own load generator, pending queue,
dependency tracker and QoE accounting — onto one shared
:class:`~repro.hardware.AcceleratorSystem` through a single event queue.

Key properties:

* **Segment-level dispatch** (``granularity="segment"``): every model
  whose graph admits residual-safe cuts is split into MAC-balanced
  segments (:func:`repro.runtime.segmentation.split_graph`) at
  simulator-build time.  A dispatched request occupies an engine for one
  segment at a time, yielding it between segments; the next segment may
  resume on a *different* engine (finer engine packing).  In-flight
  requests resume with priority over fresh work, so on a single-engine
  system the schedule — and therefore every completion count — is
  identical to whole-model dispatch (per-layer costs are additive across
  split points).
* **Per-session accounting**: each session yields its own
  :class:`~repro.runtime.simulator.SimulationResult`, so existing scoring
  (:func:`repro.core.aggregate.score_simulation`) applies per session
  unchanged; system-level busy time and the execution-record log live on
  the :class:`MultiSessionResult`.
* **Cost caching**: dispatch-path pricing flows through
  :meth:`repro.hardware.AcceleratorSystem.engine_cost`, which answers
  from a :class:`~repro.costmodel.CachedCostTable` keyed on
  (task, engine, DVFS state) when one is supplied.
* **Determinism**: sessions are iterated in id order, merged queues are
  sorted with session-id tie-breaks, and all randomness flows through the
  per-session seeds — two runs with the same specs are bit-identical.
* **Incremental dispatch state**: the event loop never recomputes what it
  can maintain.  Waiting work lives in one
  :class:`~repro.runtime.queues.WaitingQueue` updated on arrival/dispatch
  (work items are built — and their segment plans resolved — once per
  request, not once per scheduler call); resumable segments sit in a
  heap; engine idleness is a set maintained by
  :class:`~repro.runtime.engine.EngineFleet` on begin/finish; and
  per-session record partitioning is a single pass at result-build time.
  Scheduling decisions are bit-identical to the recompute-everything
  formulation — only the bookkeeping cost changed, making wall time scale
  linearly with session count.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from repro.costmodel import CachedCostTable, CostCacheStats, CostTable, DvfsPoint
from repro.hardware import AcceleratorSystem
from repro.workload import InferenceRequest, LoadGenerator, UsageScenario

from .engine import EngineFleet, ExecutionEngine, ExecutionRecord, WorkItem
from .events import EventKind, EventQueue
from .queues import DependencyTracker, WaitingQueue
from .scheduler import Scheduler, SegmentScheduler, as_segment_scheduler
from .segmentation import dispatch_segment_code, split_graph
from .simulator import SimulationResult

__all__ = [
    "GRANULARITIES",
    "SessionSpec",
    "MultiSessionResult",
    "MultiScenarioSimulator",
]

#: Dispatch granularities: whole models, or Herald-style segments.
GRANULARITIES: tuple[str, ...] = ("model", "segment")


@dataclass(frozen=True)
class SessionSpec:
    """One tenant: a scenario instance bound to a seed (a distinct user)."""

    session_id: int
    scenario: UsageScenario
    seed: int = 0
    frame_loss_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.session_id < 0:
            raise ValueError(
                f"session_id must be >= 0, got {self.session_id}"
            )


@dataclass
class _SessionState:
    """Mutable runtime state of one session.

    Waiting work is *not* per-session state: all sessions share the
    event loop's single :class:`~repro.runtime.queues.WaitingQueue`,
    which keys its drop policy on (session, model).
    """

    spec: SessionSpec
    loadgen: LoadGenerator
    deps: DependencyTracker
    requests: list[InferenceRequest]
    busy_time_s: dict[int, float]
    spawned: dict[str, int]
    root_codes: set[str]


@dataclass
class MultiSessionResult:
    """Outcome of one multi-tenant run.

    ``sessions`` holds one :class:`SimulationResult` per session (indexed
    by session id), each scoring-compatible with the single-tenant path.
    ``busy_time_s`` is the *system-level* per-engine busy time, which in
    overload can exceed the streamed duration — a raw signal, clamped
    only when formatted for display.
    """

    system: AcceleratorSystem
    duration_s: float
    sessions: list[SimulationResult]
    records: list[ExecutionRecord]
    busy_time_s: dict[int, float]
    cost_stats: CostCacheStats | None = None
    #: Lazy id index: (the sessions list it was built from, the index).
    #: ``init=False`` keeps ``dataclasses.replace`` from copying a cache
    #: built against another instance's sessions.
    _session_index: tuple[
        list[SimulationResult], dict[int, SimulationResult]
    ] | None = field(default=None, init=False, repr=False, compare=False)

    @property
    def num_sessions(self) -> int:
        return len(self.sessions)

    def session(self, session_id: int) -> SimulationResult:
        """The session with ``session_id`` — a dict probe, not a scan.

        The id index is built lazily and rebuilt whenever ``sessions``
        is a different list (or a different size) than the one it was
        built from; raises ``KeyError`` for unknown ids.
        """
        cached = self._session_index
        if (
            cached is None
            or cached[0] is not self.sessions
            or len(cached[1]) != len(self.sessions)
        ):
            index = {s.session_id: s for s in self.sessions}
            self._session_index = (self.sessions, index)
        else:
            index = cached[1]
        try:
            return index[session_id]
        except KeyError:
            raise KeyError(
                f"no session {session_id} in this result"
            ) from None

    def all_requests(self) -> list[InferenceRequest]:
        return [r for s in self.sessions for r in s.requests]

    def system_utilization(self, sub_index: int) -> float:
        """Raw busy fraction of one engine across all sessions."""
        return self.busy_time_s.get(sub_index, 0.0) / self.duration_s

    def mean_system_utilization(self) -> float:
        subs = self.system.num_subs
        return sum(self.system_utilization(i) for i in range(subs)) / subs


@dataclass
class MultiScenarioSimulator:
    """Runs N concurrent scenario sessions on one accelerator system.

    Attributes:
        sessions: the tenant sessions to multiplex (ids must be unique).
        system: the shared accelerator system.
        scheduler: a legacy :class:`Scheduler` (adapted automatically) or
            a session-aware :class:`SegmentScheduler`.
        duration_s: streamed seconds per session.
        costs: the cost table; for segment granularity a table without a
            graph registry is wrapped in a :class:`CachedCostTable` so
            virtual segment codes are priceable.
        granularity: ``"model"`` (whole-model dispatch, the seed
            behaviour) or ``"segment"`` (split models yield engines at
            segment boundaries).
        segments_per_model: target segments per model under segment
            granularity; models without enough residual-safe cut points
            run whole.
        engine_dvfs: optional per-engine DVFS operating points.
    """

    sessions: list[SessionSpec]
    system: AcceleratorSystem
    scheduler: Scheduler | SegmentScheduler
    duration_s: float = 1.0
    costs: CostTable = field(default_factory=CachedCostTable)
    granularity: str = "model"
    segments_per_model: int = 2
    engine_dvfs: dict[int, DvfsPoint] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.sessions:
            raise ValueError("at least one session is required")
        ids = [spec.session_id for spec in self.sessions]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate session ids: {ids}")
        if self.granularity not in GRANULARITIES:
            raise ValueError(
                f"granularity must be one of {GRANULARITIES}, "
                f"got {self.granularity!r}"
            )
        if self.segments_per_model < 1:
            raise ValueError(
                f"segments_per_model must be >= 1, "
                f"got {self.segments_per_model}"
            )
        for index in self.engine_dvfs:
            if not 0 <= index < self.system.num_subs:
                raise ValueError(
                    f"engine_dvfs references engine {index}, but the "
                    f"system has {self.system.num_subs}"
                )

    @classmethod
    def replicate(
        cls,
        scenario: UsageScenario,
        system: AcceleratorSystem,
        scheduler: Scheduler | SegmentScheduler,
        num_sessions: int,
        base_seed: int = 0,
        frame_loss_probability: float = 0.0,
        **kwargs,
    ) -> MultiScenarioSimulator:
        """N sessions of the same scenario with consecutive seeds."""
        if num_sessions < 1:
            raise ValueError(
                f"num_sessions must be >= 1, got {num_sessions}"
            )
        specs = [
            SessionSpec(i, scenario, base_seed + i, frame_loss_probability)
            for i in range(num_sessions)
        ]
        return cls(sessions=specs, system=system, scheduler=scheduler,
                   **kwargs)

    # -- segment planning ----------------------------------------------------

    def _plan_segments(self, costs) -> dict[str, list[str | None]]:
        """Per-model segment task codes, registering segment graphs.

        Models that cannot be split (too few layers, no residual-safe
        cuts) map to a single whole-model piece.
        """
        plans: dict[str, list[str | None]] = {}
        if self.granularity != "segment" or self.segments_per_model < 2:
            return plans
        seen: set[str] = set()
        for spec in self.sessions:
            for sm in spec.scenario.models:
                if sm.code in seen:
                    continue
                seen.add(sm.code)
                try:
                    pieces = split_graph(
                        sm.model.graph, self.segments_per_model
                    )
                except ValueError:
                    continue
                codes: list[str | None] = []
                for idx, piece in enumerate(pieces):
                    # The code embeds the split count: a table reused
                    # across runs with different segments_per_model must
                    # never resolve against a stale graph (split_graph is
                    # deterministic, so same-count reuse is safe).
                    vcode = dispatch_segment_code(sm.code, idx, len(pieces))
                    if not costs.knows(vcode):
                        costs.register_graph(vcode, piece)
                    codes.append(vcode)
                plans[sm.code] = codes
        return plans

    # -- the event loop ------------------------------------------------------

    def run(self) -> MultiSessionResult:
        scheduler = as_segment_scheduler(self.scheduler)
        costs = self.costs
        if self.granularity == "segment" and not hasattr(
            costs, "register_graph"
        ):
            costs = CachedCostTable(base=costs)
        plans = self._plan_segments(costs)
        whole_model: list[str | None] = [None]

        fleet = EngineFleet([
            ExecutionEngine(sub=sub, dvfs=self.engine_dvfs.get(sub.index))
            for sub in self.system.subs
        ])
        idle = fleet.idle  # live, index-ordered; maintained by the fleet
        events = EventQueue()
        states: dict[int, _SessionState] = {}
        for spec in sorted(self.sessions, key=lambda s: s.session_id):
            loadgen = LoadGenerator(
                spec.scenario,
                self.duration_s,
                spec.seed,
                frame_loss_probability=spec.frame_loss_probability,
            )
            spawned = {sm.code: 0 for sm in spec.scenario.models}
            spawned.update(loadgen.expected_frames())
            states[spec.session_id] = _SessionState(
                spec=spec,
                loadgen=loadgen,
                deps=DependencyTracker(spec.scenario),
                requests=[],
                busy_time_s={i: 0.0 for i in range(self.system.num_subs)},
                spawned=spawned,
                root_codes=set(loadgen.expected_frames()),
            )
            for request in loadgen.root_requests():
                events.push(
                    request.request_time_s,
                    EventKind.ARRIVAL,
                    request,
                    session_id=spec.session_id,
                )

        #: In-flight requests waiting for their next segment, as a heap
        #: ordered like the waiting queue (oldest data first, session and
        #: model tie-breaks, then insertion order).  Resumed ahead of
        #: fresh work (a started request is never dropped), which also
        #: makes single-engine segment runs schedule-identical to
        #: whole-model runs.
        resumable: list[tuple[float, int, str, int, WorkItem]] = []
        resume_seq = itertools.count()

        #: Every session's waiting work, maintained in dispatch order on
        #: offer/take — schedulers read this view directly.
        waiting = WaitingQueue()

        def fresh_item(request: InferenceRequest,
                       session_id: int) -> WorkItem:
            """The first schedulable piece of a newly-arrived request.

            Segment plans are resolved exactly once, here, and ride on
            the work item for the rest of the request's life.
            """
            codes = plans.get(request.model_code, whole_model)
            return WorkItem(
                request=request,
                session_id=session_id,
                segment_index=0,
                num_segments=len(codes),
                task_code=codes[0],
            )

        def start(item: WorkItem, engine: ExecutionEngine,
                  now_s: float) -> None:
            state = states[item.session_id]
            request = item.request
            cost = self.system.engine_cost(
                costs, item.code, engine.index, engine.dvfs
            )
            if item.is_first_segment:
                request.start_time_s = now_s
                request.energy_mj = 0.0
            request.energy_mj += cost.energy_mj
            # A single scalar cannot express segment migration: this ends
            # up as the *final* segment's engine.  Exact per-segment
            # attribution lives in the ExecutionRecords.
            request.accelerator_id = engine.index
            end_s = fleet.begin(engine, item, now_s, cost)
            state.busy_time_s[engine.index] += cost.latency_s
            if item.is_final_segment:
                request.end_time_s = end_s
            events.push(
                end_s,
                EventKind.COMPLETION,
                request,
                engine.index,
                session_id=item.session_id,
            )

        def best_engine_for(item: WorkItem) -> ExecutionEngine:
            return min(
                idle,
                key=lambda e: (
                    self.system.engine_cost(
                        costs, item.code, e.index, e.dvfs
                    ).latency_s,
                    e.index,
                ),
            )

        def dispatch(now_s: float) -> None:
            # Pass 1: resume in-flight segmented requests, oldest first.
            while resumable and idle:
                item = heapq.heappop(resumable)[4]
                start(item, best_engine_for(item), now_s)
            # Pass 2: let the scheduler fill remaining idle engines.
            while idle:
                choice = scheduler.select(
                    now_s, waiting, idle, self.system, costs
                )
                if choice is None:
                    return
                item, engine = choice
                if not engine.idle:
                    raise ValueError(
                        f"scheduler chose busy engine {engine.index} "
                        f"(idle: {[e.index for e in idle]})"
                    )
                waiting.take(item)
                start(item, engine, now_s)

        while events:
            event = events.pop()
            now_s = event.time_s
            state = states[event.session_id]
            if event.kind is EventKind.ARRIVAL:
                request = event.request
                state.requests.append(request)
                if request.model_code not in state.root_codes:
                    state.spawned[request.model_code] += 1
                waiting.offer(fresh_item(request, event.session_id))
            else:  # COMPLETION
                item = fleet.finish(event.sub_index, now_s)
                if item.request is not event.request:
                    raise AssertionError(
                        "completion event does not match active inference"
                    )
                if item.is_final_segment:
                    for dep in state.deps.downstream_of(
                        item.request.model_code
                    ):
                        child = state.loadgen.spawn_dependent(
                            dep, item.request.model_frame, now_s
                        )
                        if child is not None:
                            events.push(
                                now_s,
                                EventKind.ARRIVAL,
                                child,
                                session_id=event.session_id,
                            )
                else:
                    codes = plans.get(item.request.model_code, whole_model)
                    successor = item.successor(
                        codes[item.segment_index + 1]
                    )
                    heapq.heappush(resumable, (
                        successor.request.request_time_s,
                        successor.session_id,
                        successor.request.model_code,
                        next(resume_seq),
                        successor,
                    ))
            dispatch(now_s)

        records = sorted(
            (record for engine in fleet for record in engine.records),
            key=lambda r: (r.start_s, r.sub_index),
        )
        # One pass partitions the global log per session (the global sort
        # is stable, so each slice stays (start_s, sub_index)-ordered).
        records_by_session: dict[int, list[ExecutionRecord]] = {
            sid: [] for sid in states
        }
        for record in records:
            records_by_session[record.session_id].append(record)
        session_results = [
            SimulationResult(
                scenario=state.spec.scenario,
                system=self.system,
                duration_s=self.duration_s,
                requests=state.requests,
                busy_time_s=state.busy_time_s,
                spawned_frames=state.spawned,
                records=records_by_session[sid],
                session_id=sid,
            )
            for sid, state in sorted(states.items())
        ]
        return MultiSessionResult(
            system=self.system,
            duration_s=self.duration_s,
            sessions=session_results,
            records=records,
            busy_time_s={e.index: e.busy_time_s for e in fleet},
            cost_stats=getattr(costs, "stats", None),
        )
