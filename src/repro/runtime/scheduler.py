"""Pluggable inference dispatchers/schedulers.

The scheduler decides, whenever an engine is free and requests are
waiting, which (request, engine) pair to dispatch next.  XRBench ships a
latency-greedy scheduler (the paper's default for cost-model runs) and a
round-robin scheduler (its default for real systems); an EDF scheduler is
included as the kind of runtime optimisation the paper encourages users
to plug in.

Schedulers are deliberately simple objects with a single method so user
code can swap in anything (the yellow "user-customisable" boxes of
Figure 2).

Two interfaces coexist:

* :class:`Scheduler` — the legacy whole-request protocol: pick a
  ``(request, engine index)`` pair from flat lists.
* :class:`SegmentScheduler` — the multi-tenant protocol: pick a
  ``(work item, engine)`` pair, where work items carry session identity
  and segment position and engines are stateful
  :class:`~repro.runtime.engine.ExecutionEngine` objects.

:class:`SchedulerAdapter` lifts any legacy scheduler into the new
protocol, so the four registered policies keep working unchanged under
session multiplexing and segment-level dispatch.

Two optional protocol extensions (both forwarded by the adapter):

* ``reset()`` — clear any cross-run state (a round-robin rotor, lazily
  inferred periods).  The event loop calls it at the start of every run,
  so back-to-back runs through one shared policy object are
  order-independent.
* ``preemptive`` / ``should_preempt(...)`` — deadline-aware segment
  preemption.  Under segment granularity, a completed segment's
  successors normally resume ahead of all fresh work; a scheduler with
  ``preemptive = True`` is consulted at each such segment boundary and
  may displace the waiting stale segment chain when fresher work is more
  urgent.  Preemption points stay at segment boundaries only — a running
  segment is never aborted, preserving the paper's semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence

from repro.costmodel import CostTable
from repro.hardware import AcceleratorSystem
from repro.registry import schedulers as SCHEDULER_REGISTRY
from repro.workload import InferenceRequest

from .engine import ExecutionEngine, WorkItem

__all__ = [
    "Scheduler",
    "SegmentScheduler",
    "SchedulerAdapter",
    "as_segment_scheduler",
    "LatencyGreedyScheduler",
    "RoundRobinScheduler",
    "EarliestDeadlineScheduler",
    "RateMonotonicScheduler",
    "make_scheduler",
    "register_scheduler",
    "SCHEDULERS",
]


class Scheduler(Protocol):
    """Dispatch decision interface."""

    def pick(
        self,
        now_s: float,
        waiting: list[InferenceRequest],
        idle_engines: list[int],
        system: AcceleratorSystem,
        costs: CostTable,
    ) -> tuple[InferenceRequest, int] | None:
        """Choose the next dispatch, or ``None`` to leave engines idle."""
        ...


class SegmentScheduler(Protocol):
    """Session- and segment-aware dispatch interface.

    ``waiting`` is the event loop's *maintained* waiting view (a
    :class:`~repro.runtime.queues.WaitingQueue`): a read-only sequence of
    work items already sorted oldest-data-first with (session, model)
    tie-breaks, updated incrementally as frames arrive and dispatch —
    never rebuilt per call.  ``idle_engines`` is likewise the maintained
    index-ordered idle list.  Both are live views owned by the event
    loop: read them, never mutate or retain them across calls.
    """

    def select(
        self,
        now_s: float,
        waiting: Sequence[WorkItem],
        idle_engines: Sequence[ExecutionEngine],
        system: AcceleratorSystem,
        costs: CostTable,
    ) -> tuple[WorkItem, ExecutionEngine] | None:
        """Choose the next dispatch, or ``None`` to leave engines idle."""
        ...


@dataclass
class SchedulerAdapter:
    """Presents segment-granular, session-tagged work to a legacy policy.

    The wrapped scheduler sees plain request/engine-index lists exactly as
    before (materialised fresh per call from the maintained views, so the
    legacy policy can never corrupt the event loop's state); the adapter
    maps its choice back onto the work item and the engine object.
    Engine-fit heuristics keep pricing by the *whole* model code — an
    acceptable approximation for a segment, whose relative engine
    affinity matches its parent model's.
    """

    inner: Scheduler

    def select(
        self,
        now_s: float,
        waiting: Sequence[WorkItem],
        idle_engines: Sequence[ExecutionEngine],
        system: AcceleratorSystem,
        costs: CostTable,
    ) -> tuple[WorkItem, ExecutionEngine] | None:
        if not waiting or not idle_engines:
            return None
        choice = self.inner.pick(
            now_s,
            [item.request for item in waiting],
            [engine.index for engine in idle_engines],
            system,
            costs,
        )
        if choice is None:
            return None
        request, sub_index = choice
        item = next(
            (w for w in waiting if w.request is request), None
        )
        if item is None:
            raise ValueError(
                f"scheduler picked {request!r}, which is not waiting"
            )
        engine = next(
            (e for e in idle_engines if e.index == sub_index), None
        )
        if engine is None:
            raise ValueError(
                f"scheduler chose busy engine {sub_index} "
                f"(idle: {[e.index for e in idle_engines]})"
            )
        return item, engine

    @property
    def preemptive(self) -> bool:
        """Whether the wrapped policy opted into segment preemption."""
        return bool(getattr(self.inner, "preemptive", False))

    def should_preempt(
        self,
        now_s: float,
        resuming: WorkItem,
        waiting: Sequence[WorkItem],
        system: AcceleratorSystem,
        costs: CostTable,
    ) -> bool:
        """Forward the segment-boundary preemption query to the policy.

        The legacy hook sees plain requests, mirroring ``pick``.
        """
        hook = getattr(self.inner, "should_preempt", None)
        if hook is None:
            return False
        return hook(
            now_s,
            resuming.request,
            [item.request for item in waiting],
            system,
            costs,
        )

    def reset(self) -> None:
        """Clear the wrapped policy's cross-run state, if it keeps any."""
        reset = getattr(self.inner, "reset", None)
        if callable(reset):
            reset()


def as_segment_scheduler(
    scheduler: Scheduler | SegmentScheduler,
) -> SegmentScheduler:
    """Lift a legacy scheduler into the session/segment protocol."""
    if hasattr(scheduler, "select"):
        return scheduler  # already segment-aware
    return SchedulerAdapter(scheduler)


def _best_engine(
    request: InferenceRequest,
    idle_engines: list[int],
    system: AcceleratorSystem,
    costs: CostTable,
) -> int:
    """The idle engine with the lowest expected latency for this model.

    A table exposing ``dense_view`` (:class:`~repro.costmodel.
    CachedCostTable`) answers the whole sweep from one per-fleet latency
    row; other tables are priced per engine.  Both paths pick the same
    engine: the dense row holds the cache's own nominal-point floats and
    breaks latency ties toward the lowest index, exactly like the
    ``min`` key (``idle_engines`` is index-ordered).
    """
    if len(idle_engines) == 1:
        return idle_engines[0]
    dense = getattr(costs, "dense_view", None)
    if dense is not None:
        return dense(system).best_engine_index(
            request.model_code, idle_engines, None
        )
    return min(
        idle_engines,
        key=lambda i: (
            system.model_cost(costs, request.model_code, i).latency_s,
            i,
        ),
    )


@dataclass
class LatencyGreedyScheduler:
    """The paper's default: oldest request first, fastest idle engine.

    "Dispatch an inference job to an idle accelerator with the minimal
    expected latency" (artifact appendix D.2).
    """

    def pick(
        self,
        now_s: float,
        waiting: list[InferenceRequest],
        idle_engines: list[int],
        system: AcceleratorSystem,
        costs: CostTable,
    ) -> tuple[InferenceRequest, int] | None:
        if not waiting or not idle_engines:
            return None
        request = waiting[0]  # oldest data first
        return request, _best_engine(request, idle_engines, system, costs)


@dataclass
class RoundRobinScheduler:
    """Cycles engines regardless of fit (the paper's real-system default)."""

    _next_engine: int = 0

    def pick(
        self,
        now_s: float,
        waiting: list[InferenceRequest],
        idle_engines: list[int],
        system: AcceleratorSystem,
        costs: CostTable,
    ) -> tuple[InferenceRequest, int] | None:
        if not waiting or not idle_engines:
            return None
        request = waiting[0]
        # Advance the rotor to the next idle engine.  The probe set makes
        # each membership test O(1) without changing the probe order, so
        # picks are identical to the original list-scan formulation.
        idle = set(idle_engines)
        for offset in range(system.num_subs):
            candidate = (self._next_engine + offset) % system.num_subs
            if candidate in idle:
                self._next_engine = (candidate + 1) % system.num_subs
                return request, candidate
        return None

    def reset(self) -> None:
        """Rewind the rotor so runs sharing this instance are independent."""
        self._next_engine = 0


@dataclass
class EarliestDeadlineScheduler:
    """EDF: most urgent request first, fastest idle engine.

    With ``preemptive=True`` the policy also answers the runtime's
    segment-boundary preemption query: a resuming segment chain is
    displaced whenever some waiting request's deadline is strictly
    earlier than the resuming request's.
    """

    #: Opt into deadline-aware segment preemption (off by default: the
    #: resume-first order is pinned by the golden schedule checksums).
    preemptive: bool = False

    def pick(
        self,
        now_s: float,
        waiting: list[InferenceRequest],
        idle_engines: list[int],
        system: AcceleratorSystem,
        costs: CostTable,
    ) -> tuple[InferenceRequest, int] | None:
        if not waiting or not idle_engines:
            return None
        request = min(waiting, key=lambda r: (r.deadline_s, r.request_time_s))
        return request, _best_engine(request, idle_engines, system, costs)

    def should_preempt(
        self,
        now_s: float,
        resuming: InferenceRequest,
        waiting: list[InferenceRequest],
        system: AcceleratorSystem,
        costs: CostTable,
    ) -> bool:
        if not self.preemptive or not waiting:
            return False
        return min(r.deadline_s for r in waiting) < resuming.deadline_s


@dataclass
class RateMonotonicScheduler:
    """Rate-monotonic priorities: highest-rate model first.

    The classic real-time policy: shorter-period tasks preempt (here:
    pre-empt the *queue*, not running inferences) longer-period ones.
    Ties break on request age; the engine choice is latency-greedy.
    With ``preemptive=True`` the policy answers the runtime's
    segment-boundary preemption query, displacing a resuming chain when
    a strictly shorter-period model is waiting.
    """

    #: model code -> target period in seconds.  Entries provided at
    #: construction pin a model's priority for good (and survive
    #: ``reset()``).  For other codes the period is inferred from the
    #: request as ``deadline_s - request_time_s``; with
    #: ``memoize_periods=True`` the first inference per model code is
    #: memoized here and reused — classic static RM priorities.  Off by
    #: default: per-request inference is the historical behaviour pinned
    #: by the golden schedule checksums (inferred slack varies with
    #: sensor jitter and cascade timing, so memoizing is a deliberate
    #: semantic choice, not a pure optimisation).
    periods: dict[str, float] = field(default_factory=dict)
    memoize_periods: bool = False
    #: Opt into deadline-aware segment preemption (off by default).
    preemptive: bool = False

    def __post_init__(self) -> None:
        # Own a copy of the caller's dict (memoization must never write
        # inferred, jitter-dependent values into it) and remember which
        # periods were pinned: reset() clears lazily-inferred entries
        # but never the provided ones.
        self.periods = dict(self.periods)
        self._provided = dict(self.periods)

    def _period(self, request: InferenceRequest) -> float:
        known = self.periods.get(request.model_code)
        if known is not None:
            return known
        # Deadline - request time approximates the frame period.
        inferred = max(1e-6, request.deadline_s - request.request_time_s)
        if self.memoize_periods:
            self.periods[request.model_code] = inferred
        return inferred

    def pick(
        self,
        now_s: float,
        waiting: list[InferenceRequest],
        idle_engines: list[int],
        system: AcceleratorSystem,
        costs: CostTable,
    ) -> tuple[InferenceRequest, int] | None:
        if not waiting or not idle_engines:
            return None
        request = min(
            waiting, key=lambda r: (self._period(r), r.request_time_s)
        )
        return request, _best_engine(request, idle_engines, system, costs)

    def should_preempt(
        self,
        now_s: float,
        resuming: InferenceRequest,
        waiting: list[InferenceRequest],
        system: AcceleratorSystem,
        costs: CostTable,
    ) -> bool:
        if not self.preemptive or not waiting:
            return False
        return (
            min(self._period(r) for r in waiting) < self._period(resuming)
        )

    def reset(self) -> None:
        """Drop inferred periods; keep the construction-provided ones.

        Without this, a shared instance leaks one run's inferred periods
        (which depend on that run's jitter and cascade timing) into the
        next — runs through one policy object would not be
        order-independent.
        """
        self.periods = dict(self._provided)


def register_scheduler(
    name: str, cls: type | None = None, *, overwrite: bool = False
):
    """Name-address a scheduler policy class; usable as a decorator.

    ``register_scheduler("my_policy", MyPolicy)`` registers directly;
    ``@register_scheduler("my_policy")`` decorates a class.  Registered
    policies are constructible everywhere a policy name is accepted —
    ``make_scheduler``, ``RunSpec.scheduler`` and the CLI ``--scheduler``
    flag (via ``--spec``).
    """
    return SCHEDULER_REGISTRY.register(name, cls, overwrite=overwrite)


register_scheduler("latency_greedy", LatencyGreedyScheduler)
register_scheduler("round_robin", RoundRobinScheduler)
register_scheduler("edf", EarliestDeadlineScheduler)
register_scheduler("rate_monotonic", RateMonotonicScheduler)

#: Live view of the scheduler registry, kept for the original dict API.
SCHEDULERS: dict[str, type] = SCHEDULER_REGISTRY.backing


def make_scheduler(name: str, **kwargs) -> Scheduler:
    """Instantiate a scheduler by registry name.

    Keyword arguments are forwarded to the policy's constructor, e.g.
    ``make_scheduler("rate_monotonic", periods={"HT": 1 / 45})``.
    """
    cls = SCHEDULER_REGISTRY.get(name)
    return cls(**kwargs)
