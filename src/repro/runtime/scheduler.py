"""Pluggable inference dispatchers/schedulers.

The scheduler decides, whenever an engine is free and requests are
waiting, which (request, engine) pair to dispatch next.  XRBench ships a
latency-greedy scheduler (the paper's default for cost-model runs) and a
round-robin scheduler (its default for real systems); an EDF scheduler is
included as the kind of runtime optimisation the paper encourages users
to plug in.

Schedulers are deliberately simple objects with a single method so user
code can swap in anything (the yellow "user-customisable" boxes of
Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.costmodel import CostTable
from repro.hardware import AcceleratorSystem
from repro.workload import InferenceRequest

__all__ = [
    "Scheduler",
    "LatencyGreedyScheduler",
    "RoundRobinScheduler",
    "EarliestDeadlineScheduler",
    "RateMonotonicScheduler",
    "make_scheduler",
    "SCHEDULERS",
]


class Scheduler(Protocol):
    """Dispatch decision interface."""

    def pick(
        self,
        now_s: float,
        waiting: list[InferenceRequest],
        idle_engines: list[int],
        system: AcceleratorSystem,
        costs: CostTable,
    ) -> tuple[InferenceRequest, int] | None:
        """Choose the next dispatch, or ``None`` to leave engines idle."""
        ...


def _best_engine(
    request: InferenceRequest,
    idle_engines: list[int],
    system: AcceleratorSystem,
    costs: CostTable,
) -> int:
    """The idle engine with the lowest expected latency for this model."""
    return min(
        idle_engines,
        key=lambda i: (
            system.model_cost(costs, request.model_code, i).latency_s,
            i,
        ),
    )


@dataclass
class LatencyGreedyScheduler:
    """The paper's default: oldest request first, fastest idle engine.

    "Dispatch an inference job to an idle accelerator with the minimal
    expected latency" (artifact appendix D.2).
    """

    def pick(
        self,
        now_s: float,
        waiting: list[InferenceRequest],
        idle_engines: list[int],
        system: AcceleratorSystem,
        costs: CostTable,
    ) -> tuple[InferenceRequest, int] | None:
        if not waiting or not idle_engines:
            return None
        request = waiting[0]  # oldest data first
        return request, _best_engine(request, idle_engines, system, costs)


@dataclass
class RoundRobinScheduler:
    """Cycles engines regardless of fit (the paper's real-system default)."""

    _next_engine: int = 0

    def pick(
        self,
        now_s: float,
        waiting: list[InferenceRequest],
        idle_engines: list[int],
        system: AcceleratorSystem,
        costs: CostTable,
    ) -> tuple[InferenceRequest, int] | None:
        if not waiting or not idle_engines:
            return None
        request = waiting[0]
        # Advance the rotor to the next idle engine.
        for offset in range(system.num_subs):
            candidate = (self._next_engine + offset) % system.num_subs
            if candidate in idle_engines:
                self._next_engine = (candidate + 1) % system.num_subs
                return request, candidate
        return None

    def reset(self) -> None:
        self._next_engine = 0


@dataclass
class EarliestDeadlineScheduler:
    """EDF: most urgent request first, fastest idle engine."""

    def pick(
        self,
        now_s: float,
        waiting: list[InferenceRequest],
        idle_engines: list[int],
        system: AcceleratorSystem,
        costs: CostTable,
    ) -> tuple[InferenceRequest, int] | None:
        if not waiting or not idle_engines:
            return None
        request = min(waiting, key=lambda r: (r.deadline_s, r.request_time_s))
        return request, _best_engine(request, idle_engines, system, costs)


@dataclass
class RateMonotonicScheduler:
    """Rate-monotonic priorities: highest-rate model first.

    The classic real-time policy: shorter-period tasks preempt (here:
    pre-empt the *queue*, not running inferences) longer-period ones.
    Ties break on request age; the engine choice is latency-greedy.
    """

    #: model code -> target period in seconds, provided at construction or
    #: inferred lazily from request deadlines.
    periods: dict[str, float] = field(default_factory=dict)

    def _period(self, request: InferenceRequest) -> float:
        known = self.periods.get(request.model_code)
        if known is not None:
            return known
        # Deadline - request time approximates the frame period.
        return max(1e-6, request.deadline_s - request.request_time_s)

    def pick(
        self,
        now_s: float,
        waiting: list[InferenceRequest],
        idle_engines: list[int],
        system: AcceleratorSystem,
        costs: CostTable,
    ) -> tuple[InferenceRequest, int] | None:
        if not waiting or not idle_engines:
            return None
        request = min(
            waiting, key=lambda r: (self._period(r), r.request_time_s)
        )
        return request, _best_engine(request, idle_engines, system, costs)


SCHEDULERS: dict[str, type] = {
    "latency_greedy": LatencyGreedyScheduler,
    "round_robin": RoundRobinScheduler,
    "edf": EarliestDeadlineScheduler,
    "rate_monotonic": RateMonotonicScheduler,
}


def make_scheduler(name: str) -> Scheduler:
    """Instantiate a scheduler by registry name."""
    try:
        return SCHEDULERS[name]()
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; available: {sorted(SCHEDULERS)}"
        ) from None
