"""Execution-timeline extraction (Figure 6).

Turns a :class:`SimulationResult` into per-engine lists of execution
segments, plus an ASCII rendering used by the Figure 6 bench and the
timeline example.
"""

from __future__ import annotations

from dataclasses import dataclass

from .simulator import SimulationResult

__all__ = ["Segment", "extract_timeline", "render_timeline"]


@dataclass(frozen=True)
class Segment:
    """One inference execution on one engine."""

    sub_index: int
    model_code: str
    model_frame: int
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


def extract_timeline(result: SimulationResult) -> dict[int, list[Segment]]:
    """Per-engine execution segments, sorted by start time.

    Prefers the engine occupancy log (``result.records``), which is exact
    even under segment-level dispatch where one request occupies several
    engines in turn; hand-built results without records fall back to the
    per-request spans.
    """
    lanes: dict[int, list[Segment]] = {
        i: [] for i in range(result.system.num_subs)
    }
    if result.records:
        for record in result.records:
            lanes[record.sub_index].append(
                Segment(
                    sub_index=record.sub_index,
                    model_code=record.model_code,
                    model_frame=record.model_frame,
                    start_s=record.start_s,
                    end_s=record.end_s,
                )
            )
    else:
        for request in result.completed():
            assert request.accelerator_id is not None
            assert request.start_time_s is not None and request.end_time_s is not None
            lanes[request.accelerator_id].append(
                Segment(
                    sub_index=request.accelerator_id,
                    model_code=request.model_code,
                    model_frame=request.model_frame,
                    start_s=request.start_time_s,
                    end_s=request.end_time_s,
                )
            )
    for segments in lanes.values():
        segments.sort(key=lambda s: s.start_s)
    return lanes


def render_timeline(
    result: SimulationResult,
    width: int = 100,
    until_s: float | None = None,
) -> str:
    """ASCII Gantt chart: one row per engine, one column per time bucket.

    Each bucket shows the first letter of the model that occupies most of
    it, or '.' when the engine is idle — a textual Figure 6.
    """
    until = until_s if until_s is not None else result.duration_s
    if until <= 0:
        raise ValueError(f"until_s must be > 0, got {until}")
    bucket = until / width
    lanes = extract_timeline(result)
    lines = []
    header = f"time 0 .. {until * 1e3:.0f} ms ({bucket * 1e3:.1f} ms/char)"
    lines.append(header)
    for sub_index in range(result.system.num_subs):
        sub = result.system.subs[sub_index]
        row = []
        for b in range(width):
            t0, t1 = b * bucket, (b + 1) * bucket
            best, best_overlap = ".", 0.0
            for seg in lanes[sub_index]:
                overlap = min(seg.end_s, t1) - max(seg.start_s, t0)
                if overlap > best_overlap:
                    best, best_overlap = seg.model_code[0], overlap
            row.append(best)
        lines.append(f"{sub.describe():<14s} |{''.join(row)}|")
    return "\n".join(lines)
