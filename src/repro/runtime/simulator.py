"""The single-tenant façade over the multi-tenant runtime engine.

Historically this module *was* the discrete-event simulator; the event
loop now lives in :mod:`repro.runtime.multisim`, which multiplexes any
number of scenario sessions onto one accelerator system through
:class:`~repro.runtime.engine.ExecutionEngine` objects.  The
:class:`Simulator` here runs the common one-scenario/one-system case as a
single session, preserving the seed semantics exactly:

1. The load generator schedules every sensor-driven inference request
   (with jittered arrival times) as ARRIVAL events.
2. On arrival, a request enters the pending queue; a stale waiting frame
   of the same model is dropped (frame-freshness policy, see
   :mod:`repro.runtime.queues`).
3. Whenever an engine is idle and requests wait, the scheduler picks a
   (request, engine) pair; the analytical cost model supplies the
   inference latency and energy; a COMPLETION event is scheduled.
4. On completion, downstream dependencies may spawn new requests (data
   deps always, control deps with the scenario's trigger probability),
   arriving at the upstream's completion time.

The run ends when all events have drained — input streams stop at
``duration_s`` but in-flight work is allowed to finish, matching how the
paper counts deadline violations for late frames rather than truncating
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.costmodel import CostTable
from repro.hardware import AcceleratorSystem
from repro.workload import InferenceRequest, UsageScenario

from .admission import AdmissionRecord
from .engine import ExecutionRecord
from .faults import FaultRecord
from .scheduler import Scheduler

__all__ = ["SimulationResult", "Simulator"]


@dataclass
class SimulationResult:
    """Raw outcome of one scenario x system simulation (one session)."""

    scenario: UsageScenario
    system: AcceleratorSystem
    duration_s: float
    requests: list[InferenceRequest]
    busy_time_s: dict[int, float]
    spawned_frames: dict[str, int]
    #: Engine occupancy log (one entry per dispatched model/segment);
    #: empty for results built by hand from request lists alone.
    records: list[ExecutionRecord] = field(default_factory=list)
    #: The tenant session this result belongs to (0 in single runs).
    session_id: int = 0
    #: Seconds of the streamed duration this session was online for.
    #: ``None`` (the default) means the whole run — the static case.
    #: Dynamic sessions (late arrival, early departure) carry their
    #: actual window here so per-session rates normalise by *active*
    #: rather than streamed duration.
    active_duration_s: float | None = None
    #: QoE control-plane outcome for this session, or ``None`` when no
    #: admission controller was installed — the historical path.
    admission: AdmissionRecord | None = None
    #: Fault-injection outcome for this session (kills, retries, lost
    #: requests, recovery latencies), or ``None`` when no fault plan was
    #: installed — the historical path.
    faults: "FaultRecord | None" = None

    # -- derived statistics --------------------------------------------------

    @property
    def window_s(self) -> float:
        """The session's active window: its QoE/utilization denominator."""
        if self.active_duration_s is None:
            return self.duration_s
        return self.active_duration_s

    def completed(self, model_code: str | None = None) -> list[InferenceRequest]:
        return [
            r
            for r in self.requests
            if r.completed and (model_code is None or r.model_code == model_code)
        ]

    def dropped(self, model_code: str | None = None) -> list[InferenceRequest]:
        return [
            r
            for r in self.requests
            if r.dropped and (model_code is None or r.model_code == model_code)
        ]

    def num_frames(self, model_code: str) -> int:
        """QoE denominator: frames streamed/triggered for the model."""
        return self.spawned_frames.get(model_code, 0)

    def frame_drop_rate(self) -> float:
        total = len(self.requests)
        if total == 0:
            return 0.0
        return len([r for r in self.requests if r.dropped]) / total

    def total_energy_mj(self) -> float:
        """Total energy this session spent, in millijoules.

        Summed over the engine occupancy log when one exists — honest
        accounting that includes segments whose request was later
        dropped (the hardware still spent that energy).  Hand-built
        results without records fall back to per-request energy.
        """
        if self.records:
            return sum(record.energy_mj for record in self.records)
        return sum(r.energy_mj or 0.0 for r in self.requests)

    def utilization(self, sub_index: int) -> float:
        """Busy fraction of one engine over the session's window.

        Normalised by the *active* duration (= the streamed duration for
        static sessions), so a tenant online for half the run is not
        reported at half its true utilization.  Busy time is clipped to
        the session's active window at accounting time — the drain tail
        of in-flight work past the window (visible in ``records``) does
        not count, so the fraction cannot exceed 1.0 (up to float
        rounding) for runtime-produced results.
        """
        return self.busy_time_s.get(sub_index, 0.0) / self.window_s

    def missed_deadlines(self, model_code: str | None = None) -> int:
        return sum(
            1
            for r in self.completed(model_code)
            if r.missed_deadline
        )

    def mean_utilization(self) -> float:
        subs = self.system.num_subs
        return sum(self.utilization(i) for i in range(subs)) / subs


@dataclass
class Simulator:
    """Runs one scenario on one accelerator system."""

    scenario: UsageScenario
    system: AcceleratorSystem
    scheduler: Scheduler
    duration_s: float = 1.0
    seed: int = 0
    costs: CostTable = field(default_factory=CostTable)
    #: Failure injection: sensor-frame loss probability (see LoadGenerator).
    frame_loss_probability: float = 0.0
    #: Dispatch granularity: "model" (whole models, the paper's runtime)
    #: or "segment" (split models yield engines between segments).
    granularity: str = "model"
    #: Target segments per split model under segment granularity.
    segments_per_model: int = 2

    def run(self) -> SimulationResult:
        # Imported here: multisim builds SimulationResult objects, so the
        # module dependency points that way.
        from .multisim import MultiScenarioSimulator, SessionSpec

        multi = MultiScenarioSimulator(
            sessions=[
                SessionSpec(
                    session_id=0,
                    scenario=self.scenario,
                    seed=self.seed,
                    frame_loss_probability=self.frame_loss_probability,
                )
            ],
            system=self.system,
            scheduler=self.scheduler,
            duration_s=self.duration_s,
            costs=self.costs,
            granularity=self.granularity,
            segments_per_model=self.segments_per_model,
        )
        return multi.run().sessions[0]
