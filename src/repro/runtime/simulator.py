"""The discrete-event simulator at the heart of the benchmark runtime.

Drives one usage scenario against one accelerator system:

1. The load generator schedules every sensor-driven inference request
   (with jittered arrival times) as ARRIVAL events.
2. On arrival, a request enters the pending queue; a stale waiting frame
   of the same model is dropped (frame-freshness policy, see
   :mod:`repro.runtime.queues`).
3. Whenever an engine is idle and requests wait, the scheduler picks a
   (request, engine) pair; the analytical cost model supplies the
   inference latency and energy; a COMPLETION event is scheduled.
4. On completion, downstream dependencies may spawn new requests (data
   deps always, control deps with the scenario's trigger probability),
   arriving at the upstream's completion time.

The run ends when all events have drained — input streams stop at
``duration_s`` but in-flight work is allowed to finish, matching how the
paper counts deadline violations for late frames rather than truncating
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.costmodel import CostTable
from repro.hardware import AcceleratorSystem
from repro.workload import InferenceRequest, LoadGenerator, UsageScenario

from .events import EventKind, EventQueue
from .queues import ActiveInferenceTable, DependencyTracker, PendingQueue
from .scheduler import Scheduler

__all__ = ["SimulationResult", "Simulator"]


@dataclass
class SimulationResult:
    """Raw outcome of one scenario x system simulation."""

    scenario: UsageScenario
    system: AcceleratorSystem
    duration_s: float
    requests: list[InferenceRequest]
    busy_time_s: dict[int, float]
    spawned_frames: dict[str, int]

    # -- derived statistics --------------------------------------------------

    def completed(self, model_code: str | None = None) -> list[InferenceRequest]:
        return [
            r
            for r in self.requests
            if r.completed and (model_code is None or r.model_code == model_code)
        ]

    def dropped(self, model_code: str | None = None) -> list[InferenceRequest]:
        return [
            r
            for r in self.requests
            if r.dropped and (model_code is None or r.model_code == model_code)
        ]

    def num_frames(self, model_code: str) -> int:
        """QoE denominator: frames streamed/triggered for the model."""
        return self.spawned_frames.get(model_code, 0)

    def frame_drop_rate(self) -> float:
        total = len(self.requests)
        if total == 0:
            return 0.0
        return len([r for r in self.requests if r.dropped]) / total

    def missed_deadlines(self, model_code: str | None = None) -> int:
        return sum(
            1
            for r in self.completed(model_code)
            if r.missed_deadline
        )

    def utilization(self, sub_index: int) -> float:
        """Busy fraction of one engine over the streamed duration."""
        return min(1.0, self.busy_time_s.get(sub_index, 0.0) / self.duration_s)

    def mean_utilization(self) -> float:
        subs = self.system.num_subs
        return sum(self.utilization(i) for i in range(subs)) / subs


@dataclass
class Simulator:
    """Runs one scenario on one accelerator system."""

    scenario: UsageScenario
    system: AcceleratorSystem
    scheduler: Scheduler
    duration_s: float = 1.0
    seed: int = 0
    costs: CostTable = field(default_factory=CostTable)
    #: Failure injection: sensor-frame loss probability (see LoadGenerator).
    frame_loss_probability: float = 0.0

    def run(self) -> SimulationResult:
        loadgen = LoadGenerator(
            self.scenario,
            self.duration_s,
            self.seed,
            frame_loss_probability=self.frame_loss_probability,
        )
        deps = DependencyTracker(self.scenario)
        events = EventQueue()
        pending = PendingQueue()
        active = ActiveInferenceTable()
        busy_time: dict[int, float] = {i: 0.0 for i in range(self.system.num_subs)}
        all_requests: list[InferenceRequest] = []
        # QoE denominators: root models are charged for every streamed
        # frame (including sensor-lost ones); dependent models only for
        # the requests their triggers actually spawn.
        spawned: dict[str, int] = {sm.code: 0 for sm in self.scenario.models}
        spawned.update(loadgen.expected_frames())
        root_codes = set(loadgen.expected_frames())

        for request in loadgen.root_requests():
            events.push(request.request_time_s, EventKind.ARRIVAL, request)

        def dispatch(now_s: float) -> None:
            """Let the scheduler fill idle engines."""
            while True:
                idle = active.idle_engines(self.system.num_subs)
                waiting = pending.waiting()
                choice = self.scheduler.pick(
                    now_s, waiting, idle, self.system, self.costs
                )
                if choice is None:
                    return
                request, sub_index = choice
                if sub_index not in idle:
                    raise ValueError(
                        f"scheduler chose busy engine {sub_index} "
                        f"(idle: {idle})"
                    )
                pending.take(request)
                cost = self.system.model_cost(
                    self.costs, request.model_code, sub_index
                )
                request.start_time_s = now_s
                request.end_time_s = now_s + cost.latency_s
                request.accelerator_id = sub_index
                request.energy_mj = cost.energy_mj
                active.start(sub_index, request)
                busy_time[sub_index] += cost.latency_s
                events.push(
                    request.end_time_s,
                    EventKind.COMPLETION,
                    request,
                    sub_index,
                )

        while events:
            event = events.pop()
            now_s = event.time_s
            if event.kind is EventKind.ARRIVAL:
                request = event.request
                all_requests.append(request)
                if request.model_code not in root_codes:
                    spawned[request.model_code] += 1
                pending.offer(request)
            else:  # COMPLETION
                finished = active.finish(event.sub_index)
                if finished is not event.request:
                    raise AssertionError(
                        "completion event does not match active inference"
                    )
                for dep in deps.downstream_of(finished.model_code):
                    child = loadgen.spawn_dependent(
                        dep, finished.model_frame, now_s
                    )
                    if child is not None:
                        events.push(now_s, EventKind.ARRIVAL, child)
            dispatch(now_s)

        return SimulationResult(
            scenario=self.scenario,
            system=self.system,
            duration_s=self.duration_s,
            requests=all_requests,
            busy_time_s=busy_time,
            spawned_frames=spawned,
        )
