"""Runtime data structures (Figure 2): request queues, the active
inference table, and the dependency tracker.

The pending queue implements the frame-freshness drop policy: at most one
*waiting* request per model.  When a new frame arrives while the previous
one is still waiting to start, the stale frame is dropped — processing it
could no longer contribute to the target rate (its successor has already
arrived), and real XR runtimes prefer the fresh frame.  Requests that have
*started* are never aborted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workload import Dependency, InferenceRequest, UsageScenario

__all__ = ["PendingQueue", "ActiveInferenceTable", "DependencyTracker"]


@dataclass
class PendingQueue:
    """At-most-one waiting request per model; stale frames are dropped."""

    _waiting: dict[str, InferenceRequest] = field(default_factory=dict)
    dropped: list[InferenceRequest] = field(default_factory=list)

    def offer(self, request: InferenceRequest) -> InferenceRequest | None:
        """Add a request; returns the displaced stale request, if any."""
        stale = self._waiting.get(request.model_code)
        if stale is not None:
            stale.dropped = True
            self.dropped.append(stale)
        self._waiting[request.model_code] = request
        return stale

    def take(self, request: InferenceRequest) -> None:
        """Remove a request that is about to be dispatched."""
        current = self._waiting.get(request.model_code)
        if current is not request:
            raise ValueError(
                f"request {request!r} is not waiting (queue holds {current!r})"
            )
        del self._waiting[request.model_code]

    def waiting(self) -> list[InferenceRequest]:
        """All waiting requests, oldest data first."""
        return sorted(
            self._waiting.values(),
            key=lambda r: (r.request_time_s, r.model_code),
        )

    def __len__(self) -> int:
        return len(self._waiting)


@dataclass
class ActiveInferenceTable:
    """Which request is running on which engine."""

    _active: dict[int, InferenceRequest] = field(default_factory=dict)

    def start(self, sub_index: int, request: InferenceRequest) -> None:
        if sub_index in self._active:
            raise ValueError(
                f"engine {sub_index} is already running "
                f"{self._active[sub_index]!r} (hardware-occupancy condition)"
            )
        self._active[sub_index] = request

    def finish(self, sub_index: int) -> InferenceRequest:
        try:
            return self._active.pop(sub_index)
        except KeyError:
            raise ValueError(f"engine {sub_index} is idle") from None

    def idle_engines(self, num_subs: int) -> list[int]:
        return [i for i in range(num_subs) if i not in self._active]

    def running(self) -> dict[int, InferenceRequest]:
        return dict(self._active)

    def __len__(self) -> int:
        return len(self._active)


@dataclass
class DependencyTracker:
    """Maps completed upstream inferences to downstream spawns."""

    scenario: UsageScenario

    def downstream_of(self, model_code: str) -> list[Dependency]:
        """Dependencies that fire when ``model_code`` completes a frame."""
        return [
            d for d in self.scenario.dependencies if d.upstream == model_code
        ]
