"""Runtime data structures (Figure 2): request queues, the active
inference table, and the dependency tracker.

The pending queue implements the frame-freshness drop policy: at most one
*waiting* request per model.  When a new frame arrives while the previous
one is still waiting to start, the stale frame is dropped — processing it
could no longer contribute to the target rate (its successor has already
arrived), and real XR runtimes prefer the fresh frame.  Requests that have
*started* are never aborted.

:class:`WaitingQueue` is the multi-tenant generalisation: one structure
spanning every session, holding session-tagged
:class:`~repro.runtime.engine.WorkItem` values in dispatch order and
applying the same drop policy per (session, model).  It is maintained
incrementally on offer/take, so the event loop hands schedulers a
ready-sorted view instead of rebuilding and re-sorting a list on every
scheduler call.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Iterator

from repro.workload import Dependency, InferenceRequest, UsageScenario

from .engine import WorkItem

__all__ = [
    "PendingQueue",
    "WaitingQueue",
    "ActiveInferenceTable",
    "DependencyTracker",
]


@dataclass
class PendingQueue:
    """At-most-one waiting request per model; stale frames are dropped.

    Legacy single-tenant structure, kept as public API alongside
    :class:`ActiveInferenceTable`; the multi-tenant event loop's live
    waiting state is :class:`WaitingQueue` below.
    """

    _waiting: dict[str, InferenceRequest] = field(default_factory=dict)
    dropped: list[InferenceRequest] = field(default_factory=list)

    def offer(self, request: InferenceRequest) -> InferenceRequest | None:
        """Add a request; returns the displaced stale request, if any."""
        stale = self._waiting.get(request.model_code)
        if stale is not None:
            stale.dropped = True
            self.dropped.append(stale)
        self._waiting[request.model_code] = request
        return stale

    def take(self, request: InferenceRequest) -> None:
        """Remove a request that is about to be dispatched."""
        current = self._waiting.get(request.model_code)
        if current is not request:
            raise ValueError(
                f"request {request!r} is not waiting (queue holds {current!r})"
            )
        del self._waiting[request.model_code]

    def waiting(self) -> list[InferenceRequest]:
        """All waiting requests, oldest data first."""
        return sorted(
            self._waiting.values(),
            key=lambda r: (r.request_time_s, r.model_code),
        )

    def __len__(self) -> int:
        return len(self._waiting)


def _dispatch_order(item: WorkItem) -> tuple[float, int, str]:
    """Global dispatch order: oldest data first, session/model tie-breaks."""
    return (
        item.request.request_time_s,
        item.session_id,
        item.request.model_code,
    )


@dataclass
class WaitingQueue:
    """All sessions' waiting work, maintained in dispatch order.

    The multi-tenant counterpart of :class:`PendingQueue`: at most one
    waiting :class:`WorkItem` per (session, model); offering a fresh
    frame drops the stale one (frame-freshness policy).  Items are kept
    sorted by ``(request_time_s, session_id, model_code)`` — inserted and
    removed by bisection — so reading the queue is free for the event
    loop and for schedulers, which receive this object directly as their
    waiting view.  Treat it as read-only inside a scheduler: only the
    event loop offers and takes.

    The sort keys live in ``_keys``, a list kept exactly parallel to
    ``_items``: bisection then compares plain tuples instead of calling
    a key function O(log n) times per insert/remove, which is the hot
    cost at fleet scale (the key is computed once per offer).  The key
    fields are stable for a waiting item — request times are only ever
    shifted *before* the item is offered — so the parallel lists cannot
    drift.
    """

    _items: list[WorkItem] = field(default_factory=list)
    _keys: list[tuple[float, int, str]] = field(default_factory=list)
    _by_key: dict[tuple[int, str], WorkItem] = field(default_factory=dict)
    dropped: list[InferenceRequest] = field(default_factory=list)

    def offer(self, item: WorkItem) -> WorkItem | None:
        """Add a fresh work item; returns the displaced stale item, if any.

        The stale item's request is marked dropped, exactly like
        :meth:`PendingQueue.offer`.
        """
        request = item.request
        key = (item.session_id, request.model_code)
        stale = self._by_key.get(key)
        if stale is not None:
            index = self._locate(stale)
            del self._items[index]
            del self._keys[index]
            stale.request.dropped = True
            self.dropped.append(stale.request)
        self._by_key[key] = item
        order = (request.request_time_s, item.session_id,
                 request.model_code)
        index = bisect_right(self._keys, order)
        self._items.insert(index, item)
        self._keys.insert(index, order)
        return stale

    def take(self, item: WorkItem) -> None:
        """Remove an item that is about to be dispatched."""
        key = (item.session_id, item.request.model_code)
        current = self._by_key.get(key)
        if current is not item:
            raise ValueError(
                f"work item {item!r} is not waiting "
                f"(queue holds {current!r})"
            )
        index = self._locate(item)
        del self._items[index]
        del self._keys[index]
        del self._by_key[key]

    def peek(self, session_id: int, model_code: str) -> WorkItem | None:
        """The waiting item for ``(session, model)``, if any.

        Lets the fault-recovery machinery honour the freshness policy
        when deciding whether a killed item may requeue: if a fresher
        frame of the same model is already waiting, the stale retry is
        abandoned instead of displacing it.
        """
        return self._by_key.get((session_id, model_code))

    def purge_session(self, session_id: int) -> list[WorkItem]:
        """Retire every waiting item of one session (departure / phase end).

        The retired items' requests are marked dropped and appended to
        ``dropped``: they were streamed while the session was online but
        will never run, so they degrade QoE exactly like freshness drops
        do.  Returns the retired items, oldest data first.
        """
        retired = [
            item for item in self._items if item.session_id == session_id
        ]
        if not retired:
            return []
        kept = [
            (key, item)
            for key, item in zip(self._keys, self._items)
            if item.session_id != session_id
        ]
        self._keys = [key for key, _ in kept]
        self._items = [item for _, item in kept]
        for item in retired:
            del self._by_key[(session_id, item.request.model_code)]
            item.request.dropped = True
            self.dropped.append(item.request)
        return retired

    def _locate(self, item: WorkItem) -> int:
        """Index of ``item`` in the sorted list (identity match)."""
        index = bisect_left(self._keys, _dispatch_order(item))
        while index < len(self._items):
            if self._items[index] is item:
                return index
            index += 1
        raise ValueError(f"work item {item!r} is not in the queue")

    # -- read-only sequence view (what schedulers see) -----------------------

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __getitem__(self, index: int) -> WorkItem:
        return self._items[index]

    def __iter__(self) -> Iterator[WorkItem]:
        return iter(self._items)


@dataclass
class ActiveInferenceTable:
    """Which request is running on which engine."""

    _active: dict[int, InferenceRequest] = field(default_factory=dict)

    def start(self, sub_index: int, request: InferenceRequest) -> None:
        if sub_index in self._active:
            raise ValueError(
                f"engine {sub_index} is already running "
                f"{self._active[sub_index]!r} (hardware-occupancy condition)"
            )
        self._active[sub_index] = request

    def finish(self, sub_index: int) -> InferenceRequest:
        try:
            return self._active.pop(sub_index)
        except KeyError:
            raise ValueError(f"engine {sub_index} is idle") from None

    def idle_engines(self, num_subs: int) -> list[int]:
        return [i for i in range(num_subs) if i not in self._active]

    def running(self) -> dict[int, InferenceRequest]:
        return dict(self._active)

    def __len__(self) -> int:
        return len(self._active)


@dataclass
class DependencyTracker:
    """Maps completed upstream inferences to downstream spawns."""

    scenario: UsageScenario

    def downstream_of(self, model_code: str) -> list[Dependency]:
        """Dependencies that fire when ``model_code`` completes a frame."""
        return [
            d for d in self.scenario.dependencies if d.upstream == model_code
        ]
