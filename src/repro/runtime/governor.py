"""Runtime DVFS governors: per-dispatch operating-point selection.

Appendix B.1 makes latency slack a first-class energy knob ("adjust
energy to meet the deadlines or optimize using the slack to the deadline
(e.g., DVFS)").  Historically the runtime only supported *static* DVFS —
a per-engine operating point fixed before the run
(``MultiScenarioSimulator.engine_dvfs``) — and the slack optimisation
(:func:`repro.costmodel.best_point_for_slack`) lived in an offline
ablation.  A :class:`DvfsGovernor` brings that trade into the live event
loop: it is consulted at every dispatch boundary (whole models *and*
individual segments, so a governed run re-decides at each preemption
point) and picks the operating point the engine runs that piece of work
at.

Policies:

* ``static`` — today's behaviour: every dispatch runs at the engine's
  configured base point.  :func:`make_governor` returns ``None`` for it,
  so the static path is *literally* the historical code path — the
  golden schedule checksums pin it bit-identically.
* ``slack`` — greedy slack-into-energy, the live counterpart of
  :func:`~repro.costmodel.best_point_for_slack`: the cheapest ladder
  point whose scaled latency fits the work item's remaining deadline
  budget.  Downshifts are additionally bounded by the event horizon
  (stretched occupancy must end before the next already-scheduled
  event, so it cannot delay work known to be coming) and are skipped
  for models with downstream dependents (stretching an upstream
  completion eats the cascade's slack) or under contention.  When base
  speed cannot meet the deadline, the governor *races*: the cheapest
  faster point that still rescues the deadline (so it can beat static
  on deadline misses), staying at base for lost causes rather than
  burning boost energy on an unavoidable miss.
* ``race_to_idle`` — always the fastest ladder point: finish as early
  as possible, then idle.  The latency-optimal reference policy.

Selected points flow through :meth:`repro.runtime.engine.EngineFleet.begin`,
which records frequency transitions on the engine and stamps the active
point name on every :class:`~repro.runtime.engine.ExecutionRecord`, so
timelines and exports show the point each segment ran at.  All candidate
pricing goes through :meth:`repro.hardware.AcceleratorSystem.engine_cost`,
so a :class:`~repro.costmodel.CachedCostTable` answers every governed
lookup from its (task, engine, DVFS point) memo.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.costmodel import DEFAULT_DVFS_POINTS, CostTable, DvfsPoint
from repro.hardware import AcceleratorSystem

from .engine import ExecutionEngine, WorkItem

__all__ = [
    "DVFS_POLICIES",
    "DispatchContext",
    "DvfsGovernor",
    "StaticGovernor",
    "SlackGovernor",
    "RaceToIdleGovernor",
    "make_governor",
]

#: The governor policies the runtime (and RunSpec/CLI) accept.
DVFS_POLICIES: tuple[str, ...] = ("static", "slack", "race_to_idle")


@dataclass(frozen=True)
class DispatchContext:
    """What the event loop knows at one dispatch boundary.

    ``contended`` — other work is waiting for an engine right now.
    ``next_event_s`` — absolute time of the next already-scheduled event
    (arrival, completion, lifecycle), or ``None`` when the queue is
    empty; a stretch-averse policy keeps occupancy inside this horizon.
    ``has_dependents`` — the item's model triggers downstream models on
    completion, so stretching it consumes the cascade's slack too.
    """

    contended: bool = False
    next_event_s: float | None = None
    has_dependents: bool = False


class DvfsGovernor(Protocol):
    """Operating-point decision interface, consulted per dispatch.

    ``remaining_codes`` are the cost-table codes of the item's *later*
    segments (empty for whole-model dispatch or a final segment) — a
    governor reserving deadline budget for them can price each on the
    same engine.  ``context`` carries the event loop's view of the
    dispatch instant.
    """

    def select(
        self,
        now_s: float,
        item: WorkItem,
        engine: ExecutionEngine,
        remaining_codes: Sequence[str | None],
        system: AcceleratorSystem,
        costs: CostTable,
        context: DispatchContext,
    ) -> DvfsPoint | None:
        """The point to run ``item`` at; ``None`` means nominal."""
        ...


@dataclass(frozen=True)
class StaticGovernor:
    """Always the engine's configured base point (today's behaviour).

    Exists so governed and ungoverned call sites share one shape; the
    runtime itself short-circuits ``dvfs_policy="static"`` to *no*
    governor (see :func:`make_governor`), keeping the historical
    dispatch path untouched.
    """

    def select(
        self,
        now_s: float,
        item: WorkItem,
        engine: ExecutionEngine,
        remaining_codes: Sequence[str | None],
        system: AcceleratorSystem,
        costs: CostTable,
        context: DispatchContext,
    ) -> DvfsPoint | None:
        return engine.dvfs


def _fastest(points: tuple[DvfsPoint, ...]) -> DvfsPoint:
    return max(points, key=lambda p: p.frequency_scale)


@dataclass(frozen=True)
class RaceToIdleGovernor:
    """Always the fastest ladder point: finish early, then idle."""

    points: tuple[DvfsPoint, ...] = DEFAULT_DVFS_POINTS

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError("race_to_idle needs a non-empty ladder")

    def select(
        self,
        now_s: float,
        item: WorkItem,
        engine: ExecutionEngine,
        remaining_codes: Sequence[str | None],
        system: AcceleratorSystem,
        costs: CostTable,
        context: DispatchContext,
    ) -> DvfsPoint | None:
        # A thermally-throttled engine clamps the ladder: only points
        # under its ceiling are permitted (the engine's clamped base
        # point when none is).
        cap = engine.max_frequency_scale
        if cap is None:
            return _fastest(self.points)
        permitted = tuple(
            p for p in self.points if p.frequency_scale <= cap
        )
        return _fastest(permitted) if permitted else engine.effective_dvfs


@dataclass(frozen=True)
class SlackGovernor:
    """Greedy slack-into-energy: the paper's Appendix B.1 trade, live.

    Per dispatch the deadline budget is what remains of the request's
    slack at this instant, minus time reserved for the item's remaining
    segments (priced at the candidate point — successors re-decide at
    their own boundaries).  Three cases:

    * The budget cannot fit base speed → **race**: the *cheapest*
      faster ladder point whose scaled latency still makes the deadline
      (the one case where the governor runs faster than static); when
      no point rescues it, stay at base — racing a lost cause burns
      energy without changing the near-binary deadline outcome.
    * The system is contended, or the model triggers downstream work →
      run at the engine's base point: stretching occupancy would tax
      someone else's slack.
    * Otherwise → **downshift**: the cheapest point at or below base
      frequency whose scaled latency fits both the deadline budget and
      the event horizon (the stretched run must end before the next
      already-scheduled event, so no known future work queues behind
      it).
    """

    points: tuple[DvfsPoint, ...] = DEFAULT_DVFS_POINTS

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError("slack governor needs a non-empty ladder")

    def select(
        self,
        now_s: float,
        item: WorkItem,
        engine: ExecutionEngine,
        remaining_codes: Sequence[str | None],
        system: AcceleratorSystem,
        costs: CostTable,
        context: DispatchContext,
    ) -> DvfsPoint | None:
        # A thermal ceiling clamps both the baseline (the engine's
        # effective point — the identical object as its base point while
        # unthrottled, keeping fault-free runs bit-identical) and the
        # candidate ladder.
        base = engine.effective_dvfs
        cap = engine.max_frequency_scale
        points = (
            self.points
            if cap is None
            else tuple(p for p in self.points if p.frequency_scale <= cap)
        )
        code = item.code
        engine_index = engine.index

        # Ladder candidates are scalar probes: priced through the
        # table's dense per-fleet view when it has one (a row-dict probe
        # plus a tuple index — the floats are the cached values, so the
        # choice is bit-identical), else through the keyed lookup.
        dense = getattr(costs, "dense_view", None)
        if dense is not None:
            view = dense(system)

            def lat_en(point: DvfsPoint | None) -> tuple[float, float]:
                return view.latency_energy(code, engine_index, point)
        else:

            def lat_en(point: DvfsPoint | None) -> tuple[float, float]:
                cost = system.engine_cost(costs, code, engine_index, point)
                return cost.latency_s, cost.energy_mj

        # A ChainSuffix (the event loop's compile-time segment-chain
        # view) answers the whole reservation from its per-(engine,
        # point) latency memo; a plain code sequence is priced per call.
        # Both paths subtract the same floats in the same order, so the
        # budgets — and therefore the chosen points — are bit-identical.
        remaining = getattr(remaining_codes, "remaining_latencies", None)

        def budget_at(point: DvfsPoint | None) -> float:
            """Deadline budget for this piece with the rest of the
            chain reserved at ``point`` (successors re-decide at their
            own boundaries, so uniform pricing is self-consistent)."""
            budget_s = item.request.deadline_s - now_s
            if remaining is not None:
                for latency_s in remaining(
                    costs, system, engine_index, point
                ):
                    budget_s -= latency_s
                return budget_s
            for rcode in remaining_codes:
                budget_s -= system.engine_cost(
                    costs, rcode or item.request.model_code,
                    engine_index, point,
                ).latency_s
            return budget_s

        base_frequency = base.frequency_scale if base is not None else 1.0
        base_lat, base_en = lat_en(base)
        if budget_at(base) < base_lat:
            # Behind schedule at base speed: the cheapest faster point
            # that actually rescues the deadline (the whole remaining
            # chain priced at that point), the true
            # best-point-for-slack fallback.  Racing a lost cause burns
            # extra energy without changing the (near-binary) deadline
            # outcome, so hopeless dispatches stay at base speed.
            rescue, rescue_energy = None, float("inf")
            for point in points:
                if point.frequency_scale <= base_frequency:
                    continue
                lat, en = lat_en(point)
                if lat <= budget_at(point) and en < rescue_energy:
                    rescue, rescue_energy = point, en
            return rescue if rescue is not None else base
        if context.contended or context.has_dependents:
            return base
        stretch_s = budget_at(base)
        if context.next_event_s is not None:
            stretch_s = min(stretch_s, context.next_event_s - now_s)
        choice, choice_energy = base, base_en
        for point in points:
            if point.frequency_scale > base_frequency:
                continue
            lat, en = lat_en(point)
            if lat <= stretch_s and en < choice_energy:
                choice, choice_energy = point, en
        return choice


def make_governor(
    policy: str,
    points: tuple[DvfsPoint, ...] = DEFAULT_DVFS_POINTS,
) -> DvfsGovernor | None:
    """Build the governor for a policy name (hyphens tolerated).

    Returns ``None`` for ``"static"``: no governor means the event loop
    takes the exact historical dispatch path, which is what the golden
    schedule checksums pin.
    """
    name = policy.replace("-", "_")
    if name not in DVFS_POLICIES:
        raise ValueError(
            f"unknown dvfs policy {policy!r}; one of {DVFS_POLICIES}"
        )
    if name == "static":
        return None
    if name == "slack":
        return SlackGovernor(points=tuple(points))
    return RaceToIdleGovernor(points=tuple(points))
