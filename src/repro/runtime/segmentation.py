"""Model segmentation: Herald-style sub-model scheduling.

The paper attributes the "expanded computation scheduling spaces" of MTMM
workloads to Kwon et al.'s Herald (HPCA 2021), where a model can be split
at layer boundaries and its segments scheduled on different
sub-accelerators.  This module brings that scheduling dimension into the
harness without touching the simulator: a segmented model becomes a chain
of virtual unit models connected by always-firing data dependencies, so a
two-segment plane detector can have segment 0 of frame N+1 running on one
engine while segment 1 of frame N finishes on another — software
pipelining across engines.

Usage::

    from repro.runtime.segmentation import segment_scenario, SegmentedCostTable

    scenario, table = segment_scenario(get_scenario("ar_gaming"), "PD", 2)
    sim = Simulator(scenario=scenario, system=system,
                    scheduler=LatencyGreedyScheduler(), costs=table)
"""

from __future__ import annotations

from dataclasses import replace

from repro.costmodel import CostTable, Dataflow, GraphRegistry
from repro.costmodel.analysis import CostModel, ModelCost, memoized_model_cost
from repro.nn import ModelGraph
from repro.workload import (
    Dependency,
    DependencyKind,
    ScenarioModel,
    UsageScenario,
)
__all__ = ["split_graph", "SegmentedCostTable", "segment_scenario",
           "segment_code", "dispatch_segment_code",
           "SegmentChain", "ChainSuffix"]


def segment_code(code: str, index: int) -> str:
    """The virtual task code of one segment, e.g. ``PD.0``."""
    return f"{code}.{index}"


def dispatch_segment_code(code: str, index: int, total: int) -> str:
    """Cost-table code of one dispatch-time segment, e.g. ``PD.0of3``.

    Unlike :func:`segment_code` (which names scenario-level virtual
    models), these codes are cost-table-only and embed the split count,
    so a table shared across runs with different ``segments_per_model``
    never resolves a segment against a stale graph from an earlier
    split.
    """
    return f"{code}.{index}of{total}"


def split_graph(graph: ModelGraph, segments: int) -> list[ModelGraph]:
    """Split a graph into MAC-balanced contiguous layer segments.

    Split points only fall on layer boundaries where no later layer
    reaches back across the cut via a residual connection — cutting
    through a skip would require shipping two tensors between engines,
    which the virtual-model chain cannot express.
    """
    if segments < 1:
        raise ValueError(f"segments must be >= 1, got {segments}")
    if segments == 1:
        return [graph]
    n = len(graph.layers)
    if segments > n:
        raise ValueError(
            f"cannot split {graph.name!r} ({n} layers) into {segments}"
        )
    # Valid cut after layer i: no layer j > i references a residual
    # source at index <= i.
    index_of = {layer.name: i for i, layer in enumerate(graph.layers)}
    valid_after = [True] * n
    for j, layer in enumerate(graph.layers):
        if layer.residual_from is None:
            continue
        src = index_of[layer.residual_from]
        for cut in range(src, j):
            valid_after[cut] = False
    valid_cuts = [i for i in range(n - 1) if valid_after[i]]
    if len(valid_cuts) < segments - 1:
        raise ValueError(
            f"{graph.name!r} has only {len(valid_cuts)} residual-safe cut "
            f"points; cannot make {segments} segments"
        )

    # Greedy MAC-balanced selection: walk the prefix-MAC curve and cut at
    # the valid point closest to each ideal quantile.
    prefix = []
    total = 0
    for layer in graph.layers:
        total += layer.macs
        prefix.append(total)
    cuts: list[int] = []
    for k in range(1, segments):
        target = total * k / segments
        candidates = [c for c in valid_cuts if c not in cuts]
        best = min(candidates, key=lambda c: abs(prefix[c] - target))
        cuts.append(best)
    cuts.sort()
    if len(set(cuts)) != len(cuts):
        raise ValueError(
            f"could not find {segments} distinct balanced cuts in "
            f"{graph.name!r}"
        )

    pieces: list[ModelGraph] = []
    start = 0
    boundaries = cuts + [n - 1]
    for idx, end in enumerate(boundaries):
        layers = graph.layers[start : end + 1]
        pieces.append(
            ModelGraph(
                name=f"{graph.name}.{idx}",
                input_shape=layers[0].in_shape,
                layers=layers,
            )
        )
        start = end + 1
    return pieces


class SegmentChain:
    """The compile-time dispatch table of one model's segment chain.

    Built once per run at segment-plan time (simulator "spec compile"),
    a chain records the model's piece codes — ``(None,)`` for a model
    dispatched whole — and memoises the per-``(engine, DVFS point)``
    latency suffixes the slack governor reserves deadline budget with.
    The event loop hangs the chain on every
    :class:`~repro.runtime.engine.WorkItem` it creates, so successor
    segments and governor budget reservations never re-derive the plan
    per request: resolving segment ``k``'s follow-up is a tuple index,
    and reserving the remaining chain's time is one memo probe instead
    of a cost-table query per remaining segment per candidate point.
    """

    __slots__ = ("model_code", "codes", "suffixes", "_latencies")

    def __init__(self, model_code: str, codes) -> None:
        self.model_code = model_code
        self.codes: tuple[str | None, ...] = tuple(codes)
        if not self.codes:
            raise ValueError(f"segment chain of {model_code!r} is empty")
        #: ``suffixes[k]`` is the read-only view of the codes from
        #: segment ``k`` on (``suffixes[len(codes)]`` is the empty tail a
        #: final segment passes to the governor).  Prebuilt so the
        #: dispatch path allocates nothing per decision.
        self.suffixes = tuple(
            ChainSuffix(self, start) for start in range(len(self.codes) + 1)
        )
        self._latencies: dict[tuple, tuple[float, ...]] = {}

    @property
    def num_segments(self) -> int:
        return len(self.codes)

    def remaining_latencies(
        self, start: int, costs, system, engine_index: int, dvfs
    ) -> tuple[float, ...]:
        """Latency of each segment from ``start`` on, on one engine.

        Priced through ``system.engine_cost`` exactly like the per-call
        formulation — same table, same floats — and memoised per
        ``(start, engine, point)``, which is what turns the governor's
        remaining-work reservation into a table probe.
        """
        key = (start, engine_index, dvfs)
        cached = self._latencies.get(key)
        if cached is None:
            model_code = self.model_code
            cached = tuple(
                system.engine_cost(
                    costs, code or model_code, engine_index, dvfs
                ).latency_s
                for code in self.codes[start:]
            )
            self._latencies[key] = cached
        return cached


class ChainSuffix:
    """One chain's codes from a given segment on — a read-only sequence.

    What the event loop hands a :class:`~repro.runtime.governor.DvfsGovernor`
    as ``remaining_codes``: iterating yields the later segments' cost
    codes (``None`` = whole model), and governors that reserve deadline
    budget can call :meth:`remaining_latencies` to price the whole tail
    from the chain's memo instead of per-segment cost-table queries.
    """

    __slots__ = ("chain", "start")

    def __init__(self, chain: SegmentChain, start: int) -> None:
        self.chain = chain
        self.start = start

    def __len__(self) -> int:
        return len(self.chain.codes) - self.start

    def __bool__(self) -> bool:
        return self.start < len(self.chain.codes)

    def __getitem__(self, index):
        return self.chain.codes[self.start:][index]

    def __iter__(self):
        codes = self.chain.codes
        return iter(codes[self.start:] if self.start else codes)

    def __repr__(self) -> str:
        return (
            f"ChainSuffix({self.chain.model_code!r}, "
            f"{self.chain.codes[self.start:]!r})"
        )

    def remaining_latencies(
        self, costs, system, engine_index: int, dvfs
    ) -> tuple[float, ...]:
        """Per-segment latencies of this tail on one engine (memoised)."""
        return self.chain.remaining_latencies(
            self.start, costs, system, engine_index, dvfs
        )


class SegmentedCostTable(GraphRegistry, CostTable):
    """A cost table that also knows the virtual segment graphs."""

    def __init__(self) -> None:
        super().__init__()
        self._graphs = {}

    def cost(
        self, task_code: str, dataflow: Dataflow, num_pes: int
    ) -> ModelCost:
        key = (task_code, dataflow, num_pes)
        if key in self._cache:
            return self._cache[key]
        graph = self._graphs.get(task_code)
        if graph is None:
            return super().cost(task_code, dataflow, num_pes)
        engine = CostModel(dataflow=dataflow, num_pes=num_pes)
        self._cache[key] = memoized_model_cost(engine, graph)
        return self._cache[key]


def segment_scenario(
    scenario: UsageScenario,
    code: str,
    segments: int,
    table: SegmentedCostTable | None = None,
) -> tuple[UsageScenario, SegmentedCostTable]:
    """Replace one model with a chain of pipelined segments.

    Returns the variant scenario and a cost table that can price the
    virtual segment models.  The original model's sensors, rate and
    quality goal are inherited by every segment; segments are chained with
    always-firing data dependencies so the runtime executes them in
    order (possibly on different engines, possibly overlapped across
    frames).
    """
    base_sm = scenario.get(code)  # raises KeyError when inactive
    if segments < 2:
        raise ValueError(
            f"segments must be >= 2 to change anything, got {segments}"
        )
    for dep in scenario.dependencies:
        if code in (dep.upstream, dep.downstream):
            raise ValueError(
                f"cannot segment {code!r}: it participates in the "
                f"dependency {dep.upstream}->{dep.downstream}"
            )
    table = table or SegmentedCostTable()
    pieces = split_graph(base_sm.model.graph, segments)

    seg_models: list[ScenarioModel] = []
    deps: list[Dependency] = list(scenario.dependencies)
    prev_code: str | None = None
    for idx, piece in enumerate(pieces):
        vcode = segment_code(code, idx)
        # A table shared across runs (the Experiment shared-table path)
        # may already know this segment from an earlier call;
        # register_graph treats the identical deterministic piece as a
        # no-op and still rejects a conflicting one (a different split
        # count reusing the same scenario-level code).
        table.register_graph(vcode, piece)
        unit = replace(base_sm.model, code=vcode, graph_override=piece)
        seg_models.append(
            ScenarioModel(
                unit, base_sm.target_fps, aux=idx < len(pieces) - 1
            )
        )
        if prev_code is not None:
            deps.append(
                Dependency(prev_code, vcode, DependencyKind.DATA, 1.0)
            )
        prev_code = vcode

    models = tuple(
        sm for sm in scenario.models if sm.code != code
    ) + tuple(seg_models)
    variant = replace(
        scenario,
        name=f"{scenario.name}_{code.lower()}x{segments}",
        models=models,
        dependencies=tuple(deps),
    )
    return variant, table
