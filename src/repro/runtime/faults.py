"""Deterministic fault injection: plans, events, and resilience records.

Production fleets lose engines and hit thermal limits; the runtime's QoE
numbers are only honest if degraded hardware is a condition it can
simulate on demand.  This module is the plan half of that story: a
:class:`FaultPlan` is a seeded, serializable timeline of
engine-failure / recovery / thermal-throttle events, deterministic from
``(profile, seed)`` exactly like :func:`repro.workload.churn.churn_windows`
is for session lifetimes.  The execution half lives in
:mod:`repro.runtime.multisim`, which schedules the plan's events into
its event loop and drives the recovery machinery (kill + requeue under a
retry budget) they demand.

``make_fault_plan("none", ...)`` returns ``None`` — no plan object, no
events, and the event loop stays bit-identical to the historical path
(the golden schedule checksums re-assert this).

Plans are validated at construction, which is spec-compile time for the
API: a plan whose outages fail every engine simultaneously would stall
the run with work that can never be placed, so it is rejected with a
clear error instead (see :meth:`FaultPlan.__post_init__`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workload.loadgen import _unit_roll

__all__ = [
    "FAULT_PROFILES",
    "FaultAction",
    "FaultEvent",
    "FaultPlan",
    "FaultRecord",
    "make_fault_plan",
]

#: Registered fault profiles.  ``none`` installs nothing (the historical
#: path); the others are seeded event-timeline generators.
FAULT_PROFILES = ("none", "single", "flaky", "thermal")

#: FaultEvent.kind values (plain strings so plans serialize trivially).
ENGINE_FAIL = "engine_fail"
ENGINE_RECOVER = "engine_recover"
THERMAL_THROTTLE = "thermal_throttle"
THERMAL_RELEASE = "thermal_release"

_EVENT_KINDS = (ENGINE_FAIL, ENGINE_RECOVER, THERMAL_THROTTLE,
                THERMAL_RELEASE)


def _roll(profile: str, what: str, i: int, seed: int) -> float:
    """Deterministic uniform draw for one plan field (stable string key)."""
    return _unit_roll(f"fault:{profile}:{what}:{i}:{seed}")


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One scheduled hardware condition change.

    ``max_frequency_scale`` only accompanies ``thermal_throttle``: the
    ceiling on the DVFS ladder's ``frequency_scale`` the engine may run
    at while throttled.
    """

    time_s: float
    kind: str
    engine_index: int
    max_frequency_scale: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in _EVENT_KINDS:
            raise ValueError(
                f"unknown fault event kind {self.kind!r}; "
                f"expected one of {_EVENT_KINDS}"
            )
        if self.time_s < 0:
            raise ValueError(f"fault event time must be >= 0, "
                             f"got {self.time_s}")
        if self.engine_index < 0:
            raise ValueError(
                f"engine_index must be >= 0, got {self.engine_index}"
            )
        if self.kind == THERMAL_THROTTLE:
            if self.max_frequency_scale is None:
                raise ValueError(
                    "thermal_throttle events need a max_frequency_scale"
                )
            if not 0.0 < self.max_frequency_scale:
                raise ValueError(
                    "max_frequency_scale must be > 0, got "
                    f"{self.max_frequency_scale}"
                )
        elif self.max_frequency_scale is not None:
            raise ValueError(
                f"{self.kind} events carry no max_frequency_scale"
            )

    def to_dict(self) -> dict:
        data = {
            "time_s": self.time_s,
            "kind": self.kind,
            "engine_index": self.engine_index,
        }
        if self.max_frequency_scale is not None:
            data["max_frequency_scale"] = self.max_frequency_scale
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        return cls(
            time_s=float(data["time_s"]),
            kind=str(data["kind"]),
            engine_index=int(data["engine_index"]),
            max_frequency_scale=(
                float(data["max_frequency_scale"])
                if data.get("max_frequency_scale") is not None
                else None
            ),
        )


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """A seeded, serializable timeline of hardware-fault events.

    Deterministic: the same ``(profile, seed, num_engines, duration_s)``
    always produces the same plan, so fault schedules pin with golden
    checksums exactly like fault-free ones.

    ``retry_budget`` bounds how many times one request's killed work is
    requeued before it is abandoned as ``failed_faulted``; each retry
    backs off ``backoff_s * 2**attempt`` simulated seconds.
    """

    profile: str
    seed: int
    num_engines: int
    duration_s: float
    events: tuple[FaultEvent, ...]
    retry_budget: int = 2
    backoff_s: float = 0.002

    def __post_init__(self) -> None:
        if self.num_engines < 1:
            raise ValueError(
                f"num_engines must be >= 1, got {self.num_engines}"
            )
        if self.duration_s <= 0:
            raise ValueError(
                f"duration_s must be > 0, got {self.duration_s}"
            )
        if self.retry_budget < 0:
            raise ValueError(
                f"retry_budget must be >= 0, got {self.retry_budget}"
            )
        if self.backoff_s <= 0:
            raise ValueError(
                f"backoff_s must be > 0, got {self.backoff_s}"
            )
        failed: set[int] = set()
        throttled: set[int] = set()
        for event in sorted(self.events,
                            key=lambda e: (e.time_s, e.engine_index)):
            if not 0 <= event.time_s < self.duration_s:
                raise ValueError(
                    f"fault event at t={event.time_s}s is outside the "
                    f"run window [0, {self.duration_s}s)"
                )
            if event.engine_index >= self.num_engines:
                raise ValueError(
                    f"fault event targets engine {event.engine_index} "
                    f"but the system has {self.num_engines} engine(s)"
                )
            if event.kind == ENGINE_FAIL:
                if event.engine_index in failed:
                    raise ValueError(
                        f"engine {event.engine_index} fails twice "
                        f"without recovering (t={event.time_s}s)"
                    )
                failed.add(event.engine_index)
                # The no-capacity veto: a window with every engine down
                # cannot place requeued work, so the run would stall
                # draining retries into a dead fleet.  Reject at
                # spec-compile time instead of mid-run.
                if len(failed) == self.num_engines:
                    raise ValueError(
                        f"fault plan {self.profile!r} (seed {self.seed}) "
                        f"fails all {self.num_engines} engine(s) "
                        f"simultaneously at t={event.time_s}s — no "
                        "capacity remains for requeued work; use a "
                        "system with more engines or a lighter fault "
                        "profile"
                    )
            elif event.kind == ENGINE_RECOVER:
                if event.engine_index not in failed:
                    raise ValueError(
                        f"engine {event.engine_index} recovers at "
                        f"t={event.time_s}s without a preceding failure"
                    )
                failed.discard(event.engine_index)
            elif event.kind == THERMAL_THROTTLE:
                if event.engine_index in throttled:
                    raise ValueError(
                        f"engine {event.engine_index} is throttled twice "
                        f"without a release (t={event.time_s}s)"
                    )
                throttled.add(event.engine_index)
            elif event.kind == THERMAL_RELEASE:
                if event.engine_index not in throttled:
                    raise ValueError(
                        f"engine {event.engine_index} thermal-releases at "
                        f"t={event.time_s}s without a preceding throttle"
                    )
                throttled.discard(event.engine_index)

    @property
    def has_thermal(self) -> bool:
        """Whether any event moves a DVFS ceiling (disables the dense
        uniform-base pricing fast path for the run)."""
        return any(e.kind in (THERMAL_THROTTLE, THERMAL_RELEASE)
                   for e in self.events)

    def to_dict(self) -> dict:
        return {
            "profile": self.profile,
            "seed": self.seed,
            "num_engines": self.num_engines,
            "duration_s": self.duration_s,
            "retry_budget": self.retry_budget,
            "backoff_s": self.backoff_s,
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(
            profile=str(data["profile"]),
            seed=int(data["seed"]),
            num_engines=int(data["num_engines"]),
            duration_s=float(data["duration_s"]),
            events=tuple(
                FaultEvent.from_dict(e) for e in data.get("events", ())
            ),
            retry_budget=int(data.get("retry_budget", 2)),
            backoff_s=float(data.get("backoff_s", 0.002)),
        )


def _single_profile(num_engines: int, duration_s: float,
                    seed: int) -> tuple[FaultEvent, ...]:
    """One engine dies mid-run and recovers late: the canonical outage."""
    engine = int(_roll("single", "engine", 0, seed) * num_engines)
    engine = min(engine, num_engines - 1)
    fail_s = round(
        (0.30 + 0.20 * _roll("single", "fail", 0, seed)) * duration_s, 9
    )
    recover_s = round(
        (0.70 + 0.15 * _roll("single", "recover", 0, seed)) * duration_s, 9
    )
    return (
        FaultEvent(fail_s, ENGINE_FAIL, engine),
        FaultEvent(recover_s, ENGINE_RECOVER, engine),
    )


def _flaky_profile(num_engines: int, duration_s: float,
                   seed: int) -> tuple[FaultEvent, ...]:
    """Three short non-overlapping outages on varying engines.

    Outage ``i`` starts in ``[0.2 + 0.2i, 0.3 + 0.2i] * duration`` and
    lasts ``[0.03, 0.08] * duration``, so consecutive outages can never
    overlap (an outage ends by ``0.38 + 0.2i`` < the next start at
    ``0.4 + 0.2i``) — at most one engine is down at a time, keeping the
    plan valid on two-engine fleets.
    """
    events: list[FaultEvent] = []
    for i in range(3):
        engine = int(_roll("flaky", "engine", i, seed) * num_engines)
        engine = min(engine, num_engines - 1)
        start = round(
            (0.20 + 0.20 * i + 0.10 * _roll("flaky", "start", i, seed))
            * duration_s, 9,
        )
        length = round(
            (0.03 + 0.05 * _roll("flaky", "length", i, seed)) * duration_s, 9
        )
        end = round(min(start + length, duration_s * (1 - 1e-9)), 9)
        events.append(FaultEvent(start, ENGINE_FAIL, engine))
        events.append(FaultEvent(end, ENGINE_RECOVER, engine))
    return tuple(events)


def _thermal_profile(num_engines: int, duration_s: float,
                     seed: int) -> tuple[FaultEvent, ...]:
    """One engine hits a thermal ceiling mid-run and later cools off.

    The ceiling is drawn from the DVFS ladder's slow half ({0.5, 0.7}),
    so the clamp is always satisfiable by a real ladder point.
    """
    engine = int(_roll("thermal", "engine", 0, seed) * num_engines)
    engine = min(engine, num_engines - 1)
    cap = 0.5 if _roll("thermal", "cap", 0, seed) < 0.5 else 0.7
    throttle_s = round(
        (0.25 + 0.15 * _roll("thermal", "throttle", 0, seed)) * duration_s, 9
    )
    release_s = round(
        (0.65 + 0.15 * _roll("thermal", "release", 0, seed)) * duration_s, 9
    )
    return (
        FaultEvent(throttle_s, THERMAL_THROTTLE, engine,
                   max_frequency_scale=cap),
        FaultEvent(release_s, THERMAL_RELEASE, engine),
    )


_PROFILE_BUILDERS = {
    "single": _single_profile,
    "flaky": _flaky_profile,
    "thermal": _thermal_profile,
}


def make_fault_plan(
    profile: str,
    num_engines: int,
    duration_s: float,
    seed: int = 0,
) -> FaultPlan | None:
    """Build the seeded plan for ``profile``; ``None`` for ``"none"``.

    ``None`` means *no plan object at all*: the event loop installs no
    fault machinery and runs the bit-identical historical path.
    """
    if profile == "none":
        return None
    try:
        builder = _PROFILE_BUILDERS[profile]
    except KeyError:
        raise ValueError(
            f"unknown fault profile {profile!r}; "
            f"expected one of {FAULT_PROFILES}"
        ) from None
    return FaultPlan(
        profile=profile,
        seed=seed,
        num_engines=num_engines,
        duration_s=duration_s,
        events=builder(num_engines, duration_s, seed),
    )


@dataclass(frozen=True, slots=True)
class FaultAction:
    """One recovery-machinery decision, stamped on per-session results.

    Kinds: ``kill`` (in-flight work aborted by an engine failure),
    ``retry_scheduled`` (backoff timer armed), ``requeued`` (the killed
    work re-entered the waiting queue), ``superseded`` (a fresher frame
    of the same model was already waiting, so the stale retry was
    abandoned under the freshness policy), ``session_gone`` (the session
    departed or changed phase before the retry fired) and ``exhausted``
    (retry budget spent).
    """

    time_s: float
    kind: str
    engine_index: int
    request_id: int
    model_code: str
    attempt: int = 0


@dataclass(slots=True)
class FaultRecord:
    """Per-session resilience stamp: what the fault plan did to it.

    ``recovery_latency_s`` entries measure kill-to-completion per
    request that was killed by a failure and still completed — the
    user-visible cost of riding out an outage.
    """

    profile: str
    killed: int = 0
    retries: int = 0
    lost: int = 0
    recovered: int = 0
    recovery_latencies_s: list[float] = field(default_factory=list)
    actions: list[FaultAction] = field(default_factory=list)

    @property
    def mean_recovery_latency_s(self) -> float | None:
        if not self.recovery_latencies_s:
            return None
        return sum(self.recovery_latencies_s) / len(self.recovery_latencies_s)
