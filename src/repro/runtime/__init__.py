"""Discrete-event benchmark runtime (Figure 2), multi-tenant edition."""

from .engine import EngineFleet, ExecutionEngine, ExecutionRecord, WorkItem
from .events import Event, EventKind, EventQueue
from .governor import (
    DVFS_POLICIES,
    DispatchContext,
    DvfsGovernor,
    RaceToIdleGovernor,
    SlackGovernor,
    StaticGovernor,
    make_governor,
)
from .multisim import (
    GRANULARITIES,
    MultiScenarioSimulator,
    MultiSessionResult,
    SessionPhase,
    SessionSpec,
)
from .queues import (
    ActiveInferenceTable,
    DependencyTracker,
    PendingQueue,
    WaitingQueue,
)
from .scheduler import (
    SCHEDULERS,
    EarliestDeadlineScheduler,
    RateMonotonicScheduler,
    LatencyGreedyScheduler,
    RoundRobinScheduler,
    Scheduler,
    SchedulerAdapter,
    SegmentScheduler,
    as_segment_scheduler,
    make_scheduler,
    register_scheduler,
)
from .segmentation import SegmentedCostTable, segment_scenario, split_graph
from .simulator import SimulationResult, Simulator
from .timeline import Segment, extract_timeline, render_timeline

__all__ = [
    "ActiveInferenceTable",
    "DVFS_POLICIES",
    "DependencyTracker",
    "DispatchContext",
    "DvfsGovernor",
    "EarliestDeadlineScheduler",
    "EngineFleet",
    "Event",
    "EventKind",
    "EventQueue",
    "ExecutionEngine",
    "ExecutionRecord",
    "GRANULARITIES",
    "LatencyGreedyScheduler",
    "MultiScenarioSimulator",
    "MultiSessionResult",
    "PendingQueue",
    "RaceToIdleGovernor",
    "RateMonotonicScheduler",
    "RoundRobinScheduler",
    "SlackGovernor",
    "StaticGovernor",
    "SCHEDULERS",
    "Scheduler",
    "SchedulerAdapter",
    "Segment",
    "SegmentScheduler",
    "SegmentedCostTable",
    "SessionPhase",
    "SessionSpec",
    "WaitingQueue",
    "WorkItem",
    "as_segment_scheduler",
    "segment_scenario",
    "split_graph",
    "SimulationResult",
    "Simulator",
    "extract_timeline",
    "make_governor",
    "make_scheduler",
    "register_scheduler",
    "render_timeline",
]
