"""Discrete-event benchmark runtime (Figure 2)."""

from .events import Event, EventKind, EventQueue
from .queues import ActiveInferenceTable, DependencyTracker, PendingQueue
from .scheduler import (
    SCHEDULERS,
    EarliestDeadlineScheduler,
    RateMonotonicScheduler,
    LatencyGreedyScheduler,
    RoundRobinScheduler,
    Scheduler,
    make_scheduler,
)
from .segmentation import SegmentedCostTable, segment_scenario, split_graph
from .simulator import SimulationResult, Simulator
from .timeline import Segment, extract_timeline, render_timeline

__all__ = [
    "ActiveInferenceTable",
    "DependencyTracker",
    "EarliestDeadlineScheduler",
    "Event",
    "EventKind",
    "EventQueue",
    "LatencyGreedyScheduler",
    "PendingQueue",
    "RateMonotonicScheduler",
    "RoundRobinScheduler",
    "SCHEDULERS",
    "Scheduler",
    "Segment",
    "SegmentedCostTable",
    "segment_scenario",
    "split_graph",
    "SimulationResult",
    "Simulator",
    "extract_timeline",
    "render_timeline",
]
