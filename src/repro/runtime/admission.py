"""QoE admission control: the runtime's closed-loop control plane.

The paper frames multi-tenant XR serving as a QoE problem — deadline
satisfaction under concurrent model execution — yet an open-loop runtime
just watches a saturated system miss deadlines.  An
:class:`AdmissionController` closes the loop: the event loop consults it
when a session joins (admit or reject) and at periodic
:attr:`~repro.runtime.events.EventKind.CONTROL_TICK` events (shed or
degrade running sessions), driven by the observed deadline-miss EWMA.

Policies (:data:`ADMISSION_POLICIES`):

* ``none`` — the historical open-loop path.  :func:`make_admission`
  returns ``None`` for it, so no controller object exists, no control
  ticks are scheduled, and the event stream is *literally* the
  historical one — the golden schedule checksums pin it bit-identically.
* ``shed`` — admission control by rejection: when the system-wide
  deadline-miss EWMA crosses the overload threshold, new sessions are
  rejected at join and the lowest-priority running session (highest
  session id — later tenants are lower priority) is dropped.  A shed
  session's user is still present (its frames stream and count against
  QoE as drops) but the system spends nothing on it.
* ``degrade`` — admission control by quality adaptation: a struggling
  session (per-session miss EWMA over threshold) has its models switched
  to cheaper variants mid-run instead of being dropped.  The degradation
  ladder pairs rate scaling (:func:`repro.workload.variants.scale_rates`)
  with quantization levels (:func:`repro.nn.quantize.quality_proxy`
  prices the quality cost); the mechanism is the SESSION_PHASE swap
  machinery — the event loop truncates the session's current activity
  window and enters a degraded phase from the control instant.  The
  *step* taken is priced through the cached cost table: the controller
  picks the smallest ladder level whose projected offered load (sum of
  model rates times cheapest-engine latency) sheds at least the observed
  miss fraction.

Every control action is logged as a first-class event: the tick itself is
an :class:`~repro.runtime.events.EventKind` member, and each decision is
stamped into the acting session's :class:`AdmissionRecord` (carried on
its :class:`~repro.runtime.simulator.SimulationResult`) with the miss
EWMA that triggered it, the shed reason or degradation level, and —
via :func:`quality_retention` — the QoE-vs-quality proxy the ladder
level costs.

Controllers only ever *remove* offered load (reject, shed, or slow a
session's stream).  Shedding therefore never increases the deadline-miss
rate versus ``none`` at equal seeds — the property tests pin this across
every registered scheduler.  Degradation carries one caveat the tests
also document: under deadline-ordered schedulers (EDF, rate-monotonic)
at deep saturation, slowing a stream gives stale queued frames *longer*
before a fresher frame displaces them, so work that ``none`` would have
freshness-dropped instead completes late — QoE rises (more frames
served) but the miss rate *conditional on completion* can rise with it.
Under the throughput-greedy scheduler family (the pinned bench
configuration) degradation strictly cuts the miss rate, which the
property tests and the committed bench cells pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Protocol, Sequence

from repro.workload import UsageScenario

__all__ = [
    "ADMISSION_POLICIES",
    "DEGRADATION_LADDER",
    "DegradationStep",
    "ControlAction",
    "AdmissionRecord",
    "SessionView",
    "AdmissionController",
    "ShedController",
    "DegradeController",
    "make_admission",
    "quality_retention",
]

#: The admission policies the runtime (and RunSpec/CLI) accept.
ADMISSION_POLICIES: tuple[str, ...] = ("none", "shed", "degrade")


@dataclass(frozen=True)
class DegradationStep:
    """One rung of the quality ladder: a rate scale plus a precision.

    ``rate_factor`` multiplies every model's target FPS (capped at the
    sensor rate, via :func:`~repro.workload.variants.scale_rates`);
    ``bits`` is the quantization precision the degraded models notionally
    run at (``None`` — full float — for the undegraded rung), which
    prices the quality cost through
    :func:`~repro.nn.quantize.quality_proxy`.
    """

    rate_factor: float
    bits: int | None


#: Level 0 is full fidelity; each later rung streams slower and runs at
#: a lower notional precision.  Rate factors are the dominant load
#: lever; bits set the quality price the report shows.
DEGRADATION_LADDER: tuple[DegradationStep, ...] = (
    DegradationStep(1.0, None),
    DegradationStep(0.75, 8),
    DegradationStep(0.5, 6),
    DegradationStep(1.0 / 3.0, 4),
)


@dataclass(frozen=True)
class ControlAction:
    """One logged control-plane decision.

    ``kind`` is ``"reject"`` (at SESSION_JOIN), ``"shed"`` or
    ``"degrade"`` (at a control tick).  ``miss_ewma`` is the deadline-miss
    EWMA that triggered the action; ``level`` the degradation level the
    session moved *to* (0 for reject/shed).
    """

    time_s: float
    kind: str
    session_id: int
    reason: str
    miss_ewma: float
    level: int = 0


@dataclass
class AdmissionRecord:
    """Per-session control-plane outcome, stamped on its result.

    ``shed`` covers both join-time rejection and mid-run shedding
    (``shed_reason`` says which); ``degradation_level`` indexes
    :data:`DEGRADATION_LADDER` (0 = never degraded).  ``actions`` is the
    session's full decision log in event order.
    """

    policy: str
    shed: bool = False
    shed_reason: str | None = None
    degradation_level: int = 0
    actions: tuple[ControlAction, ...] = ()


@dataclass(frozen=True)
class SessionView:
    """What a controller sees of one live session at a control tick."""

    session_id: int
    level: int
    #: The session's *planned* (undegraded) current-activity scenario —
    #: the baseline any further degradation scales from.
    scenario: UsageScenario
    #: Seconds until the current activity window ends; a controller
    #: should not bother degrading a session about to switch anyway.
    remaining_s: float


class AdmissionController(Protocol):
    """Closed-loop QoE decision interface.

    The event loop calls :meth:`admit` when a session joins,
    :meth:`observe` as each request's final segment completes (the
    deadline outcome feed), and :meth:`decide` at every CONTROL_TICK.
    ``latency_of`` prices a task code's cheapest-engine latency through
    the run's cached cost table.  All methods must be deterministic:
    the observation sequence is fixed by the event order, so two equal
    runs make identical decisions.
    """

    #: Seconds between CONTROL_TICK events.
    period_s: float

    def reset(self) -> None:
        """Clear cross-run state (called at the start of every run)."""
        ...

    def admit(self, now_s: float, session_id: int) -> ControlAction | None:
        """``None`` to admit the joining session, else the reject action."""
        ...

    def observe(self, session_id: int, missed: bool) -> None:
        """Feed one completed request's deadline outcome."""
        ...

    def decide(
        self,
        now_s: float,
        sessions: Sequence[SessionView],
        latency_of: Callable[[str], float],
        num_engines: int,
    ) -> list[ControlAction]:
        """Control actions to apply at this tick (possibly empty)."""
        ...


def _ewma(previous: float, sample: float, alpha: float) -> float:
    return alpha * sample + (1.0 - alpha) * previous


@dataclass
class ShedController:
    """Reject/drop lowest-priority sessions under overload.

    Maintains one system-wide deadline-miss EWMA.  While it exceeds
    ``threshold`` (after ``min_observations`` completions), joining
    sessions are rejected and — at most once per ``min_observations``
    further completions, so each action's effect is observed before the
    next — the lowest-priority live session is shed.  ``min_keep``
    sessions always survive: shedding the last tenant would "fix"
    overload by serving nobody.
    """

    period_s: float = 0.02
    threshold: float = 0.3
    alpha: float = 0.2
    min_observations: int = 6
    min_keep: int = 1

    _miss_ewma: float = field(default=0.0, init=False, repr=False)
    _observed: int = field(default=0, init=False, repr=False)
    _since_action: int = field(default=0, init=False, repr=False)

    def reset(self) -> None:
        self._miss_ewma = 0.0
        self._observed = 0
        self._since_action = 0

    @property
    def _overloaded(self) -> bool:
        return (
            self._observed >= self.min_observations
            and self._miss_ewma > self.threshold
        )

    def admit(self, now_s: float, session_id: int) -> ControlAction | None:
        if not self._overloaded:
            return None
        return ControlAction(
            time_s=now_s,
            kind="reject",
            session_id=session_id,
            reason=(
                f"system overloaded at join: miss EWMA "
                f"{self._miss_ewma:.2f} > {self.threshold:g}"
            ),
            miss_ewma=self._miss_ewma,
        )

    def observe(self, session_id: int, missed: bool) -> None:
        self._miss_ewma = _ewma(self._miss_ewma, float(missed), self.alpha)
        self._observed += 1
        self._since_action += 1

    def decide(
        self,
        now_s: float,
        sessions: Sequence[SessionView],
        latency_of: Callable[[str], float],
        num_engines: int,
    ) -> list[ControlAction]:
        if not self._overloaded:
            return []
        if self._since_action < self.min_observations:
            return []
        if len(sessions) <= self.min_keep:
            return []
        victim = max(sessions, key=lambda v: v.session_id)
        self._since_action = 0
        return [
            ControlAction(
                time_s=now_s,
                kind="shed",
                session_id=victim.session_id,
                reason=(
                    f"lowest-priority of {len(sessions)} sessions under "
                    f"overload: miss EWMA {self._miss_ewma:.2f} > "
                    f"{self.threshold:g}"
                ),
                miss_ewma=self._miss_ewma,
            )
        ]


@dataclass
class DegradeController:
    """Switch a struggling session's models to cheaper variants.

    Maintains a per-session deadline-miss EWMA.  When a session's EWMA
    exceeds ``threshold`` (after ``min_observations`` of its completions
    at the current level), the session steps down the quality ladder.
    The step is *priced through the cached cost table*: the controller
    projects each candidate level's offered load — the sum over the
    session's planned models of (scaled rate x cheapest-engine latency)
    — and takes the smallest level that sheds at least the observed miss
    fraction of the session's current offered load; escalation is at
    least one rung regardless.
    """

    period_s: float = 0.02
    threshold: float = 0.3
    alpha: float = 0.2
    min_observations: int = 6
    ladder: tuple[DegradationStep, ...] = DEGRADATION_LADDER
    #: Skip sessions whose activity window ends within this horizon —
    #: the phase swap would apply to almost nothing.
    min_remaining_s: float = 0.02

    _miss_ewma: dict[int, float] = field(
        default_factory=dict, init=False, repr=False
    )
    _observed: dict[int, int] = field(
        default_factory=dict, init=False, repr=False
    )

    def reset(self) -> None:
        self._miss_ewma = {}
        self._observed = {}

    def admit(self, now_s: float, session_id: int) -> ControlAction | None:
        return None  # degrade never rejects — it adapts

    def observe(self, session_id: int, missed: bool) -> None:
        self._miss_ewma[session_id] = _ewma(
            self._miss_ewma.get(session_id, 0.0), float(missed), self.alpha
        )
        self._observed[session_id] = self._observed.get(session_id, 0) + 1

    def _offered_load_s(
        self,
        scenario: UsageScenario,
        rate_factor: float,
        latency_of: Callable[[str], float],
    ) -> float:
        """Projected busy-seconds per streamed second at one ladder rung."""
        load = 0.0
        for sm in scenario.models:
            if sm.aux:
                continue
            fps = min(
                sm.target_fps * rate_factor, sm.model.primary_sensor.fps
            )
            load += fps * latency_of(sm.code)
        return load

    def decide(
        self,
        now_s: float,
        sessions: Sequence[SessionView],
        latency_of: Callable[[str], float],
        num_engines: int,
    ) -> list[ControlAction]:
        actions = []
        max_level = len(self.ladder) - 1
        for view in sorted(sessions, key=lambda v: v.session_id):
            sid = view.session_id
            if view.level >= max_level:
                continue
            if view.remaining_s < self.min_remaining_s:
                continue
            if self._observed.get(sid, 0) < self.min_observations:
                continue
            ewma = self._miss_ewma.get(sid, 0.0)
            if ewma <= self.threshold:
                continue
            current = self._offered_load_s(
                view.scenario,
                self.ladder[view.level].rate_factor,
                latency_of,
            )
            # The miss EWMA *is* the relief target: missing 60% of
            # deadlines means ~60% of the offered load does not fit, so
            # find the smallest rung shedding that fraction.
            target_load = (1.0 - ewma) * current
            level = min(view.level + 1, max_level)
            for candidate in range(view.level + 1, max_level + 1):
                level = candidate
                load = self._offered_load_s(
                    view.scenario,
                    self.ladder[candidate].rate_factor,
                    latency_of,
                )
                if load <= target_load:
                    break
            actions.append(
                ControlAction(
                    time_s=now_s,
                    kind="degrade",
                    session_id=sid,
                    reason=(
                        f"session miss EWMA {ewma:.2f} > "
                        f"{self.threshold:g}; ladder level "
                        f"{view.level} -> {level} "
                        f"(x{self.ladder[level].rate_factor:g} rate, "
                        f"int{self.ladder[level].bits})"
                    ),
                    miss_ewma=ewma,
                    level=level,
                )
            )
            # Re-accumulate observations at the new level before
            # escalating again: the action's effect must be seen first.
            self._observed[sid] = 0
            self._miss_ewma[sid] = 0.0
        return actions


def make_admission(policy: str) -> AdmissionController | None:
    """Build the controller for a policy name (hyphens tolerated).

    Returns ``None`` for ``"none"``: no controller means no control
    ticks and the exact historical event stream, which is what the
    golden schedule checksums pin.
    """
    name = policy.replace("-", "_")
    if name not in ADMISSION_POLICIES:
        raise ValueError(
            f"unknown admission policy {policy!r}; one of "
            f"{ADMISSION_POLICIES}"
        )
    if name == "none":
        return None
    if name == "shed":
        return ShedController()
    return DegradeController()


@lru_cache(maxsize=None)
def _task_retention(code: str, bits: int | None) -> float:
    """Quality retained by one task at one precision, in [0, 1].

    1.0 for full float.  Otherwise the measured
    :func:`~repro.nn.quantize.quality_proxy` relative to the float
    anchor (HiB: target/0.95; LiB: target*0.95) — i.e. exactly the
    fraction of float quality the quantised variant keeps.  Memoised:
    the proxy runs real graph inference, so each (task, bits) pair is
    priced once per process.
    """
    if bits is None:
        return 1.0
    from repro.nn.quantize import quality_proxy
    from repro.workload.models import UNIT_MODELS

    model = UNIT_MODELS.get(code)
    if model is None:
        # Derived codes (e.g. segment stages) carry no zoo quality
        # anchor; they are aux by construction and never scored.
        return 1.0
    from repro.workload.quality import MetricType

    measured = quality_proxy(model.graph, model.quality, bits=bits)
    target = model.quality.target
    if model.quality.metric_type is MetricType.HIGHER_IS_BETTER:
        retention = measured / (target / 0.95)
    else:
        retention = (target * 0.95) / measured
    return min(1.0, retention)


def quality_retention(
    scenario: UsageScenario,
    level: int,
    ladder: tuple[DegradationStep, ...] = DEGRADATION_LADDER,
) -> float:
    """Mean quality retained by a scenario at one degradation level.

    The QoE-vs-quality proxy stamped into reports and exports: 1.0 at
    level 0, decreasing as the ladder's precision drops.  Averaged over
    the scenario's non-aux models.
    """
    if level < 0:
        raise ValueError(f"degradation level must be >= 0, got {level}")
    step = ladder[min(level, len(ladder) - 1)]
    values = [
        _task_retention(sm.code, step.bits)
        for sm in scenario.models
        if not sm.aux
    ]
    return sum(values) / len(values) if values else 1.0
