"""Model quality goals (``Q`` in Definition 2).

Each unit model carries a quality goal: the metric name (``QMID``), the
target value (``QMtarg``) and whether the metric is higher-is-better or
lower-is-better (``QMType``).  The targets in Table 1 are set at 95% of the
model performance reported in the original papers (or 105% of error for
lower-is-better metrics), leaving headroom for optimisations such as
quantisation while guaranteeing reasonable prediction quality.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["MetricType", "QualityGoal"]


class MetricType(enum.Enum):
    """Direction of a model quality metric."""

    HIGHER_IS_BETTER = "HiB"
    LOWER_IS_BETTER = "LiB"


@dataclass(frozen=True)
class QualityGoal:
    """A (metric, target, direction) triple for one unit model."""

    metric: str
    target: float
    metric_type: MetricType

    def __post_init__(self) -> None:
        if not self.metric:
            raise ValueError("metric name must be non-empty")
        if self.target <= 0:
            raise ValueError(f"target must be > 0, got {self.target}")

    def is_met(self, measured: float) -> bool:
        """Whether a measured value satisfies the goal."""
        if self.metric_type is MetricType.HIGHER_IS_BETTER:
            return measured >= self.target
        return measured <= self.target

    def describe(self) -> str:
        """Human-readable requirement string, e.g. ``mIoU, GT 90.54``."""
        op = "GT" if self.metric_type is MetricType.HIGHER_IS_BETTER else "LT"
        return f"{self.metric}, {op} {self.target:g}"
