"""Usage scenarios (Table 2 / Definition 4).

A usage scenario assigns a target processing rate to each active unit
model and records the inter-model dependencies:

* **data** dependencies (ES -> GE): the downstream inference consumes the
  upstream's output for the same frame, so it can only start after the
  upstream finishes.  With ``probability < 1`` the downstream is only
  triggered when the upstream output warrants it (Figure 7 sweeps this).
* **control** dependencies (KD -> SR): the downstream is *spawned* only
  when the upstream detects its trigger (a keyword), with a per-scenario
  probability — 0.2 for the outdoor scenarios, 0.5 for AR assistant
  (Section 4.1, "Modeling Dynamic Cascading").

The seven scenario variants reconstruct Table 2; see DESIGN.md for how the
row/column alignment ambiguities of the extracted table were resolved.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.registry import scenarios as SCENARIO_REGISTRY

from .models import UNIT_MODELS, UnitModel

__all__ = [
    "DependencyKind",
    "Dependency",
    "ScenarioModel",
    "UsageScenario",
    "SCENARIOS",
    "SCENARIO_ORDER",
    "get_scenario",
    "register_scenario",
    "benchmark_suite",
]


class DependencyKind(enum.Enum):
    """Data vs. control dependency (Table 2's D / C annotations)."""

    DATA = "data"
    CONTROL = "control"


@dataclass(frozen=True)
class Dependency:
    """An edge ``upstream -> downstream`` in the scenario's model graph.

    ``probability`` is the chance that a completed upstream inference
    triggers the downstream model for the same frame.
    """

    upstream: str
    downstream: str
    kind: DependencyKind
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.upstream == self.downstream:
            raise ValueError(f"self-dependency on {self.upstream!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )


@dataclass(frozen=True)
class ScenarioModel:
    """One active model within a scenario: the model plus its target FPS.

    ``aux`` marks helper stages that are scheduled and simulated but not
    scored as user-facing models — e.g. the intermediate segments of a
    Herald-style split model, whose user-visible result is the *final*
    segment's completion.
    """

    model: UnitModel
    target_fps: float
    aux: bool = False

    def __post_init__(self) -> None:
        if self.target_fps <= 0:
            raise ValueError(
                f"target fps must be > 0, got {self.target_fps} "
                f"(deactivated models are simply omitted from the scenario)"
            )

    @property
    def code(self) -> str:
        return self.model.code

    @property
    def period_s(self) -> float:
        return 1.0 / self.target_fps


@dataclass(frozen=True)
class UsageScenario:
    """A named scenario: active models, rates and dependencies (``theta``)."""

    name: str
    description: str
    models: tuple[ScenarioModel, ...]
    dependencies: tuple[Dependency, ...] = ()

    def __post_init__(self) -> None:
        codes = [sm.code for sm in self.models]
        if len(set(codes)) != len(codes):
            raise ValueError(f"duplicate models in scenario {self.name!r}")
        code_set = set(codes)
        for dep in self.dependencies:
            for end in (dep.upstream, dep.downstream):
                if end not in code_set:
                    raise ValueError(
                        f"dependency endpoint {end!r} not active in "
                        f"scenario {self.name!r}"
                    )
        # Reject dependency cycles (a chain is expected in practice).
        edges = {(d.upstream, d.downstream) for d in self.dependencies}
        visiting: set[str] = set()
        done: set[str] = set()

        def visit(node: str) -> None:
            if node in done:
                return
            if node in visiting:
                raise ValueError(
                    f"dependency cycle involving {node!r} in {self.name!r}"
                )
            visiting.add(node)
            for u, v in edges:
                if u == node:
                    visit(v)
            visiting.discard(node)
            done.add(node)

        for code in code_set:
            visit(code)

    # -- queries -------------------------------------------------------------

    @property
    def codes(self) -> tuple[str, ...]:
        return tuple(sm.code for sm in self.models)

    @property
    def num_models(self) -> int:
        return len(self.models)

    def get(self, code: str) -> ScenarioModel:
        for sm in self.models:
            if sm.code == code:
                return sm
        raise KeyError(f"model {code!r} not active in scenario {self.name!r}")

    def fps_of(self, code: str) -> float:
        return self.get(code).target_fps

    def upstream_of(self, code: str) -> Dependency | None:
        """The dependency feeding ``code``, if any (at most one in XRBench)."""
        feeds = [d for d in self.dependencies if d.downstream == code]
        if len(feeds) > 1:
            raise ValueError(
                f"model {code!r} has multiple upstream deps in {self.name!r}"
            )
        return feeds[0] if feeds else None

    def root_models(self) -> list[ScenarioModel]:
        """Models directly driven by sensor frames (no upstream model)."""
        downstreams = {d.downstream for d in self.dependencies}
        return [sm for sm in self.models if sm.code not in downstreams]

    def offered_load_macs_per_s(self) -> float:
        """Aggregate compute demand of the scenario (MACs per second)."""
        return sum(
            sm.model.graph.total_macs * sm.target_fps for sm in self.models
        )

    def with_dependency_probability(
        self, upstream: str, downstream: str, probability: float
    ) -> "UsageScenario":
        """A copy with one dependency's trigger probability replaced.

        Used by the Figure 7 sweep (ES -> GE cascade probability).
        """
        new_deps = []
        found = False
        for dep in self.dependencies:
            if dep.upstream == upstream and dep.downstream == downstream:
                new_deps.append(replace(dep, probability=probability))
                found = True
            else:
                new_deps.append(dep)
        if not found:
            raise KeyError(
                f"no dependency {upstream} -> {downstream} in {self.name!r}"
            )
        return replace(self, dependencies=tuple(new_deps))


def _scenario(
    name: str,
    description: str,
    fps: dict[str, float],
    deps: tuple[Dependency, ...] = (),
) -> UsageScenario:
    models = tuple(
        ScenarioModel(UNIT_MODELS[code], rate) for code, rate in fps.items()
    )
    return UsageScenario(name, description, models, deps)


def _eye_dep(p: float = 1.0) -> Dependency:
    return Dependency("ES", "GE", DependencyKind.DATA, p)


def _speech_dep(p: float) -> Dependency:
    return Dependency("KD", "SR", DependencyKind.CONTROL, p)


def register_scenario(
    scenario: UsageScenario, *, overwrite: bool = False
) -> UsageScenario:
    """Name-address a scenario for ``RunSpec``, the CLI and ``execute()``.

    Registered scenarios resolve through :func:`get_scenario` exactly
    like the seven built-ins, so third-party workloads plug into every
    front end without touching this module.
    """
    return SCENARIO_REGISTRY.register(
        scenario.name, scenario, overwrite=overwrite
    )


for _builtin in (
        _scenario(
            "social_interaction_a",
            "AR messaging with AR object rendering",
            {"HT": 30, "ES": 60, "GE": 60, "DR": 30},
            (_eye_dep(),),
        ),
        _scenario(
            "social_interaction_b",
            "In-person interaction with AR glasses",
            {"ES": 60, "GE": 60, "DR": 30},
            (_eye_dep(),),
        ),
        _scenario(
            "outdoor_activity_a",
            "Hiking with smart photo capture",
            {"KD": 3, "SR": 3, "OD": 10, "DE": 30},
            (_speech_dep(0.2),),
        ),
        _scenario(
            "outdoor_activity_b",
            "Rest during hike",
            {"HT": 30, "KD": 3, "SR": 3},
            (_speech_dep(0.2),),
        ),
        _scenario(
            "ar_assistant",
            "Urban walk with informative AR objects",
            {"KD": 3, "SR": 3, "SS": 10, "OD": 10, "DE": 30, "DR": 30},
            (_speech_dep(0.5),),
        ),
        _scenario(
            "ar_gaming",
            "Gaming with AR object",
            {"HT": 45, "DE": 30, "PD": 30},
        ),
        _scenario(
            "vr_gaming",
            "Highly-interactive immersive VR gaming",
            {"HT": 45, "ES": 60, "GE": 60},
            (_eye_dep(),),
        ),
):
    register_scenario(_builtin)

#: Live view of the scenario registry (built-ins plus any registered
#: third-party scenarios), kept for the original dict-style API.
SCENARIOS: dict[str, UsageScenario] = SCENARIO_REGISTRY.backing

#: Presentation order used by Figure 5 (a)-(g).
SCENARIO_ORDER: tuple[str, ...] = (
    "social_interaction_a",
    "social_interaction_b",
    "outdoor_activity_a",
    "outdoor_activity_b",
    "ar_assistant",
    "ar_gaming",
    "vr_gaming",
)


def get_scenario(name: str) -> UsageScenario:
    """Look up a scenario by name (built-in or registered)."""
    return SCENARIO_REGISTRY.get(name)


def benchmark_suite() -> list[UsageScenario]:
    """The full suite ``Omega`` in Figure 5's presentation order."""
    return [SCENARIOS[name] for name in SCENARIO_ORDER]
