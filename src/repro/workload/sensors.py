"""Input sources of a metaverse device (paper Table 3).

Three sensors feed the unit models: a camera (images, 60 FPS), a lidar
(sparse depth points, 60 FPS) and a microphone (audio segments, 3 FPS).
Each data frame arrives with a small jitter around its nominal streaming
time; Definition 7 formalises the jittered request time as

    Treq = Linit + frame_id / FPS + 2*Jt*(Dist(rand(...)) - 0.5)

with ``Dist`` a distribution over [0, 1] (Gaussian by default in the paper;
we use a clipped Gaussian) and ``rand`` a deterministic function of the
sensor and frame id, so a run is reproducible for a given seed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

__all__ = ["InputSource", "CAMERA", "LIDAR", "MICROPHONE", "SENSORS", "get_sensor"]


@lru_cache(maxsize=1 << 16)
def _jitter_unit(name: str, frame_id: int, seed: int) -> float:
    """The clipped-Gaussian draw ``u`` for one (sensor, frame, seed).

    A pure function of its key — seeding a fresh generator per draw is
    what makes frames order-independent, but it costs ~50µs each, so the
    draw is memoised.  Models sharing a sensor (and repeated runs of the
    same seeds) reuse the entry; the cache bound keeps memory flat under
    long sweeps.
    """
    digest = hashlib.sha256(f"{name}:{frame_id}:{seed}".encode()).digest()
    rng = np.random.default_rng(int.from_bytes(digest[:8], "little"))
    return float(np.clip(rng.normal(0.5, 1.0 / 6.0), 0.0, 1.0))


@dataclass(frozen=True)
class InputSource:
    """A sensor stream (``sigma`` in Definition 1).

    Attributes:
        name: ``inSrcID`` — the sensor identifier.
        input_type: human-readable payload description (Table 3).
        fps: nominal streaming rate in frames per second.
        jitter_ms: maximum absolute jitter ``Jt`` in milliseconds.
        init_latency_ms: ``Linit``, the stream's setup latency.
    """

    name: str
    input_type: str
    fps: float
    jitter_ms: float
    init_latency_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.fps <= 0:
            raise ValueError(f"sensor fps must be > 0, got {self.fps}")
        if self.jitter_ms < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter_ms}")
        if self.init_latency_ms < 0:
            raise ValueError(
                f"init latency must be >= 0, got {self.init_latency_ms}"
            )

    @property
    def period_s(self) -> float:
        """Nominal seconds between consecutive frames."""
        return 1.0 / self.fps

    def nominal_arrival_s(self, frame_id: int) -> float:
        """Unjittered arrival time of ``frame_id`` (seconds)."""
        if frame_id < 0:
            raise ValueError(f"frame_id must be >= 0, got {frame_id}")
        return self.init_latency_ms / 1e3 + frame_id / self.fps

    def jitter_s(self, frame_id: int, seed: int = 0) -> float:
        """Deterministic jitter for ``frame_id`` in seconds.

        The jitter is ``2*Jt*(u - 0.5)`` where ``u`` is drawn from a
        Gaussian centred at 0.5 (sigma 1/6) clipped to [0, 1], seeded by a
        stable hash of (sensor, frame, seed) so every harness component
        observing this frame sees the same arrival time.
        """
        if self.jitter_ms == 0.0:
            return 0.0
        u = _jitter_unit(self.name, frame_id, seed)
        return 2.0 * (self.jitter_ms / 1e3) * (u - 0.5)

    def arrival_s(self, frame_id: int, seed: int = 0) -> float:
        """Jittered arrival time of ``frame_id`` (Definition 7), seconds.

        Clamped at zero: a frame cannot arrive before the stream starts.
        """
        return max(
            0.0,
            self.nominal_arrival_s(frame_id) + self.jitter_s(frame_id, seed),
        )


CAMERA = InputSource("camera", "Images", fps=60.0, jitter_ms=0.05)
LIDAR = InputSource("lidar", "Sparse Depth Points", fps=60.0, jitter_ms=0.05)
MICROPHONE = InputSource("microphone", "Audio", fps=3.0, jitter_ms=0.1)

SENSORS: dict[str, InputSource] = {
    s.name: s for s in (CAMERA, LIDAR, MICROPHONE)
}


def get_sensor(name: str) -> InputSource:
    """Look up a sensor by ``inSrcID``; raises ``KeyError`` with options."""
    try:
        return SENSORS[name]
    except KeyError:
        raise KeyError(
            f"unknown sensor {name!r}; available: {sorted(SENSORS)}"
        ) from None
