"""Deterministic session-churn plans: who is online when.

The paper frames the runtime as serving *dynamically arriving* XR
workloads — users join mid-run, leave before the stream ends, and switch
activities.  This module is the workload-layer source of that dynamism:
:func:`churn_windows` turns a single ``churn`` knob into a deterministic
per-session :class:`SessionWindow` plan, seeded exactly like every other
random draw in the workload layer (a pure hash of a stable string key),
so two runs of the same spec produce bit-identical plans.

``churn`` is the fraction of the run duration over which lifetimes
fray at both ends: session arrivals spread uniformly over the *first*
``churn * duration`` seconds and departures over the *last*
``churn * duration`` seconds.  ``churn = 0`` is the static case — every
window is ``(0.0, None)``, i.e. "alive for the whole run", which the
runtime treats exactly like a pre-churn session (the golden schedule
checksums pin this).  ``churn`` is capped at 0.5 so the arrival band and
the departure band cannot overlap: every session's window is non-empty
by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from .loadgen import _unit_roll

__all__ = ["MAX_CHURN", "SessionWindow", "churn_windows"]

#: Arrivals and departures each spread over ``churn * duration`` seconds;
#: above one half the two bands would overlap and windows could invert.
MAX_CHURN = 0.5


@dataclass(frozen=True)
class SessionWindow:
    """One session's lifetime within a run.

    ``departure_s is None`` means the session stays for the whole run
    (including the drain past the streamed duration) — the static
    behaviour every pre-churn run had.
    """

    arrival_s: float = 0.0
    departure_s: float | None = None

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ValueError(
                f"arrival_s must be >= 0, got {self.arrival_s}"
            )
        if self.departure_s is not None and self.departure_s <= self.arrival_s:
            raise ValueError(
                f"departure_s ({self.departure_s}) must be after "
                f"arrival_s ({self.arrival_s})"
            )

    def active_duration_s(self, duration_s: float) -> float:
        """Seconds of the streamed window this session is online for."""
        end = (
            duration_s
            if self.departure_s is None
            else min(self.departure_s, duration_s)
        )
        return max(0.0, end - self.arrival_s)


def churn_windows(
    num_sessions: int,
    duration_s: float,
    churn: float,
    seed: int = 0,
) -> list[SessionWindow]:
    """A deterministic lifetime window per session.

    Session ``i``'s arrival is drawn uniformly from
    ``[0, churn * duration_s)`` and its departure from
    ``(duration_s * (1 - churn), duration_s]``, both as pure functions of
    ``(i, seed)``.  Times are rounded to a nanosecond so plans survive
    float formatting round-trips (the same convention the golden schedule
    checksums use).
    """
    if num_sessions < 1:
        raise ValueError(f"num_sessions must be >= 1, got {num_sessions}")
    if duration_s <= 0:
        raise ValueError(f"duration_s must be > 0, got {duration_s}")
    if not 0.0 <= churn <= MAX_CHURN:
        raise ValueError(
            f"churn must be in [0, {MAX_CHURN}], got {churn}"
        )
    if churn == 0.0:
        return [SessionWindow() for _ in range(num_sessions)]
    band = churn * duration_s
    windows = []
    for i in range(num_sessions):
        arrival = round(
            _unit_roll(f"churn:arrival:{i}:{seed}") * band, 9
        )
        departure = round(
            duration_s - _unit_roll(f"churn:departure:{i}:{seed}") * band, 9
        )
        windows.append(SessionWindow(arrival, departure))
    return windows
