"""Inference requests and their timing (Definitions 6-9).

An :class:`InferenceRequest` is one (model, frame) inference to be
dispatched by the runtime.  Its timing fields:

* ``request_time_s`` (``Treq``) — when the input data becomes available:
  the jittered sensor-frame arrival for sensor-driven models, or the
  upstream completion time for dependent models.
* ``deadline_s`` (``Tdl``) — the arrival of the model's *next* input
  frame (Definition 8): finishing later than this cannot contribute to
  the target processing rate.
* ``slack_s`` (``Tsl``) — ``Tdl - Treq``, the window the system has to run
  the inference (Definition 9).

Model frames are derived from sensor frames.  A model targeting
``FPS_model`` on a sensor streaming at ``FPS_sensor >= FPS_model``
consumes every ``FPS_sensor / FPS_model``-th frame (Figure 3: a 30 FPS
model on the 60 FPS camera skips every other frame).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from functools import cached_property

from .scenarios import ScenarioModel

__all__ = ["FramePlan", "InferenceRequest"]

_request_ids = itertools.count()


@dataclass(frozen=True)
class FramePlan:
    """Maps a model's frame index onto sensor frames and deadlines.

    ``effective_fps`` and ``stride`` are cached: both are pure functions
    of the (frozen) scenario model, and the runtime asks for them once
    per frame mapping — thousands of times per run.
    """

    scenario_model: ScenarioModel

    @cached_property
    def effective_fps(self) -> float:
        """Achievable processing rate: the target, capped by the sensor.

        Even zero-latency inference cannot exceed the input streaming rate
        (Section 3.6), so a target above the sensor rate clips to it.
        """
        sensor_fps = self.scenario_model.model.primary_sensor.fps
        return min(self.scenario_model.target_fps, sensor_fps)

    @cached_property
    def stride(self) -> float:
        """Sensor frames consumed per model frame (>= 1)."""
        sensor_fps = self.scenario_model.model.primary_sensor.fps
        return sensor_fps / self.effective_fps

    def sensor_frame_for(self, model_frame: int) -> int:
        """The sensor frame id consumed by ``model_frame``."""
        if model_frame < 0:
            raise ValueError(f"model_frame must be >= 0, got {model_frame}")
        return int(model_frame * self.stride)

    def request_time_s(self, model_frame: int, seed: int = 0) -> float:
        """Jittered availability time of the model frame's input data.

        Multi-modal models (DR) wait for *all* their sensors to deliver the
        frame, so the request time is the max across sensors.
        """
        sensor_frame = self.sensor_frame_for(model_frame)
        times = []
        for sensor in self.scenario_model.model.sensors:
            # Sensors stream at aligned rates in XRBench (Table 3 aligns
            # camera and lidar at 60 FPS); re-derive the frame id for
            # sensors whose rate differs from the primary.
            primary_fps = self.scenario_model.model.primary_sensor.fps
            frame = int(round(sensor_frame * sensor.fps / primary_fps))
            times.append(sensor.arrival_s(frame, seed))
        return max(times)

    def deadline_s(self, model_frame: int) -> float:
        """Nominal arrival of the next consumed frame (Definition 8)."""
        sensor = self.scenario_model.model.primary_sensor
        next_sensor_frame = self.sensor_frame_for(model_frame + 1)
        return sensor.nominal_arrival_s(next_sensor_frame)

    def num_frames(self, duration_s: float) -> int:
        """How many model frames stream within ``duration_s``."""
        if duration_s <= 0:
            raise ValueError(f"duration must be > 0, got {duration_s}")
        count = 0
        while True:
            sensor_frame = self.sensor_frame_for(count)
            sensor = self.scenario_model.model.primary_sensor
            if sensor.nominal_arrival_s(sensor_frame) >= duration_s:
                return count
            count += 1


@dataclass(slots=True)
class InferenceRequest:
    """One dispatched inference (``IR = (mu, InFrameID)``).

    Slotted: the runtime materialises one per streamed frame (thousands
    per multi-session run) and mutates the timing fields on the hot
    path, so attribute access goes through fixed slots, not a dict.
    """

    model_code: str
    model_frame: int
    request_time_s: float
    deadline_s: float
    request_id: int = field(default_factory=lambda: next(_request_ids))
    #: Filled in by the runtime.
    start_time_s: float | None = None
    end_time_s: float | None = None
    accelerator_id: int | None = None
    energy_mj: float | None = None
    dropped: bool = False
    #: Fault-injection stamps (repro.runtime.faults): ``faulted`` marks a
    #: request whose in-flight work was killed by an engine failure at
    #: least once; ``fault_retries`` counts its requeue attempts;
    #: ``failed_faulted`` marks it abandoned by the recovery machinery
    #: (retry budget spent, or no chance to re-run) — distinct from a
    #: deadline miss, which is a *completed* request that ran late.
    faulted: bool = False
    fault_retries: int = 0
    failed_faulted: bool = False

    @property
    def slack_s(self) -> float:
        """``Tsl = Tdl - Treq`` (Definition 9)."""
        return self.deadline_s - self.request_time_s

    @property
    def latency_s(self) -> float:
        """End-to-end latency from data availability to completion."""
        if self.end_time_s is None:
            raise ValueError(
                f"request {self.request_id} ({self.model_code} frame "
                f"{self.model_frame}) has not completed"
            )
        return self.end_time_s - self.request_time_s

    @property
    def completed(self) -> bool:
        return self.end_time_s is not None and not self.dropped

    @property
    def missed_deadline(self) -> bool:
        """Whether the inference finished after its deadline."""
        return self.completed and self.end_time_s > self.deadline_s

    def __repr__(self) -> str:  # keep logs compact
        state = (
            "dropped"
            if self.dropped
            else ("done" if self.completed else "pending")
        )
        return (
            f"IR({self.model_code}#{self.model_frame}, t={self.request_time_s:.4f}, "
            f"dl={self.deadline_s:.4f}, {state})"
        )
