"""The MTMM workload taxonomy (Section 2.1).

The paper's first contribution is a classification of multi-task
multi-model workloads:

* **cas-MTMM** — cascaded: models chained back-to-back into one pipeline.
* **con-MTMM** — concurrent: independent models running side by side.
* **cascon-MTMM** — both: pipelines deployed alongside independent models
  (every realistic XR scenario).

Orthogonally, a workload is **dynamic** when control dependencies can
deactivate downstream models at runtime (probability < 1 triggers), and
**static** otherwise.  These functions classify any
:class:`~repro.workload.scenarios.UsageScenario` and verify that the
shipped suite is, as the paper claims, dominated by dynamic cascon-MTMM
workloads.
"""

from __future__ import annotations

import enum

from .scenarios import UsageScenario

__all__ = ["MtmmClass", "classify", "is_dynamic", "pipelines"]


class MtmmClass(enum.Enum):
    """Section 2.1's workload classes (plus the degenerate single-model)."""

    STSM = "STSM"                # single-task single-model
    CASCADED = "cas-MTMM"
    CONCURRENT = "con-MTMM"
    CASCADED_CONCURRENT = "cascon-MTMM"


def pipelines(scenario: UsageScenario) -> list[list[str]]:
    """The cascaded pipelines of a scenario, as chains of task codes.

    Every connected dependency chain is one pipeline; standalone models
    are returned as single-element chains.
    """
    upstream_of = {d.downstream: d.upstream for d in scenario.dependencies}
    downstream_of = {d.upstream: d.downstream for d in scenario.dependencies}
    chains: list[list[str]] = []
    for sm in scenario.models:
        if sm.code in upstream_of:
            continue  # not a chain head
        chain = [sm.code]
        cursor = sm.code
        while cursor in downstream_of:
            cursor = downstream_of[cursor]
            chain.append(cursor)
        chains.append(chain)
    return chains


def classify(scenario: UsageScenario) -> MtmmClass:
    """Classify a scenario into the Section 2.1 taxonomy."""
    chains = pipelines(scenario)
    has_cascade = any(len(c) > 1 for c in chains)
    multiple_units = len(chains) > 1
    if has_cascade and multiple_units:
        return MtmmClass.CASCADED_CONCURRENT
    if has_cascade:
        return MtmmClass.CASCADED
    if multiple_units:
        return MtmmClass.CONCURRENT
    return MtmmClass.STSM


def is_dynamic(scenario: UsageScenario) -> bool:
    """Whether any dependency can deactivate its downstream at runtime.

    Control dependencies are dynamic by nature (the upstream's *result*
    decides); data dependencies are dynamic when their trigger probability
    is below 1 (the Figure 7 sweep).
    """
    from .scenarios import DependencyKind

    return any(
        d.kind is DependencyKind.CONTROL or d.probability < 1.0
        for d in scenario.dependencies
    )
