"""Scenario-variant construction utilities.

One of the paper's benchmark principles is "Variants of a Usage Scenario":
the dynamic nature of XR workloads means the same base scenario should be
studied with different active-model sets and rates (Social Interaction A/B
and Outdoor Activity A/B are the shipped examples).  These helpers let
users derive further variants without hand-building scenarios:

* :func:`deactivate` — drop a model (the paper's 0-FPS deactivation).
* :func:`retarget` — change one model's target rate.
* :func:`scale_rates` — stress-scale every rate (load scaling studies).
* :func:`activate` — add a unit model at a rate, with optional dependency.
"""

from __future__ import annotations

import difflib
from dataclasses import replace

from .models import UNIT_MODELS
from .scenarios import (
    Dependency,
    DependencyKind,
    ScenarioModel,
    UsageScenario,
)

__all__ = ["deactivate", "retarget", "scale_rates", "activate"]


def _require_active(scenario: UsageScenario, code: str) -> None:
    """Raise a suggesting ``KeyError`` when ``code`` is not active."""
    if code in scenario.codes:
        return
    names = sorted(scenario.codes)
    message = (
        f"model {code!r} not active in scenario {scenario.name!r}; "
        f"active: {names}"
    )
    # Model codes are two letters, so one shared letter is already a
    # near miss — the default 0.6 cutoff would never fire for them.
    close = difflib.get_close_matches(code, names, n=1, cutoff=0.5)
    if not close:
        folded = code.casefold()
        close = [n for n in names if n.casefold() == folded][:1]
    if close:
        message += f" (did you mean {close[0]!r}?)"
    raise KeyError(message)


def deactivate(scenario: UsageScenario, code: str) -> UsageScenario:
    """A variant with ``code`` deactivated (0 FPS == omitted).

    Dependencies touching the model are removed with it; deactivating the
    upstream of a pipeline deactivates the downstream trigger path, so the
    downstream must be deactivated too (mirroring how a real runtime would
    never spawn it).
    """
    _require_active(scenario, code)
    downstream_of_code = {
        d.downstream for d in scenario.dependencies if d.upstream == code
    }
    if downstream_of_code:
        raise ValueError(
            f"cannot deactivate {code!r}: downstream models "
            f"{sorted(downstream_of_code)} depend on it; deactivate them "
            f"first"
        )
    models = tuple(sm for sm in scenario.models if sm.code != code)
    if not models:
        raise ValueError(f"deactivating {code!r} would empty the scenario")
    deps = tuple(
        d for d in scenario.dependencies
        if code not in (d.upstream, d.downstream)
    )
    return replace(
        scenario,
        name=f"{scenario.name}_no_{code.lower()}",
        models=models,
        dependencies=deps,
    )


def retarget(
    scenario: UsageScenario, code: str, target_fps: float
) -> UsageScenario:
    """A variant with one model's target processing rate changed."""
    _require_active(scenario, code)
    models = tuple(
        replace(sm, target_fps=target_fps) if sm.code == code else sm
        for sm in scenario.models
    )
    return replace(
        scenario,
        name=f"{scenario.name}_{code.lower()}{target_fps:g}fps",
        models=models,
    )


def scale_rates(scenario: UsageScenario, factor: float) -> UsageScenario:
    """A variant with every target rate multiplied by ``factor``.

    Rates are capped at each model's sensor streaming rate — the paper is
    explicit that processing cannot outrun the input stream.
    """
    if factor <= 0:
        raise ValueError(f"factor must be > 0, got {factor}")
    models = tuple(
        replace(
            sm,
            target_fps=min(
                sm.target_fps * factor, sm.model.primary_sensor.fps
            ),
        )
        for sm in scenario.models
    )
    return replace(
        scenario, name=f"{scenario.name}_x{factor:g}", models=models
    )


def activate(
    scenario: UsageScenario,
    code: str,
    target_fps: float,
    depends_on: str | None = None,
    kind: DependencyKind = DependencyKind.DATA,
    probability: float = 1.0,
) -> UsageScenario:
    """A variant with an additional unit model activated."""
    if code in scenario.codes:
        raise ValueError(f"model {code!r} is already active")
    model = UNIT_MODELS.get(code)
    if model is None:
        raise KeyError(
            f"unknown model code {code!r}; available: {sorted(UNIT_MODELS)}"
        )
    models = scenario.models + (ScenarioModel(model, target_fps),)
    deps = scenario.dependencies
    if depends_on is not None:
        deps = deps + (Dependency(depends_on, code, kind, probability),)
    return replace(
        scenario,
        name=f"{scenario.name}_plus_{code.lower()}",
        models=models,
        dependencies=deps,
    )
