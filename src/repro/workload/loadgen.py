"""Load generator: turns a usage scenario into timed inference requests.

Root models (those driven directly by sensors) get their full request
schedule generated up front from the jittered sensor streams.  Dependent
models (downstream of a data or control dependency) are *not* scheduled
here — the runtime spawns their requests when the upstream inference
completes, rolling the dependency's trigger probability with a
deterministic per-frame RNG so runs are reproducible.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .requests import FramePlan, InferenceRequest
from .scenarios import Dependency, UsageScenario

__all__ = ["LoadGenerator"]


@lru_cache(maxsize=1 << 16)
def _unit_roll(key: str) -> float:
    """Deterministic uniform draw in [0, 1) for a stable string key.

    Pure function of the key (the per-draw generator exists only to turn
    a hash into a well-distributed float), so it is memoised: repeated
    runs of the same seeds — benchmark repeats, sweep points sharing a
    scenario — skip the ~50µs generator construction per roll.
    """
    digest = hashlib.sha256(key.encode()).digest()
    rng = np.random.default_rng(int.from_bytes(digest[:8], "little"))
    return float(rng.random())


@lru_cache(maxsize=1 << 12)
def _num_frames(plan: FramePlan, duration_s: float) -> int:
    """Memoised :meth:`FramePlan.num_frames` (hashable frozen plan)."""
    return plan.num_frames(duration_s)


@lru_cache(maxsize=1 << 10)
def _root_schedule(
    scenario: UsageScenario,
    duration_s: float,
    seed: int,
    frame_loss_probability: float,
) -> tuple[tuple[float, str, int, float], ...]:
    """The scenario's sorted root-request schedule, as plain tuples.

    ``(request_time_s, model_code, model_frame, deadline_s)`` rows in
    dispatch order.  The schedule is a pure function of the (frozen,
    hashable) scenario and the generation parameters — every randomness
    source is keyed derivation, not stateful RNG — so it is memoised:
    sessions replicating one scenario at the same seed, benchmark
    repeats and sweep points rebuild request *objects* (mutable, so they
    must be fresh per run) from cached timing rows instead of re-walking
    the jittered sensor streams.
    """
    rows: list[tuple[float, str, int, float]] = []
    for sm in scenario.root_models():
        plan = FramePlan(sm)
        code = sm.code
        for frame in range(_num_frames(plan, duration_s)):
            if frame_loss_probability > 0.0 and (
                _unit_roll(f"loss:{code}:{frame}:{seed}")
                < frame_loss_probability
            ):
                continue
            rows.append((
                plan.request_time_s(frame, seed),
                code,
                frame,
                plan.deadline_s(frame),
            ))
    # Same order as sorting the built requests by (time, code): rows are
    # appended in (model, frame) order and the sort is stable.
    rows.sort(key=lambda r: (r[0], r[1]))
    return tuple(rows)


@dataclass
class LoadGenerator:
    """Generates the request stream for one scenario run.

    Attributes:
        scenario: the usage scenario to drive.
        duration_s: how long the input streams run.
        seed: seed for jitter and dependency-trigger randomness.
        frame_loss_probability: failure-injection knob — probability that a
            sensor frame is lost before reaching the device (bus errors,
            sensor glitches).  Lost frames never become requests; the QoE
            denominator still counts them, so sensor flakiness degrades
            QoE exactly like runtime drops do.
    """

    scenario: UsageScenario
    duration_s: float
    seed: int = 0
    frame_loss_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError(f"duration must be > 0, got {self.duration_s}")
        if not 0.0 <= self.frame_loss_probability < 1.0:
            raise ValueError(
                f"frame_loss_probability must be in [0, 1), got "
                f"{self.frame_loss_probability}"
            )
        self._plans = {
            sm.code: FramePlan(sm) for sm in self.scenario.models
        }

    def frame_lost(self, code: str, model_frame: int) -> bool:
        """Deterministically roll whether a sensor frame was lost."""
        if self.frame_loss_probability <= 0.0:
            return False
        roll = _unit_roll(f"loss:{code}:{model_frame}:{self.seed}")
        return roll < self.frame_loss_probability

    def plan_for(self, code: str) -> FramePlan:
        return self._plans[code]

    def root_requests(self) -> list[InferenceRequest]:
        """All requests for sensor-driven models, sorted by request time.

        Timing comes from the memoised schedule (:func:`_root_schedule`);
        the request objects themselves are always fresh — the runtime
        mutates them.
        """
        return [
            InferenceRequest(
                model_code=code,
                model_frame=frame,
                request_time_s=request_time_s,
                deadline_s=deadline_s,
            )
            for request_time_s, code, frame, deadline_s in _root_schedule(
                self.scenario,
                self.duration_s,
                self.seed,
                self.frame_loss_probability,
            )
        ]

    def dependency_triggers(
        self, dep: Dependency, model_frame: int
    ) -> bool:
        """Deterministically roll whether ``dep`` fires for a frame."""
        if dep.probability >= 1.0:
            return True
        if dep.probability <= 0.0:
            return False
        roll = _unit_roll(
            f"{dep.upstream}->{dep.downstream}:{model_frame}:{self.seed}"
        )
        return roll < dep.probability

    def spawn_dependent(
        self, dep: Dependency, upstream_frame: int, ready_time_s: float
    ) -> InferenceRequest | None:
        """Create the downstream request triggered by an upstream completion.

        Returns ``None`` when the trigger roll fails (dynamic cascading) or
        when the downstream frame falls outside the run duration.  The
        downstream inherits the upstream's frame index mapped onto its own
        frame plan; its request time is when the upstream's output became
        available.
        """
        if not self.dependency_triggers(dep, upstream_frame):
            return None
        down_plan = self._plans[dep.downstream]
        up_plan = self._plans[dep.upstream]
        # Map the upstream model-frame to the downstream frame covering the
        # same instant of the sensor stream.
        ratio = down_plan.effective_fps / up_plan.effective_fps
        down_frame = int(upstream_frame * ratio)
        sensor = down_plan.scenario_model.model.primary_sensor
        nominal = sensor.nominal_arrival_s(
            down_plan.sensor_frame_for(down_frame)
        )
        if nominal >= self.duration_s:
            return None
        return InferenceRequest(
            model_code=dep.downstream,
            model_frame=down_frame,
            request_time_s=ready_time_s,
            deadline_s=down_plan.deadline_s(down_frame),
        )

    def expected_frames(self) -> dict[str, int]:
        """Streamed frame counts per root model (QoE denominators).

        Dependent models' denominators are counted at runtime, since only
        triggered requests are "streamed" work for them.
        """
        downstream = {d.downstream for d in self.scenario.dependencies}
        return {
            sm.code: _num_frames(self._plans[sm.code], self.duration_s)
            for sm in self.scenario.models
            if sm.code not in downstream
        }
