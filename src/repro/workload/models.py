"""Unit-model descriptors (Table 1 / Definition 3).

A :class:`UnitModel` is the workload-side view of one unit task: the task
code and name, the sensor stream(s) it consumes, the dataset it was
validated on, its quality goal, and the task category (interaction /
context understanding / world locking).  The actual DNN architecture lives
in :mod:`repro.zoo` and is reachable via :meth:`UnitModel.graph`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.nn import ModelGraph
from repro.zoo import build_model

from .quality import MetricType, QualityGoal
from .sensors import CAMERA, LIDAR, MICROPHONE, InputSource

__all__ = ["TaskCategory", "UnitModel", "UNIT_MODELS", "get_model"]


class TaskCategory(enum.Enum):
    """The three task categories of Table 1."""

    INTERACTION = "Interaction"
    CONTEXT = "Context Understanding"
    WORLD_LOCKING = "World Locking"


@dataclass(frozen=True)
class UnitModel:
    """One row of Table 1, bound to its zoo graph and sensors."""

    code: str                      # task code, e.g. "HT"
    task: str                      # human-readable task name
    model_name: str                # reference model (Table 1)
    instance_name: str             # concrete instance (Table 7)
    dataset: str                   # DSID
    category: TaskCategory
    sensors: tuple[InputSource, ...]
    quality: QualityGoal
    #: Derived models (e.g. Herald-style segments) carry their own graph;
    #: ``None`` means "look the code up in the zoo registry".
    graph_override: ModelGraph | None = None

    def __post_init__(self) -> None:
        if not self.sensors:
            raise ValueError(f"model {self.code} must have >= 1 sensor")

    @property
    def graph(self) -> ModelGraph:
        """The layer graph implementing this task."""
        if self.graph_override is not None:
            return self.graph_override
        return build_model(self.code)

    @property
    def is_multimodal(self) -> bool:
        return len(self.sensors) > 1

    @property
    def primary_sensor(self) -> InputSource:
        """The sensor whose frame ids drive this model's inference requests."""
        return self.sensors[0]


def _m(
    code: str,
    task: str,
    model_name: str,
    instance: str,
    dataset: str,
    category: TaskCategory,
    sensors: tuple[InputSource, ...],
    metric: str,
    target: float,
    metric_type: MetricType,
) -> UnitModel:
    return UnitModel(
        code=code,
        task=task,
        model_name=model_name,
        instance_name=instance,
        dataset=dataset,
        category=category,
        sensors=sensors,
        quality=QualityGoal(metric, target, metric_type),
    )


_HIB = MetricType.HIGHER_IS_BETTER
_LIB = MetricType.LOWER_IS_BETTER

#: Table 1, bound to Table 7 instances.  KD and SR serve both the
#: interaction and context-understanding categories; they appear once here
#: (the category field records their primary category) and scenarios may
#: use them for either purpose.
UNIT_MODELS: dict[str, UnitModel] = {
    m.code: m
    for m in (
        _m("HT", "Hand Tracking", "Hand Shape/Pose", "Hand Shape/Pose",
           "Stereo Hand Pose (1/2 scale)", TaskCategory.INTERACTION,
           (CAMERA,), "AUC PCK", 0.948, _HIB),
        _m("ES", "Eye Segmentation", "RITNet", "RITNet",
           "OpenEDS 2019 (1/4 scale)", TaskCategory.INTERACTION,
           (CAMERA,), "mIoU", 90.54, _HIB),
        _m("GE", "Gaze Estimation", "EyeCoD", "FBNet-C",
           "OpenEDS 2020 (1/4 scale)", TaskCategory.INTERACTION,
           (CAMERA,), "Angular Error", 3.39, _LIB),
        _m("KD", "Keyword Detection", "Key-Res-15", "res8-narrow",
           "Google Speech Commands", TaskCategory.INTERACTION,
           (MICROPHONE,), "Accuracy", 85.60, _HIB),
        _m("SR", "Speech Recognition", "Emformer", "EM-24L",
           "LibriSpeech", TaskCategory.INTERACTION,
           (MICROPHONE,), "WER (others)", 8.79, _LIB),
        _m("SS", "Semantic Segmentation", "HRViT", "HRViT-b1",
           "Cityscapes", TaskCategory.CONTEXT,
           (CAMERA,), "mIoU", 77.54, _HIB),
        _m("OD", "Object Detection", "D2Go", "Faster-RCNN-FBNetV3A",
           "COCO", TaskCategory.CONTEXT,
           (CAMERA,), "boxAP", 21.84, _HIB),
        _m("AS", "Action Segmentation", "TCN", "ED-TCN",
           "GTEA", TaskCategory.CONTEXT,
           (CAMERA,), "Accuracy", 60.8, _HIB),
        _m("DE", "Depth Estimation", "MiDaS", "midas_v21_small",
           "KITTI", TaskCategory.WORLD_LOCKING,
           (CAMERA,), "delta>1.25", 22.9, _LIB),
        _m("DR", "Depth Refinement", "Sparse-to-Dense", "RGBd-200",
           "KITTI", TaskCategory.WORLD_LOCKING,
           (CAMERA, LIDAR), "delta1 (100 samples)", 85.5, _HIB),
        _m("PD", "Plane Detection", "PlaneRCNN", "PlaneRCNN",
           "KITTI (1/4 scale)", TaskCategory.WORLD_LOCKING,
           (CAMERA,), "AP 0.6m", 0.37, _HIB),
    )
}


def get_model(code: str) -> UnitModel:
    """Look up a unit model by task code."""
    try:
        return UNIT_MODELS[code]
    except KeyError:
        raise KeyError(
            f"unknown model code {code!r}; available: {sorted(UNIT_MODELS)}"
        ) from None
