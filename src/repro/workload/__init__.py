"""Workload descriptions: sensors, models, scenarios, requests, load."""

from .churn import MAX_CHURN, SessionWindow, churn_windows
from .loadgen import LoadGenerator
from .models import UNIT_MODELS, TaskCategory, UnitModel, get_model
from .quality import MetricType, QualityGoal
from .requests import FramePlan, InferenceRequest
from .scenarios import (
    SCENARIO_ORDER,
    SCENARIOS,
    Dependency,
    DependencyKind,
    ScenarioModel,
    UsageScenario,
    benchmark_suite,
    get_scenario,
    register_scenario,
)
from .sensors import CAMERA, LIDAR, MICROPHONE, SENSORS, InputSource, get_sensor
from .taxonomy import MtmmClass, classify, is_dynamic, pipelines
from .variants import activate, deactivate, retarget, scale_rates

__all__ = [
    "MAX_CHURN",
    "MtmmClass",
    "SessionWindow",
    "churn_windows",
    "activate",
    "classify",
    "is_dynamic",
    "pipelines",
    "deactivate",
    "retarget",
    "scale_rates",
    "CAMERA",
    "Dependency",
    "DependencyKind",
    "FramePlan",
    "InferenceRequest",
    "InputSource",
    "LIDAR",
    "LoadGenerator",
    "MICROPHONE",
    "MetricType",
    "QualityGoal",
    "SCENARIOS",
    "SCENARIO_ORDER",
    "SENSORS",
    "ScenarioModel",
    "TaskCategory",
    "UNIT_MODELS",
    "UnitModel",
    "UsageScenario",
    "benchmark_suite",
    "get_model",
    "get_scenario",
    "get_sensor",
    "register_scenario",
]
