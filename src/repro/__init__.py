"""repro: a pure-Python reproduction of XRBench (MLSys 2023).

XRBench is a real-time multi-task multi-model (MTMM) machine-learning
benchmark suite for extended-reality (XR) / metaverse devices.  This
package rebuilds the whole published stack:

* :mod:`repro.workload` — sensors, the 11 unit models, the 7 usage
  scenarios, jittered load generation and dynamic model cascading.
* :mod:`repro.nn` / :mod:`repro.zoo` — executable layer-graph reference
  implementations of every unit model.
* :mod:`repro.costmodel` — a MAESTRO-style analytical latency/energy
  model for WS/OS/RS-dataflow accelerators.
* :mod:`repro.hardware` — the 13 accelerator configurations of Table 5.
* :mod:`repro.runtime` — the discrete-event benchmark runtime with
  pluggable schedulers.
* :mod:`repro.core` — the XRBench scoring metrics and the harness.
* :mod:`repro.eval` — drivers regenerating every evaluation table/figure.

Quickstart::

    from repro import Harness, build_accelerator

    report = Harness().run_scenario("ar_gaming", build_accelerator("J"))
    print(report.summary())
"""

from .core import (
    BenchmarkReport,
    Harness,
    HarnessConfig,
    ScenarioReport,
    ScoreConfig,
)
from .hardware import build_accelerator
from .workload import benchmark_suite, get_scenario

__version__ = "1.0.0"

__all__ = [
    "BenchmarkReport",
    "Harness",
    "HarnessConfig",
    "ScenarioReport",
    "ScoreConfig",
    "__version__",
    "benchmark_suite",
    "build_accelerator",
    "get_scenario",
]
