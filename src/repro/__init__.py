"""repro: a pure-Python reproduction of XRBench (MLSys 2023).

XRBench is a real-time multi-task multi-model (MTMM) machine-learning
benchmark suite for extended-reality (XR) / metaverse devices.  This
package rebuilds the whole published stack:

* :mod:`repro.api` — the declarative entry point: serializable
  :class:`RunSpec`/:class:`Sweep`/:class:`Experiment` descriptions run
  through one :func:`execute` funnel.
* :mod:`repro.registry` — unified name registries for scenarios,
  schedulers, accelerators and score presets (third-party registrable).
* :mod:`repro.workload` — sensors, the 11 unit models, the 7 usage
  scenarios, jittered load generation and dynamic model cascading.
* :mod:`repro.nn` / :mod:`repro.zoo` — executable layer-graph reference
  implementations of every unit model.
* :mod:`repro.costmodel` — a MAESTRO-style analytical latency/energy
  model for WS/OS/RS-dataflow accelerators.
* :mod:`repro.hardware` — the 13 accelerator configurations of Table 5.
* :mod:`repro.runtime` — the discrete-event benchmark runtime with
  pluggable schedulers and multi-tenant session multiplexing.
* :mod:`repro.core` — the XRBench scoring metrics, reports and the
  :class:`Harness` compatibility facade.
* :mod:`repro.eval` — drivers regenerating every evaluation table/figure.

Quickstart::

    from repro import RunSpec, Sweep, Experiment, execute

    # One declarative, JSON-round-trippable run.
    spec = RunSpec(scenario="ar_gaming", accelerator="J")
    report = execute(spec)
    print(report.summary())

    # Multi-tenant: four concurrent sessions, segment-level dispatch.
    multi = execute(spec.replace(sessions=4, granularity="segment"))
    print(multi.summary())

    # A cartesian sweep, optionally on worker processes.
    sweep = Sweep(base=spec, grid={"accelerator": ("A", "J", "M")})
    reports = Experiment.from_sweep(sweep).run(workers=2)

The pre-spec surface (``Harness().run_scenario(...)``) remains available
as a thin facade over the same funnel.
"""

from .api import Experiment, Report, RunSpec, Sweep, execute
from .core import (
    BenchmarkReport,
    Harness,
    HarnessConfig,
    MultiSessionReport,
    ScenarioReport,
    ScoreConfig,
)
from .hardware import build_accelerator
from .runtime import make_scheduler
from .workload import benchmark_suite, get_scenario

__version__ = "1.1.0"

__all__ = [
    "BenchmarkReport",
    "Experiment",
    "Harness",
    "HarnessConfig",
    "MultiSessionReport",
    "Report",
    "RunSpec",
    "ScenarioReport",
    "ScoreConfig",
    "Sweep",
    "__version__",
    "benchmark_suite",
    "build_accelerator",
    "execute",
    "get_scenario",
    "make_scheduler",
]
