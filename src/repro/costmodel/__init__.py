"""Analytical accelerator cost model (the MAESTRO substitute)."""

from .analysis import CostModel, LayerCost, ModelCost
from .cached import (
    CachedCostTable,
    CostCacheStats,
    DenseCostView,
    GraphRegistry,
    UncachedCostTable,
)
from .dataflow import DATAFLOW_SPECS, Dataflow, DataflowSpec
from .dvfs import DEFAULT_DVFS_POINTS, DvfsPoint, best_point_for_slack, scale_cost
from .energy import DEFAULT_ENERGY_MODEL, EnergyModel
from .model_cost import SHARED_COST_TABLE, CostTable

__all__ = [
    "DEFAULT_DVFS_POINTS",
    "DvfsPoint",
    "best_point_for_slack",
    "scale_cost",
    "CachedCostTable",
    "CostCacheStats",
    "CostModel",
    "CostTable",
    "DenseCostView",
    "UncachedCostTable",
    "DATAFLOW_SPECS",
    "DEFAULT_ENERGY_MODEL",
    "Dataflow",
    "DataflowSpec",
    "EnergyModel",
    "GraphRegistry",
    "LayerCost",
    "ModelCost",
    "SHARED_COST_TABLE",
]
