"""Energy model constants.

Per-operation energies for an 8-bit edge accelerator in a recent mobile
process node, in picojoules.  The absolute values are calibration
constants (see DESIGN.md): they are chosen within the plausible published
ranges (Horowitz ISSCC'14 scaling and follow-ups) such that heavy
inferences land in the hundreds-of-mJ regime the paper's energy scores
imply against the 1500 mJ ``Enmax`` budget.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EnergyModel", "DEFAULT_ENERGY_MODEL"]


@dataclass(frozen=True)
class EnergyModel:
    """Energy coefficients for the analytical cost model.

    Attributes:
        mac_pj: energy of one 8-bit MAC.
        buf_pj_per_byte: on-chip scratchpad access energy per byte.
        dram_pj_per_byte: off-chip DRAM access energy per byte.
        leakage_w_per_pe: static power per PE while the array is powered;
            accrued over an inference's latency, it is what makes slow,
            saturated systems *also* energy-inefficient (the 4K-vs-8K
            energy-score gap of Figure 6).
    """

    mac_pj: float = 5.0
    buf_pj_per_byte: float = 10.0
    dram_pj_per_byte: float = 250.0
    leakage_w_per_pe: float = 3e-4

    def __post_init__(self) -> None:
        for name in ("mac_pj", "buf_pj_per_byte", "dram_pj_per_byte",
                     "leakage_w_per_pe"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    def compute_mj(self, macs: float) -> float:
        return macs * self.mac_pj * 1e-9

    def buffer_mj(self, bytes_accessed: float) -> float:
        return bytes_accessed * self.buf_pj_per_byte * 1e-9

    def dram_mj(self, bytes_moved: float) -> float:
        return bytes_moved * self.dram_pj_per_byte * 1e-9

    def leakage_mj(self, num_pes: int, seconds: float) -> float:
        return self.leakage_w_per_pe * num_pes * seconds * 1e3


DEFAULT_ENERGY_MODEL = EnergyModel()
