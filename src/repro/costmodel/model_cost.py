"""Cached whole-model cost tables.

The runtime asks "what would model X cost on engine Y" thousands of times
per simulation; :class:`CostTable` memoises the answer per
(task code, dataflow, PE count) so a full Figure-5 sweep stays fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workload import UNIT_MODELS

from .analysis import CostModel, ModelCost, memoized_model_cost
from .dataflow import Dataflow

__all__ = ["CostTable"]


@dataclass
class CostTable:
    """Memoised model costs across engines."""

    _cache: dict[tuple[str, Dataflow, int], ModelCost] = field(
        default_factory=dict
    )

    def cost(
        self, task_code: str, dataflow: Dataflow, num_pes: int
    ) -> ModelCost:
        """Cost of one inference of ``task_code`` on the given engine."""
        key = (task_code, dataflow, num_pes)
        if key not in self._cache:
            model = UNIT_MODELS.get(task_code)
            if model is None:
                raise KeyError(
                    f"unknown task code {task_code!r}; "
                    f"available: {sorted(UNIT_MODELS)}"
                )
            engine = CostModel(dataflow=dataflow, num_pes=num_pes)
            self._cache[key] = memoized_model_cost(engine, model.graph)
        return self._cache[key]

    def latency_s(
        self, task_code: str, dataflow: Dataflow, num_pes: int
    ) -> float:
        return self.cost(task_code, dataflow, num_pes).latency_s

    def energy_mj(
        self, task_code: str, dataflow: Dataflow, num_pes: int
    ) -> float:
        return self.cost(task_code, dataflow, num_pes).energy_mj


#: A process-wide shared table; simulations may also carry their own.
SHARED_COST_TABLE = CostTable()
