"""Accelerator dataflows (Section 4.1).

Three dataflow styles, mirroring the paper's accelerator taxonomy:

* **WS** (weight stationary, NVDLA-inspired): parallelises output and
  input channels with input columns.  Excellent on channel-heavy
  convolutions and GEMM/FC layers; poor on depthwise convolutions, whose
  channel extents give it almost nothing to parallelise.
* **OS** (output stationary): a hand-optimised dataflow parallelising
  output rows and columns with a 16-way adder tree reducing input-channel
  partial sums.  Excellent on large spatial maps (segmentation, depth) and
  depthwise convolutions; weak on FC/attention projections whose output
  spatial extent is small.
* **RS** (row stationary, Eyeriss-inspired): parallelises output channels,
  output rows and kernel rows — the balanced middle ground, with the best
  operand reuse (lowest energy) but slightly lower peak mapping
  efficiency.

Each dataflow exposes (a) the *usable parallelism* of a layer, which
bounds spatial PE utilisation, and (b) per-operand on-chip reuse factors,
which drive the energy model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.nn import ConvDims, LayerSpec, OpType

__all__ = ["Dataflow", "DataflowSpec", "DATAFLOW_SPECS"]

#: OS reduces input channels through a 16-way adder tree.
OS_ADDER_TREE_WAYS = 16


class Dataflow(enum.Enum):
    """The three dataflow styles of Table 5."""

    WS = "WS"
    OS = "OS"
    RS = "RS"


@dataclass(frozen=True)
class DataflowSpec:
    """Static properties of a dataflow style.

    Attributes:
        dataflow: which style this describes.
        mapping_efficiency: fraction of the ideal throughput achieved even
            when parallelism is abundant (drain/fill and control overhead).
        buf_reads_per_mac: average scratchpad reads per MAC after the
            dataflow's local (register-level) reuse is accounted for —
            lower is more energy-efficient.
    """

    dataflow: Dataflow
    mapping_efficiency: float
    buf_reads_per_mac: float

    def usable_parallelism(self, layer: LayerSpec, dims: ConvDims) -> float:
        """How many MAC lanes the layer can keep busy on this dataflow.

        This is the crux of the dataflow differences: a 4 K-PE array only
        helps if the layer has that much parallelism along the dims the
        dataflow spreads across the array.
        """
        if self.dataflow is Dataflow.WS:
            # Output x input channels x input columns.  Depthwise conv
            # degenerates: only the channel (group) extent is available,
            # and NVDLA-style engines exploit little of it.
            if layer.op is OpType.DWCONV2D:
                return max(1.0, dims.groups / 8.0)
            return float(dims.k * dims.c * min(dims.x, 4) * dims.groups)
        if self.dataflow is Dataflow.OS:
            # Output rows x columns, with the adder tree reducing input
            # channels.  Depthwise maps well spatially but the adder tree
            # idles (one input channel per output).
            tree = min(dims.c, OS_ADDER_TREE_WAYS)
            return float(dims.y * dims.x * tree)
        if self.dataflow is Dataflow.RS:
            # Output channels x output rows x kernel rows.
            return float(dims.k * dims.y * dims.r * dims.groups)
        raise AssertionError(f"unhandled dataflow {self.dataflow}")

    def operand_reuse(
        self, layer: LayerSpec, dims: ConvDims
    ) -> tuple[float, float, float]:
        """(input, weight, output) on-chip reuse multipliers, >= 1.

        Higher reuse means fewer scratchpad round-trips per MAC for that
        operand.  Weight-stationary reuses weights across the output
        spatial extent; output-stationary keeps partial sums local across
        the reduction; row-stationary gets decent reuse on all three.
        """
        spatial = float(dims.y * dims.x)
        reduction = float(dims.c * dims.r * dims.s)
        if self.dataflow is Dataflow.WS:
            return (2.0, max(1.0, spatial), 2.0)
        if self.dataflow is Dataflow.OS:
            return (2.0, 2.0, max(1.0, reduction))
        if self.dataflow is Dataflow.RS:
            return (
                max(1.0, float(dims.r)),
                max(1.0, min(spatial, 64.0)),
                max(1.0, min(reduction, 64.0)),
            )
        raise AssertionError(f"unhandled dataflow {self.dataflow}")


#: Mapping efficiencies are end-to-end effective rates (stalls, drain,
#: imperfect tiling): real accelerators achieve 20-40% of peak on full
#: models, and these values calibrate the suite into the deadline-stress
#: regime the paper's evaluation operates in (see DESIGN.md).
DATAFLOW_SPECS: dict[Dataflow, DataflowSpec] = {
    Dataflow.WS: DataflowSpec(Dataflow.WS, mapping_efficiency=0.35,
                              buf_reads_per_mac=1.0),
    Dataflow.OS: DataflowSpec(Dataflow.OS, mapping_efficiency=0.33,
                              buf_reads_per_mac=1.1),
    Dataflow.RS: DataflowSpec(Dataflow.RS, mapping_efficiency=0.30,
                              buf_reads_per_mac=0.7),
}
