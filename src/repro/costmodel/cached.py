"""Dispatch-path cost caching.

The runtime's hot loop prices work constantly: every scheduler pass asks
"what would this model (or segment) cost on that engine at its current
DVFS state", once per idle engine per decision.  :class:`CachedCostTable`
memoises the fully-derived answer keyed on
``(task code, engine dataflow, engine PE count, DVFS point)`` so the
dispatch path degenerates to one dict probe, and it counts hits/misses so
harnesses can report the cache's effectiveness.

:class:`UncachedCostTable` is the deliberate anti-optimisation: it
re-runs the analytical layer-by-layer model on *every* query.  It exists
so ``benchmarks/bench_runtime_throughput.py`` can measure what the cache
layer buys on identical workloads.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import Protocol

import numpy as np
import numpy.typing as npt

from repro.nn import ModelGraph
from repro.workload import UNIT_MODELS

from .analysis import CostModel, ModelCost, memoized_model_cost
from .dataflow import Dataflow
from .dvfs import DvfsPoint, scale_cost
from .model_cost import CostTable

__all__ = [
    "CostCacheStats",
    "GraphRegistry",
    "CachedCostTable",
    "DenseCostView",
    "UncachedCostTable",
]

#: One dense pricing row: (lat tuple, energy tuple, lat array, energy
#: array), all indexed by engine position.
Row = tuple[
    tuple[float, ...],
    tuple[float, ...],
    npt.NDArray[np.float64],
    npt.NDArray[np.float64],
]


class EngineLike(Protocol):
    """Engine-descriptor shape (the hardware layer imports this package,
    so the concrete :class:`repro.hardware.SubAccelerator` cannot be
    named here without a cycle)."""

    @property
    def index(self) -> int: ...

    @property
    def dataflow(self) -> Dataflow: ...

    @property
    def num_pes(self) -> int: ...


class FleetLike(Protocol):
    """Fleet shape: an index-ordered ``subs`` tuple of engines."""

    @property
    def subs(self) -> tuple[EngineLike, ...]: ...


class GraphRegistry:
    """Mixin: a registry of virtual task-code graphs (segment pieces).

    Classes mixing this in must initialise ``self._graphs = {}``.  The
    runtime duck-types against ``register_graph``/``knows`` to decide
    whether a cost table can price dispatch-time segment codes.
    """

    _graphs: dict[str, ModelGraph]

    def register_graph(self, code: str, graph: ModelGraph) -> None:
        """Make a virtual task code priceable from its layer graph.

        Re-registering the *same* graph is a no-op — segment plans are
        deterministic, so a shared table seen by two segmented runs is
        offered identical pieces and must not fail the second run.
        Registering a *different* graph under an existing code still
        raises: that is a stale-split hazard, not benign reuse.
        """
        existing = self._graphs.get(code)
        if existing is not None:
            if existing == graph:
                return
            raise ValueError(
                f"task code {code!r} already registered with a different "
                f"graph (was this table reused across runs with "
                f"different segment splits?)"
            )
        self._graphs[code] = graph

    def knows(self, code: str) -> bool:
        return code in self._graphs


@dataclass
class CostCacheStats:
    """Hit/miss counters of one :class:`CachedCostTable`."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class CachedCostTable(GraphRegistry, CostTable):
    """Memoised dispatch-path costs keyed on (task, engine, DVFS state).

    Wraps any base :class:`CostTable` (including a
    :class:`~repro.runtime.segmentation.SegmentedCostTable`); unknown task
    codes fall through to the base table.  Segment graphs produced at
    dispatch time are registered with :meth:`register_graph` so virtual
    segment codes are priceable without touching the global model zoo.
    """

    def __init__(self, base: CostTable | None = None) -> None:
        super().__init__()
        self.base = base if base is not None else CostTable()
        self.stats = CostCacheStats()
        self._graphs = {}
        self._entries: dict[
            tuple[str, Dataflow, int, DvfsPoint | None], ModelCost
        ] = {}
        self._views: dict[
            tuple[tuple[int, Dataflow, int], ...], DenseCostView
        ] = {}
        self._last_view: tuple[object, DenseCostView] | None = None

    # -- lookups -------------------------------------------------------------

    def _compute(
        self, task_code: str, dataflow: Dataflow, num_pes: int
    ) -> ModelCost:
        graph = self._graphs.get(task_code)
        if graph is not None:
            engine = CostModel(dataflow=dataflow, num_pes=num_pes)
            return memoized_model_cost(engine, graph)
        return self.base.cost(task_code, dataflow, num_pes)

    def _lookup(
        self,
        task_code: str,
        dataflow: Dataflow,
        num_pes: int,
        dvfs: DvfsPoint | None,
    ) -> ModelCost:
        # Key on the (frozen, hashable) point itself: two points sharing
        # a name but not a frequency must not share a cache entry.
        key = (task_code, dataflow, num_pes, dvfs)
        entry = self._entries.get(key)
        if entry is not None:
            self.stats.hits += 1
            return entry
        self.stats.misses += 1
        cost = self._compute(task_code, dataflow, num_pes)
        if dvfs is not None:
            cost = scale_cost(cost, dvfs)
        self._entries[key] = cost
        return cost

    def cost(
        self, task_code: str, dataflow: Dataflow, num_pes: int
    ) -> ModelCost:
        """CostTable-compatible lookup (nominal DVFS)."""
        return self._lookup(task_code, dataflow, num_pes, None)

    def engine_cost(
        self, task_code: str, sub: EngineLike, dvfs: DvfsPoint | None = None
    ) -> ModelCost:
        """Cost of ``task_code`` on one engine at a DVFS operating point.

        ``sub`` is any engine description exposing ``dataflow`` and
        ``num_pes`` (e.g. :class:`repro.hardware.SubAccelerator`; typed
        loosely because the hardware layer imports this package).
        """
        return self._lookup(task_code, sub.dataflow, sub.num_pes, dvfs)

    def dense_view(self, system: FleetLike) -> DenseCostView:
        """The dense per-fleet pricing view over this cache.

        ``system`` is an :class:`~repro.hardware.AcceleratorSystem` (any
        object with an index-ordered ``subs`` tuple of engine
        descriptors).  Views are memoised per engine signature — two
        runs sharing a table and a fleet shape share the dense rows —
        with an identity fast path for the repeat caller (the dispatch
        loop asks for the same system every decision).
        """
        cached = self._last_view
        if cached is not None and cached[0] is system:
            return cached[1]
        subs = tuple(system.subs)
        key = tuple((s.index, s.dataflow, s.num_pes) for s in subs)
        view = self._views.get(key)
        if view is None:
            view = self._views[key] = DenseCostView(self, subs)
        self._last_view = (system, view)
        return view


class DenseCostView:
    """Fleet-wide task pricing: one row of floats per (task, DVFS point).

    The candidate sweep of the dispatch path — "which idle engine runs
    this item fastest?" — priced every candidate through a keyed dict
    probe (tuple construction, hash, stats bump) per engine per decision.
    This view flattens the cache into per-``(task, point)`` rows indexed
    by engine position: a row is filled once through
    :meth:`CachedCostTable._lookup` (so the floats are *the* cached
    values — answers are bit-identical to per-call pricing, and misses
    hit the stats counters exactly as before) and every later sweep is a
    tuple index or, for wide fleets, one numpy ``take``/``argmin``.

    Each row keeps both plain-tuple and ``float64`` ndarray forms:
    scalar probes and narrow fleets (most Table 5 systems have 2–8
    engines) are faster through the tuples, while wide fleets amortise
    numpy's per-call overhead across one vectorised reduction.  Both
    paths return identical floats — ``float64`` stores Python floats
    exactly — and both break latency ties toward the lowest engine
    index (``argmin`` returns the first occurrence and candidate lists
    are index-ordered).
    """

    #: Idle-list width above which the numpy reduction beats the scalar
    #: loop (empirically; either path gives identical answers).
    VECTOR_WIDTH = 8

    __slots__ = ("table", "subs", "_rows")

    def __init__(self, table: CachedCostTable, subs: Iterable[EngineLike]) -> None:
        self.table = table
        self.subs = tuple(subs)
        if [s.index for s in self.subs] != list(range(len(self.subs))):
            raise ValueError(
                "dense view needs an index-ordered engine tuple, got "
                f"{[s.index for s in self.subs]}"
            )
        #: (task_code, dvfs) -> dense pricing row.
        self._rows: dict[tuple[str, DvfsPoint | None], Row] = {}

    def _fill(self, task_code: str, dvfs: DvfsPoint | None) -> Row:
        lookup = self.table._lookup
        costs = [
            lookup(task_code, sub.dataflow, sub.num_pes, dvfs)
            for sub in self.subs
        ]
        lats = tuple(c.latency_s for c in costs)
        ens = tuple(c.energy_mj for c in costs)
        entry = (
            lats,
            ens,
            np.asarray(lats, dtype=np.float64),
            np.asarray(ens, dtype=np.float64),
        )
        self._rows[(task_code, dvfs)] = entry
        return entry

    def row(self, task_code: str, dvfs: DvfsPoint | None = None) -> Row:
        """The row of ``task_code`` at ``dvfs``: (lat, en, lat[], en[])."""
        entry = self._rows.get((task_code, dvfs))
        if entry is None:
            return self._fill(task_code, dvfs)
        # A row hit answers one dispatch-path pricing question, same as
        # a _lookup hit did — keep the cache-effectiveness stats honest.
        self.table.stats.hits += 1
        return entry

    def latencies(self, task_code: str,
                  dvfs: DvfsPoint | None = None) -> npt.NDArray[np.float64]:
        """Per-engine latency array of ``task_code`` at ``dvfs``."""
        return self.row(task_code, dvfs)[2]

    def latency_energy(
        self, task_code: str, engine_index: int,
        dvfs: DvfsPoint | None = None,
    ) -> tuple[float, float]:
        """(latency_s, energy_mj) of one engine — a scalar probe."""
        entry = self.row(task_code, dvfs)
        return entry[0][engine_index], entry[1][engine_index]

    def best_engine_index(
        self, task_code: str, idle_indices: Sequence[int],
        dvfs: DvfsPoint | None = None,
    ) -> int:
        """Fastest engine for ``task_code`` among ``idle_indices``.

        ``idle_indices`` must be ascending (the fleet's idle list is);
        ties on latency go to the lowest index on both the scalar and
        the vectorised path.
        """
        entry = self._rows.get((task_code, dvfs))
        if entry is None:
            entry = self._fill(task_code, dvfs)
        else:
            self.table.stats.hits += 1
        if len(idle_indices) > self.VECTOR_WIDTH:
            taken = entry[2].take(idle_indices)
            return idle_indices[int(taken.argmin())]
        lats = entry[0]
        best = idle_indices[0]
        best_lat = lats[best]
        for index in idle_indices[1:]:
            lat = lats[index]
            if lat < best_lat:
                best, best_lat = index, lat
        return best


class UncachedCostTable(GraphRegistry, CostTable):
    """Re-runs the analytical cost model on every query (no memoisation).

    Only useful as a benchmark baseline: it makes the dispatch path pay
    the full layer-by-layer analysis cost each time, which is what a
    naive runtime querying the cost model directly would do.  Carries a
    graph registry so segment-granularity runs stay genuinely uncached
    instead of being wrapped in a cache.
    """

    def __init__(self) -> None:
        super().__init__()
        #: Total analytical evaluations performed.
        self.queries = 0
        self._graphs = {}

    def cost(
        self, task_code: str, dataflow: Dataflow, num_pes: int
    ) -> ModelCost:
        self.queries += 1
        engine = CostModel(dataflow=dataflow, num_pes=num_pes)
        graph = self._graphs.get(task_code)
        if graph is not None:
            return engine.model_cost(graph)
        model = UNIT_MODELS.get(task_code)
        if model is None:
            raise KeyError(
                f"unknown task code {task_code!r}; "
                f"available: {sorted(UNIT_MODELS)}"
            )
        return engine.model_cost(model.graph)
