"""Dispatch-path cost caching.

The runtime's hot loop prices work constantly: every scheduler pass asks
"what would this model (or segment) cost on that engine at its current
DVFS state", once per idle engine per decision.  :class:`CachedCostTable`
memoises the fully-derived answer keyed on
``(task code, engine dataflow, engine PE count, DVFS point)`` so the
dispatch path degenerates to one dict probe, and it counts hits/misses so
harnesses can report the cache's effectiveness.

:class:`UncachedCostTable` is the deliberate anti-optimisation: it
re-runs the analytical layer-by-layer model on *every* query.  It exists
so ``benchmarks/bench_runtime_throughput.py`` can measure what the cache
layer buys on identical workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workload import UNIT_MODELS

from .analysis import CostModel, ModelCost
from .dataflow import Dataflow
from .dvfs import DvfsPoint, scale_cost
from .model_cost import CostTable

__all__ = [
    "CostCacheStats",
    "GraphRegistry",
    "CachedCostTable",
    "UncachedCostTable",
]


class GraphRegistry:
    """Mixin: a registry of virtual task-code graphs (segment pieces).

    Classes mixing this in must initialise ``self._graphs = {}``.  The
    runtime duck-types against ``register_graph``/``knows`` to decide
    whether a cost table can price dispatch-time segment codes.
    """

    _graphs: dict[str, object]

    def register_graph(self, code: str, graph) -> None:
        """Make a virtual task code priceable from its layer graph.

        Re-registering the *same* graph is a no-op — segment plans are
        deterministic, so a shared table seen by two segmented runs is
        offered identical pieces and must not fail the second run.
        Registering a *different* graph under an existing code still
        raises: that is a stale-split hazard, not benign reuse.
        """
        existing = self._graphs.get(code)
        if existing is not None:
            if existing == graph:
                return
            raise ValueError(
                f"task code {code!r} already registered with a different "
                f"graph (was this table reused across runs with "
                f"different segment splits?)"
            )
        self._graphs[code] = graph

    def knows(self, code: str) -> bool:
        return code in self._graphs


@dataclass
class CostCacheStats:
    """Hit/miss counters of one :class:`CachedCostTable`."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class CachedCostTable(GraphRegistry, CostTable):
    """Memoised dispatch-path costs keyed on (task, engine, DVFS state).

    Wraps any base :class:`CostTable` (including a
    :class:`~repro.runtime.segmentation.SegmentedCostTable`); unknown task
    codes fall through to the base table.  Segment graphs produced at
    dispatch time are registered with :meth:`register_graph` so virtual
    segment codes are priceable without touching the global model zoo.
    """

    def __init__(self, base: CostTable | None = None) -> None:
        super().__init__()
        self.base = base if base is not None else CostTable()
        self.stats = CostCacheStats()
        self._graphs = {}
        self._entries: dict[
            tuple[str, Dataflow, int, DvfsPoint | None], ModelCost
        ] = {}

    # -- lookups -------------------------------------------------------------

    def _compute(
        self, task_code: str, dataflow: Dataflow, num_pes: int
    ) -> ModelCost:
        graph = self._graphs.get(task_code)
        if graph is not None:
            engine = CostModel(dataflow=dataflow, num_pes=num_pes)
            return engine.model_cost(graph)
        return self.base.cost(task_code, dataflow, num_pes)

    def _lookup(
        self,
        task_code: str,
        dataflow: Dataflow,
        num_pes: int,
        dvfs: DvfsPoint | None,
    ) -> ModelCost:
        # Key on the (frozen, hashable) point itself: two points sharing
        # a name but not a frequency must not share a cache entry.
        key = (task_code, dataflow, num_pes, dvfs)
        entry = self._entries.get(key)
        if entry is not None:
            self.stats.hits += 1
            return entry
        self.stats.misses += 1
        cost = self._compute(task_code, dataflow, num_pes)
        if dvfs is not None:
            cost = scale_cost(cost, dvfs)
        self._entries[key] = cost
        return cost

    def cost(
        self, task_code: str, dataflow: Dataflow, num_pes: int
    ) -> ModelCost:
        """CostTable-compatible lookup (nominal DVFS)."""
        return self._lookup(task_code, dataflow, num_pes, None)

    def engine_cost(
        self, task_code: str, sub, dvfs: DvfsPoint | None = None
    ) -> ModelCost:
        """Cost of ``task_code`` on one engine at a DVFS operating point.

        ``sub`` is any engine description exposing ``dataflow`` and
        ``num_pes`` (e.g. :class:`repro.hardware.SubAccelerator`; typed
        loosely because the hardware layer imports this package).
        """
        return self._lookup(task_code, sub.dataflow, sub.num_pes, dvfs)


class UncachedCostTable(GraphRegistry, CostTable):
    """Re-runs the analytical cost model on every query (no memoisation).

    Only useful as a benchmark baseline: it makes the dispatch path pay
    the full layer-by-layer analysis cost each time, which is what a
    naive runtime querying the cost model directly would do.  Carries a
    graph registry so segment-granularity runs stay genuinely uncached
    instead of being wrapped in a cache.
    """

    def __init__(self) -> None:
        super().__init__()
        #: Total analytical evaluations performed.
        self.queries = 0
        self._graphs = {}

    def cost(
        self, task_code: str, dataflow: Dataflow, num_pes: int
    ) -> ModelCost:
        self.queries += 1
        engine = CostModel(dataflow=dataflow, num_pes=num_pes)
        graph = self._graphs.get(task_code)
        if graph is not None:
            return engine.model_cost(graph)
        model = UNIT_MODELS.get(task_code)
        if model is None:
            raise KeyError(
                f"unknown task code {task_code!r}; "
                f"available: {sorted(UNIT_MODELS)}"
            )
        return engine.model_cost(model.graph)
