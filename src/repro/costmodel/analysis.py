"""Per-layer analytical cost analysis (the MAESTRO substitute).

For each layer the model computes:

* **compute cycles** — MACs divided by the effective MAC rate.  The
  effective rate is the PE count clipped by the layer's usable
  parallelism under the chosen dataflow, derated by the dataflow's
  mapping efficiency and by tile-quantisation losses (a layer whose
  parallelism is 1.5x the array runs two passes at 75% occupancy).
* **memory cycles** — DRAM traffic over the off-chip bandwidth plus
  scratchpad streaming over the on-chip (NoC) bandwidth.  Traffic uses a
  simple stationary-tensor tiling model: the dataflow's stationary
  operand is fetched once; if it does not fit in its scratchpad share,
  the streaming operands are re-fetched once per stationary tile.
* **energy** — MAC energy + scratchpad accesses (scaled by the
  dataflow's operand reuse) + DRAM traffic + leakage over the layer's
  latency.

Latency per layer is ``max(compute, onchip, offchip)`` — the classical
double-buffered overlap assumption — plus a pipeline-fill ramp.  Layers
execute back to back; memory-only layers (pooling, upsample, concat)
contribute their streaming time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import (
    CLOCK_HZ,
    OFFCHIP_BW_BYTES_PER_CYCLE,
    ONCHIP_BW_BYTES_PER_CYCLE,
    ONCHIP_MEMORY_BYTES,
)
from repro.nn import LayerSpec, ModelGraph

from .dataflow import DATAFLOW_SPECS, Dataflow, DataflowSpec
from .energy import DEFAULT_ENERGY_MODEL, EnergyModel

__all__ = ["LayerCost", "ModelCost", "CostModel", "memoized_model_cost"]

#: Cycles to fill/drain the PE array pipeline per layer.
_RAMP_CYCLES = 512.0


@dataclass(frozen=True)
class LayerCost:
    """Cost breakdown of one layer on one accelerator configuration."""

    layer_name: str
    compute_cycles: float
    onchip_cycles: float
    offchip_cycles: float
    energy_mj: float
    utilization: float  # achieved MACs/cycle over peak

    @property
    def latency_cycles(self) -> float:
        return (
            max(self.compute_cycles, self.onchip_cycles, self.offchip_cycles)
            + _RAMP_CYCLES
        )

    @property
    def latency_s(self) -> float:
        return self.latency_cycles / CLOCK_HZ


@dataclass(frozen=True)
class ModelCost:
    """Aggregate cost of a whole model inference."""

    model_name: str
    dataflow: Dataflow
    num_pes: int
    latency_s: float
    energy_mj: float
    utilization: float
    layer_costs: tuple[LayerCost, ...]

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3


@dataclass(frozen=True)
class CostModel:
    """Analytical latency/energy model for one (dataflow, PE count) engine.

    Attributes:
        dataflow: the engine's dataflow style.
        num_pes: number of processing elements.
        onchip_bw: scratchpad/NoC bandwidth in bytes per cycle.
        offchip_bw: DRAM bandwidth in bytes per cycle.
        buffer_bytes: on-chip scratchpad capacity.
        energy_model: energy coefficients.
    """

    dataflow: Dataflow
    num_pes: int
    onchip_bw: float = ONCHIP_BW_BYTES_PER_CYCLE
    offchip_bw: float = OFFCHIP_BW_BYTES_PER_CYCLE
    buffer_bytes: int = ONCHIP_MEMORY_BYTES
    energy_model: EnergyModel = DEFAULT_ENERGY_MODEL

    def __post_init__(self) -> None:
        if self.num_pes < 1:
            raise ValueError(f"num_pes must be >= 1, got {self.num_pes}")
        if self.onchip_bw <= 0 or self.offchip_bw <= 0:
            raise ValueError("bandwidths must be > 0")
        if self.buffer_bytes <= 0:
            raise ValueError("buffer size must be > 0")

    @property
    def spec(self) -> DataflowSpec:
        return DATAFLOW_SPECS[self.dataflow]

    # -- per-layer analysis -------------------------------------------------

    def _effective_macs_per_cycle(self, layer: LayerSpec) -> float:
        """Achieved MAC rate for a compute layer."""
        dims = layer.conv_dims()
        assert dims is not None
        parallelism = self.spec.usable_parallelism(layer, dims)
        if parallelism <= self.num_pes:
            occupied = parallelism
        else:
            # Tile quantisation: the last pass runs partially occupied.
            passes = -(-parallelism // self.num_pes)
            occupied = parallelism / passes
        return max(1.0, occupied * self.spec.mapping_efficiency)

    def _dram_traffic_bytes(self, layer: LayerSpec) -> float:
        """Off-chip traffic under the stationary-tensor tiling model."""
        dims = layer.conv_dims()
        w = float(layer.weight_bytes)
        i = float(layer.in_bytes)
        o = float(layer.out_bytes)
        if dims is None:
            # Memory-only op: stream input in, output out.
            return i + o
        share = self.buffer_bytes / 2.0
        if self.dataflow is Dataflow.WS:
            stationary, streaming = w, i + o
        elif self.dataflow is Dataflow.OS:
            stationary, streaming = o, i + w
        else:  # RS keeps rows of everything; treat the largest as stationary.
            stationary = max(w, i, o)
            streaming = w + i + o - stationary
        passes = max(1.0, stationary / share)
        return stationary + streaming * passes

    def layer_cost(self, layer: LayerSpec) -> LayerCost:
        """Analyse one layer."""
        em = self.energy_model
        dims = layer.conv_dims()
        dram_bytes = self._dram_traffic_bytes(layer)
        offchip_cycles = dram_bytes / self.offchip_bw

        if dims is None:
            # No MACs: only data movement.
            onchip_bytes = float(layer.in_bytes + layer.out_bytes)
            onchip_cycles = onchip_bytes / self.onchip_bw
            latency_cycles = max(onchip_cycles, offchip_cycles) + _RAMP_CYCLES
            energy = (
                em.buffer_mj(onchip_bytes)
                + em.dram_mj(dram_bytes)
                + em.leakage_mj(self.num_pes, latency_cycles / CLOCK_HZ)
            )
            return LayerCost(
                layer_name=layer.name,
                compute_cycles=0.0,
                onchip_cycles=onchip_cycles,
                offchip_cycles=offchip_cycles,
                energy_mj=energy,
                utilization=0.0,
            )

        macs = float(layer.macs)
        compute_cycles = macs / self._effective_macs_per_cycle(layer)

        # NoC streaming: tensors cross the on-chip network once per tile
        # pass (multicast distributes them across PEs; per-MAC operand
        # reads come from PE-local register files and are charged to the
        # energy model, not to bandwidth).
        reuse_i, reuse_w, reuse_o = self.spec.operand_reuse(layer, dims)
        onchip_bytes = self._dram_traffic_bytes(layer)
        onchip_cycles = onchip_bytes / self.onchip_bw

        latency_cycles = (
            max(compute_cycles, onchip_cycles, offchip_cycles) + _RAMP_CYCLES
        )
        latency_s = latency_cycles / CLOCK_HZ
        buffer_accesses = (
            macs / reuse_i + macs / reuse_w + macs / reuse_o
        ) * self.spec.buf_reads_per_mac
        energy = (
            em.compute_mj(macs)
            + em.buffer_mj(buffer_accesses)
            + em.dram_mj(dram_bytes)
            + em.leakage_mj(self.num_pes, latency_s)
        )
        return LayerCost(
            layer_name=layer.name,
            compute_cycles=compute_cycles,
            onchip_cycles=onchip_cycles,
            offchip_cycles=offchip_cycles,
            energy_mj=energy,
            utilization=min(1.0, macs / (latency_cycles * self.num_pes)),
        )

    # -- whole-model analysis -------------------------------------------------

    def model_cost(self, graph: ModelGraph) -> ModelCost:
        """Analyse a whole model graph, layer by layer."""
        costs = tuple(self.layer_cost(layer) for layer in graph.layers)
        total_cycles = sum(c.latency_cycles for c in costs)
        total_macs = float(graph.total_macs)
        return ModelCost(
            model_name=graph.name,
            dataflow=self.dataflow,
            num_pes=self.num_pes,
            latency_s=total_cycles / CLOCK_HZ,
            energy_mj=sum(c.energy_mj for c in costs),
            utilization=(
                total_macs / (total_cycles * self.num_pes)
                if total_cycles > 0
                else 0.0
            ),
            layer_costs=costs,
        )


#: Process-wide memo over the *pure* analytical model cost.  CostModel
#: and ModelGraph are both frozen and hashable, and the analysis is a
#: deterministic function of the pair, so the answer — an immutable
#: ModelCost — can be shared across every cost table in the process.
_MODEL_COST_MEMO: dict[tuple[CostModel, ModelGraph], ModelCost] = {}


def memoized_model_cost(engine: CostModel, graph: ModelGraph) -> ModelCost:
    """``engine.model_cost(graph)`` answered from the process-wide memo.

    Cost *tables* cache per instance; that still re-pays the full
    layer-by-layer analysis for every fresh table (each benchmark
    repeat, each session group) on the same handful of graphs.  This
    memo hoists the pure computation to process scope.  Deliberately
    NOT used by :class:`~repro.costmodel.UncachedCostTable`, whose whole
    point is re-running the analysis per query.
    """
    key = (engine, graph)
    cost = _MODEL_COST_MEMO.get(key)
    if cost is None:
        cost = _MODEL_COST_MEMO[key] = engine.model_cost(graph)
    return cost
