"""Dynamic voltage/frequency scaling (DVFS) on top of the cost model.

Appendix B.1 observes that latency slack can be traded for energy ("we can
adjust energy to meet the deadlines or optimize using the slack to the
deadline (e.g., DVFS)") — which is exactly why energy is a knob, not an
absolute minimisation target, and why the energy score is bounded rather
than open-ended.  This module makes that trade concrete:

* :class:`DvfsPoint` — an operating point: relative frequency ``f`` and the
  classical dynamic-power scaling ``E_dynamic ~ f^2`` (voltage tracks
  frequency), with leakage scaling ~1/f per unit work (slower runs leak
  longer).
* :func:`scale_cost` — re-derives a :class:`ModelCost` at an operating
  point, *consistently*: the per-layer breakdown and utilization are
  rescaled along with the totals, so layer sums always equal the model
  totals at every ladder point.
* :func:`best_point_for_slack` — picks the slowest (most energy-efficient)
  point that still fits a latency budget, i.e. the paper's
  slack-into-energy optimisation.

The live runtime counterpart is :mod:`repro.runtime.governor`, which
applies these trades per dispatch through the cached cost tables.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .analysis import _RAMP_CYCLES, LayerCost, ModelCost

__all__ = ["DvfsPoint", "DEFAULT_DVFS_POINTS", "scale_cost",
           "best_point_for_slack"]


@dataclass(frozen=True)
class DvfsPoint:
    """One DVFS operating point, relative to the nominal 1 GHz design."""

    name: str
    frequency_scale: float  # 1.0 = nominal

    def __post_init__(self) -> None:
        if not 0.1 <= self.frequency_scale <= 2.0:
            raise ValueError(
                f"frequency_scale must be in [0.1, 2.0], got "
                f"{self.frequency_scale}"
            )

    @property
    def latency_scale(self) -> float:
        """Latency multiplier: work takes 1/f as long."""
        return 1.0 / self.frequency_scale

    @property
    def dynamic_energy_scale(self) -> float:
        """Dynamic energy ~ V^2, and V tracks f in the DVFS ladder."""
        return self.frequency_scale ** 2

    @property
    def leakage_energy_scale(self) -> float:
        """Leakage accrues over the (longer) runtime."""
        return 1.0 / self.frequency_scale


#: A realistic mobile-SoC ladder around the nominal point.
DEFAULT_DVFS_POINTS: tuple[DvfsPoint, ...] = (
    DvfsPoint("eco", 0.5),
    DvfsPoint("low", 0.7),
    DvfsPoint("nominal", 1.0),
    DvfsPoint("boost", 1.3),
)


def _energy_factor(point: DvfsPoint, leakage_fraction: float) -> float:
    """The linear energy map applied at ``point``.

    Dynamic energy (share ``1 - leakage_fraction``) scales with V^2 ~ f^2;
    leakage (share ``leakage_fraction``) accrues over the 1/f runtime.
    Being a single scalar, it applies identically to every layer and to
    the model total, so scaled layer energies always sum to the scaled
    model energy.
    """
    return (
        (1.0 - leakage_fraction) * point.dynamic_energy_scale
        + leakage_fraction * point.leakage_energy_scale
    )


def _scale_layer(lc: LayerCost, point: DvfsPoint,
                 energy_factor: float) -> LayerCost:
    """One layer re-derived at ``point``.

    Every cycle takes ``1/f`` as long at frequency scale ``f``, so the
    layer's wall-clock latency — including its pipeline-fill ramp —
    scales by ``latency_scale``.  :attr:`LayerCost.latency_cycles` adds
    the (nominal-clock) ramp constant after the cycle max, so the cycle
    fields are rescaled such that ``latency_cycles`` lands exactly on
    ``latency_scale * (max + ramp)``; utilization is re-derived against
    the new cycle count (achieved MACs/cycle falls as cycles stretch).
    """
    s = point.latency_scale
    m = max(lc.compute_cycles, lc.onchip_cycles, lc.offchip_cycles)
    target_max = s * (m + _RAMP_CYCLES) - _RAMP_CYCLES
    if m > 0.0 and target_max > 0.0:
        k = target_max / m
        compute = lc.compute_cycles * k
        onchip = lc.onchip_cycles * k
        offchip = lc.offchip_cycles * k
    else:
        # Degenerate layers (no cycles at all, or a boost point whose
        # target latency falls below the bare ramp): pin the whole
        # target, clamped non-negative, on the off-chip path.
        compute = 0.0
        onchip = 0.0
        offchip = max(0.0, target_max)
    old_cycles = m + _RAMP_CYCLES
    new_cycles = max(compute, onchip, offchip) + _RAMP_CYCLES
    return replace(
        lc,
        compute_cycles=compute,
        onchip_cycles=onchip,
        offchip_cycles=offchip,
        energy_mj=lc.energy_mj * energy_factor,
        utilization=min(1.0, lc.utilization * old_cycles / new_cycles),
    )


def scale_cost(cost: ModelCost, point: DvfsPoint,
               leakage_fraction: float = 0.1) -> ModelCost:
    """Re-derive a model cost at a DVFS operating point.

    ``leakage_fraction`` is the share of the nominal energy attributed to
    leakage (which scales with runtime rather than V^2).

    The returned cost is *internally consistent*: its per-layer
    breakdown is rescaled along with the totals, so the layer latency
    and energy sums equal ``latency_s``/``energy_mj`` at every operating
    point, and ``utilization`` reflects the achieved MACs/cycle at the
    scaled cycle count.  (Historically only the two totals were scaled,
    leaving ``layer_costs`` and ``utilization`` at their nominal values —
    any consumer summing layers at a non-nominal point got nominal
    numbers back.)
    """
    if not 0.0 <= leakage_fraction <= 1.0:
        raise ValueError(
            f"leakage_fraction must be in [0, 1], got {leakage_fraction}"
        )
    energy_factor = _energy_factor(point, leakage_fraction)
    layers = tuple(
        _scale_layer(lc, point, energy_factor) for lc in cost.layer_costs
    )
    if layers:
        latency_s = sum(lc.latency_s for lc in layers)
        energy_mj = sum(lc.energy_mj for lc in layers)
    else:
        # Hand-built costs without a layer breakdown: scale the totals.
        latency_s = cost.latency_s * point.latency_scale
        energy_mj = cost.energy_mj * energy_factor
    utilization = cost.utilization
    if latency_s > 0.0 and cost.latency_s > 0.0:
        # util = total_macs / (cycles * pes), and cycles ~ latency.
        utilization = min(1.0, cost.utilization * cost.latency_s / latency_s)
    return replace(
        cost,
        latency_s=latency_s,
        energy_mj=energy_mj,
        utilization=utilization,
        layer_costs=layers,
    )


def best_point_for_slack(
    cost: ModelCost,
    slack_s: float,
    points: tuple[DvfsPoint, ...] = DEFAULT_DVFS_POINTS,
    leakage_fraction: float = 0.1,
) -> tuple[DvfsPoint, ModelCost]:
    """The most energy-efficient operating point that fits the slack.

    Falls back to the fastest point when nothing fits (the inference will
    miss its deadline regardless; might as well minimise lateness).
    """
    if slack_s <= 0:
        fastest = max(points, key=lambda p: p.frequency_scale)
        return fastest, scale_cost(cost, fastest, leakage_fraction)
    candidates = [
        (p, scale_cost(cost, p, leakage_fraction)) for p in points
    ]
    feasible = [
        (p, c) for p, c in candidates if c.latency_s <= slack_s
    ]
    if not feasible:
        fastest = max(points, key=lambda p: p.frequency_scale)
        return fastest, scale_cost(cost, fastest, leakage_fraction)
    return min(feasible, key=lambda pc: pc[1].energy_mj)
