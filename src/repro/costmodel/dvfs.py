"""Dynamic voltage/frequency scaling (DVFS) on top of the cost model.

Appendix B.1 observes that latency slack can be traded for energy ("we can
adjust energy to meet the deadlines or optimize using the slack to the
deadline (e.g., DVFS)") — which is exactly why energy is a knob, not an
absolute minimisation target, and why the energy score is bounded rather
than open-ended.  This module makes that trade concrete:

* :class:`DvfsPoint` — an operating point: relative frequency ``f`` and the
  classical dynamic-power scaling ``E_dynamic ~ f^2`` (voltage tracks
  frequency), with leakage scaling ~1/f per unit work (slower runs leak
  longer).
* :func:`scale_cost` — re-derives a :class:`ModelCost` at an operating
  point.
* :func:`best_point_for_slack` — picks the slowest (most energy-efficient)
  point that still fits a latency budget, i.e. the paper's
  slack-into-energy optimisation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .analysis import ModelCost

__all__ = ["DvfsPoint", "DEFAULT_DVFS_POINTS", "scale_cost",
           "best_point_for_slack"]


@dataclass(frozen=True)
class DvfsPoint:
    """One DVFS operating point, relative to the nominal 1 GHz design."""

    name: str
    frequency_scale: float  # 1.0 = nominal

    def __post_init__(self) -> None:
        if not 0.1 <= self.frequency_scale <= 2.0:
            raise ValueError(
                f"frequency_scale must be in [0.1, 2.0], got "
                f"{self.frequency_scale}"
            )

    @property
    def latency_scale(self) -> float:
        """Latency multiplier: work takes 1/f as long."""
        return 1.0 / self.frequency_scale

    @property
    def dynamic_energy_scale(self) -> float:
        """Dynamic energy ~ V^2, and V tracks f in the DVFS ladder."""
        return self.frequency_scale ** 2

    @property
    def leakage_energy_scale(self) -> float:
        """Leakage accrues over the (longer) runtime."""
        return 1.0 / self.frequency_scale


#: A realistic mobile-SoC ladder around the nominal point.
DEFAULT_DVFS_POINTS: tuple[DvfsPoint, ...] = (
    DvfsPoint("eco", 0.5),
    DvfsPoint("low", 0.7),
    DvfsPoint("nominal", 1.0),
    DvfsPoint("boost", 1.3),
)


def scale_cost(cost: ModelCost, point: DvfsPoint,
               leakage_fraction: float = 0.1) -> ModelCost:
    """Re-derive a model cost at a DVFS operating point.

    ``leakage_fraction`` is the share of the nominal energy attributed to
    leakage (which scales with runtime rather than V^2).
    """
    if not 0.0 <= leakage_fraction <= 1.0:
        raise ValueError(
            f"leakage_fraction must be in [0, 1], got {leakage_fraction}"
        )
    dynamic = cost.energy_mj * (1.0 - leakage_fraction)
    leakage = cost.energy_mj * leakage_fraction
    return replace(
        cost,
        latency_s=cost.latency_s * point.latency_scale,
        energy_mj=(
            dynamic * point.dynamic_energy_scale
            + leakage * point.leakage_energy_scale
        ),
    )


def best_point_for_slack(
    cost: ModelCost,
    slack_s: float,
    points: tuple[DvfsPoint, ...] = DEFAULT_DVFS_POINTS,
    leakage_fraction: float = 0.1,
) -> tuple[DvfsPoint, ModelCost]:
    """The most energy-efficient operating point that fits the slack.

    Falls back to the fastest point when nothing fits (the inference will
    miss its deadline regardless; might as well minimise lateness).
    """
    if slack_s <= 0:
        fastest = max(points, key=lambda p: p.frequency_scale)
        return fastest, scale_cost(cost, fastest, leakage_fraction)
    candidates = [
        (p, scale_cost(cost, p, leakage_fraction)) for p in points
    ]
    feasible = [
        (p, c) for p, c in candidates if c.latency_s <= slack_s
    ]
    if not feasible:
        fastest = max(points, key=lambda p: p.frequency_scale)
        return fastest, scale_cost(cost, fastest, leakage_fraction)
    return min(feasible, key=lambda pc: pc[1].energy_mj)
