"""Depth Estimation (DE): MiDaS v21-small (Ranftl et al., TPAMI 2020).

Monocular relative-depth estimation with an EfficientNet-lite-style
encoder (depthwise-separable inverted residuals) and a lightweight
refinement decoder with skip connections, evaluated on KITTI frames
resized to 256x256.
"""

from __future__ import annotations

from repro.nn import GraphBuilder, ModelGraph

from .registry import register_model

WIDTH = 3.0


@register_model("DE")
def build(width: float = WIDTH) -> ModelGraph:
    """Build the DE model graph."""

    def ch(base: int) -> int:
        return max(8, int(base * width))

    b = GraphBuilder("depth_estimation", (3, 256, 256))
    # EfficientNet-lite-ish encoder.
    b.conv(ch(32), 3, 2)                                   # /2
    b.inverted_residual(ch(16), expand=1)
    b.inverted_residual(ch(24), expand=6, stride=2)        # /4
    b.inverted_residual(ch(24), expand=6)
    skip4 = b.last_name
    b.inverted_residual(ch(40), expand=6, stride=2, kernel=5)  # /8
    b.inverted_residual(ch(40), expand=6, kernel=5)
    skip8 = b.last_name
    b.inverted_residual(ch(80), expand=6, stride=2)        # /16
    b.inverted_residual(ch(80), expand=6)
    b.inverted_residual(ch(112), expand=6, kernel=5)
    b.inverted_residual(ch(192), expand=6, stride=2, kernel=5)  # /32
    b.inverted_residual(ch(320), expand=6)
    # Decoder with skip fusion.
    b.conv(ch(128), 1)
    b.upsample(2)   # /16
    b.conv(ch(128), 3)
    b.upsample(2)   # /8
    b.concat(skip8, ch(40))
    b.conv(ch(64), 3)
    b.upsample(2)   # /4
    b.concat(skip4, ch(24))
    b.conv(ch(64), 3)
    b.upsample(2)   # /2
    b.conv(ch(32), 3)
    b.conv(1, 1, name="depth_head")
    return b.build()
