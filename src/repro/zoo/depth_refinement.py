"""Depth Refinement (DR): Sparse-to-Dense RGBd-200 (Ma & Karaman, ICRA 2018).

Densifies a sparse lidar depth map (200 samples) guided by the RGB frame:
a ResNet-18-style encoder over the 4-channel RGB-D input followed by a
deconvolutional decoder, on KITTI-sized 228x304 crops.  The only
multi-modal model in the suite — the harness must join the camera and
lidar streams before dispatching it.
"""

from __future__ import annotations

from repro.nn import GraphBuilder, ModelGraph

from .registry import register_model

WIDTH = 1.5


@register_model("DR")
def build(width: float = WIDTH) -> ModelGraph:
    """Build the DR model graph."""

    def ch(base: int) -> int:
        return max(8, int(base * width))

    b = GraphBuilder("depth_refinement", (4, 228, 304))
    # ResNet-18-style encoder.
    b.conv(ch(64), 7, 2)          # /2
    b.pool(2, kind="max")          # /4
    b.residual_block(ch(64))
    b.residual_block(ch(64))
    b.residual_block(ch(128), stride=2)   # /8
    b.residual_block(ch(128))
    b.residual_block(ch(256), stride=2)   # /16
    b.residual_block(ch(256))
    b.residual_block(ch(512), stride=2)   # /32
    # Deconvolutional decoder back to /2.
    b.conv(ch(256), 1)
    b.deconv(ch(128), 4, 2)   # /16
    b.deconv(ch(64), 4, 2)    # /8
    b.deconv(ch(32), 4, 2)    # /4
    b.deconv(ch(16), 4, 2)    # /2
    b.conv(1, 3, name="dense_depth")
    return b.build()
