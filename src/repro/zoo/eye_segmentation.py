"""Eye Segmentation (ES): RITNet (Chaudhary et al., ICCVW 2019).

RITNet is a compact U-Net-style encoder/decoder that segments eye images
into sclera/iris/pupil/background.  XRBench uses OpenEDS 2019 down-scaled
by 1/4 (appendix A): 160x100 grayscale input.  Skip connections feed each
decoder stage from the matching encoder stage.
"""

from __future__ import annotations

from repro.nn import GraphBuilder, ModelGraph

from .registry import register_model

WIDTH = 2.0


@register_model("ES")
def build(width: float = WIDTH) -> ModelGraph:
    """Build the ES model graph."""

    def ch(base: int) -> int:
        return max(8, int(base * width))

    b = GraphBuilder("eye_segmentation", (1, 100, 160))
    # Encoder (down blocks, average-pool downsampling like RITNet).
    b.conv(ch(32), 3, name="enc1a")
    b.conv(ch(32), 3, name="enc1b")
    b.pool(2, kind="avg")
    b.conv(ch(64), 3, name="enc2a")
    b.conv(ch(64), 3, name="enc2b")
    b.pool(2, kind="avg")
    b.conv(ch(128), 3, name="enc3a")
    b.conv(ch(128), 3, name="enc3b")
    # Bottleneck.
    b.conv(ch(128), 3, name="bottleneck")
    b.add("enc3b")
    # Decoder with skip connections.
    b.upsample(2)
    b.concat("enc2b", ch(64))
    b.conv(ch(64), 3, name="dec2a")
    b.conv(ch(64), 3, name="dec2b")
    b.upsample(2)
    b.concat("enc1b", ch(32))
    b.conv(ch(32), 3, name="dec1a")
    b.conv(ch(32), 3, name="dec1b")
    # 4-class per-pixel head.
    b.conv(4, 1, name="seg_head")
    return b.build()
