"""Plane Detection (PD): PlaneRCNN (Liu et al., CVPR 2019).

Detects piece-wise planar surfaces with a Mask-RCNN-style architecture:
ResNet-FPN backbone, RPN, RoIAlign and per-RoI mask/plane-parameter heads,
plus a segmentation-refinement pass.  XRBench runs it on KITTI frames
down-scaled by 1/4 (appendix A) — 96x320 here (rounded so the FPN scales
align).  PD is by far the heaviest
model in the suite and is what saturates 4K-PE systems on the AR-gaming
scenario (Figure 6).
"""

from __future__ import annotations

from repro.nn import GraphBuilder, ModelGraph

from .registry import register_model

WIDTH = 1.35
ROIS = 64


@register_model("PD")
def build(width: float = WIDTH) -> ModelGraph:
    """Build the PD model graph."""

    def ch(base: int) -> int:
        return max(8, int(base * width))

    b = GraphBuilder("plane_detection", (3, 96, 320))
    # ResNet-50-style bottleneck backbone (modelled with basic blocks of
    # equivalent width).
    b.conv(ch(64), 7, 2)          # /2
    b.residual_block(ch(64))
    b.residual_block(ch(64))
    b.residual_block(ch(128), stride=2)   # /4
    b.residual_block(ch(128))
    b.residual_block(ch(128))
    c2 = b.last_name
    b.residual_block(ch(256), stride=2)   # /8
    b.residual_block(ch(256))
    b.residual_block(ch(256))
    c3 = b.last_name
    b.residual_block(ch(512), stride=2)   # /16
    b.residual_block(ch(512))
    c4 = b.last_name
    # FPN lateral/merge convs.
    b.conv(ch(256), 1, name="fpn_lateral4")
    b.conv(ch(256), 3, name="fpn_merge4")
    b.upsample(2)
    b.concat(c3, ch(256), name="fpn_fuse3")
    b.conv(ch(256), 3, name="fpn_merge3")
    b.upsample(2)
    b.concat(c2, ch(128), name="fpn_fuse2")
    b.conv(ch(256), 3, name="fpn_merge2")
    # RPN over the finest merged level.
    b.conv(ch(256), 3, name="rpn_conv")
    b.conv(ch(256), 1, name="rpn_head")
    # Per-RoI heads: mask + plane parameters over 100 proposals.
    b.roialign(ROIS, 7, name="roialign")
    b.conv(ch(256), 3, name="head_conv1")
    b.conv(ch(256), 3, name="head_conv2")
    b.conv(ch(256), 3, name="head_conv3")
    b.conv(ch(256), 3, name="head_conv4")
    b.deconv(ch(128), 4, 2, name="mask_deconv")
    b.conv(ch(64), 3, name="mask_conv")
    b.conv(4, 1, name="plane_params")  # plane normal + offset per pixel
    return b.build()
