"""The XRBench model zoo: reference graphs for the 11 unit models."""

from .registry import (
    MODEL_BUILDERS,
    TASK_CODES,
    all_models,
    build_model,
    register_model,
)

__all__ = [
    "MODEL_BUILDERS",
    "TASK_CODES",
    "all_models",
    "build_model",
    "register_model",
]
