"""Gaze Estimation (GE): EyeCoD's FBNet-C backbone (You et al., 2022).

The model instance in Table 7 is FBNet-C, a NAS-found mobile network built
from inverted-residual blocks (pointwise expand, depthwise, pointwise
project).  Input is OpenEDS 2020 down-scaled by 1/4 (appendix A); the head
regresses a 3-D gaze vector.
"""

from __future__ import annotations

from repro.nn import GraphBuilder, ModelGraph

from .registry import register_model

WIDTH = 3.0


@register_model("GE")
def build(width: float = WIDTH) -> ModelGraph:
    """Build the GE model graph."""

    def ch(base: int) -> int:
        return max(8, int(base * width))

    b = GraphBuilder("gaze_estimation", (1, 128, 128))
    b.conv(ch(16), 3, 2)  # stem /2
    # FBNet-C-style inverted-residual stages.
    b.inverted_residual(ch(16), expand=1, stride=1)
    b.inverted_residual(ch(24), expand=6, stride=2)   # /4
    b.inverted_residual(ch(24), expand=3, stride=1)
    b.inverted_residual(ch(32), expand=6, stride=2, kernel=5)  # /8
    b.inverted_residual(ch(32), expand=3, stride=1)
    b.inverted_residual(ch(64), expand=6, stride=2, kernel=5)  # /16
    b.inverted_residual(ch(64), expand=3, stride=1)
    b.inverted_residual(ch(112), expand=6, stride=1)
    b.inverted_residual(ch(184), expand=6, stride=2, kernel=5)  # /32
    b.inverted_residual(ch(184), expand=3, stride=1)
    b.conv(ch(352), 1)
    b.global_pool()
    b.fc(512, name="gaze_feat")
    b.fc(3, name="gaze_vector")
    return b.build()
