"""Registry of the eleven XRBench unit-model graphs.

Graphs are built lazily and cached: constructing all eleven takes a moment
and most callers only need a subset.  ``build_model`` is the single public
entry point; ``MODEL_BUILDERS`` maps the canonical task codes from Table 1
to builder callables.
"""

from __future__ import annotations

from collections.abc import Callable
from functools import lru_cache

from repro.nn import ModelGraph

from . import (
    action_segmentation,
    depth_estimation,
    depth_refinement,
    eye_segmentation,
    gaze_estimation,
    hand_tracking,
    keyword_detection,
    object_detection,
    plane_detection,
    semantic_segmentation,
    speech_recognition,
)

__all__ = ["MODEL_BUILDERS", "TASK_CODES", "build_model", "all_models"]

#: Task code (Table 1) -> builder module.
MODEL_BUILDERS: dict[str, Callable[[], ModelGraph]] = {
    "HT": hand_tracking.build,
    "ES": eye_segmentation.build,
    "GE": gaze_estimation.build,
    "KD": keyword_detection.build,
    "SR": speech_recognition.build,
    "SS": semantic_segmentation.build,
    "OD": object_detection.build,
    "AS": action_segmentation.build,
    "DE": depth_estimation.build,
    "DR": depth_refinement.build,
    "PD": plane_detection.build,
}

TASK_CODES: tuple[str, ...] = tuple(MODEL_BUILDERS)


@lru_cache(maxsize=None)
def build_model(task_code: str) -> ModelGraph:
    """Build (or fetch the cached) model graph for a task code."""
    try:
        builder = MODEL_BUILDERS[task_code]
    except KeyError:
        raise KeyError(
            f"unknown task code {task_code!r}; available: {TASK_CODES}"
        ) from None
    return builder()


def all_models() -> dict[str, ModelGraph]:
    """All eleven graphs, keyed by task code."""
    return {code: build_model(code) for code in TASK_CODES}
