"""Registry of the eleven XRBench unit-model graphs.

Model modules self-register through the same decorator idiom as every
other pluggable axis (:mod:`repro.registry`)::

    from repro.zoo.registry import register_model

    @register_model("HT")
    def build(width: float = WIDTH) -> ModelGraph:
        ...

``MODEL_BUILDERS`` maps the canonical task codes from Table 1 to the
registered builder callables; duplicate codes raise at import time
(the old literal-dict form would have silently kept the last writer).
``TASK_CODES`` stays an explicit Table-1-ordered literal rather than
being derived from registration order: it is the presentation order of
every table/figure, and deriving it would reorder under the partially-
initialised-module window of a circular import (importing a model
module directly imports this module, which imports the other model
modules).  Lint rule C003 (registry-completeness) statically pins the
literal to the set of ``@register_model`` decorators.

Graphs are built lazily and cached: constructing all eleven takes a
moment and most callers only need a subset.  ``build_model`` is the
single public entry point.
"""

from __future__ import annotations

from collections.abc import Callable
from functools import lru_cache
from typing import TypeVar

from repro.nn import ModelGraph

__all__ = [
    "MODEL_BUILDERS",
    "TASK_CODES",
    "build_model",
    "all_models",
    "register_model",
]

_Builder = TypeVar("_Builder", bound=Callable[..., ModelGraph])

#: Task code (Table 1) -> builder callable, populated by the
#: ``@register_model`` decorators in the model modules below.
MODEL_BUILDERS: dict[str, Callable[[], ModelGraph]] = {}

#: The canonical task codes in Table-1 order (see module docstring for
#: why this is a literal and not ``tuple(MODEL_BUILDERS)``).
TASK_CODES: tuple[str, ...] = (
    "HT", "ES", "GE", "KD", "SR", "SS", "OD", "AS", "DE", "DR", "PD",
)


def register_model(task_code: str) -> Callable[[_Builder], _Builder]:
    """Register a zoo module's builder under its Table-1 task code.

    Exactly one builder per module, one module per code: duplicate
    registrations raise ``ValueError`` instead of silently replacing
    the earlier builder.  Returns the builder unchanged.
    """

    def _decorate(builder: _Builder) -> _Builder:
        if task_code in MODEL_BUILDERS:
            raise ValueError(
                f"model builder for task code {task_code!r} is already "
                f"registered ({MODEL_BUILDERS[task_code]!r})"
            )
        MODEL_BUILDERS[task_code] = builder
        return builder

    return _decorate


# Importing the model modules triggers their @register_model decorators.
# This must follow the decorator definition (E402 is deliberate), and
# the import order matches TASK_CODES so MODEL_BUILDERS iterates in
# Table-1 order like the literal dict it replaced.
from . import (  # noqa: E402
    hand_tracking,
    eye_segmentation,
    gaze_estimation,
    keyword_detection,
    speech_recognition,
    semantic_segmentation,
    object_detection,
    action_segmentation,
    depth_estimation,
    depth_refinement,
    plane_detection,
)

@lru_cache(maxsize=None)
def build_model(task_code: str) -> ModelGraph:
    """Build (or fetch the cached) model graph for a task code."""
    try:
        builder = MODEL_BUILDERS[task_code]
    except KeyError:
        raise KeyError(
            f"unknown task code {task_code!r}; available: {TASK_CODES}"
        ) from None
    return builder()


def all_models() -> dict[str, ModelGraph]:
    """All eleven graphs, keyed by task code."""
    return {code: build_model(code) for code in TASK_CODES}
