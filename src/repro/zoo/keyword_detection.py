"""Keyword Detection (KD): res8-narrow (Tang & Lin, ICASSP 2018).

A tiny residual CNN over MFCC features of one-second audio clips (Google
Speech Commands).  res8-narrow has ~20 K parameters and a handful of
MMACs — it is the smallest model in the suite and is always the upstream
trigger of the speech pipeline's control dependency (KD -> SR).
"""

from __future__ import annotations

from repro.nn import GraphBuilder, ModelGraph

from .registry import register_model

#: res8-narrow is kept at its published size; it is negligible either way.
WIDTH = 1.0


@register_model("KD")
def build(width: float = WIDTH) -> ModelGraph:
    """Build the KD model graph."""
    ch = max(8, int(19 * width))
    b = GraphBuilder("keyword_detection", (1, 40, 101))
    b.conv(ch, 3, name="stem")
    b.pool(2, kind="avg")
    for i in range(3):
        b.conv(ch, 3, name=f"res{i}a")
        first = b.last_name
        b.conv(ch, 3, name=f"res{i}b")
        b.add(first, name=f"res{i}add")
    b.global_pool()
    b.fc(12, name="keyword_logits")
    return b.build()
