"""Action Segmentation (AS): ED-TCN (Lea et al., CVPR 2017).

An encoder-decoder temporal convolutional network over per-frame visual
features (GTEA).  The 128-step temporal window is folded into an 8x16
grid so the long 1-D convolutions of ED-TCN map onto the 2-D conv
primitive (a 3x3 conv over the folded grid covers the same neighbourhood
as a k=25 temporal conv at the original frame rate); the encoder pools
and the decoder upsamples exactly as ED-TCN does along time.
"""

from __future__ import annotations

from repro.nn import GraphBuilder, ModelGraph

from .registry import register_model

WIDTH = 1.0
TIME_GRID = (8, 16)  # 128 temporal steps folded into 2-D
FEATURE_DIM = 2048


@register_model("AS")
def build(width: float = WIDTH) -> ModelGraph:
    """Build the AS model graph."""

    def ch(base: int) -> int:
        return max(8, int(base * width))

    h, w = TIME_GRID
    b = GraphBuilder("action_segmentation", (FEATURE_DIM, h, w))
    b.conv(ch(96), 1, name="enc1_proj")
    b.conv(ch(96), 3, name="enc1_temporal")
    b.pool(2, kind="max", name="enc1_pool")
    b.conv(ch(160), 3, name="enc2_temporal")
    b.pool(2, kind="max", name="enc2_pool")
    b.conv(ch(160), 3, name="mid_temporal")
    b.upsample(2, name="dec1_up")
    b.conv(ch(96), 3, name="dec1_temporal")
    b.upsample(2, name="dec2_up")
    b.conv(ch(64), 3, name="dec2_temporal")
    b.conv(11, 1, name="action_logits")  # 11 GTEA action classes
    return b.build()
