"""Hand Tracking (HT): Hand Shape/Pose estimation (Ge et al., CVPR 2019).

The reference model is a Graph-CNN that regresses 3-D hand shape and pose
from a single RGB view; XRBench feeds it the Stereo Hand Pose dataset
down-scaled by 1/2 (appendix A), so the input here is a stereo pair of
320x240 RGB frames stacked channel-wise.  The architecture is a ResNet-ish
2-D encoder followed by fully-connected graph-regression stages (the
Graph-CNN operates on a fixed 1280-vertex mesh; its per-vertex feature
transforms are dense matmuls, which we model as FC layers).
"""

from __future__ import annotations

from repro.nn import GraphBuilder, ModelGraph

from .registry import register_model

#: Channel-width multiplier.  Widths are calibrated (see DESIGN.md) so the
#: simulated 4K/8K-PE accelerators are stressed the way the paper's are.
WIDTH = 2.0


@register_model("HT")
def build(width: float = WIDTH) -> ModelGraph:
    """Build the HT model graph."""

    def ch(base: int) -> int:
        return max(8, int(base * width))

    b = GraphBuilder("hand_tracking", (6, 240, 320))
    # Stem.
    b.conv(ch(32), 7, 2)          # /2
    b.pool(2, kind="max")          # /4
    # Residual encoder.
    b.residual_block(ch(64))
    b.residual_block(ch(64))
    b.residual_block(ch(128), stride=2)   # /8
    b.residual_block(ch(128))
    b.residual_block(ch(256), stride=2)   # /16
    b.residual_block(ch(256))
    b.residual_block(ch(512), stride=2)   # /32
    b.residual_block(ch(512))
    b.global_pool()
    # Graph-CNN mesh regression: latent -> coarse mesh features -> pose.
    b.fc(2048, name="graph_latent")
    b.fc(1280 * 3, name="mesh_vertices")
    b.fc(21 * 3, name="joints")
    return b.build()
