"""Semantic Segmentation (SS): HRViT-b1 (Gu et al., CVPR 2022).

HRViT keeps a high-resolution convolutional branch alive alongside
transformer stages at coarser resolutions.  We model the b1 variant on a
512x1024 Cityscapes crop: a convolutional stem and high-res trunk
(CONV2D + DWCONV), transformer blocks applied at the /32 scale where the
token count is tractable (Self-attention + Layernorm + DWCONV, matching
Table 7's operator mix for this model), and an upsampling segmentation
head back to /4 resolution.
"""

from __future__ import annotations

from repro.nn import GraphBuilder, ModelGraph

from .registry import register_model

WIDTH = 1.5


@register_model("SS")
def build(width: float = WIDTH) -> ModelGraph:
    """Build the SS model graph."""

    def ch(base: int) -> int:
        return max(8, int(base * width))

    b = GraphBuilder("semantic_segmentation", (3, 512, 1024))
    # Convolutional stem: /4.
    b.conv(ch(32), 3, 2)
    b.conv(ch(64), 3, 2)
    # High-resolution trunk at /4 with depthwise-separable mixing.
    for i in range(3):
        b.dwconv(3, name=f"hr_dw{i}")
        b.conv(ch(64), 1, name=f"hr_pw{i}")
    hr_exit = b.last_name
    # Mid stage at /8.
    b.conv(ch(128), 3, 2)
    for i in range(3):
        b.dwconv(3, name=f"mid_dw{i}")
        b.conv(ch(128), 1, name=f"mid_pw{i}")
    # /16 conv stage.
    b.conv(ch(192), 3, 2)
    for i in range(2):
        b.dwconv(3, name=f"s16_dw{i}")
        b.conv(ch(192), 1, name=f"s16_pw{i}")
    # Transformer stage at /32: (C, 16, 32) -> 512 tokens.
    b.conv(ch(256), 3, 2)
    c32, h32, w32 = b.shape
    b.reshape((c32, 1, h32 * w32), name="tokenise")
    for _ in range(4):
        b.transformer_block(heads=8, ffn_mult=4)
    b.reshape((c32, h32, w32), name="detokenise")
    # Decoder: fuse back to /4 and predict 19 Cityscapes classes.
    b.upsample(2)
    b.conv(ch(128), 3)
    b.upsample(2)
    b.conv(ch(64), 3)
    b.upsample(2)
    b.concat(hr_exit, ch(64), name="hr_fuse")
    b.conv(ch(64), 3)
    b.conv(19, 1, name="seg_head")
    return b.build()
