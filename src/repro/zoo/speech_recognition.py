"""Speech Recognition (SR): Emformer EM-24L (Shi et al., ICASSP 2021).

A streaming transformer acoustic model.  Each inference processes one audio
segment plus its left context (the paper's 3 Hz target rate models the
320 ms left-context window), so the sequence here is segment + context
tokens of the 512-dim acoustic embedding, run through 24 pre-norm
transformer blocks and a vocabulary projection.
"""

from __future__ import annotations

from repro.nn import GraphBuilder, ModelGraph

from .registry import register_model

DIM = 512
BLOCKS = 24
SEQ = 144  # 128 segment frames + 16 summarised left-context tokens.
HEADS = 8


@register_model("SR")
def build(width: float = 1.0) -> ModelGraph:
    """Build the SR model graph."""
    dim = max(64, int(DIM * width))
    b = GraphBuilder("speech_recognition", (80, 1, SEQ))
    # Acoustic front-end: project 80-dim log-mel features to model dim.
    b.conv(dim, 1, name="frontend")
    for _ in range(BLOCKS):
        b.transformer_block(heads=HEADS, ffn_mult=4)
    b.layernorm(name="final_ln")
    # Vocabulary projection (4k word pieces) as a 1x1 conv over time.
    b.conv(4096, 1, name="vocab_proj")
    return b.build()
