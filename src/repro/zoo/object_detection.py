"""Object Detection (OD): D2Go Faster-RCNN-FBNetV3A (Meta, 2022).

A two-stage detector with a mobile FBNetV3A backbone (inverted residuals),
a region-proposal network, RoIAlign over the proposals and a box head —
the C4-style config referenced by the paper.  Input is a 320x320 COCO
frame sized for on-device detection.
"""

from __future__ import annotations

from repro.nn import GraphBuilder, ModelGraph

from .registry import register_model

WIDTH = 2.0
ROIS = 64


@register_model("OD")
def build(width: float = WIDTH) -> ModelGraph:
    """Build the OD model graph."""

    def ch(base: int) -> int:
        return max(8, int(base * width))

    b = GraphBuilder("object_detection", (3, 320, 320))
    # FBNetV3A-style backbone.
    b.conv(ch(16), 3, 2)      # /2
    b.inverted_residual(ch(16), expand=1)
    b.inverted_residual(ch(24), expand=4, stride=2)   # /4
    b.inverted_residual(ch(24), expand=2)
    b.inverted_residual(ch(40), expand=4, stride=2, kernel=5)  # /8
    b.inverted_residual(ch(40), expand=3)
    b.inverted_residual(ch(80), expand=4, stride=2)   # /16
    b.inverted_residual(ch(80), expand=3)
    b.inverted_residual(ch(112), expand=4)
    b.conv(ch(184), 1, name="c4_out")
    # Region proposal network on the /16 feature map.
    b.conv(ch(184), 3, name="rpn_conv")
    b.conv(ch(184), 1, name="rpn_head")
    # RoIAlign the top proposals and run the box head.
    b.roialign(ROIS, 7, name="roialign")
    b.conv(ch(256), 3, name="box_conv")
    b.global_pool()
    b.fc(1024, name="box_feat")
    b.fc(81 * 5, name="box_outputs")  # 80 COCO classes + bg, 4 deltas + score
    return b.build()
