"""Report export: machine-readable results and the submission format.

Section 3.7: XRBench reveals every individual score for Pareto analysis,
but because detailed breakdowns can be commercially sensitive, *reporting
breakdown scores is optional* — only the overall XRBench SCORE is
mandatory.  :func:`submission` produces exactly that contract;
:func:`scenario_to_dict` / :func:`benchmark_to_dict` / :func:`to_csv`
serialise full reports for tooling.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any

from .report import BenchmarkReport, ScenarioReport

__all__ = [
    "scenario_to_dict",
    "benchmark_to_dict",
    "to_csv",
    "submission",
]


def _admission_to_dict(report: ScenarioReport) -> dict[str, Any]:
    """The session's admission-control stamp as plain data.

    Sessions run without a controller (``policy == "none"``, or any run
    through the single-tenant simulator) export the neutral block —
    never shed, never degraded, full quality — so downstream consumers
    can rely on the keys existing unconditionally.
    """
    record = report.simulation.admission
    if record is None:
        return {
            "policy": "none",
            "shed": False,
            "shed_reason": None,
            "degradation_level": 0,
            "quality_proxy": 1.0,
            "actions": [],
        }
    from repro.runtime.admission import quality_retention

    return {
        "policy": record.policy,
        "shed": record.shed,
        "shed_reason": record.shed_reason,
        "degradation_level": record.degradation_level,
        "quality_proxy": quality_retention(
            report.simulation.scenario, record.degradation_level
        ),
        "actions": [
            {
                "time_s": a.time_s,
                "kind": a.kind,
                "reason": a.reason,
                "miss_ewma": a.miss_ewma,
                "level": a.level,
            }
            for a in record.actions
        ],
    }


def _faults_to_dict(report: ScenarioReport) -> dict[str, Any]:
    """The session's fault-injection stamp as plain data.

    Sessions run without a fault plan (``profile == "none"``, or any run
    through the single-tenant simulator) export the neutral block — no
    kills, no retries, nothing lost — so downstream consumers can rely
    on the keys existing unconditionally.
    """
    record = report.simulation.faults
    if record is None:
        return {
            "profile": "none",
            "killed": 0,
            "retries": 0,
            "lost": 0,
            "recovered": 0,
            "mean_recovery_latency_s": None,
            "actions": [],
        }
    return {
        "profile": record.profile,
        "killed": record.killed,
        "retries": record.retries,
        "lost": record.lost,
        "recovered": record.recovered,
        "mean_recovery_latency_s": record.mean_recovery_latency_s,
        "actions": [
            {
                "time_s": a.time_s,
                "kind": a.kind,
                "engine_index": a.engine_index,
                "request_id": a.request_id,
                "model_code": a.model_code,
                "attempt": a.attempt,
            }
            for a in record.actions
        ],
    }


def scenario_to_dict(report: ScenarioReport) -> dict[str, Any]:
    """Full scenario report as plain data (JSON-ready)."""
    sim, score = report.simulation, report.score
    return {
        "scenario": sim.scenario.name,
        "system": sim.system.describe(),
        "duration_s": sim.duration_s,
        # Per-session lifetime accounting: every rate in this report is
        # normalised by the *active* window, which equals the streamed
        # duration for static sessions.
        "session": {
            "id": sim.session_id,
            "active_duration_s": sim.window_s,
            "dynamic": sim.active_duration_s is not None,
        },
        # QoE control-plane stamp: what the admission controller did to
        # this session (first-class, even when no controller ran).
        "admission": _admission_to_dict(report),
        # Resilience stamp: what the fault plan did to this session
        # (first-class, even when no plan ran).
        "faults": _faults_to_dict(report),
        # Honest per-session energy: total millijoules actually spent
        # (occupancy-log sum, including dropped requests' partial
        # segments) next to the Enmax-bounded energy *score* below.
        "energy_mj": sim.total_energy_mj(),
        "scores": {
            "overall": score.overall,
            "rt": score.rt,
            "energy": score.energy,
            "accuracy": score.accuracy,
            "qoe": score.qoe,
        },
        "frames": {
            "streamed": len(sim.requests),
            "executed": len(sim.completed()),
            "dropped": len(sim.dropped()),
            "drop_rate": sim.frame_drop_rate(),
            "missed_deadlines": score.total_missed_deadlines,
        },
        # Window-clipped busy fractions: busy time is clipped to the
        # session's active window at accounting time, so these are true
        # occupancy shares (1.0 = saturated; the drain tail of in-flight
        # work past the window never overcounts).
        "utilization": {
            str(i): sim.utilization(i) for i in range(sim.system.num_subs)
        },
        "models": [
            {
                "code": m.model_code,
                "per_model": m.per_model,
                "qoe": m.qoe,
                "rt": m.mean_unit("rt"),
                "energy": m.mean_unit("energy"),
                "accuracy": m.mean_unit("accuracy"),
                "executed": m.frames_executed,
                "streamed": m.frames_streamed,
                "dropped": m.frames_dropped,
                "missed_deadlines": m.missed_deadlines,
            }
            for m in score.model_scores
        ],
    }


def benchmark_to_dict(
    report: BenchmarkReport,
    *,
    plan_fingerprint: str | None = None,
    workload_fingerprint: str | None = None,
) -> dict[str, Any]:
    """Full suite report as plain data.

    The optional fingerprints stamp which compiled
    :class:`~repro.api.DispatchPlan` produced the report (``xrbench
    export`` passes them), so exports from the identical plan — and,
    via the workload fingerprint, from the same plan under different
    seeds — are groupable without re-deriving anything.
    """
    data: dict[str, Any] = {
        "system": report.system.describe(),
        "xrbench_score": report.xrbench_score,
        "scenarios": [
            scenario_to_dict(r) for r in report.scenario_reports
        ],
    }
    if plan_fingerprint is not None:
        data["plan_fingerprint"] = plan_fingerprint
    if workload_fingerprint is not None:
        data["workload_fingerprint"] = workload_fingerprint
    return data


def to_csv(
    report: BenchmarkReport, *, plan_fingerprint: str | None = None
) -> str:
    """One CSV row per (scenario, model) with all score components.

    ``plan_fingerprint`` (when given) is repeated on every row — CSV
    consumers join on it to group rows produced by the identical
    compiled plan.
    """
    buf = io.StringIO()
    writer = csv.writer(buf)
    header = ["system", "scenario", "model", "per_model", "qoe", "rt",
              "energy", "accuracy", "executed", "streamed", "dropped",
              "missed_deadlines", "session_id", "active_duration_s",
              "session_energy_mj", "shed", "degradation_level",
              "quality_proxy", "fault_killed", "fault_retries",
              "fault_lost"]
    if plan_fingerprint is not None:
        header.append("plan_fingerprint")
    writer.writerow(header)
    system = report.system.describe()
    for scenario_report in report.scenario_reports:
        data = scenario_to_dict(scenario_report)
        session = data["session"]
        admission = data["admission"]
        faults = data["faults"]
        for m in data["models"]:
            row = [system, data["scenario"], m["code"],
                   f"{m['per_model']:.6f}", f"{m['qoe']:.6f}",
                   f"{m['rt']:.6f}", f"{m['energy']:.6f}",
                   f"{m['accuracy']:.6f}", m["executed"], m["streamed"],
                   m["dropped"], m["missed_deadlines"],
                   session["id"], f"{session['active_duration_s']:.6f}",
                   f"{data['energy_mj']:.6f}",
                   int(admission["shed"]), admission["degradation_level"],
                   f"{admission['quality_proxy']:.6f}",
                   faults["killed"], faults["retries"], faults["lost"]]
            if plan_fingerprint is not None:
                row.append(plan_fingerprint)
            writer.writerow(row)
    return buf.getvalue()


def submission(
    report: BenchmarkReport, include_breakdowns: bool = False
) -> str:
    """The official submission payload as JSON.

    The overall XRBench SCORE is mandatory; per-scenario and unit-score
    breakdowns are included only on request (Section 3.7's optionality for
    commercially-sensitive data).
    """
    payload: dict[str, Any] = {
        "benchmark": "XRBench",
        "system": report.system.describe(),
        "xrbench_score": round(report.xrbench_score, 6),
    }
    if include_breakdowns:
        payload["breakdowns"] = [
            {
                "scenario": row["scenario"],
                "overall": round(float(row["overall"]), 6),
                "rt": round(float(row["rt"]), 6),
                "energy": round(float(row["energy"]), 6),
                "qoe": round(float(row["qoe"]), 6),
            }
            for row in report.breakdown_rows()
        ]
    return json.dumps(payload, indent=2, sort_keys=True)
