"""Hierarchical score aggregation (Figure 4 / Definitions 14-16).

The scoring pipeline over a finished simulation:

    per-inference = RT x Energy x Accuracy          (completed frames)
    per-model     = mean(per-inference)             (0 if all dropped)
    per-scenario  = mean over models of per-model x QoE
    benchmark     = mean over scenarios of per-scenario

Dropped frames are excluded from the per-model mean — their cost is
charged through the QoE factor instead, exactly as Section 3.7 specifies.
The scenario-level unit-score *breakdowns* (the stacked bars of Figure 5)
are per-model means averaged across models, keeping them consistent with
the hierarchy.

Dynamic sessions (late arrival, early departure, mid-run phase changes)
need no special casing here because every denominator is *window-local*
by construction: ``spawned_frames`` counts only the frames streamed
while the session was online, so per-model QoE is normalised by the
session's **active** duration, not the full streamed duration — a tenant
online for half the run is not scored as if it dropped half its frames.
Duration-relative rates (utilization) normalise through
:attr:`~repro.runtime.SimulationResult.window_s` the same way.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime import MultiSessionResult, SimulationResult
from repro.workload import InferenceRequest

from .config import ScoreConfig
from .scores import (
    accuracy_score,
    energy_score,
    inference_score,
    qoe_score,
    realtime_score,
)

__all__ = [
    "InferenceScore",
    "ModelScore",
    "ScenarioScore",
    "score_simulation",
    "score_sessions",
]


@dataclass(frozen=True)
class InferenceScore:
    """Scored view of one completed inference."""

    request: InferenceRequest
    rt: float
    energy: float
    accuracy: float

    @property
    def overall(self) -> float:
        return inference_score(self.rt, self.energy, self.accuracy)


@dataclass(frozen=True)
class ModelScore:
    """Per-model aggregation within one scenario run."""

    model_code: str
    inference_scores: tuple[InferenceScore, ...]
    frames_streamed: int
    frames_executed: int
    frames_dropped: int
    missed_deadlines: int
    #: Helper stages (e.g. intermediate model segments) are simulated but
    #: excluded from user-facing aggregation.
    aux: bool = False

    @property
    def qoe(self) -> float:
        return qoe_score(self.frames_executed, self.frames_streamed)

    @property
    def per_model(self) -> float:
        """Mean per-inference score; zero when every frame was dropped."""
        if not self.inference_scores:
            return 0.0
        return sum(s.overall for s in self.inference_scores) / len(
            self.inference_scores
        )

    @property
    def contribution(self) -> float:
        """This model's term in the scenario score: per-model x QoE."""
        return self.per_model * self.qoe

    def mean_unit(self, name: str) -> float:
        """Mean of one unit score ('rt' / 'energy' / 'accuracy')."""
        if not self.inference_scores:
            return 0.0
        return sum(getattr(s, name) for s in self.inference_scores) / len(
            self.inference_scores
        )


@dataclass(frozen=True)
class ScenarioScore:
    """Scenario-level aggregation (Definition 15) plus breakdowns."""

    scenario_name: str
    model_scores: tuple[ModelScore, ...]

    def __post_init__(self) -> None:
        if not self.model_scores:
            raise ValueError(
                f"scenario {self.scenario_name!r} scored with no models"
            )

    @property
    def scored_models(self) -> tuple[ModelScore, ...]:
        """Models that were actually offered work during the run.

        A control-dependent model whose trigger never fired (e.g. SR when
        no keyword was uttered) streamed zero frames; it neither degraded
        nor improved the experience, so it is excluded from aggregation
        rather than counted as a zero.  Aux helper stages (intermediate
        segments of a split model) are likewise excluded: the final stage
        carries the user-visible deadline and QoE.
        """
        offered = tuple(
            m
            for m in self.model_scores
            if m.frames_streamed > 0 and not m.aux
        )
        return offered or self.model_scores

    @property
    def overall(self) -> float:
        models = self.scored_models
        return sum(m.contribution for m in models) / len(models)

    def _mean_over_models(self, fn) -> float:
        models = self.scored_models
        return sum(fn(m) for m in models) / len(models)

    @property
    def rt(self) -> float:
        return self._mean_over_models(lambda m: m.mean_unit("rt"))

    @property
    def energy(self) -> float:
        return self._mean_over_models(lambda m: m.mean_unit("energy"))

    @property
    def accuracy(self) -> float:
        return self._mean_over_models(lambda m: m.mean_unit("accuracy"))

    @property
    def qoe(self) -> float:
        return self._mean_over_models(lambda m: m.qoe)

    @property
    def total_missed_deadlines(self) -> int:
        return sum(m.missed_deadlines for m in self.model_scores)

    @property
    def total_dropped(self) -> int:
        return sum(m.frames_dropped for m in self.model_scores)

    def model(self, code: str) -> ModelScore:
        for m in self.model_scores:
            if m.model_code == code:
                return m
        raise KeyError(
            f"model {code!r} not in scenario {self.scenario_name!r}"
        )


def benchmark_score(scenario_scores: list[ScenarioScore]) -> float:
    """Definition 16: mean of scenario scores across the suite."""
    if not scenario_scores:
        raise ValueError("benchmark score over an empty suite")
    return sum(s.overall for s in scenario_scores) / len(scenario_scores)


def score_simulation(
    result: SimulationResult,
    config: ScoreConfig | None = None,
    measured_quality: dict[str, float] | None = None,
) -> ScenarioScore:
    """Score one finished simulation.

    Args:
        result: the simulation outcome.
        config: scoring knobs (k, Enmax, epsilon); defaults apply.
        measured_quality: optional measured model-quality values keyed by
            task code.  Absent entries assume the model exactly meets its
            quality goal (accuracy score 1), matching the paper's
            evaluation where all models satisfy their accuracy targets.
    """
    cfg = config or ScoreConfig()
    measured_quality = measured_quality or {}
    # One pass over the request log partitions it per model — the same
    # (order-preserving) lists result.completed(code)/dropped(code) and
    # missed_deadlines(code) would each rebuild with a full scan per
    # model, which dominated post-run accounting at fleet scale.
    completed_by: dict[str, list] = {}
    dropped_by: dict[str, int] = {}
    missed_by: dict[str, int] = {}
    for request in result.requests:
        code = request.model_code
        if request.dropped:
            dropped_by[code] = dropped_by.get(code, 0) + 1
        elif request.end_time_s is not None:
            completed_by.setdefault(code, []).append(request)
            if request.missed_deadline:
                missed_by[code] = missed_by.get(code, 0) + 1
    model_scores = []
    for sm in result.scenario.models:
        code = sm.code
        goal = sm.model.quality
        if code in measured_quality:
            acc = accuracy_score(goal, measured_quality[code], cfg.acc_epsilon)
        else:
            acc = 1.0
        inf_scores = []
        for request in completed_by.get(code, ()):
            rt = realtime_score(
                request.latency_s * 1e3, request.slack_s * 1e3, cfg.rt_k
            )
            en = energy_score(request.energy_mj or 0.0, cfg.energy_max_mj)
            inf_scores.append(
                InferenceScore(request=request, rt=rt, energy=en, accuracy=acc)
            )
        executed = len(inf_scores)
        streamed = result.num_frames(code)
        model_scores.append(
            ModelScore(
                model_code=code,
                inference_scores=tuple(inf_scores),
                frames_streamed=streamed,
                frames_executed=executed,
                frames_dropped=dropped_by.get(code, 0),
                missed_deadlines=missed_by.get(code, 0),
                aux=sm.aux,
            )
        )
    return ScenarioScore(
        scenario_name=result.scenario.name, model_scores=tuple(model_scores)
    )


def score_sessions(
    result: MultiSessionResult,
    config: ScoreConfig | None = None,
    measured_quality: dict[str, float] | None = None,
) -> list[ScenarioScore]:
    """Per-session QoE/score accounting for a multi-tenant run.

    Each tenant session is scored exactly like a standalone run — its
    own requests, its own streamed-frame denominators — so contention on
    the shared accelerator shows up as per-session QoE and RT
    degradation, ordered by session id.  Churned sessions carry
    window-local denominators (frames streamed while online), so their
    QoE is normalised by active duration; a phased session is scored
    against the merged union of its phase scenarios.
    """
    return [
        score_simulation(session, config, measured_quality)
        for session in result.sessions
    ]
