"""XRBench core: scoring metrics, aggregation, harness and reports."""

from .aggregate import (
    InferenceScore,
    ModelScore,
    ScenarioScore,
    benchmark_score,
    score_sessions,
    score_simulation,
)
from .config import (
    HarnessConfig,
    ScoreConfig,
    get_score_preset,
    register_score_preset,
)
from .export import benchmark_to_dict, scenario_to_dict, submission, to_csv
from .harness import Harness
from .report import BenchmarkReport, MultiSessionReport, ScenarioReport
from .scores import (
    accuracy_score,
    energy_score,
    inference_score,
    qoe_score,
    realtime_score,
)

__all__ = [
    "benchmark_to_dict",
    "scenario_to_dict",
    "submission",
    "to_csv",
    "BenchmarkReport",
    "Harness",
    "HarnessConfig",
    "InferenceScore",
    "ModelScore",
    "MultiSessionReport",
    "ScenarioReport",
    "ScenarioScore",
    "ScoreConfig",
    "accuracy_score",
    "benchmark_score",
    "energy_score",
    "get_score_preset",
    "inference_score",
    "qoe_score",
    "realtime_score",
    "register_score_preset",
    "score_sessions",
    "score_simulation",
]
