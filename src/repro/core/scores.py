"""Unit score functions (Box 2 / Definitions 10-13).

All four unit scores are bounded to [0, 1] so they compose by
multiplication and decompose cleanly for Pareto analysis:

* **Real-time score** — a shifted sigmoid over the inference latency
  relative to its slack: ``1 / (1 + exp(k * (Linf - Tsl)))``.  ``k``
  controls deadline sensitivity (Figure 8); the default k=15 is applied
  with latencies in *milliseconds*, which yields the near-binary
  met/missed behaviour the paper's reported breakdowns show (an
  inference 1 ms past its deadline scores ~3e-7, one 1 ms inside it
  ~0.9999997).  Figure 8 itself plots the function with second-scale
  deadlines; :func:`realtime_score` is unit-agnostic as long as latency,
  slack and ``k`` agree.
* **Energy score** — ``(Enmax - En) / Enmax`` clipped to [0, 1]
  (Definition 11, ``Enmax`` = 1500 mJ by default).
* **Accuracy score** — the ratio of measured to target model quality,
  oriented so higher is better and capped at 1.  (Box 2 prints the cap
  as ``max(1, .)``, an obvious typo for ``min``.)
* **QoE score** — the fraction of streamed frames actually processed
  (Definition 13), defined per model over a whole scenario run.
"""

from __future__ import annotations

import math

from repro.workload import MetricType, QualityGoal

from .config import ACC_EPSILON, ENERGY_MAX_MJ, RT_SCORE_K

__all__ = [
    "realtime_score",
    "energy_score",
    "accuracy_score",
    "qoe_score",
    "inference_score",
]


def realtime_score(
    latency_ms: float, slack_ms: float, k: float = RT_SCORE_K
) -> float:
    """Definition 10: sigmoid deadline score.

    Args:
        latency_ms: end-to-end inference latency ``Linf``.
        slack_ms: time window ``Tsl`` between data availability and the
            deadline.  May be negative if the data arrived after the
            deadline (the score is then ~0 for any positive latency).
        k: deadline sensitivity, ``>= 0``; 0 makes the score a flat 0.5.
    """
    if latency_ms < 0:
        raise ValueError(f"latency must be >= 0, got {latency_ms}")
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    exponent = k * (latency_ms - slack_ms)
    # Guard the exp; the sigmoid saturates far before overflow anyway.
    if exponent > 500.0:
        return 0.0
    if exponent < -500.0:
        return 1.0
    return 1.0 / (1.0 + math.exp(exponent))


def energy_score(
    energy_mj: float, energy_max_mj: float = ENERGY_MAX_MJ
) -> float:
    """Definition 11: linear energy headroom against ``Enmax``."""
    if energy_mj < 0:
        raise ValueError(f"energy must be >= 0, got {energy_mj}")
    if energy_max_mj <= 0:
        raise ValueError(f"energy_max must be > 0, got {energy_max_mj}")
    return min(1.0, max(0.0, (energy_max_mj - energy_mj) / energy_max_mj))


def accuracy_score(
    goal: QualityGoal, measured: float, epsilon: float = ACC_EPSILON
) -> float:
    """Definition 12: measured-vs-target quality ratio, capped at 1."""
    if epsilon <= 0:
        raise ValueError(f"epsilon must be > 0, got {epsilon}")
    if measured < 0:
        raise ValueError(f"measured quality must be >= 0, got {measured}")
    if goal.metric_type is MetricType.HIGHER_IS_BETTER:
        raw = measured / goal.target
    else:
        raw = goal.target / (measured + epsilon)
    return min(1.0, raw)


def qoe_score(frames_executed: int, frames_streamed: int) -> float:
    """Definition 13: processed fraction of the model's input frames."""
    if frames_executed < 0 or frames_streamed < 0:
        raise ValueError("frame counts must be >= 0")
    if frames_executed > frames_streamed:
        raise ValueError(
            f"executed {frames_executed} > streamed {frames_streamed}"
        )
    if frames_streamed == 0:
        # No work was ever offered; the experience is undegraded.
        return 1.0
    return frames_executed / frames_streamed


def inference_score(
    rt: float, energy: float, accuracy: float
) -> float:
    """Definition 14: the per-inference product of the three unit scores."""
    for name, v in (("rt", rt), ("energy", energy), ("accuracy", accuracy)):
        if not 0.0 <= v <= 1.0:
            raise ValueError(f"{name} score must be in [0, 1], got {v}")
    return rt * energy * accuracy
