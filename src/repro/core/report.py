"""Benchmark reports: scores plus the detailed statistics of Figure 2.

The harness returns reports rather than bare numbers because the paper's
output contract includes "not only the scores ... but also detailed
performance statistics such as the amount of delay over deadline, frame
drop, execution timeline, and so on" (Section 3.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.runtime import MultiSessionResult, SimulationResult, render_timeline

from .aggregate import ScenarioScore, benchmark_score

__all__ = ["ScenarioReport", "BenchmarkReport", "MultiSessionReport"]


@dataclass(frozen=True)
class ScenarioReport:
    """Everything measured for one scenario x system run."""

    simulation: SimulationResult
    score: ScenarioScore

    @property
    def overall(self) -> float:
        return self.score.overall

    def delay_over_deadline_ms(self) -> dict[str, float]:
        """Mean lateness (ms past deadline) per model, 0 if always on time."""
        out: dict[str, float] = {}
        for sm in self.simulation.scenario.models:
            late = [
                (r.end_time_s - r.deadline_s) * 1e3
                for r in self.simulation.completed(sm.code)
                if r.missed_deadline
            ]
            out[sm.code] = sum(late) / len(late) if late else 0.0
        return out

    def summary(self) -> str:
        """Multi-line human-readable report."""
        sim, score = self.simulation, self.score
        lines = [
            f"Scenario {sim.scenario.name!r} on {sim.system.describe()}",
        ]
        if sim.active_duration_s is not None:
            # Dynamic session: say which slice of the run it was online
            # for, since every per-session rate normalises by it.
            lines.append(
                f"  active window: {sim.active_duration_s:.3f}s of "
                f"{sim.duration_s:.3f}s streamed"
            )
        lines += [
            (
                f"  overall={score.overall:.3f}  rt={score.rt:.3f}  "
                f"energy={score.energy:.3f}  acc={score.accuracy:.3f}  "
                f"qoe={score.qoe:.3f}"
            ),
            (
                f"  frames: {len(sim.requests)} streamed, "
                f"{len(sim.completed())} executed, "
                f"{len(sim.dropped())} dropped "
                f"({sim.frame_drop_rate():.1%}); "
                f"{score.total_missed_deadlines} missed deadlines"
            ),
            # Total energy actually spent (occupancy-log sum, so it
            # includes dropped requests' partial segments); the bounded
            # per-inference energy score above is its Enmax-relative view.
            f"  energy: {sim.total_energy_mj():.1f} mJ spent",
            # Busy time clips to the measurement window at accounting
            # time, so this cannot exceed 100% for runtime-produced
            # results; min() only guards hand-built ones.
            f"  mean engine utilization: "
            f"{min(1.0, sim.mean_utilization()):.1%}",
        ]
        faults = sim.faults
        if faults is not None:
            recovery = faults.mean_recovery_latency_s
            line = (
                f"  faults[{faults.profile}]: {faults.killed} killed, "
                f"{faults.retries} retries, {faults.recovered} "
                f"recovered, {faults.lost} lost"
            )
            if recovery is not None:
                line += f", mean recovery {recovery * 1e3:.2f} ms"
            lines.append(line)
        for m in score.model_scores:
            lines.append(
                f"    {m.model_code}: per-model={m.per_model:.3f} "
                f"qoe={m.qoe:.3f} rt={m.mean_unit('rt'):.3f} "
                f"exec={m.frames_executed}/{m.frames_streamed} "
                f"missed={m.missed_deadlines}"
            )
        return "\n".join(lines)

    def timeline(self, width: int = 100, until_s: float | None = None) -> str:
        return render_timeline(self.simulation, width, until_s)


@dataclass(frozen=True)
class BenchmarkReport:
    """Full-suite report for one accelerator system."""

    system: object  # AcceleratorSystem; kept loose to avoid import cycles
    scenario_reports: list[ScenarioReport]

    @property
    def xrbench_score(self) -> float:
        """Definition 16: the mandatory overall XRBench score."""
        return benchmark_score([r.score for r in self.scenario_reports])

    def scenario(self, name: str) -> ScenarioReport:
        for report in self.scenario_reports:
            if report.simulation.scenario.name == name:
                return report
        raise KeyError(f"no scenario {name!r} in this report")

    def breakdown_rows(self) -> list[dict[str, float | str]]:
        """One row per scenario: the Figure 5 bar values."""
        rows: list[dict[str, float | str]] = []
        for report in self.scenario_reports:
            s = report.score
            rows.append(
                {
                    "scenario": s.scenario_name,
                    "rt": s.rt,
                    "energy": s.energy,
                    "qoe": s.qoe,
                    "overall": s.overall,
                }
            )
        return rows

    def summary(self) -> str:
        lines = [f"XRBench suite on {self.system.describe()}"]
        for row in self.breakdown_rows():
            lines.append(
                f"  {row['scenario']:<22s} overall={row['overall']:.3f} "
                f"rt={row['rt']:.3f} energy={row['energy']:.3f} "
                f"qoe={row['qoe']:.3f}"
            )
        lines.append(f"  XRBench SCORE: {self.xrbench_score:.3f}")
        return "\n".join(lines)


@dataclass(frozen=True)
class MultiSessionReport:
    """Per-session scores plus system statistics for a multi-tenant run."""

    result: MultiSessionResult
    session_reports: tuple[ScenarioReport, ...]

    @property
    def mean_overall(self) -> float:
        reports = self.session_reports
        return sum(r.overall for r in reports) / len(reports)

    @cached_property
    def _reports_by_id(self) -> dict[int, ScenarioReport]:
        return {r.simulation.session_id: r for r in self.session_reports}

    def session(self, session_id: int) -> ScenarioReport:
        """The session's report — an id-indexed dict probe, not a scan."""
        try:
            return self._reports_by_id[session_id]
        except KeyError:
            raise KeyError(
                f"no session {session_id} in this report"
            ) from None

    def summary(self) -> str:
        """Multi-line report: system totals, then one line per session."""
        res = self.result
        scenarios = sorted(
            {s.scenario.name for s in res.sessions}
        )
        lines = [
            (
                f"{res.num_sessions} sessions of {', '.join(scenarios)} "
                f"on {res.system.describe()}"
            ),
            (
                f"  mean session score: {self.mean_overall:.3f}; "
                # Busy time is window-clipped at accounting time; min()
                # only guards hand-built results.
                f"mean engine utilization: "
                f"{min(1.0, res.mean_system_utilization()):.1%}"
            ),
            f"  total energy: {res.total_energy_mj():.1f} mJ",
        ]
        if res.cost_stats is not None and res.cost_stats.lookups:
            lines.append(
                f"  cost cache: {res.cost_stats.lookups} lookups, "
                f"{res.cost_stats.hit_rate:.1%} hits"
            )
        frecords = [
            s.faults for s in res.sessions if s.faults is not None
        ]
        if frecords:
            killed = sum(f.killed for f in frecords)
            recovered = sum(f.recovered for f in frecords)
            lost = sum(f.lost for f in frecords)
            latencies = [
                latency
                for f in frecords
                for latency in f.recovery_latencies_s
            ]
            line = (
                f"  faults[{frecords[0].profile}]: {killed} killed, "
                f"{recovered} recovered, {lost} lost to faults"
            )
            if latencies:
                mean_s = sum(latencies) / len(latencies)
                line += f", mean recovery {mean_s * 1e3:.2f} ms"
            lines.append(line)
        for report in self.session_reports:
            sim, score = report.simulation, report.score
            window = (
                f" active={sim.active_duration_s:.2f}s"
                if sim.active_duration_s is not None
                else ""
            )
            fault_note = ""
            if sim.faults is not None and sim.faults.killed:
                fault_note = (
                    f" faults={sim.faults.killed}k/"
                    f"{sim.faults.recovered}r/{sim.faults.lost}l"
                )
            lines.append(
                f"    session {sim.session_id}: "
                f"overall={score.overall:.3f} rt={score.rt:.3f} "
                f"qoe={score.qoe:.3f} frames={len(sim.requests)} "
                f"dropped={len(sim.dropped())} "
                f"missed={score.total_missed_deadlines} "
                f"energy={sim.total_energy_mj():.1f}mJ{window}"
                f"{fault_note}"
            )
        return "\n".join(lines)
