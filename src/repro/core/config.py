"""Benchmark-wide configuration constants.

These mirror the defaults stated in the paper:

* ``RT_SCORE_K`` — the steepness constant ``k`` of the real-time score
  sigmoid (Definition 10, default 15; Figure 8 sweeps it).
* ``ENERGY_MAX_MJ`` — ``Enmax``, the per-inference energy budget used to
  bound the energy score into [0, 1] (Definition 11, default 1500 mJ).
* ``ACC_EPSILON`` — the ``epsilon`` guarding lower-is-better accuracy ratios
  against division by zero (Definition 12, default 1e-6).
* ``DEFAULT_DURATION_S`` — how long a scenario is simulated.  The paper's
  harness defaults to one second of streamed input.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.registry import score_presets as SCORE_PRESET_REGISTRY

RT_SCORE_K: float = 15.0
ENERGY_MAX_MJ: float = 1500.0
ACC_EPSILON: float = 1e-6
DEFAULT_DURATION_S: float = 1.0

#: Clock frequency of every simulated accelerator (Section 4.1: 1 GHz).
CLOCK_HZ: float = 1e9

#: On-chip (NoC) bandwidth shared by the PE array, bytes per cycle.
#: Section 4.1: 256 GB/s at 1 GHz -> 256 B/cycle.
ONCHIP_BW_BYTES_PER_CYCLE: float = 256.0

#: On-chip shared scratchpad size (Section 4.1: 8 MiB).
ONCHIP_MEMORY_BYTES: int = 8 * 1024 * 1024

#: Off-chip (DRAM) bandwidth, bytes per cycle.  Not stated explicitly in the
#: paper; we use LPDDR5-class 64 GB/s, a realistic mobile SoC figure.
OFFCHIP_BW_BYTES_PER_CYCLE: float = 64.0


@dataclass(frozen=True)
class ScoreConfig:
    """Tunable knobs of the scoring module.

    Instances are immutable so a config can be shared across a whole sweep
    without aliasing surprises.
    """

    rt_k: float = RT_SCORE_K
    energy_max_mj: float = ENERGY_MAX_MJ
    acc_epsilon: float = ACC_EPSILON

    def __post_init__(self) -> None:
        if self.rt_k < 0:
            raise ValueError(f"rt_k must be >= 0, got {self.rt_k}")
        if self.energy_max_mj <= 0:
            raise ValueError(
                f"energy_max_mj must be > 0, got {self.energy_max_mj}"
            )
        if self.acc_epsilon <= 0:
            raise ValueError(
                f"acc_epsilon must be > 0, got {self.acc_epsilon}"
            )


def register_score_preset(
    name: str, config: ScoreConfig | None = None, *, overwrite: bool = False
):
    """Name-address a :class:`ScoreConfig` for ``RunSpec.score_preset``."""
    return SCORE_PRESET_REGISTRY.register(name, config, overwrite=overwrite)


def get_score_preset(name: str) -> ScoreConfig:
    """Look up a scoring preset by name."""
    return SCORE_PRESET_REGISTRY.get(name)


#: The paper's defaults, plus the sensitivity points its Figure 8 / the
#: Enmax ablation explore, name-addressable for serializable specs.
register_score_preset("default", ScoreConfig())
register_score_preset("strict_rt", ScoreConfig(rt_k=30.0))
register_score_preset("lenient_rt", ScoreConfig(rt_k=5.0))
register_score_preset("low_power", ScoreConfig(energy_max_mj=750.0))


@dataclass(frozen=True)
class HarnessConfig:
    """Top-level harness settings for one benchmark run."""

    duration_s: float = DEFAULT_DURATION_S
    seed: int = 0
    scheduler: str = "latency_greedy"
    score: ScoreConfig = field(default_factory=ScoreConfig)
    #: Failure injection: probability a sensor frame is lost upstream of
    #: the device (0 disables; see LoadGenerator.frame_loss_probability).
    frame_loss_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError(
                f"duration_s must be > 0, got {self.duration_s}"
            )
        if self.seed < 0:
            raise ValueError(f"seed must be >= 0, got {self.seed}")
        if not 0.0 <= self.frame_loss_probability < 1.0:
            raise ValueError(
                f"frame_loss_probability must be in [0, 1), got "
                f"{self.frame_loss_probability}"
            )
