"""The benchmark harness: the paper's top-level entry point.

Couples the workload layer (scenarios + load generation), the runtime
(discrete-event simulation with a pluggable scheduler) and the scoring
module into single calls:

    harness = Harness()
    report = harness.run_scenario("ar_gaming", build_accelerator("J"))
    suite = harness.run_suite(build_accelerator("J"))

Results come back as :class:`repro.core.report.ScenarioReport` /
:class:`repro.core.report.BenchmarkReport`, which carry the score
breakdowns, drop/deadline statistics and the raw simulation for deeper
inspection (timelines, per-request records).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.costmodel import CostTable
from repro.hardware import AcceleratorSystem
from repro.runtime import Simulator, make_scheduler
from repro.workload import UsageScenario, benchmark_suite, get_scenario

from .aggregate import score_simulation
from .config import HarnessConfig
from .report import BenchmarkReport, ScenarioReport

__all__ = ["Harness"]


@dataclass
class Harness:
    """Runs scenarios against accelerator systems and scores them.

    A harness instance shares one cost table across runs, so sweeping 13
    accelerators x 7 scenarios re-analyses each (model, engine) pair only
    once.
    """

    config: HarnessConfig = field(default_factory=HarnessConfig)
    costs: CostTable = field(default_factory=CostTable)

    def run_scenario(
        self,
        scenario: UsageScenario | str,
        system: AcceleratorSystem,
        seed: int | None = None,
        measured_quality: dict[str, float] | None = None,
    ) -> ScenarioReport:
        """Simulate and score one scenario on one system."""
        if isinstance(scenario, str):
            scenario = get_scenario(scenario)
        simulator = Simulator(
            scenario=scenario,
            system=system,
            scheduler=make_scheduler(self.config.scheduler),
            duration_s=self.config.duration_s,
            seed=self.config.seed if seed is None else seed,
            costs=self.costs,
            frame_loss_probability=self.config.frame_loss_probability,
        )
        result = simulator.run()
        score = score_simulation(result, self.config.score, measured_quality)
        return ScenarioReport(simulation=result, score=score)

    def run_suite(
        self,
        system: AcceleratorSystem,
        seed: int | None = None,
    ) -> BenchmarkReport:
        """Run the full seven-scenario suite (Definition 5's Omega)."""
        reports = [
            self.run_scenario(scenario, system, seed=seed)
            for scenario in benchmark_suite()
        ]
        return BenchmarkReport(system=system, scenario_reports=reports)
