"""The benchmark harness: the paper's top-level entry point.

Couples the workload layer (scenarios + load generation), the runtime
(discrete-event simulation with a pluggable scheduler) and the scoring
module into single calls:

    harness = Harness()
    report = harness.run_scenario("ar_gaming", build_accelerator("J"))
    suite = harness.run_suite(build_accelerator("J"))

Results come back as :class:`repro.core.report.ScenarioReport` /
:class:`repro.core.report.BenchmarkReport`, which carry the score
breakdowns, drop/deadline statistics and the raw simulation for deeper
inspection (timelines, per-request records).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.costmodel import CachedCostTable, CostTable
from repro.hardware import AcceleratorSystem
from repro.runtime import (
    MultiScenarioSimulator,
    SessionSpec,
    Simulator,
    make_scheduler,
)
from repro.workload import UsageScenario, benchmark_suite, get_scenario

from .aggregate import score_sessions, score_simulation
from .config import HarnessConfig
from .report import BenchmarkReport, MultiSessionReport, ScenarioReport

__all__ = ["Harness"]


@dataclass
class Harness:
    """Runs scenarios against accelerator systems and scores them.

    A harness instance shares one cost table across runs, so sweeping 13
    accelerators x 7 scenarios re-analyses each (model, engine) pair only
    once.
    """

    config: HarnessConfig = field(default_factory=HarnessConfig)
    costs: CostTable = field(default_factory=CostTable)

    def run_scenario(
        self,
        scenario: UsageScenario | str,
        system: AcceleratorSystem,
        seed: int | None = None,
        measured_quality: dict[str, float] | None = None,
    ) -> ScenarioReport:
        """Simulate and score one scenario on one system."""
        if isinstance(scenario, str):
            scenario = get_scenario(scenario)
        simulator = Simulator(
            scenario=scenario,
            system=system,
            scheduler=make_scheduler(self.config.scheduler),
            duration_s=self.config.duration_s,
            seed=self.config.seed if seed is None else seed,
            costs=self.costs,
            frame_loss_probability=self.config.frame_loss_probability,
        )
        result = simulator.run()
        score = score_simulation(result, self.config.score, measured_quality)
        return ScenarioReport(simulation=result, score=score)

    def run_sessions(
        self,
        scenario: UsageScenario | str | Sequence[UsageScenario | str],
        system: AcceleratorSystem,
        num_sessions: int = 4,
        seed: int | None = None,
        granularity: str = "model",
        segments_per_model: int = 2,
        measured_quality: dict[str, float] | None = None,
    ) -> MultiSessionReport:
        """Multiplex concurrent scenario sessions onto one system.

        ``scenario`` may be a single scenario (or name) replicated across
        ``num_sessions`` tenants with consecutive seeds, or a sequence of
        per-session scenarios (whose length then sets the session count).
        Dispatch-path costs flow through a :class:`CachedCostTable`
        layered over the harness-wide table, so repeated runs share the
        analytical results while the hot loop stays a dict probe.
        """
        if isinstance(scenario, (str, UsageScenario)):
            scenarios = [scenario] * num_sessions
        else:
            scenarios = list(scenario)
        if not scenarios:
            raise ValueError("at least one session is required")
        resolved = [
            get_scenario(s) if isinstance(s, str) else s for s in scenarios
        ]
        base_seed = self.config.seed if seed is None else seed
        specs = [
            SessionSpec(
                session_id=i,
                scenario=sc,
                seed=base_seed + i,
                frame_loss_probability=self.config.frame_loss_probability,
            )
            for i, sc in enumerate(resolved)
        ]
        simulator = MultiScenarioSimulator(
            sessions=specs,
            system=system,
            scheduler=make_scheduler(self.config.scheduler),
            duration_s=self.config.duration_s,
            costs=CachedCostTable(base=self.costs),
            granularity=granularity,
            segments_per_model=segments_per_model,
        )
        result = simulator.run()
        scores = score_sessions(result, self.config.score, measured_quality)
        reports = tuple(
            ScenarioReport(simulation=session, score=score)
            for session, score in zip(result.sessions, scores)
        )
        return MultiSessionReport(result=result, session_reports=reports)

    def run_suite(
        self,
        system: AcceleratorSystem,
        seed: int | None = None,
    ) -> BenchmarkReport:
        """Run the full seven-scenario suite (Definition 5's Omega)."""
        reports = [
            self.run_scenario(scenario, system, seed=seed)
            for scenario in benchmark_suite()
        ]
        return BenchmarkReport(system=system, scenario_reports=reports)
