"""The benchmark harness: a compatibility facade over ``repro.api``.

Historically the top-level entry point, :class:`Harness` is now a thin
shim over the single execution funnel in :mod:`repro.api.execute` —
``run_scenario``/``run_sessions``/``run_suite`` delegate to the same
helpers that :func:`repro.api.execute` routes specs through, so both
surfaces produce byte-identical results by construction.

Prefer the declarative API for new code::

    from repro.api import RunSpec, execute

    report = execute(RunSpec(scenario="ar_gaming", accelerator="J"))

The facade stays for callers that hold live objects a serializable spec
cannot carry (a pre-built :class:`~repro.hardware.AcceleratorSystem`, a
mutated :class:`~repro.workload.UsageScenario`, measured quality maps).
Deprecation policy: the facade is maintained indefinitely as an API
layer, but new execution features (sweeps, workers, progress events)
land only on the ``RunSpec`` path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.costmodel import CostTable
from repro.hardware import AcceleratorSystem
from repro.workload import UsageScenario

from .config import HarnessConfig
from .report import BenchmarkReport, MultiSessionReport, ScenarioReport

__all__ = ["Harness"]


@dataclass
class Harness:
    """Runs scenarios against accelerator systems and scores them.

    A harness instance shares one cost table across runs, so sweeping 13
    accelerators x 7 scenarios re-analyses each (model, engine) pair only
    once.
    """

    config: HarnessConfig = field(default_factory=HarnessConfig)
    costs: CostTable = field(default_factory=CostTable)

    def run_scenario(
        self,
        scenario: UsageScenario | str,
        system: AcceleratorSystem,
        seed: int | None = None,
        measured_quality: dict[str, float] | None = None,
    ) -> ScenarioReport:
        """Simulate and score one scenario on one system."""
        from repro.api.execute import run_single_scenario

        return run_single_scenario(
            scenario,
            system,
            scheduler=self.config.scheduler,
            duration_s=self.config.duration_s,
            seed=self.config.seed if seed is None else seed,
            score=self.config.score,
            frame_loss=self.config.frame_loss_probability,
            costs=self.costs,
            measured_quality=measured_quality,
        )

    def run_sessions(
        self,
        scenario: UsageScenario | str | Sequence[UsageScenario | str],
        system: AcceleratorSystem,
        num_sessions: int = 4,
        seed: int | None = None,
        granularity: str = "model",
        segments_per_model: int = 2,
        measured_quality: dict[str, float] | None = None,
    ) -> MultiSessionReport:
        """Multiplex concurrent scenario sessions onto one system.

        ``scenario`` may be a single scenario (or name) replicated across
        ``num_sessions`` tenants with consecutive seeds, or a sequence of
        per-session scenarios (whose length then sets the session count).
        """
        from repro.api.execute import run_session_group

        if isinstance(scenario, (str, UsageScenario)):
            scenarios: Sequence[UsageScenario | str] = (
                [scenario] * num_sessions
            )
        else:
            scenarios = list(scenario)
        return run_session_group(
            scenarios,
            system,
            scheduler=self.config.scheduler,
            duration_s=self.config.duration_s,
            base_seed=self.config.seed if seed is None else seed,
            score=self.config.score,
            frame_loss=self.config.frame_loss_probability,
            costs=self.costs,
            granularity=granularity,
            segments_per_model=segments_per_model,
            measured_quality=measured_quality,
        )

    def run_suite(
        self,
        system: AcceleratorSystem,
        seed: int | None = None,
    ) -> BenchmarkReport:
        """Run the full seven-scenario suite (Definition 5's Omega)."""
        from repro.api.execute import run_full_suite

        return run_full_suite(
            system,
            scheduler=self.config.scheduler,
            duration_s=self.config.duration_s,
            seed=self.config.seed if seed is None else seed,
            score=self.config.score,
            frame_loss=self.config.frame_loss_probability,
            costs=self.costs,
        )
