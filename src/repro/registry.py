"""Unified name registries: one lookup mechanism for every pluggable axis.

Before this module existed, each layer grew its own ad-hoc lookup: the
workload kept a ``SCENARIOS`` dict, the runtime a ``SCHEDULERS`` dict and
the hardware layer a private ``_LAYOUTS`` table — three mechanisms with
three error-message styles and no third-party registration story.  Every
name a :class:`repro.api.RunSpec` can mention now resolves through one of
the four :class:`Registry` instances below, and user code extends any of
them through the same two-line decorator idiom::

    from repro.registry import scenarios

    @scenarios.register("my_scenario")
    def _build():  # or register the object directly
        ...

Domain-specific helpers (``register_scenario``, ``register_scheduler``,
``register_accelerator``, ``register_score_preset``) live next to the
types they register; the instances here are the shared substrate.

Lookups raise ``KeyError`` messages that list the valid names and, when
``difflib`` finds one, the nearest match — so a typo like
``"latency_greddy"`` answers with ``did you mean 'latency_greedy'?``.

Registries bootstrap lazily: the first read triggers an import of the
module that registers the built-in entries, so ``repro.registry`` itself
depends on nothing and can be imported from anywhere in the package
without cycles.
"""

from __future__ import annotations

import difflib
from typing import Any, Callable, Iterator

__all__ = [
    "Registry",
    "scenarios",
    "schedulers",
    "accelerators",
    "score_presets",
    "all_registries",
]


class Registry:
    """A named mapping with registration, suggestions and lazy bootstrap.

    ``kind`` names what is stored ("scenario", "scheduler", ...) and
    prefixes every error message.  ``bootstrap`` is a zero-argument
    callable (typically importing the module that registers the
    built-ins) invoked once before the first read or registration.
    """

    def __init__(
        self, kind: str, *, bootstrap: Callable[[], None] | None = None
    ) -> None:
        self.kind = kind
        self._items: dict[str, Any] = {}
        self._bootstrap = bootstrap
        self._booted = bootstrap is None

    # -- population ----------------------------------------------------------

    def _ensure(self) -> None:
        if not self._booted:
            # Flag first: the bootstrap import re-enters register().
            self._booted = True
            try:
                self._bootstrap()
            except BaseException:
                # Leave the registry re-bootstrappable and let the real
                # import error surface instead of masking it as empty-
                # registry KeyErrors on every later lookup.
                self._booted = False
                raise

    def register(
        self, name: str, obj: Any = None, *, overwrite: bool = False
    ):
        """Register ``obj`` under ``name``; usable as a decorator.

        ``registry.register("x", thing)`` registers directly and returns
        ``thing``; ``@registry.register("x")`` decorates.  Duplicate
        names raise ``ValueError`` unless ``overwrite=True``.
        """
        if obj is None:
            def _decorate(target: Any) -> Any:
                return self.register(name, target, overwrite=overwrite)

            return _decorate
        self._ensure()
        if name in self._items and not overwrite:
            raise ValueError(
                f"{self.kind} {name!r} is already registered "
                f"(pass overwrite=True to replace it)"
            )
        self._items[name] = obj
        return obj

    def unregister(self, name: str) -> Any:
        """Remove and return one entry (mainly for tests/plugins)."""
        self._ensure()
        try:
            return self._items.pop(name)
        except KeyError:
            raise KeyError(self._unknown(name)) from None

    # -- lookups -------------------------------------------------------------

    def _unknown(self, name: Any) -> str:
        names = sorted(self._items)
        message = f"unknown {self.kind} {name!r}; available: {names}"
        close = difflib.get_close_matches(str(name), names, n=1)
        if not close:
            # difflib is case-sensitive; catch pure case mismatches too.
            folded = str(name).casefold()
            close = [n for n in names if n.casefold() == folded][:1]
        if close:
            message += f" (did you mean {close[0]!r}?)"
        return message

    def get(self, name: str) -> Any:
        """Look up a name; unknown names raise a suggesting ``KeyError``."""
        self._ensure()
        try:
            return self._items[name]
        except KeyError:
            raise KeyError(self._unknown(name)) from None

    def names(self) -> tuple[str, ...]:
        self._ensure()
        return tuple(sorted(self._items))

    @property
    def backing(self) -> dict[str, Any]:
        """The live backing dict, exposed for the legacy module-level
        mappings (``SCENARIOS``, ``SCHEDULERS``) that alias it."""
        self._ensure()
        return self._items

    def __contains__(self, name: object) -> bool:
        self._ensure()
        return name in self._items

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self._ensure()
        return len(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, {len(self)} entries)"


def _boot_scenarios() -> None:
    import repro.workload.scenarios  # noqa: F401  (registers built-ins)


def _boot_schedulers() -> None:
    import repro.runtime.scheduler  # noqa: F401


def _boot_accelerators() -> None:
    import repro.hardware.configs  # noqa: F401


def _boot_score_presets() -> None:
    import repro.core.config  # noqa: F401


#: Usage scenarios (Table 2) — :class:`repro.workload.UsageScenario`.
scenarios = Registry("scenario", bootstrap=_boot_scenarios)

#: Scheduler policy classes — instantiable via ``make_scheduler``.
schedulers = Registry("scheduler", bootstrap=_boot_schedulers)

#: Accelerator factories — ``Callable[[int], AcceleratorSystem]`` keyed
#: by the Table-5 ids (and any user-registered designs).
accelerators = Registry("accelerator", bootstrap=_boot_accelerators)

#: Named :class:`repro.core.ScoreConfig` presets for ``RunSpec.score_preset``.
score_presets = Registry("score preset", bootstrap=_boot_score_presets)


def all_registries() -> dict[str, Registry]:
    """Every registry keyed by its kind (introspection/docs helper)."""
    return {
        r.kind: r
        for r in (scenarios, schedulers, accelerators, score_presets)
    }
