"""D001 path-exemption fixture: benchmarks measure wall time by design."""

import time
from time import perf_counter


def measure() -> float:
    start = perf_counter()
    _ = sum(range(1000))
    return time.time() - start
