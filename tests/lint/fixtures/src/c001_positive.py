"""C001 positive fixture: hot records without __slots__."""

from dataclasses import dataclass


class WorkItem:  # line 6: plain class, no __slots__
    def __init__(self, code: str) -> None:
        self.code = code


@dataclass(frozen=True)  # line 11: dataclass without slots=True
class ExecutionRecord:
    start_s: float
    end_s: float
