"""Suppression fixture: no `-- why` text, so nothing is suppressed."""

import time


def wall_deadline() -> float:
    return time.time() + 5.0  # xrlint: disable=D001
