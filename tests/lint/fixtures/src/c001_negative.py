"""C001 negative fixture: slotted hot records, and non-registry classes."""

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class WorkItem:
    code: str


class ExecutionRecord:
    __slots__ = ("start_s", "end_s")

    def __init__(self, start_s: float, end_s: float) -> None:
        self.start_s = start_s
        self.end_s = end_s


class ColdConfigBlob:  # not in the hot-record registry: no slots needed
    def __init__(self) -> None:
        self.payload = {}
