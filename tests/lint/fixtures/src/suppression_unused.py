"""Suppression fixture: a justified suppression that matches nothing."""


def clean(a: float, b: float) -> float:
    return a + b  # xrlint: disable=D001 -- fixture: stale suppression under test
