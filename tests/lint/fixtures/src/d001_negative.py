"""D001 negative fixture: simulated time only — no wall-clock reads.

Importing the modules is fine (D001 bans the *reads*); so is passing
clock values around or calling sleep-free helpers named like clocks.
"""

import time  # noqa: F401  (import alone is not a read)


def advance(now_s: float, dt_s: float) -> float:
    return now_s + dt_s


class FakeClock:
    def __init__(self) -> None:
        self.now_s = 0.0

    def time(self) -> float:  # method named time() is not time.time()
        return self.now_s


def read(clock: FakeClock) -> float:
    return clock.time()
