"""D003 scope fixture: identical set iteration *outside* runtime/ paths.

Hash-order iteration only feeds schedule tie-breaks inside runtime/
dispatch code; elsewhere the rule stays quiet.
"""


def literal_loop() -> list[int]:
    out = []
    for engine in {3, 1, 2}:
        out.append(engine)
    return out
