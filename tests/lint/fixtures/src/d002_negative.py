"""D002 negative fixture: the seeded keyed-derivation idiom is allowed."""

import hashlib

import numpy as np


def unit_roll(key: str) -> float:
    digest = hashlib.sha256(key.encode()).digest()
    rng = np.random.default_rng(int.from_bytes(digest[:8], "little"))
    return float(rng.random())  # instance method on a seeded Generator


def explicit_seed(seed: int) -> object:
    return np.random.default_rng(seed)


def seed_sequence(seed: int) -> object:
    return np.random.SeedSequence(seed)
