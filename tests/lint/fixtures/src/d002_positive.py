"""D002 positive fixture: hidden-state and unseeded RNG, every spelling."""

import random
from random import randint

import numpy as np


def stdlib_draw() -> float:
    return random.random()  # line 10: stdlib global state


def stdlib_from_import() -> int:
    return randint(0, 10)  # line 14: from-imported stdlib draw


def numpy_global() -> float:
    return float(np.random.rand())  # line 18: numpy global state


def numpy_seed_mutation() -> None:
    np.random.seed(0)  # line 22: mutates the hidden global generator


def unseeded_generator() -> object:
    return np.random.default_rng()  # line 26: entropy-seeded
