"""Suppression fixture: a justified suppression silences its finding."""

import time


def wall_deadline() -> float:
    return time.time() + 5.0  # xrlint: disable=D001 -- fixture: justified suppression under test
