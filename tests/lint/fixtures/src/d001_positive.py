"""D001 positive fixture: every banned wall-clock read, every spelling."""

import time
import datetime
from time import perf_counter
from datetime import datetime as dt


def stamp() -> float:
    return time.time()  # line 10: direct module call


def tick() -> float:
    return perf_counter()  # line 14: from-imported name


def today() -> object:
    return datetime.datetime.now()  # line 18: full dotted path


def aliased_now() -> object:
    return dt.now()  # line 22: aliased class method
