"""D002 path-exemption fixture: ad-hoc example scripts may use global RNG."""

import numpy as np


def noisy() -> float:
    return float(np.random.rand())
