"""C003 zoo fixture: the well-behaved module — exactly one builder."""

from .registry import register_model


@register_model("AA")
def build():
    return "alpha"
