"""C003 zoo fixture registry: TASK_CODES misses gamma's extra code."""

MODEL_BUILDERS: dict = {}

TASK_CODES: tuple[str, ...] = ("AA", "BB")


def register_model(task_code: str):
    def _decorate(builder):
        MODEL_BUILDERS[task_code] = builder
        return builder

    return _decorate
