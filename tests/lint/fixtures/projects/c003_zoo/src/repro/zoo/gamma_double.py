"""C003 zoo fixture: registers two builders (one per module allowed)."""

from .registry import register_model


@register_model("BB")
def build():
    return "gamma-b"


@register_model("CC")
def build_extra():
    return "gamma-c"
