"""C003 zoo fixture: a model module that forgot to register."""


def build():
    return "beta"
