"""C003 zoo fixture: re-registers alpha's task code."""

from .registry import register_model


@register_model("AA")
def build():
    return "delta"
