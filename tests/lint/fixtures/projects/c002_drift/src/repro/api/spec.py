"""C002 drift fixture: duration_s has no schema key; seed has no field."""

from dataclasses import dataclass


@dataclass(frozen=True)
class RunSpec:
    scenario: str
    duration_s: float = 1.0
