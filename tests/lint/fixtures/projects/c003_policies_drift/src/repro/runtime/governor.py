"""C003 policy-drift fixture: runtime grew a policy the spec missed."""

DVFS_POLICIES: tuple[str, ...] = ("static", "slack", "race_to_idle")
