"""C003 policy-drift fixture: the spec-side tuples."""

DVFS_POLICIES = ("static", "slack")
ADMISSION_POLICIES = ("none", "shed", "degrade")
