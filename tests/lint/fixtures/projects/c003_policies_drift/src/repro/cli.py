"""C003 policy-drift fixture: CLI choices drift both ways."""

import argparse

from repro.api.spec import ADMISSION_POLICIES, DVFS_POLICIES

WRONG_NAME = ADMISSION_POLICIES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser()
    parser.add_argument("--dvfs", choices=["static", "turbo"])
    parser.add_argument("--admission", choices=list(WRONG_NAME))
    parser.add_argument("--verbose", choices=list(DVFS_POLICIES))
    return parser
