"""C003 policy-clean fixture: choices read from the spec tuples."""

import argparse

from repro.api.spec import ADMISSION_POLICIES, DVFS_POLICIES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser()
    parser.add_argument("--dvfs", choices=list(DVFS_POLICIES))
    parser.add_argument("--admission", choices=list(ADMISSION_POLICIES))
    return parser
