"""C003 policy-clean fixture: every mirror agrees."""

DVFS_POLICIES = ("static", "slack")
ADMISSION_POLICIES = ("none", "shed")
