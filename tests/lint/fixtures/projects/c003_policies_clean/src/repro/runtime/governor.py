"""C003 policy-clean fixture: runtime mirror of the spec tuple."""

DVFS_POLICIES: tuple[str, ...] = ("static", "slack")
