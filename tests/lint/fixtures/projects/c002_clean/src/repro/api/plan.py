"""C002 clean fixture: the DispatchPlan side matches exactly."""

from dataclasses import dataclass

from .spec import RunSpec


@dataclass(frozen=True)
class DispatchPlan:
    spec: RunSpec
    mode: str
