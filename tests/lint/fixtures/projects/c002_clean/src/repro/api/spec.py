"""C002 clean fixture: fields and schema keys agree on both contracts."""

from dataclasses import dataclass
from typing import ClassVar


@dataclass(frozen=True)
class RunSpec:
    scenario: str
    duration_s: float = 1.0
    _cache: ClassVar[dict] = {}  # ClassVar is not a field
