"""D003 negative fixture: order-safe set usage in runtime code."""


def sorted_first(engines: list[int]) -> list[int]:
    out = []
    for engine in sorted(set(engines)):  # sorted() fixes the order
        out.append(engine)
    return out


def membership_only(engines: list[int], probe: int) -> bool:
    idle = set(engines)
    return probe in idle  # membership tests are order-free


def aggregates(engines: list[int]) -> tuple[int, int, int]:
    idle = set(engines)
    return len(idle), min(idle), max(idle)  # order-free consumers


def rebound_to_list(engines: list[int]) -> list[int]:
    idle = set(engines)
    idle = sorted(idle)  # rebinding to a sorted list clears set-ness
    out = []
    for engine in idle:
        out.append(engine)
    return out


def dict_iteration(costs: dict[str, float]) -> list[str]:
    return [code for code in costs]  # dicts preserve insertion order
