"""D003 positive fixture: every flagged shape of set-order iteration."""


def literal_loop() -> list[int]:
    out = []
    for engine in {3, 1, 2}:  # line 6: set literal
        out.append(engine)
    return out


def call_loop(engines: list[int]) -> list[int]:
    out = []
    for engine in set(engines):  # line 13: set() call
        out.append(engine)
    return out


def bound_name(engines: list[int]) -> list[int]:
    idle = set(engines)
    out = []
    for engine in idle:  # line 21: name bound to a set
        out.append(engine)
    return out


def annotated_name() -> list[str]:
    seen: set[str] = set()
    seen.add("a")
    return [code for code in seen]  # line 29: comprehension over a set


def materialised(engines: list[int]) -> list[int]:
    return list(set(engines))  # line 33: list() leaks hash order


def enumerated(engines: list[int]) -> list[tuple[int, int]]:
    return [pair for pair in enumerate(set(engines))]  # line 37
