"""Shared lint-test plumbing: fixture paths and a lint helper."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import run_lint

TESTS_LINT = Path(__file__).resolve().parent
FIXTURES = TESTS_LINT / "fixtures"
PROJECTS = FIXTURES / "projects"
REPO_ROOT = TESTS_LINT.parents[1]


@pytest.fixture
def repo_root() -> Path:
    return REPO_ROOT


@pytest.fixture
def lint_fixture():
    """Lint one fixture file (or dir) against the fixtures root."""

    def _lint(relpath: str, *, rules=None, root: Path = FIXTURES):
        return run_lint([root / relpath], root=root, rules=rules)

    return _lint


@pytest.fixture
def lint_project():
    """Lint one mini project tree under fixtures/projects."""

    def _lint(name: str, *, rules=None):
        root = PROJECTS / name
        return run_lint([root / "src"], root=root, rules=rules)

    return _lint
