"""Fixture-backed positive + negative coverage for every shipped rule."""

from __future__ import annotations

import pytest

from repro.lint import resolve_rules


def _rules_hit(report):
    return {f.rule for f in report.unsuppressed}


def _only(report, rule_id):
    """All unsuppressed findings, asserting they belong to one rule."""
    assert _rules_hit(report) <= {rule_id}, report.render()
    return [f for f in report.unsuppressed if f.rule == rule_id]


# ---------------------------------------------------------------------------
# D001 no-wall-clock
# ---------------------------------------------------------------------------


def test_d001_positive_flags_every_spelling(lint_fixture):
    report = lint_fixture("src/d001_positive.py")
    findings = _only(report, "D001")
    assert [f.line for f in findings] == [10, 14, 18, 22]
    assert "time.time" in findings[0].message
    assert "time.perf_counter" in findings[1].message
    assert "datetime.datetime.now" in findings[2].message


def test_d001_negative_clean(lint_fixture):
    report = lint_fixture("src/d001_negative.py")
    assert not report.findings, report.render()


def test_d001_benchmarks_path_is_exempt(lint_fixture):
    report = lint_fixture("benchmarks/d001_exempt.py")
    assert not report.findings, report.render()


# ---------------------------------------------------------------------------
# D002 seeded-rng-only
# ---------------------------------------------------------------------------


def test_d002_positive_flags_global_and_unseeded_rng(lint_fixture):
    report = lint_fixture("src/d002_positive.py")
    findings = _only(report, "D002")
    assert [f.line for f in findings] == [10, 14, 18, 22, 26]
    assert "without a seed" in findings[-1].message


def test_d002_negative_seeded_idiom_is_clean(lint_fixture):
    report = lint_fixture("src/d002_negative.py")
    assert not report.findings, report.render()


def test_d002_examples_path_is_exempt(lint_fixture):
    report = lint_fixture("examples/d002_exempt.py")
    assert not report.findings, report.render()


# ---------------------------------------------------------------------------
# D003 no-order-dependent-iteration
# ---------------------------------------------------------------------------


def test_d003_positive_flags_every_shape(lint_fixture):
    report = lint_fixture("runtime/d003_positive.py")
    findings = _only(report, "D003")
    assert [f.line for f in findings] == [6, 13, 21, 29, 33, 37]


def test_d003_negative_order_safe_usage(lint_fixture):
    report = lint_fixture("runtime/d003_negative.py")
    assert not report.findings, report.render()


def test_d003_only_fires_under_runtime_paths(lint_fixture):
    report = lint_fixture("src/d003_outside_runtime.py")
    assert not report.findings, report.render()


# ---------------------------------------------------------------------------
# C001 slots-on-hot-records
# ---------------------------------------------------------------------------


def test_c001_positive_flags_unslotted_hot_records(lint_fixture):
    report = lint_fixture("src/c001_positive.py")
    findings = _only(report, "C001")
    assert len(findings) == 2
    assert "WorkItem" in findings[0].message
    assert "ExecutionRecord" in findings[1].message


def test_c001_negative_slotted_and_unregistered(lint_fixture):
    report = lint_fixture("src/c001_negative.py")
    assert not report.findings, report.render()


# ---------------------------------------------------------------------------
# C002 schema-dataclass-drift
# ---------------------------------------------------------------------------


@pytest.fixture
def c002():
    return resolve_rules(["C002"])


def test_c002_drift_reported_in_both_directions(lint_project, c002):
    report = lint_project("c002_drift", rules=c002)
    findings = _only(report, "C002")
    messages = "\n".join(f.message for f in findings)
    assert len(findings) == 2, messages
    assert "RunSpec.duration_s has no key" in messages
    assert "'seed' has no RunSpec field" in messages
    # The matching DispatchPlan contract stays quiet.
    assert "DispatchPlan" not in messages


def test_c002_clean_project(lint_project, c002):
    report = lint_project("c002_clean", rules=c002)
    assert not report.findings, report.render()


def test_c002_real_repo_contracts_hold(c002, repo_root):
    from repro.lint import run_lint

    report = run_lint([repo_root / "src" / "repro" / "api"], rules=c002)
    assert not report.unsuppressed, report.render()


# ---------------------------------------------------------------------------
# C003 registry-completeness
# ---------------------------------------------------------------------------


@pytest.fixture
def c003():
    return resolve_rules(["C003"])


def test_c003_zoo_fixture(lint_project, c003):
    report = lint_project("c003_zoo", rules=c003)
    findings = _only(report, "C003")
    messages = [f.message for f in findings]
    assert len(findings) == 4, "\n".join(messages)
    assert any("registers no model builder" in m for m in messages)
    assert any("registers 2 builders" in m for m in messages)
    assert any("already registered" in m for m in messages)
    assert any("TASK_CODES disagrees" in m for m in messages)


def test_c003_policy_drift_fixture(lint_project, c003):
    report = lint_project("c003_policies_drift", rules=c003)
    findings = _only(report, "C003")
    messages = "\n".join(f.message for f in findings)
    assert len(findings) == 4, messages
    assert "disagrees with src/repro/runtime/governor.py" in messages
    assert "schema/runspec.schema.json enum for 'dvfs_policy'" in messages
    assert "--dvfs literal choices" in messages
    assert "--admission choices come from WRONG_NAME" in messages


def test_c003_policy_clean_fixture(lint_project, c003):
    report = lint_project("c003_policies_clean", rules=c003)
    assert not report.findings, report.render()


def test_c003_real_zoo_and_policies_hold(c003, repo_root):
    from repro.lint import run_lint

    report = run_lint([repo_root / "src" / "repro" / "zoo"], rules=c003)
    assert not report.unsuppressed, report.render()
