"""Engine-level behaviour: suppressions, JSON contract, CLI, rule lookup."""

from __future__ import annotations

import io
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import all_rules, resolve_rules, run_lint
from repro.lint.cli import run as lint_cli_run

try:
    import jsonschema
except ImportError:  # pragma: no cover - optional in minimal envs
    jsonschema = None


# ---------------------------------------------------------------------------
# Suppression semantics
# ---------------------------------------------------------------------------


def test_justified_suppression_silences_and_keeps_the_finding(lint_fixture):
    report = lint_fixture("src/suppression_ok.py")
    assert report.exit_code == 0
    assert not report.unsuppressed
    [finding] = report.findings
    assert finding.rule == "D001"
    assert finding.suppressed is True
    assert finding.justification == "fixture: justified suppression under test"


def test_unjustified_suppression_does_not_suppress(lint_fixture):
    report = lint_fixture("src/suppression_unjustified.py")
    assert report.exit_code == 1
    rules_hit = sorted(f.rule for f in report.unsuppressed)
    assert rules_hit == ["D001", "X001"]
    x001 = next(f for f in report.unsuppressed if f.rule == "X001")
    assert "justification" in x001.message


def test_stale_justified_suppression_raises_x002(lint_fixture):
    report = lint_fixture("src/suppression_unused.py")
    assert report.exit_code == 1
    [finding] = report.unsuppressed
    assert finding.rule == "X002"
    assert "D001" in finding.message


def test_stale_suppression_not_flagged_when_rule_not_selected(lint_fixture):
    # The D001 suppression cannot be proven stale in a C001-only pass.
    report = lint_fixture("src/suppression_unused.py", rules=resolve_rules(["C001"]))
    assert report.exit_code == 0
    assert not report.findings, report.render()


# ---------------------------------------------------------------------------
# Report structure and JSON contract
# ---------------------------------------------------------------------------


def test_findings_are_sorted_and_paths_are_relative(lint_fixture):
    report = lint_fixture("src")
    keys = [(f.path, f.line, f.rule) for f in report.findings]
    assert keys == sorted(keys)
    assert all(not Path(f.path).is_absolute() for f in report.findings)


def test_json_report_shape(lint_fixture):
    report = lint_fixture("src/suppression_ok.py")
    payload = json.loads(report.to_json())
    assert payload["version"] == 1
    assert payload["files_checked"] == 1
    assert set(payload["summary"]) == {"total", "suppressed", "unsuppressed"}
    assert payload["summary"]["total"] == 1
    assert payload["summary"]["suppressed"] == 1
    assert payload["summary"]["unsuppressed"] == 0
    [finding] = payload["findings"]
    assert set(finding) == {"rule", "path", "line", "message", "suppressed", "justification"}
    assert finding["suppressed"] is True


def test_json_report_validates_against_schema(lint_fixture, repo_root):
    if jsonschema is None:
        pytest.skip("jsonschema not installed")
    schema = json.loads((repo_root / "schema" / "lintreport.schema.json").read_text())
    for relpath in ("src/suppression_ok.py", "src/d001_positive.py", "src/d001_negative.py"):
        payload = json.loads(lint_fixture(relpath).to_json())
        jsonschema.validate(payload, schema)


def test_exit_code_zero_only_without_unsuppressed_findings(lint_fixture):
    assert lint_fixture("src/d001_negative.py").exit_code == 0
    assert lint_fixture("src/d001_positive.py").exit_code == 1
    assert lint_fixture("src/suppression_ok.py").exit_code == 0


# ---------------------------------------------------------------------------
# Rule lookup
# ---------------------------------------------------------------------------


def test_rules_resolve_by_id_and_slug():
    by_id = resolve_rules(["D001"])
    by_slug = resolve_rules(["no-wall-clock"])
    assert by_id == by_slug
    assert by_id[0].id == "D001"


def test_unknown_rule_gets_did_you_mean():
    with pytest.raises(KeyError, match=r"did you mean 'D001'"):
        resolve_rules(["D0001"])


def test_all_rules_cover_the_documented_set():
    assert [rule.id for rule in all_rules()] == [
        "D001",
        "D002",
        "D003",
        "C001",
        "C002",
        "C003",
    ]


# ---------------------------------------------------------------------------
# CLI entry points
# ---------------------------------------------------------------------------


def _cli(args_paths, **kwargs):
    out = io.StringIO()
    code = lint_cli_run(args_paths, stdout=out, **kwargs)
    return code, out.getvalue()


def test_cli_text_output(lint_fixture, repo_root):
    fixtures = repo_root / "tests" / "lint" / "fixtures"
    code, out = _cli(
        [fixtures / "src" / "d001_positive.py"],
        output_format="text",
        rule_names=None,
        root=fixtures,
        list_rules=False,
    )
    assert code == 1
    assert "D001" in out
    assert "d001_positive.py:10" in out


def test_cli_json_output(repo_root):
    fixtures = repo_root / "tests" / "lint" / "fixtures"
    code, out = _cli(
        [fixtures / "src" / "d001_negative.py"],
        output_format="json",
        rule_names=None,
        root=fixtures,
        list_rules=False,
    )
    assert code == 0
    payload = json.loads(out)
    assert payload["summary"]["total"] == 0


def test_cli_unknown_rule_is_usage_error(repo_root, capsys):
    fixtures = repo_root / "tests" / "lint" / "fixtures"
    code, _ = _cli(
        [fixtures / "src"],
        output_format="text",
        rule_names=["D0001"],
        root=fixtures,
        list_rules=False,
    )
    assert code == 2
    err = capsys.readouterr().err
    assert "did you mean 'D001'" in err


def test_cli_list_rules(repo_root):
    code, out = _cli(
        [],
        output_format="text",
        rule_names=None,
        root=repo_root,
        list_rules=True,
    )
    assert code == 0
    for rule_id in ("D001", "D002", "D003", "C001", "C002", "C003"):
        assert rule_id in out


def test_python_dash_m_entry_point(repo_root):
    fixtures = repo_root / "tests" / "lint" / "fixtures"
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.lint",
            "--root",
            str(fixtures),
            "--format",
            "json",
            str(fixtures / "src" / "d001_negative.py"),
        ],
        capture_output=True,
        text=True,
        cwd=repo_root,
        env={"PYTHONPATH": str(repo_root / "src"), "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["summary"]["unsuppressed"] == 0


def test_run_lint_defaults_to_src_repro(repo_root):
    report = run_lint(root=repo_root)
    assert report.files_checked > 50
    assert all(f.path.startswith("src/repro/") for f in report.findings)
