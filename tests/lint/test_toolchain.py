"""The external-tool gate: mypy ratchet semantics, and real mypy/ruff
runs when those tools are present (CI installs them; the dev container
does not, so those cases skip)."""

from __future__ import annotations

import importlib.util
import shutil
import subprocess
import sys

import pytest

RATCHET = "tools/mypy_ratchet.py"


def _ratchet(repo_root, stdin: str, *args: str, pin: str | None = None, tmp_path=None):
    """Run the ratchet script with a throw-away pin file."""
    import shutil as _shutil

    workdir = tmp_path / "tools"
    workdir.mkdir(parents=True)
    script = workdir / "mypy_ratchet.py"
    _shutil.copy(repo_root / RATCHET, script)
    if pin is not None:
        (workdir / "mypy_ratchet.txt").write_text(pin)
    return subprocess.run(
        [sys.executable, str(script), *args],
        input=stdin,
        capture_output=True,
        text=True,
    )


MYPY_OK = "Success: no issues found in 80 source files\n"
MYPY_TWO_ERRORS = (
    "src/repro/eval/tables.py:10: error: thing  [misc]\n"
    "src/repro/eval/tables.py:20: error: other thing  [misc]\n"
    "Found 2 errors in 1 file (checked 80 source files)\n"
)
MYPY_STRICT_ERROR = (
    "src/repro/api/spec.py:12: error: strict-tier breakage  [misc]\n"
    "Found 1 error in 1 file (checked 80 source files)\n"
)


def test_ratchet_passes_at_or_below_ceiling(repo_root, tmp_path):
    proc = _ratchet(repo_root, MYPY_TWO_ERRORS, pin="2\n", tmp_path=tmp_path)
    assert proc.returncode == 0, proc.stdout
    proc = _ratchet(repo_root, MYPY_OK, pin="2\n", tmp_path=tmp_path / "b")
    assert proc.returncode == 0
    assert "ratchet the pin down" in proc.stdout


def test_ratchet_fails_above_ceiling(repo_root, tmp_path):
    proc = _ratchet(repo_root, MYPY_TWO_ERRORS, pin="1\n", tmp_path=tmp_path)
    assert proc.returncode == 1
    assert "exceeds the pinned ceiling" in proc.stdout


def test_ratchet_strict_tier_errors_always_fail(repo_root, tmp_path):
    # Even in bootstrap mode, strict-tier modules get zero grace.
    proc = _ratchet(repo_root, MYPY_STRICT_ERROR, pin="bootstrap\n", tmp_path=tmp_path)
    assert proc.returncode == 1
    assert "strict-tier" in proc.stdout


def test_ratchet_bootstrap_mode_reports_and_passes(repo_root, tmp_path):
    proc = _ratchet(repo_root, MYPY_TWO_ERRORS, pin="bootstrap\n", tmp_path=tmp_path)
    assert proc.returncode == 0
    assert "observed 2 error(s)" in proc.stdout


def test_ratchet_update_rewrites_pin(repo_root, tmp_path):
    proc = _ratchet(repo_root, MYPY_TWO_ERRORS, "--update", pin="9\n", tmp_path=tmp_path)
    assert proc.returncode == 0
    assert (tmp_path / "tools" / "mypy_ratchet.txt").read_text() == "2\n"


# ---------------------------------------------------------------------------
# Real tool runs (CI only — skipped where the tools are absent)
# ---------------------------------------------------------------------------


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean(repo_root):
    proc = subprocess.run(
        ["ruff", "check", "src", "tests", "benchmarks", "examples", "tools"],
        capture_output=True,
        text=True,
        cwd=repo_root,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None, reason="mypy not installed"
)
def test_mypy_strict_tier_clean(repo_root):
    mypy_proc = subprocess.run(
        [sys.executable, "-m", "mypy", "src/repro"],
        capture_output=True,
        text=True,
        cwd=repo_root,
    )
    gate = subprocess.run(
        [sys.executable, RATCHET],
        input=mypy_proc.stdout,
        capture_output=True,
        text=True,
        cwd=repo_root,
    )
    assert gate.returncode == 0, gate.stdout + mypy_proc.stdout
