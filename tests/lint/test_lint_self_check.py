"""Tier-1 self-check: the repo's own runtime must lint clean.

This is the in-process equivalent of the gating CI step
``xrbench lint src/repro``: every determinism and contract rule runs over
the shipped sources and zero unsuppressed findings are tolerated.
"""

from __future__ import annotations

from repro.lint import run_lint


def test_src_repro_has_zero_unsuppressed_findings(repo_root):
    report = run_lint(root=repo_root)
    assert report.files_checked > 0
    assert not report.unsuppressed, "\n" + report.render()
    assert report.exit_code == 0


def test_every_suppression_in_src_repro_is_justified(repo_root):
    report = run_lint(root=repo_root)
    for finding in report.findings:
        if finding.suppressed:
            assert finding.justification, (
                f"{finding.path}:{finding.line} suppresses {finding.rule} "
                "without a justification"
            )
