"""Tests for the Table 5 accelerator configurations."""

from __future__ import annotations

import pytest

from repro.costmodel import Dataflow
from repro.hardware import (
    ACCELERATOR_IDS,
    AcceleratorStyle,
    PE_BUDGETS,
    all_accelerators,
    build_accelerator,
)


class TestTable5:
    def test_thirteen_ids(self):
        assert ACCELERATOR_IDS == tuple("ABCDEFGHIJKLM")

    def test_pe_budgets(self):
        assert PE_BUDGETS == {"4K": 4096, "8K": 8192}

    @pytest.mark.parametrize("acc_id", ACCELERATOR_IDS)
    def test_pes_partition_exactly(self, acc_id):
        for pes in (4096, 8192):
            system = build_accelerator(acc_id, pes)
            assert sum(s.num_pes for s in system.subs) == pes

    def test_styles(self):
        styles = {a: build_accelerator(a).style for a in ACCELERATOR_IDS}
        assert styles["A"] == AcceleratorStyle.FDA
        assert styles["B"] == AcceleratorStyle.FDA
        assert styles["C"] == AcceleratorStyle.FDA
        for a in "DEFGHI":
            assert styles[a] == AcceleratorStyle.SFDA, a
        for a in "JKLM":
            assert styles[a] == AcceleratorStyle.HDA, a

    def test_fda_dataflows(self):
        assert build_accelerator("A").subs[0].dataflow is Dataflow.WS
        assert build_accelerator("B").subs[0].dataflow is Dataflow.OS
        assert build_accelerator("C").subs[0].dataflow is Dataflow.RS

    def test_dual_sfda(self):
        for acc_id, df in (("D", Dataflow.WS), ("E", Dataflow.OS),
                           ("F", Dataflow.RS)):
            system = build_accelerator(acc_id)
            assert system.num_subs == 2
            assert all(s.dataflow is df for s in system.subs)
            assert all(s.num_pes == 2048 for s in system.subs)

    def test_quad_sfda(self):
        for acc_id, df in (("G", Dataflow.WS), ("H", Dataflow.OS),
                           ("I", Dataflow.RS)):
            system = build_accelerator(acc_id)
            assert system.num_subs == 4
            assert all(s.dataflow is df for s in system.subs)
            assert all(s.num_pes == 1024 for s in system.subs)

    def test_j_is_balanced_hda(self):
        system = build_accelerator("J")
        assert [s.dataflow for s in system.subs] == [Dataflow.WS, Dataflow.OS]
        assert [s.num_pes for s in system.subs] == [2048, 2048]

    def test_k_is_ws_heavy(self):
        system = build_accelerator("K")
        assert [s.num_pes for s in system.subs] == [3072, 1024]
        assert system.subs[0].dataflow is Dataflow.WS

    def test_l_is_os_heavy(self):
        system = build_accelerator("L")
        assert [s.num_pes for s in system.subs] == [1024, 3072]
        assert system.subs[1].dataflow is Dataflow.OS

    def test_m_is_quad_hda(self):
        system = build_accelerator("M")
        assert [s.dataflow for s in system.subs] == [
            Dataflow.WS, Dataflow.OS, Dataflow.WS, Dataflow.OS,
        ]
        assert all(s.num_pes == 2048 for s in build_accelerator("M", 8192).subs)

    def test_all_accelerators(self):
        systems = all_accelerators(4096)
        assert [s.acc_id for s in systems] == list(ACCELERATOR_IDS)

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError, match="unknown accelerator"):
            build_accelerator("Z")

    def test_indivisible_budget_raises(self):
        with pytest.raises(ValueError, match="not divisible"):
            build_accelerator("K", 4095)
