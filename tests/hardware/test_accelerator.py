"""Tests for accelerator systems and engines."""

from __future__ import annotations

import pytest

from repro.costmodel import CostTable, Dataflow
from repro.hardware import AcceleratorStyle, AcceleratorSystem, SubAccelerator


def sub(i=0, df=Dataflow.WS, pes=1024):
    return SubAccelerator(index=i, dataflow=df, num_pes=pes)


class TestSubAccelerator:
    def test_describe(self):
        assert sub().describe() == "WS@1024PE"

    def test_cost_model_binding(self):
        cm = sub(df=Dataflow.RS, pes=2048).cost_model()
        assert cm.dataflow is Dataflow.RS
        assert cm.num_pes == 2048

    def test_rejects_bad_index(self):
        with pytest.raises(ValueError, match="index"):
            SubAccelerator(index=-1, dataflow=Dataflow.WS, num_pes=1)

    def test_rejects_zero_pes(self):
        with pytest.raises(ValueError, match="num_pes"):
            SubAccelerator(index=0, dataflow=Dataflow.WS, num_pes=0)


class TestSystemValidation:
    def test_pe_sum_must_match(self):
        with pytest.raises(ValueError, match="sum"):
            AcceleratorSystem("X", AcceleratorStyle.FDA, 4096, (sub(pes=1024),))

    def test_indices_must_be_sequential(self):
        with pytest.raises(ValueError, match="indices"):
            AcceleratorSystem(
                "X", AcceleratorStyle.SFDA, 2048,
                (sub(i=0), sub(i=2, pes=1024)),
            )

    def test_fda_single_engine(self):
        with pytest.raises(ValueError, match="FDA"):
            AcceleratorSystem(
                "X", AcceleratorStyle.FDA, 2048,
                (sub(i=0), sub(i=1)),
            )

    def test_sfda_same_dataflow(self):
        with pytest.raises(ValueError, match="single dataflow"):
            AcceleratorSystem(
                "X", AcceleratorStyle.SFDA, 2048,
                (sub(i=0), sub(i=1, df=Dataflow.OS)),
            )

    def test_hda_needs_mixed_dataflows(self):
        with pytest.raises(ValueError, match="mix"):
            AcceleratorSystem(
                "X", AcceleratorStyle.HDA, 2048,
                (sub(i=0), sub(i=1)),
            )

    def test_no_engines_rejected(self):
        with pytest.raises(ValueError, match="no engines"):
            AcceleratorSystem("X", AcceleratorStyle.FDA, 0, ())


class TestSystemQueries:
    def system(self):
        return AcceleratorSystem(
            "J", AcceleratorStyle.HDA, 2048,
            (sub(i=0, pes=1024), sub(i=1, df=Dataflow.OS, pes=1024)),
        )

    def test_num_subs(self):
        assert self.system().num_subs == 2

    def test_model_cost_per_engine(self):
        system = self.system()
        table = CostTable()
        ws = system.model_cost(table, "KD", 0)
        os_ = system.model_cost(table, "KD", 1)
        assert ws.dataflow is Dataflow.WS
        assert os_.dataflow is Dataflow.OS

    def test_describe(self):
        text = self.system().describe()
        assert "HDA" in text and "WS@1024PE" in text and "OS@1024PE" in text
