"""Tests for quantisation simulation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import (
    GraphBuilder,
    GraphExecutor,
    QuantizedExecutor,
    dequantize_tensor,
    quality_proxy,
    quantize_tensor,
)
from repro.workload import MetricType, QualityGoal
from repro.zoo import build_model


class TestQuantizeTensor:
    def test_roundtrip_error_bounded(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(1000)
        q, scale = quantize_tensor(x, bits=8)
        back = dequantize_tensor(q, scale)
        assert np.max(np.abs(back - x)) <= scale / 2 + 1e-12

    def test_lower_bits_coarser(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(1000)
        err8 = np.abs(dequantize_tensor(*quantize_tensor(x, 8)) - x).mean()
        err4 = np.abs(dequantize_tensor(*quantize_tensor(x, 4)) - x).mean()
        assert err4 > err8

    def test_zero_tensor(self):
        q, scale = quantize_tensor(np.zeros(10))
        assert np.all(q == 0)
        assert scale == 1.0

    def test_integer_range(self):
        rng = np.random.default_rng(1)
        q, _ = quantize_tensor(rng.standard_normal(500) * 100, bits=8)
        assert q.max() <= 127 and q.min() >= -128

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError, match="bits"):
            quantize_tensor(np.ones(3), bits=1)
        with pytest.raises(ValueError, match="bits"):
            quantize_tensor(np.ones(3), bits=32)

    def test_dequantize_rejects_bad_scale(self):
        with pytest.raises(ValueError, match="scale"):
            dequantize_tensor(np.ones(3, dtype=np.int32), 0.0)

    @settings(max_examples=30)
    @given(
        bits=st.sampled_from([4, 8, 12]),
        seed=st.integers(0, 100),
    )
    def test_quantisation_preserves_sign(self, bits, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(100)
        back = dequantize_tensor(*quantize_tensor(x, bits))
        # Nonzero values keep their sign (symmetric quantisation).
        big = np.abs(x) > np.abs(x).max() / 2 ** (bits - 2)
        assert np.all(np.sign(back[big]) == np.sign(x[big]))


def tiny_graph():
    b = GraphBuilder("qtiny", (3, 16, 16))
    b.conv(8, 3)
    b.conv(8, 3)
    b.global_pool()
    b.fc(4)
    return b.build()


class TestQuantizedExecutor:
    def test_output_close_to_float(self):
        g = tiny_graph()
        x = np.random.default_rng(0).standard_normal(g.input_shape)
        ref = GraphExecutor(g, seed=0).run(x)
        quant = QuantizedExecutor(g, seed=0, bits=8).run(x)
        rel = np.linalg.norm(quant - ref) / (np.linalg.norm(ref) + 1e-12)
        assert rel < 0.1

    def test_lower_bits_larger_error(self):
        g = tiny_graph()
        x = np.random.default_rng(0).standard_normal(g.input_shape)
        ref = GraphExecutor(g, seed=0).run(x)
        err = {}
        for bits in (8, 3):
            q = QuantizedExecutor(g, seed=0, bits=bits).run(x)
            err[bits] = float(np.linalg.norm(q - ref))
        assert err[3] > err[8]

    def test_activation_quantisation_adds_error(self):
        g = tiny_graph()
        x = np.random.default_rng(0).standard_normal(g.input_shape)
        ref = GraphExecutor(g, seed=0).run(x)
        w_only = QuantizedExecutor(g, seed=0, bits=4).run(x)
        w_and_a = QuantizedExecutor(
            g, seed=0, bits=4, quantize_activations=True
        ).run(x)
        assert np.linalg.norm(w_and_a - ref) >= np.linalg.norm(w_only - ref)

    def test_deterministic(self):
        g = tiny_graph()
        a = QuantizedExecutor(g, seed=3).run()
        b = QuantizedExecutor(g, seed=3).run()
        np.testing.assert_allclose(a, b)


class TestQualityProxy:
    hib = QualityGoal("Accuracy", 85.6, MetricType.HIGHER_IS_BETTER)
    lib = QualityGoal("WER", 8.79, MetricType.LOWER_IS_BETTER)

    def test_int8_meets_table1_goal_on_kd(self):
        # The paper's 95%-of-published targets are designed so that int8
        # quantisation still passes.
        graph = build_model("KD")
        measured = quality_proxy(graph, self.hib, bits=8)
        assert self.hib.is_met(measured)

    def test_extreme_quantisation_fails_goal(self):
        graph = build_model("KD")
        measured = quality_proxy(
            graph, self.hib, bits=2, quantize_activations=True
        )
        assert not self.hib.is_met(measured)

    def test_lib_direction(self):
        graph = tiny_graph()
        m8 = quality_proxy(graph, self.lib, bits=8)
        m3 = quality_proxy(graph, self.lib, bits=3)
        assert m3 >= m8  # lower-is-better metric degrades upward


#: Pinned int8 quality_proxy value per zoo task.  These are regression
#: anchors for the admission plane's quality-retention pricing: weight
#: seeding is a stable sha256 hash of (graph, layer, seed), so the proxy
#: is reproducible across processes and platforms — any drift here means
#: the zoo graphs, the executor's weight seeding, or the quantisation
#: path changed, and every committed quality_proxy/quality_retention
#: number changes with it.
PINNED_INT8_PROXY = {
    "AS": 61.94880735626379,
    "DE": 22.204949386467625,
    "DR": 76.68636741582499,
    "ES": 91.49516064440611,
    "GE": 3.367270403848324,
    "HT": 0.9716116751990778,
    "KD": 89.84029338783526,
    "OD": 22.51034911272451,
    "PD": 0.36251033929606324,
    "SR": 10.231910209603836,
    "SS": 75.47266839610144,
}


class TestPinnedProxyValues:
    def test_pins_cover_every_unit_model(self):
        from repro.workload.models import UNIT_MODELS

        assert set(PINNED_INT8_PROXY) == set(UNIT_MODELS)

    @pytest.mark.parametrize("code", sorted(PINNED_INT8_PROXY))
    def test_int8_proxy_matches_pin(self, code):
        from repro.workload.models import UNIT_MODELS

        model = UNIT_MODELS[code]
        measured = quality_proxy(model.graph, model.quality, bits=8)
        assert measured == pytest.approx(
            PINNED_INT8_PROXY[code], rel=1e-4
        )
