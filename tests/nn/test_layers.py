"""Tests for layer specs: shapes, MACs, params, conv-dim mapping."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.nn import ConvDims, LayerSpec, OpType
from repro.nn.layers import (
    attention_macs,
    ceil_div,
    conv_out_hw,
    human_count,
)


class TestConvOutHw:
    def test_same_padding(self):
        assert conv_out_hw(32, 32, 3, 1, 1) == (32, 32)

    def test_stride2(self):
        assert conv_out_hw(32, 32, 3, 2, 1) == (16, 16)

    def test_collapse_raises(self):
        with pytest.raises(ValueError, match="collapses"):
            conv_out_hw(1, 1, 5, 1, 0)

    @given(
        h=st.integers(8, 256), k=st.sampled_from([1, 3, 5, 7]),
        s=st.sampled_from([1, 2]),
    )
    def test_output_positive_with_same_padding(self, h: int, k: int, s: int):
        oh, ow = conv_out_hw(h, h, k, s, k // 2)
        assert oh >= 1 and ow >= 1


class TestConvDims:
    def test_macs(self):
        dims = ConvDims(k=16, c=8, y=10, x=10, r=3, s=3)
        assert dims.macs == 16 * 8 * 100 * 9

    def test_grouped_macs(self):
        dims = ConvDims(k=1, c=1, y=10, x=10, r=3, s=3, groups=32)
        assert dims.macs == 32 * 100 * 9

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="ConvDims"):
            ConvDims(k=0, c=1, y=1, x=1, r=1, s=1)


def conv_layer(cin=8, cout=16, hw=32, kernel=3, stride=1, groups=1) -> LayerSpec:
    oh = (hw + 2 * (kernel // 2) - kernel) // stride + 1
    return LayerSpec(
        name="conv", op=OpType.CONV2D,
        in_shape=(cin, hw, hw), out_shape=(cout, oh, oh),
        kernel=kernel, stride=stride, padding=kernel // 2, groups=groups,
    )


class TestLayerSpecValidation:
    def test_requires_name(self):
        with pytest.raises(ValueError, match="name"):
            LayerSpec(name="", op=OpType.ADD, in_shape=(1, 1, 1),
                      out_shape=(1, 1, 1))

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError, match="shape"):
            LayerSpec(name="x", op=OpType.ADD, in_shape=(0, 1, 1),
                      out_shape=(1, 1, 1))

    def test_rejects_bad_stride(self):
        with pytest.raises(ValueError, match="stride"):
            LayerSpec(name="x", op=OpType.CONV2D, in_shape=(1, 4, 4),
                      out_shape=(1, 4, 4), kernel=3, stride=0)


class TestMacCounting:
    def test_conv_macs(self):
        layer = conv_layer(cin=8, cout=16, hw=32, kernel=3)
        assert layer.macs == 16 * 8 * 32 * 32 * 9

    def test_dwconv_macs(self):
        layer = LayerSpec(
            name="dw", op=OpType.DWCONV2D, in_shape=(32, 16, 16),
            out_shape=(32, 16, 16), kernel=3, padding=1, groups=32,
        )
        assert layer.macs == 32 * 16 * 16 * 9

    def test_fc_macs(self):
        layer = LayerSpec(
            name="fc", op=OpType.FC, in_shape=(128, 1, 1),
            out_shape=(10, 1, 1),
        )
        assert layer.macs == 1280

    def test_attention_macs(self):
        layer = LayerSpec(
            name="attn", op=OpType.ATTENTION, in_shape=(64, 1, 16),
            out_shape=(64, 1, 16), heads=4,
        )
        expected = attention_macs(seq=16, dim=64)
        # The GEMM-equivalent mapping rounds the reduction dim.
        assert layer.macs == pytest.approx(expected, rel=0.05)

    def test_memory_ops_have_zero_macs(self):
        for op in (OpType.MAXPOOL, OpType.UPSAMPLE, OpType.ADD,
                   OpType.CONCAT, OpType.RESHAPE):
            layer = LayerSpec(name="m", op=op, in_shape=(4, 8, 8),
                              out_shape=(4, 8, 8))
            assert layer.macs == 0

    def test_flops_are_twice_macs(self):
        layer = conv_layer()
        assert layer.flops == 2 * layer.macs


class TestParamCounting:
    def test_conv_params(self):
        layer = conv_layer(cin=8, cout=16, kernel=3)
        assert layer.params == 8 * 16 * 9 + 16

    def test_dwconv_params(self):
        layer = LayerSpec(
            name="dw", op=OpType.DWCONV2D, in_shape=(32, 16, 16),
            out_shape=(32, 16, 16), kernel=3, padding=1, groups=32,
        )
        assert layer.params == 32 * 9 + 32

    def test_fc_params(self):
        layer = LayerSpec(name="fc", op=OpType.FC, in_shape=(128, 1, 1),
                          out_shape=(10, 1, 1))
        assert layer.params == 128 * 10 + 10

    def test_attention_params(self):
        layer = LayerSpec(name="a", op=OpType.ATTENTION, in_shape=(64, 1, 8),
                          out_shape=(64, 1, 8))
        assert layer.params == 4 * (64 * 64 + 64)

    def test_layernorm_params(self):
        layer = LayerSpec(name="ln", op=OpType.LAYERNORM,
                          in_shape=(64, 1, 8), out_shape=(64, 1, 8))
        assert layer.params == 128

    def test_pool_has_no_params(self):
        layer = LayerSpec(name="p", op=OpType.MAXPOOL, in_shape=(4, 8, 8),
                          out_shape=(4, 4, 4), kernel=2, stride=2)
        assert layer.params == 0


class TestConvDimsMapping:
    def test_conv_maps_directly(self):
        layer = conv_layer(cin=8, cout=16, hw=32)
        dims = layer.conv_dims()
        assert (dims.k, dims.c, dims.y, dims.x) == (16, 8, 32, 32)
        assert dims.macs == layer.macs

    def test_fc_maps_to_1x1(self):
        layer = LayerSpec(name="fc", op=OpType.FC, in_shape=(128, 2, 2),
                          out_shape=(10, 1, 1))
        dims = layer.conv_dims()
        assert (dims.y, dims.x, dims.r, dims.s) == (1, 1, 1, 1)
        assert dims.c == 512  # flattened input

    def test_memory_op_maps_to_none(self):
        layer = LayerSpec(name="p", op=OpType.MAXPOOL, in_shape=(4, 8, 8),
                          out_shape=(4, 4, 4), kernel=2, stride=2)
        assert layer.conv_dims() is None

    @given(
        cin=st.integers(1, 64), cout=st.integers(1, 64),
        hw=st.integers(4, 64),
    )
    def test_dims_macs_always_match_layer_macs(self, cin, cout, hw):
        layer = conv_layer(cin=cin, cout=cout, hw=hw)
        assert layer.conv_dims().macs == layer.macs


class TestHelpers:
    def test_ceil_div(self):
        assert ceil_div(10, 3) == 4
        assert ceil_div(9, 3) == 3

    def test_ceil_div_rejects_zero(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)

    def test_human_count(self):
        assert human_count(1.5e9) == "1.50G"
        assert human_count(2e6) == "2.00M"
        assert human_count(3e3) == "3.00K"
        assert human_count(12) == "12"

    def test_bytes_accounting(self):
        layer = conv_layer(cin=8, cout=16, hw=32)
        assert layer.in_bytes == 8 * 32 * 32
        assert layer.out_bytes == 16 * 32 * 32
        assert layer.weight_bytes == layer.params
