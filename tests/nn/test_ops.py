"""Numerical tests for the numpy forward kernels."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import ops


def rng():
    return np.random.default_rng(0)


class TestIm2col:
    def test_shape(self):
        x = rng().standard_normal((3, 8, 8))
        cols, oh, ow = ops.im2col(x, kernel=3, stride=1, padding=1)
        assert cols.shape == (3 * 9, 64)
        assert (oh, ow) == (8, 8)

    def test_stride(self):
        x = rng().standard_normal((2, 8, 8))
        cols, oh, ow = ops.im2col(x, kernel=2, stride=2, padding=0)
        assert (oh, ow) == (4, 4)

    def test_values_1x1(self):
        x = rng().standard_normal((2, 4, 4))
        cols, _, _ = ops.im2col(x, kernel=1, stride=1, padding=0)
        np.testing.assert_allclose(cols, x.reshape(2, 16))

    def test_empty_output_raises(self):
        x = rng().standard_normal((1, 2, 2))
        with pytest.raises(ValueError, match="empty"):
            ops.im2col(x, kernel=5, stride=1, padding=0)


class TestConv2d:
    def test_identity_kernel(self):
        # A 1x1 conv with identity weights must return the input.
        x = rng().standard_normal((3, 5, 5))
        w = np.eye(3).reshape(3, 3, 1, 1)
        np.testing.assert_allclose(ops.conv2d(x, w), x, atol=1e-12)

    def test_matches_direct_computation(self):
        x = rng().standard_normal((2, 4, 4))
        w = rng().standard_normal((3, 2, 3, 3))
        out = ops.conv2d(x, w, stride=1, padding=1)
        # Direct (slow) convolution at one position.
        xp = np.pad(x, ((0, 0), (1, 1), (1, 1)))
        expected = float(np.sum(xp[:, 1:4, 2:5] * w[1]))
        assert out[1, 1, 2] == pytest.approx(expected)

    def test_bias(self):
        x = np.zeros((1, 3, 3))
        w = np.zeros((2, 1, 1, 1))
        out = ops.conv2d(x, w, bias=np.array([1.0, -2.0]))
        assert out[0].max() == pytest.approx(1.0)
        assert out[1].min() == pytest.approx(-2.0)

    def test_grouped_matches_per_group(self):
        x = rng().standard_normal((4, 6, 6))
        w = rng().standard_normal((4, 2, 3, 3))
        out = ops.conv2d(x, w, stride=1, padding=1, groups=2)
        g0 = ops.conv2d(x[:2], w[:2], stride=1, padding=1)
        g1 = ops.conv2d(x[2:], w[2:], stride=1, padding=1)
        np.testing.assert_allclose(out, np.concatenate([g0, g1]), atol=1e-12)

    def test_channel_mismatch_raises(self):
        x = rng().standard_normal((3, 4, 4))
        w = rng().standard_normal((2, 4, 3, 3))
        with pytest.raises(ValueError, match="channel mismatch"):
            ops.conv2d(x, w)

    def test_nonsquare_kernel_rejected(self):
        with pytest.raises(ValueError, match="square"):
            ops.conv2d(rng().standard_normal((1, 4, 4)),
                       rng().standard_normal((1, 1, 2, 3)))


class TestDwConv2d:
    def test_matches_grouped_conv(self):
        x = rng().standard_normal((4, 6, 6))
        w = rng().standard_normal((4, 3, 3))
        out = ops.dwconv2d(x, w, stride=1, padding=1)
        w_grouped = w[:, None, :, :]
        expected = ops.conv2d(x, w_grouped, stride=1, padding=1, groups=4)
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_channel_check(self):
        with pytest.raises(ValueError, match="channels"):
            ops.dwconv2d(rng().standard_normal((3, 4, 4)),
                         rng().standard_normal((2, 3, 3)))


class TestPooling:
    def test_maxpool(self):
        x = np.arange(16.0).reshape(1, 4, 4)
        out = ops.maxpool2d(x, 2)
        np.testing.assert_allclose(out, [[[5, 7], [13, 15]]])

    def test_avgpool(self):
        x = np.ones((2, 4, 4))
        np.testing.assert_allclose(ops.avgpool2d(x, 2), np.ones((2, 2, 2)))

    def test_global_avgpool(self):
        x = np.arange(8.0).reshape(2, 2, 2)
        out = ops.global_avgpool(x)
        assert out.shape == (2, 1, 1)
        assert out[0, 0, 0] == pytest.approx(1.5)
        assert out[1, 0, 0] == pytest.approx(5.5)


class TestUpsample:
    def test_nearest(self):
        x = np.array([[[1.0, 2.0], [3.0, 4.0]]])
        out = ops.upsample_nearest(x, 2)
        assert out.shape == (1, 4, 4)
        assert out[0, 0, 0] == out[0, 1, 1] == 1.0
        assert out[0, 3, 3] == 4.0

    def test_scale_one_is_identity(self):
        x = rng().standard_normal((2, 3, 3))
        np.testing.assert_allclose(ops.upsample_nearest(x, 1), x)

    def test_invalid_scale(self):
        with pytest.raises(ValueError, match="scale"):
            ops.upsample_nearest(np.ones((1, 2, 2)), 0)


class TestDeconv:
    def test_upsamples_by_stride(self):
        x = rng().standard_normal((2, 4, 4))
        w = rng().standard_normal((3, 2, 4, 4))
        out = ops.deconv2d(x, w, stride=2)
        assert out.shape == (3, 8, 8)


class TestActivationsAndNorm:
    def test_relu(self):
        np.testing.assert_allclose(
            ops.relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0]
        )

    def test_softmax_sums_to_one(self):
        x = rng().standard_normal((4, 10))
        s = ops.softmax(x, axis=-1)
        np.testing.assert_allclose(s.sum(axis=-1), np.ones(4), atol=1e-12)

    def test_softmax_stability(self):
        x = np.array([1e4, 1e4 + 1.0])
        s = ops.softmax(x)
        assert np.isfinite(s).all()

    def test_layernorm_zero_mean_unit_var(self):
        x = rng().standard_normal((8, 4, 4))
        out = ops.layernorm(x, np.ones(8), np.zeros(8))
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-3)

    def test_layernorm_affine(self):
        x = rng().standard_normal((4, 2, 2))
        gamma, beta = np.full(4, 2.0), np.full(4, 3.0)
        base = ops.layernorm(x, np.ones(4), np.zeros(4))
        out = ops.layernorm(x, gamma, beta)
        np.testing.assert_allclose(out, base * 2.0 + 3.0, atol=1e-12)


class TestAttention:
    def test_shape_preserved(self):
        x = rng().standard_normal((16, 1, 8))
        w = [rng().standard_normal((16, 16)) for _ in range(4)]
        out = ops.multihead_attention(x, *w, heads=4)
        assert out.shape == (16, 1, 8)

    def test_heads_must_divide_dim(self):
        x = rng().standard_normal((10, 1, 4))
        w = [np.eye(10)] * 4
        with pytest.raises(ValueError, match="divisible"):
            ops.multihead_attention(x, *w, heads=3)

    def test_single_token_is_value_projection(self):
        # With one token, softmax(QK^T) == 1, so out = Wo @ Wv @ x.
        x = rng().standard_normal((8, 1, 1))
        wq, wk = rng().standard_normal((8, 8)), rng().standard_normal((8, 8))
        wv, wo = rng().standard_normal((8, 8)), rng().standard_normal((8, 8))
        out = ops.multihead_attention(x, wq, wk, wv, wo, heads=2)
        expected = (wo @ (wv @ x[:, 0, 0]))
        np.testing.assert_allclose(out[:, 0, 0], expected, atol=1e-10)


class TestRoiAlign:
    def test_shape_contract(self):
        x = rng().standard_normal((8, 14, 28))
        out = ops.roialign_fold(x, rois=5, out_size=7)
        assert out.shape == (8, 7, 35)

    def test_crops_come_from_input(self):
        x = rng().standard_normal((2, 16, 16))
        out = ops.roialign_fold(x, rois=1, out_size=7)
        np.testing.assert_allclose(out[:, :, :7], x[:, 0:7, 0:7])


class TestOpProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        c=st.integers(1, 6), hw=st.integers(4, 16),
        k=st.sampled_from([1, 3]), cout=st.integers(1, 6),
    )
    def test_conv_shape_contract(self, c, hw, k, cout):
        x = rng().standard_normal((c, hw, hw))
        w = rng().standard_normal((cout, c, k, k))
        out = ops.conv2d(x, w, stride=1, padding=k // 2)
        assert out.shape == (cout, hw, hw)

    @settings(max_examples=25, deadline=None)
    @given(c=st.integers(1, 8), hw=st.sampled_from([4, 8, 16]))
    def test_conv_linearity(self, c, hw):
        # conv(a*x) == a*conv(x): convolution is linear.
        x = rng().standard_normal((c, hw, hw))
        w = rng().standard_normal((3, c, 3, 3))
        out1 = ops.conv2d(x * 2.0, w, padding=1)
        out2 = ops.conv2d(x, w, padding=1) * 2.0
        np.testing.assert_allclose(out1, out2, atol=1e-9)
