"""Tests for model graphs and the builder."""

from __future__ import annotations

import pytest

from repro.nn import GraphBuilder, LayerSpec, ModelGraph, OpType


class TestBuilderShapes:
    def test_conv_tracks_shape(self):
        b = GraphBuilder("m", (3, 32, 32))
        b.conv(16, 3, 2)
        assert b.shape == (16, 16, 16)

    def test_dwconv_preserves_channels(self):
        b = GraphBuilder("m", (8, 16, 16))
        b.dwconv(3)
        assert b.shape == (8, 16, 16)

    def test_pool_halves(self):
        b = GraphBuilder("m", (8, 16, 16))
        b.pool(2)
        assert b.shape == (8, 8, 8)

    def test_global_pool(self):
        b = GraphBuilder("m", (8, 16, 16))
        b.global_pool()
        assert b.shape == (8, 1, 1)

    def test_fc_flattens(self):
        b = GraphBuilder("m", (8, 4, 4))
        b.fc(10)
        assert b.shape == (10, 1, 1)

    def test_upsample(self):
        b = GraphBuilder("m", (8, 4, 4))
        b.upsample(2)
        assert b.shape == (8, 8, 8)

    def test_deconv(self):
        b = GraphBuilder("m", (8, 4, 4))
        b.deconv(4, 4, 2)
        assert b.shape == (4, 8, 8)

    def test_concat_adds_channels(self):
        b = GraphBuilder("m", (8, 16, 16))
        b.conv(8, 3, name="skip")
        b.conv(8, 3)
        b.concat("skip", 8)
        assert b.shape == (16, 16, 16)

    def test_reshape(self):
        b = GraphBuilder("m", (8, 4, 4))
        b.reshape((8, 1, 16))
        assert b.shape == (8, 1, 16)

    def test_reshape_rejects_bad_count(self):
        b = GraphBuilder("m", (8, 4, 4))
        with pytest.raises(ValueError, match="element count"):
            b.reshape((8, 1, 15))

    def test_attention_preserves_shape(self):
        b = GraphBuilder("m", (64, 1, 16))
        b.attention(8)
        assert b.shape == (64, 1, 16)


class TestCompositeBlocks:
    def test_residual_block_same_channels(self):
        b = GraphBuilder("m", (16, 8, 8))
        b.conv(16, 3, name="pre")
        b.residual_block(16)
        graph = b.build()
        adds = [layer for layer in graph.layers if layer.op is OpType.ADD]
        assert len(adds) == 1
        assert adds[0].residual_from == "pre"

    def test_residual_block_stride_uses_internal_skip(self):
        b = GraphBuilder("m", (16, 8, 8))
        b.conv(16, 3)
        b.residual_block(32, stride=2)
        graph = b.build()
        assert graph.out_shape == (32, 4, 4)

    def test_inverted_residual_with_skip(self):
        b = GraphBuilder("m", (16, 8, 8))
        b.conv(16, 1)
        b.inverted_residual(16, expand=4, stride=1)
        graph = b.build()
        assert any(layer.op is OpType.ADD for layer in graph.layers)
        assert graph.out_shape == (16, 8, 8)

    def test_inverted_residual_stride2_no_skip(self):
        b = GraphBuilder("m", (16, 8, 8))
        b.conv(16, 1)
        n_before = len(b._layers)
        b.inverted_residual(32, expand=4, stride=2)
        new = b._layers[n_before:]
        assert not any(layer.op is OpType.ADD for layer in new)

    def test_transformer_block_structure(self):
        b = GraphBuilder("m", (64, 1, 16))
        b.transformer_block(heads=8)
        graph = b.build()
        ops = [layer.op for layer in graph.layers]
        assert ops.count(OpType.LAYERNORM) == 2
        assert ops.count(OpType.ATTENTION) == 1
        assert ops.count(OpType.ADD) == 2
        assert graph.out_shape == (64, 1, 16)


class TestGraphValidation:
    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError, match="no layers"):
            ModelGraph("m", (1, 1, 1), ())

    def test_duplicate_names_rejected(self):
        layer = LayerSpec(name="x", op=OpType.ADD, in_shape=(1, 2, 2),
                          out_shape=(1, 2, 2), residual_from=None)
        dup = LayerSpec(name="x", op=OpType.UPSAMPLE, in_shape=(1, 2, 2),
                        out_shape=(1, 4, 4), stride=2)
        with pytest.raises(ValueError, match="duplicate"):
            ModelGraph("m", (1, 2, 2), (layer, dup))

    def test_unknown_residual_rejected(self):
        layer = LayerSpec(name="a", op=OpType.ADD, in_shape=(1, 2, 2),
                          out_shape=(1, 2, 2), residual_from="ghost")
        with pytest.raises(ValueError, match="unknown residual"):
            ModelGraph("m", (1, 2, 2), (layer,))

    def test_shape_chain_mismatch_rejected(self):
        l1 = LayerSpec(name="a", op=OpType.UPSAMPLE, in_shape=(1, 2, 2),
                       out_shape=(1, 4, 4), stride=2)
        l2 = LayerSpec(name="b", op=OpType.UPSAMPLE, in_shape=(1, 2, 2),
                       out_shape=(1, 4, 4), stride=2)
        with pytest.raises(ValueError, match="shape mismatch"):
            ModelGraph("m", (1, 2, 2), (l1, l2))


class TestGraphQueries:
    def small(self) -> ModelGraph:
        b = GraphBuilder("small", (3, 16, 16))
        b.conv(8, 3, name="c1")
        b.pool(2)
        b.conv(16, 3, name="c2")
        b.global_pool()
        b.fc(10, name="head")
        return b.build()

    def test_totals(self):
        g = self.small()
        assert g.total_macs == sum(layer.macs for layer in g.layers)
        assert g.total_params == sum(layer.params for layer in g.layers)
        assert g.num_layers == 5

    def test_compute_layers(self):
        names = [layer.name for layer in self.small().compute_layers()]
        assert names == ["c1", "c2", "head"]

    def test_conv_dims_count_matches_compute(self):
        g = self.small()
        assert len(g.conv_dims()) == len(g.compute_layers())

    def test_operator_mix(self):
        mix = self.small().operator_mix()
        assert mix["CONV2D"] == 2
        assert mix["FC"] == 1

    def test_find(self):
        g = self.small()
        assert g.find("c2").out_shape == (16, 8, 8)
        with pytest.raises(KeyError):
            g.find("missing")

    def test_summary_contains_totals(self):
        text = self.small().summary()
        assert "TOTAL" in text
        assert "small" in text

    def test_out_shape(self):
        assert self.small().out_shape == (10, 1, 1)

    def test_immutable(self):
        g = self.small()
        with pytest.raises(Exception):
            g.name = "other"  # frozen dataclass
