"""Tests for the graph executor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import GraphBuilder, GraphExecutor, random_input


def tiny_graph():
    b = GraphBuilder("tiny", (3, 16, 16))
    b.conv(8, 3, name="c1")
    b.pool(2)
    b.conv(8, 3, name="c2")
    b.add("c2")  # self-residual via prior layer output
    b.global_pool()
    b.fc(5, name="head")
    return b.build()


def skip_graph():
    b = GraphBuilder("skippy", (2, 8, 8))
    b.conv(4, 3, name="enc")
    b.conv(4, 3, name="mid")
    b.add("enc")
    b.concat("enc", 4)
    b.conv(3, 1, name="out")
    return b.build()


class TestExecution:
    def test_output_shape(self):
        out = GraphExecutor(tiny_graph()).run()
        assert out.shape == (5, 1, 1)

    def test_deterministic_given_seed(self):
        g = tiny_graph()
        a = GraphExecutor(g, seed=1).run()
        b = GraphExecutor(g, seed=1).run()
        np.testing.assert_allclose(a, b)

    def test_seed_changes_weights(self):
        g = tiny_graph()
        x = random_input(g, seed=0)
        a = GraphExecutor(g, seed=1).run(x)
        b = GraphExecutor(g, seed=2).run(x)
        assert not np.allclose(a, b)

    def test_skip_connections(self):
        out = GraphExecutor(skip_graph()).run()
        assert out.shape == (3, 8, 8)

    def test_wrong_input_shape_rejected(self):
        g = tiny_graph()
        with pytest.raises(ValueError, match="input shape"):
            GraphExecutor(g).run(np.zeros((1, 2, 2)))

    def test_record_activations(self):
        g = tiny_graph()
        ex = GraphExecutor(g, record_activations=True)
        ex.run()
        assert set(ex.activations) == {layer.name for layer in g.layers}

    def test_every_activation_matches_spec(self):
        g = skip_graph()
        ex = GraphExecutor(g, record_activations=True)
        ex.run()
        for layer in g.layers:
            assert ex.activations[layer.name].shape == layer.out_shape

    def test_all_finite(self):
        out = GraphExecutor(skip_graph()).run()
        assert np.isfinite(out).all()


class TestWeights:
    def test_weights_cached(self):
        g = tiny_graph()
        ex = GraphExecutor(g)
        w1 = ex.weights_for(g.find("c1"))
        w2 = ex.weights_for(g.find("c1"))
        assert w1 is w2

    def test_conv_weight_shape(self):
        g = tiny_graph()
        ex = GraphExecutor(g)
        w = ex.weights_for(g.find("c1"))
        assert w["weight"].shape == (8, 3, 3, 3)
        assert w["bias"].shape == (8,)

    def test_fc_weight_shape(self):
        g = tiny_graph()
        ex = GraphExecutor(g)
        w = ex.weights_for(g.find("head"))
        assert w["weight"].shape == (5, 8)


class TestTransformerExecution:
    def test_transformer_graph_runs(self):
        b = GraphBuilder("tfm", (16, 1, 8))
        b.transformer_block(heads=4)
        b.transformer_block(heads=4)
        out = GraphExecutor(b.build()).run()
        assert out.shape == (16, 1, 8)
        assert np.isfinite(out).all()

    def test_reshape_roundtrip(self):
        b = GraphBuilder("rs", (4, 4, 4))
        b.reshape((4, 1, 16))
        b.attention(2)
        b.reshape((4, 4, 4))
        out = GraphExecutor(b.build()).run()
        assert out.shape == (4, 4, 4)


class TestDeconvAndRoi:
    def test_deconv_runs(self):
        b = GraphBuilder("dc", (4, 4, 4))
        b.deconv(2, 4, 2)
        out = GraphExecutor(b.build()).run()
        assert out.shape == (2, 8, 8)

    def test_roialign_runs(self):
        b = GraphBuilder("roi", (4, 16, 16))
        b.roialign(3, 7)
        out = GraphExecutor(b.build()).run()
        assert out.shape == (4, 7, 21)
