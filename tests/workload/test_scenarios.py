"""Tests for usage scenarios (Table 2)."""

from __future__ import annotations

import pytest

from repro.workload import (
    SCENARIO_ORDER,
    SCENARIOS,
    Dependency,
    DependencyKind,
    ScenarioModel,
    UsageScenario,
    benchmark_suite,
    get_model,
    get_scenario,
)


class TestRegistry:
    def test_seven_scenarios(self):
        assert len(SCENARIOS) == 7
        assert len(SCENARIO_ORDER) == 7

    def test_order_matches_registry(self):
        assert set(SCENARIO_ORDER) == set(SCENARIOS)

    def test_get_scenario_unknown(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("nope")

    def test_benchmark_suite_ordering(self):
        names = [s.name for s in benchmark_suite()]
        assert names == list(SCENARIO_ORDER)


class TestTable2Rates:
    """The reconstructed Table 2 (see DESIGN.md for the reconstruction)."""

    def test_social_interaction_a(self):
        s = get_scenario("social_interaction_a")
        assert {c: s.fps_of(c) for c in s.codes} == {
            "HT": 30, "ES": 60, "GE": 60, "DR": 30,
        }

    def test_social_interaction_b(self):
        s = get_scenario("social_interaction_b")
        assert {c: s.fps_of(c) for c in s.codes} == {
            "ES": 60, "GE": 60, "DR": 30,
        }

    def test_outdoor_activity_a(self):
        s = get_scenario("outdoor_activity_a")
        assert {c: s.fps_of(c) for c in s.codes} == {
            "KD": 3, "SR": 3, "OD": 10, "DE": 30,
        }

    def test_outdoor_activity_b_engages_hand_tracking(self):
        # Section 3.3: during the rest break, hand tracking is engaged.
        s = get_scenario("outdoor_activity_b")
        assert {c: s.fps_of(c) for c in s.codes} == {
            "HT": 30, "KD": 3, "SR": 3,
        }

    def test_ar_assistant_has_most_models(self):
        # Observation 3: AR assistant includes the most models (6).
        counts = {n: SCENARIOS[n].num_models for n in SCENARIOS}
        assert counts["ar_assistant"] == 6
        assert max(counts.values()) == 6

    def test_vr_gaming_has_fewest_models(self):
        # Observation 3: VR gaming includes the fewest models (3).
        assert SCENARIOS["vr_gaming"].num_models == 3

    def test_ar_gaming_models_match_figure6(self):
        # Figure 6's legend: DE, HT and PD run in AR gaming.
        assert set(SCENARIOS["ar_gaming"].codes) == {"HT", "DE", "PD"}

    def test_sr_always_at_3fps(self):
        for s in SCENARIOS.values():
            if "SR" in s.codes:
                assert s.fps_of("SR") == 3


class TestDependencies:
    def test_eye_pipeline_is_data_dep(self):
        dep = get_scenario("vr_gaming").upstream_of("GE")
        assert dep is not None
        assert dep.upstream == "ES"
        assert dep.kind is DependencyKind.DATA
        assert dep.probability == 1.0

    def test_speech_pipeline_is_control_dep(self):
        dep = get_scenario("outdoor_activity_a").upstream_of("SR")
        assert dep is not None
        assert dep.upstream == "KD"
        assert dep.kind is DependencyKind.CONTROL

    def test_outdoor_cascade_probability(self):
        # Section 4.1: 0.2 for outdoor scenarios.
        for name in ("outdoor_activity_a", "outdoor_activity_b"):
            assert get_scenario(name).upstream_of("SR").probability == 0.2

    def test_ar_assistant_cascade_probability(self):
        # Section 4.1: 0.5 for AR assistant.
        assert get_scenario("ar_assistant").upstream_of("SR").probability == 0.5

    def test_root_models_excludes_downstream(self):
        s = get_scenario("vr_gaming")
        roots = {sm.code for sm in s.root_models()}
        assert roots == {"HT", "ES"}

    def test_upstream_of_root_is_none(self):
        assert get_scenario("vr_gaming").upstream_of("HT") is None


class TestValidation:
    def _sm(self, code: str, fps: float) -> ScenarioModel:
        return ScenarioModel(get_model(code), fps)

    def test_rejects_zero_fps(self):
        with pytest.raises(ValueError, match="target fps"):
            self._sm("HT", 0)

    def test_rejects_duplicate_models(self):
        with pytest.raises(ValueError, match="duplicate"):
            UsageScenario(
                "x", "d", (self._sm("HT", 30), self._sm("HT", 60))
            )

    def test_rejects_dangling_dependency(self):
        with pytest.raises(ValueError, match="not active"):
            UsageScenario(
                "x", "d", (self._sm("ES", 60),),
                (Dependency("ES", "GE", DependencyKind.DATA),),
            )

    def test_rejects_dependency_cycle(self):
        with pytest.raises(ValueError, match="cycle"):
            UsageScenario(
                "x", "d",
                (self._sm("ES", 60), self._sm("GE", 60)),
                (
                    Dependency("ES", "GE", DependencyKind.DATA),
                    Dependency("GE", "ES", DependencyKind.DATA),
                ),
            )

    def test_rejects_self_dependency(self):
        with pytest.raises(ValueError, match="self-dependency"):
            Dependency("ES", "ES", DependencyKind.DATA)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="probability"):
            Dependency("ES", "GE", DependencyKind.DATA, probability=1.5)


class TestProbabilityOverride:
    def test_with_dependency_probability(self):
        base = get_scenario("vr_gaming")
        varied = base.with_dependency_probability("ES", "GE", 0.25)
        assert varied.upstream_of("GE").probability == 0.25
        # Original untouched (immutability).
        assert base.upstream_of("GE").probability == 1.0

    def test_unknown_edge_raises(self):
        with pytest.raises(KeyError, match="no dependency"):
            get_scenario("vr_gaming").with_dependency_probability(
                "HT", "GE", 0.5
            )


class TestLoad:
    def test_offered_load_positive(self):
        for s in SCENARIOS.values():
            assert s.offered_load_macs_per_s() > 0

    def test_ar_gaming_is_heaviest(self):
        loads = {
            n: s.offered_load_macs_per_s() for n, s in SCENARIOS.items()
        }
        assert max(loads, key=loads.get) == "ar_gaming"
