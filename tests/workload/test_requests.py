"""Tests for inference requests and frame plans (Definitions 6-9)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.workload import FramePlan, InferenceRequest, ScenarioModel, get_model


def plan(code: str, fps: float) -> FramePlan:
    return FramePlan(ScenarioModel(get_model(code), fps))


class TestEffectiveFps:
    def test_target_below_sensor(self):
        assert plan("HT", 30).effective_fps == 30

    def test_target_equals_sensor(self):
        assert plan("ES", 60).effective_fps == 60

    def test_target_above_sensor_clips(self):
        # Even zero-latency inference cannot outrun the input stream.
        assert plan("ES", 120).effective_fps == 60

    def test_sr_on_microphone(self):
        assert plan("SR", 3).effective_fps == 3


class TestFrameMapping:
    def test_full_rate_consumes_every_frame(self):
        p = plan("ES", 60)
        assert [p.sensor_frame_for(i) for i in range(4)] == [0, 1, 2, 3]

    def test_half_rate_skips_alternate_frames(self):
        # Figure 3: a 30 FPS model on the 60 FPS camera skips every other
        # frame.
        p = plan("HT", 30)
        assert [p.sensor_frame_for(i) for i in range(4)] == [0, 2, 4, 6]

    def test_45fps_pattern(self):
        p = plan("HT", 45)
        frames = [p.sensor_frame_for(i) for i in range(6)]
        assert frames == [0, 1, 2, 4, 5, 6]

    def test_negative_frame_rejected(self):
        with pytest.raises(ValueError, match="model_frame"):
            plan("HT", 30).sensor_frame_for(-1)


class TestDeadlines:
    def test_deadline_is_next_consumed_frame(self):
        p = plan("HT", 30)
        # Frame 0 consumes sensor frame 0; next consumed is sensor frame 2.
        assert p.deadline_s(0) == pytest.approx(2 / 60)

    def test_full_rate_deadline(self):
        p = plan("ES", 60)
        assert p.deadline_s(0) == pytest.approx(1 / 60)

    def test_deadline_beyond_request(self):
        p = plan("DR", 30)
        for frame in range(10):
            assert p.deadline_s(frame) > p.request_time_s(frame) - 1e-3


class TestMultimodal:
    def test_dr_waits_for_both_sensors(self):
        p = plan("DR", 30)
        camera, lidar = p.scenario_model.model.sensors
        frame = 4
        sensor_frame = p.sensor_frame_for(frame)
        expected = max(
            camera.arrival_s(sensor_frame, 0), lidar.arrival_s(sensor_frame, 0)
        )
        assert p.request_time_s(frame, 0) == pytest.approx(expected)


class TestNumFrames:
    def test_one_second_at_60fps(self):
        assert plan("ES", 60).num_frames(1.0) == 60

    def test_one_second_at_30fps(self):
        assert plan("HT", 30).num_frames(1.0) == 30

    def test_one_second_at_3fps(self):
        assert plan("KD", 3).num_frames(1.0) == 3

    def test_duration_scales(self):
        assert plan("HT", 30).num_frames(2.0) == 60

    def test_invalid_duration(self):
        with pytest.raises(ValueError, match="duration"):
            plan("HT", 30).num_frames(0.0)

    @given(
        fps=st.sampled_from([3, 10, 30, 45, 60]),
        duration=st.floats(min_value=0.1, max_value=5.0),
    )
    def test_count_close_to_rate(self, fps: float, duration: float):
        code = "KD" if fps == 3 else "HT"
        count = plan(code, fps).num_frames(duration)
        effective = min(fps, plan(code, fps).effective_fps)
        assert abs(count - effective * duration) <= 1.5


class TestInferenceRequest:
    def make(self) -> InferenceRequest:
        return InferenceRequest(
            model_code="HT", model_frame=0,
            request_time_s=0.010, deadline_s=0.043,
        )

    def test_slack(self):
        assert self.make().slack_s == pytest.approx(0.033)

    def test_latency_requires_completion(self):
        with pytest.raises(ValueError, match="not completed"):
            _ = self.make().latency_s

    def test_latency_after_completion(self):
        r = self.make()
        r.end_time_s = 0.030
        assert r.latency_s == pytest.approx(0.020)

    def test_completed_excludes_dropped(self):
        r = self.make()
        r.end_time_s = 0.030
        r.dropped = True
        assert not r.completed

    def test_missed_deadline_detection(self):
        r = self.make()
        r.end_time_s = 0.050  # deadline was 0.043
        assert r.missed_deadline
        r2 = self.make()
        r2.end_time_s = 0.040
        assert not r2.missed_deadline

    def test_request_ids_unique(self):
        ids = {InferenceRequest("HT", i, 0.0, 1.0).request_id for i in range(50)}
        assert len(ids) == 50

    def test_repr_states(self):
        r = self.make()
        assert "pending" in repr(r)
        r.end_time_s = 0.02
        assert "done" in repr(r)
        r.dropped = True
        assert "dropped" in repr(r)
