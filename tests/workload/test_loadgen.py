"""Tests for the load generator."""

from __future__ import annotations

import pytest

from repro.workload import LoadGenerator, get_scenario


@pytest.fixture
def vr_loadgen() -> LoadGenerator:
    return LoadGenerator(get_scenario("vr_gaming"), duration_s=1.0, seed=0)


class TestRootRequests:
    def test_roots_only(self, vr_loadgen: LoadGenerator):
        codes = {r.model_code for r in vr_loadgen.root_requests()}
        assert codes == {"HT", "ES"}  # GE is data-dependent on ES

    def test_counts_match_rates(self, vr_loadgen: LoadGenerator):
        requests = vr_loadgen.root_requests()
        by_code = {}
        for r in requests:
            by_code.setdefault(r.model_code, []).append(r)
        assert len(by_code["ES"]) == 60
        assert len(by_code["HT"]) == 45

    def test_sorted_by_request_time(self, vr_loadgen: LoadGenerator):
        times = [r.request_time_s for r in vr_loadgen.root_requests()]
        assert times == sorted(times)

    def test_deterministic_per_seed(self):
        scenario = get_scenario("vr_gaming")
        a = LoadGenerator(scenario, 1.0, seed=3).root_requests()
        b = LoadGenerator(scenario, 1.0, seed=3).root_requests()
        assert [(r.model_code, r.model_frame, r.request_time_s) for r in a] == [
            (r.model_code, r.model_frame, r.request_time_s) for r in b
        ]

    def test_seed_changes_jitter(self):
        scenario = get_scenario("vr_gaming")
        a = LoadGenerator(scenario, 1.0, seed=0).root_requests()
        b = LoadGenerator(scenario, 1.0, seed=99).root_requests()
        assert any(
            x.request_time_s != y.request_time_s for x, y in zip(a, b)
        )

    def test_invalid_duration(self):
        with pytest.raises(ValueError, match="duration"):
            LoadGenerator(get_scenario("vr_gaming"), 0.0)


class TestDependencySpawning:
    def test_data_dep_always_triggers(self, vr_loadgen: LoadGenerator):
        dep = vr_loadgen.scenario.upstream_of("GE")
        assert all(
            vr_loadgen.dependency_triggers(dep, f) for f in range(60)
        )

    def test_control_dep_rate_approximates_probability(self):
        scenario = get_scenario("vr_gaming").with_dependency_probability(
            "ES", "GE", 0.3
        )
        gen = LoadGenerator(scenario, 1.0, seed=0)
        dep = scenario.upstream_of("GE")
        hits = sum(gen.dependency_triggers(dep, f) for f in range(2000))
        assert 0.25 < hits / 2000 < 0.35

    def test_trigger_rolls_deterministic(self, vr_loadgen: LoadGenerator):
        scenario = get_scenario("outdoor_activity_a")
        gen1 = LoadGenerator(scenario, 1.0, seed=5)
        gen2 = LoadGenerator(scenario, 1.0, seed=5)
        dep = scenario.upstream_of("SR")
        rolls1 = [gen1.dependency_triggers(dep, f) for f in range(100)]
        rolls2 = [gen2.dependency_triggers(dep, f) for f in range(100)]
        assert rolls1 == rolls2

    def test_spawn_dependent_basic(self, vr_loadgen: LoadGenerator):
        dep = vr_loadgen.scenario.upstream_of("GE")
        child = vr_loadgen.spawn_dependent(dep, upstream_frame=5,
                                           ready_time_s=0.1)
        assert child is not None
        assert child.model_code == "GE"
        assert child.request_time_s == pytest.approx(0.1)

    def test_spawn_outside_duration_returns_none(self, vr_loadgen: LoadGenerator):
        dep = vr_loadgen.scenario.upstream_of("GE")
        child = vr_loadgen.spawn_dependent(dep, upstream_frame=120,
                                           ready_time_s=2.5)
        assert child is None

    def test_spawn_zero_probability_returns_none(self):
        scenario = get_scenario("vr_gaming").with_dependency_probability(
            "ES", "GE", 0.0
        )
        gen = LoadGenerator(scenario, 1.0, seed=0)
        dep = scenario.upstream_of("GE")
        assert gen.spawn_dependent(dep, 0, 0.01) is None

    def test_downstream_deadline_matches_plan(self, vr_loadgen: LoadGenerator):
        dep = vr_loadgen.scenario.upstream_of("GE")
        child = vr_loadgen.spawn_dependent(dep, 10, 0.18)
        plan = vr_loadgen.plan_for("GE")
        assert child.deadline_s == pytest.approx(plan.deadline_s(child.model_frame))


class TestExpectedFrames:
    def test_excludes_dependent_models(self, vr_loadgen: LoadGenerator):
        expected = vr_loadgen.expected_frames()
        assert "GE" not in expected
        assert expected == {"HT": 45, "ES": 60}
