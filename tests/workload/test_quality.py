"""Tests for model quality goals (Definition 2)."""

from __future__ import annotations

import pytest

from repro.workload import MetricType, QualityGoal


class TestValidation:
    def test_requires_metric_name(self):
        with pytest.raises(ValueError, match="non-empty"):
            QualityGoal("", 1.0, MetricType.HIGHER_IS_BETTER)

    def test_requires_positive_target(self):
        with pytest.raises(ValueError, match="target"):
            QualityGoal("acc", 0.0, MetricType.HIGHER_IS_BETTER)


class TestIsMet:
    def test_hib_met_at_target(self):
        goal = QualityGoal("mIoU", 90.0, MetricType.HIGHER_IS_BETTER)
        assert goal.is_met(90.0)

    def test_hib_met_above(self):
        goal = QualityGoal("mIoU", 90.0, MetricType.HIGHER_IS_BETTER)
        assert goal.is_met(95.0)

    def test_hib_not_met_below(self):
        goal = QualityGoal("mIoU", 90.0, MetricType.HIGHER_IS_BETTER)
        assert not goal.is_met(89.9)

    def test_lib_met_at_target(self):
        goal = QualityGoal("WER", 8.79, MetricType.LOWER_IS_BETTER)
        assert goal.is_met(8.79)

    def test_lib_met_below(self):
        goal = QualityGoal("WER", 8.79, MetricType.LOWER_IS_BETTER)
        assert goal.is_met(5.0)

    def test_lib_not_met_above(self):
        goal = QualityGoal("WER", 8.79, MetricType.LOWER_IS_BETTER)
        assert not goal.is_met(9.0)


class TestDescribe:
    def test_hib_format(self):
        goal = QualityGoal("mIoU", 90.54, MetricType.HIGHER_IS_BETTER)
        assert goal.describe() == "mIoU, GT 90.54"

    def test_lib_format(self):
        goal = QualityGoal("Angular Error", 3.39, MetricType.LOWER_IS_BETTER)
        assert goal.describe() == "Angular Error, LT 3.39"
