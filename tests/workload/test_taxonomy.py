"""Tests for the Section 2.1 MTMM taxonomy."""

from __future__ import annotations

from repro.workload import (
    MtmmClass,
    SCENARIOS,
    classify,
    deactivate,
    get_scenario,
    is_dynamic,
    pipelines,
)


class TestPipelines:
    def test_vr_gaming_chains(self):
        chains = pipelines(get_scenario("vr_gaming"))
        assert sorted(chains) == [["ES", "GE"], ["HT"]]

    def test_ar_gaming_all_standalone(self):
        chains = pipelines(get_scenario("ar_gaming"))
        assert all(len(c) == 1 for c in chains)
        assert len(chains) == 3

    def test_ar_assistant_speech_chain(self):
        chains = pipelines(get_scenario("ar_assistant"))
        assert ["KD", "SR"] in chains


class TestClassify:
    def test_all_shipped_scenarios_are_mtmm(self):
        for scenario in SCENARIOS.values():
            assert classify(scenario) is not MtmmClass.STSM

    def test_cascon_dominates_the_suite(self):
        # The paper: XR scenarios are predominantly cascon-MTMM.
        classes = [classify(s) for s in SCENARIOS.values()]
        cascon = classes.count(MtmmClass.CASCADED_CONCURRENT)
        assert cascon >= 5

    def test_ar_gaming_is_concurrent(self):
        # HT, DE, PD run independently: con-MTMM.
        assert classify(get_scenario("ar_gaming")) is MtmmClass.CONCURRENT

    def test_pure_cascade(self):
        # Strip VR gaming down to just the eye pipeline: cas-MTMM.
        scenario = deactivate(get_scenario("vr_gaming"), "HT")
        assert classify(scenario) is MtmmClass.CASCADED

    def test_single_model_is_stsm(self):
        scenario = deactivate(
            deactivate(get_scenario("ar_gaming"), "PD"), "DE"
        )
        assert classify(scenario) is MtmmClass.STSM


class TestIsDynamic:
    def test_control_dep_scenarios_dynamic(self):
        for name in ("outdoor_activity_a", "outdoor_activity_b",
                     "ar_assistant"):
            assert is_dynamic(get_scenario(name)), name

    def test_pure_data_dep_static(self):
        assert not is_dynamic(get_scenario("vr_gaming"))
        assert not is_dynamic(get_scenario("social_interaction_a"))

    def test_probabilistic_data_dep_is_dynamic(self):
        # The Figure 7 sweep makes the eye pipeline dynamic.
        varied = get_scenario("vr_gaming").with_dependency_probability(
            "ES", "GE", 0.5
        )
        assert is_dynamic(varied)

    def test_no_deps_static(self):
        assert not is_dynamic(get_scenario("ar_gaming"))
