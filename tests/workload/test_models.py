"""Tests for the unit-model registry (Table 1)."""

from __future__ import annotations

import pytest

from repro.workload import UNIT_MODELS, MetricType, TaskCategory, get_model
from repro.workload.sensors import CAMERA, LIDAR, MICROPHONE


class TestRegistry:
    def test_eleven_models(self):
        assert len(UNIT_MODELS) == 11

    def test_codes(self):
        assert set(UNIT_MODELS) == {
            "HT", "ES", "GE", "KD", "SR", "SS", "OD", "AS", "DE", "DR", "PD",
        }

    def test_get_model(self):
        assert get_model("HT").task == "Hand Tracking"

    def test_get_model_unknown(self):
        with pytest.raises(KeyError, match="unknown model code"):
            get_model("XX")


class TestCategories:
    def test_interaction_models(self):
        interaction = {
            c for c, m in UNIT_MODELS.items()
            if m.category is TaskCategory.INTERACTION
        }
        assert interaction == {"HT", "ES", "GE", "KD", "SR"}

    def test_context_models(self):
        context = {
            c for c, m in UNIT_MODELS.items()
            if m.category is TaskCategory.CONTEXT
        }
        assert context == {"SS", "OD", "AS"}

    def test_world_locking_models(self):
        wl = {
            c for c, m in UNIT_MODELS.items()
            if m.category is TaskCategory.WORLD_LOCKING
        }
        assert wl == {"DE", "DR", "PD"}


class TestSensors:
    def test_audio_models_use_microphone(self):
        assert UNIT_MODELS["KD"].primary_sensor is MICROPHONE
        assert UNIT_MODELS["SR"].primary_sensor is MICROPHONE

    def test_dr_is_the_only_multimodal_model(self):
        multimodal = [c for c, m in UNIT_MODELS.items() if m.is_multimodal]
        assert multimodal == ["DR"]

    def test_dr_uses_camera_and_lidar(self):
        assert set(UNIT_MODELS["DR"].sensors) == {CAMERA, LIDAR}

    def test_vision_models_use_camera(self):
        for code in ("HT", "ES", "GE", "SS", "OD", "AS", "DE", "PD"):
            assert UNIT_MODELS[code].primary_sensor is CAMERA


class TestQualityGoals:
    def test_table1_targets(self):
        assert UNIT_MODELS["HT"].quality.target == pytest.approx(0.948)
        assert UNIT_MODELS["ES"].quality.target == pytest.approx(90.54)
        assert UNIT_MODELS["SR"].quality.target == pytest.approx(8.79)
        assert UNIT_MODELS["OD"].quality.target == pytest.approx(21.84)

    def test_lower_is_better_metrics(self):
        lib = {
            c for c, m in UNIT_MODELS.items()
            if m.quality.metric_type is MetricType.LOWER_IS_BETTER
        }
        assert lib == {"GE", "SR", "DE"}


class TestGraphBinding:
    def test_every_model_has_a_graph(self):
        for code, model in UNIT_MODELS.items():
            assert model.graph.name, code

    def test_graphs_have_positive_macs(self):
        for model in UNIT_MODELS.values():
            assert model.graph.total_macs > 0

    def test_pd_is_the_heaviest_model(self):
        macs = {c: m.graph.total_macs for c, m in UNIT_MODELS.items()}
        assert max(macs, key=macs.get) == "PD"

    def test_kd_is_the_lightest_model(self):
        macs = {c: m.graph.total_macs for c, m in UNIT_MODELS.items()}
        assert min(macs, key=macs.get) == "KD"
