"""Tests for sensor streams and jittered arrivals (Table 3)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.workload import CAMERA, LIDAR, MICROPHONE, SENSORS, get_sensor
from repro.workload.sensors import InputSource


class TestRegistry:
    def test_three_sensors(self):
        assert set(SENSORS) == {"camera", "lidar", "microphone"}

    def test_table3_rates(self):
        assert CAMERA.fps == 60.0
        assert LIDAR.fps == 60.0
        assert MICROPHONE.fps == 3.0

    def test_table3_jitters(self):
        assert CAMERA.jitter_ms == pytest.approx(0.05)
        assert LIDAR.jitter_ms == pytest.approx(0.05)
        assert MICROPHONE.jitter_ms == pytest.approx(0.1)

    def test_get_sensor(self):
        assert get_sensor("camera") is CAMERA

    def test_get_sensor_unknown(self):
        with pytest.raises(KeyError, match="unknown sensor"):
            get_sensor("radar")


class TestValidation:
    def test_rejects_nonpositive_fps(self):
        with pytest.raises(ValueError, match="fps"):
            InputSource("x", "t", fps=0.0, jitter_ms=0.0)

    def test_rejects_negative_jitter(self):
        with pytest.raises(ValueError, match="jitter"):
            InputSource("x", "t", fps=1.0, jitter_ms=-1.0)

    def test_rejects_negative_init_latency(self):
        with pytest.raises(ValueError, match="init latency"):
            InputSource("x", "t", fps=1.0, jitter_ms=0.0, init_latency_ms=-1)


class TestNominalTiming:
    def test_period(self):
        assert CAMERA.period_s == pytest.approx(1 / 60)

    def test_frame0_at_init_latency(self):
        s = InputSource("x", "t", fps=10.0, jitter_ms=0.0, init_latency_ms=5.0)
        assert s.nominal_arrival_s(0) == pytest.approx(0.005)

    def test_frame_spacing(self):
        t1 = CAMERA.nominal_arrival_s(1)
        t2 = CAMERA.nominal_arrival_s(2)
        assert t2 - t1 == pytest.approx(1 / 60)

    def test_negative_frame_rejected(self):
        with pytest.raises(ValueError, match="frame_id"):
            CAMERA.nominal_arrival_s(-1)


class TestJitter:
    def test_zero_jitter_sensor_is_exact(self):
        s = InputSource("exact", "t", fps=30.0, jitter_ms=0.0)
        assert s.arrival_s(7) == s.nominal_arrival_s(7)

    def test_jitter_is_deterministic(self):
        assert CAMERA.jitter_s(3, seed=1) == CAMERA.jitter_s(3, seed=1)

    def test_jitter_varies_with_seed(self):
        values = {CAMERA.jitter_s(3, seed=s) for s in range(20)}
        assert len(values) > 1

    def test_jitter_varies_with_frame(self):
        values = {CAMERA.jitter_s(f, seed=0) for f in range(20)}
        assert len(values) > 1

    def test_jitter_bounded(self):
        bound = CAMERA.jitter_ms / 1e3
        for frame in range(200):
            assert abs(CAMERA.jitter_s(frame)) <= bound + 1e-12

    def test_arrival_never_negative(self):
        for frame in range(50):
            assert CAMERA.arrival_s(frame) >= 0.0

    def test_sensors_jitter_independently(self):
        # Same frame id on different sensors must not share jitter.
        assert CAMERA.jitter_s(5) != LIDAR.jitter_s(5)


class TestJitterProperties:
    @given(
        frame=st.integers(min_value=0, max_value=10_000),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_arrival_close_to_nominal(self, frame: int, seed: int):
        arrival = CAMERA.arrival_s(frame, seed)
        nominal = CAMERA.nominal_arrival_s(frame)
        assert abs(arrival - nominal) <= CAMERA.jitter_ms / 1e3 + 1e-12

    @given(
        fps=st.floats(min_value=0.5, max_value=240.0),
        frame=st.integers(min_value=0, max_value=1000),
    )
    def test_nominal_monotone_in_frame(self, fps: float, frame: int):
        s = InputSource("x", "t", fps=fps, jitter_ms=0.0)
        assert s.nominal_arrival_s(frame + 1) > s.nominal_arrival_s(frame)
