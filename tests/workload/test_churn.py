"""Tests for the deterministic session-churn plan."""

from __future__ import annotations

import pytest

from repro.workload import MAX_CHURN, SessionWindow, churn_windows


class TestSessionWindow:
    def test_defaults_are_static(self):
        window = SessionWindow()
        assert window.arrival_s == 0.0
        assert window.departure_s is None

    def test_rejects_negative_arrival(self):
        with pytest.raises(ValueError, match="arrival_s"):
            SessionWindow(arrival_s=-0.1)

    def test_rejects_departure_before_arrival(self):
        with pytest.raises(ValueError, match="departure_s"):
            SessionWindow(arrival_s=0.5, departure_s=0.5)

    def test_active_duration(self):
        assert SessionWindow().active_duration_s(2.0) == 2.0
        assert SessionWindow(0.5, 1.5).active_duration_s(2.0) == 1.0
        # Departure past the streamed duration clips to it.
        assert SessionWindow(0.5, 9.0).active_duration_s(2.0) == 1.5


class TestChurnWindows:
    def test_zero_churn_is_static(self):
        windows = churn_windows(8, 1.0, 0.0, seed=3)
        assert windows == [SessionWindow()] * 8

    def test_deterministic(self):
        assert churn_windows(16, 1.0, 0.3, seed=7) == churn_windows(
            16, 1.0, 0.3, seed=7
        )

    def test_seed_changes_plan(self):
        assert churn_windows(16, 1.0, 0.3, seed=0) != churn_windows(
            16, 1.0, 0.3, seed=1
        )

    def test_windows_respect_bands(self):
        duration, churn = 2.0, 0.4
        for window in churn_windows(32, duration, churn, seed=0):
            assert 0.0 <= window.arrival_s < churn * duration
            assert window.departure_s > duration * (1 - churn)
            assert window.departure_s <= duration
            assert window.arrival_s < window.departure_s

    def test_max_churn_still_produces_valid_windows(self):
        for window in churn_windows(32, 1.0, MAX_CHURN, seed=5):
            assert window.arrival_s < window.departure_s

    def test_validation(self):
        with pytest.raises(ValueError, match="num_sessions"):
            churn_windows(0, 1.0, 0.2)
        with pytest.raises(ValueError, match="duration_s"):
            churn_windows(1, 0.0, 0.2)
        with pytest.raises(ValueError, match="churn"):
            churn_windows(1, 1.0, 0.6)
        with pytest.raises(ValueError, match="churn"):
            churn_windows(1, 1.0, -0.1)
