"""Tests for scenario-variant construction."""

from __future__ import annotations

import pytest

from repro.workload import (
    DependencyKind,
    activate,
    deactivate,
    get_scenario,
    retarget,
    scale_rates,
)


@pytest.fixture
def social_a():
    return get_scenario("social_interaction_a")


class TestDeactivate:
    def test_removes_model(self, social_a):
        variant = deactivate(social_a, "HT")
        assert "HT" not in variant.codes
        assert variant.num_models == social_a.num_models - 1

    def test_renames(self, social_a):
        assert deactivate(social_a, "HT").name == (
            "social_interaction_a_no_ht"
        )

    def test_original_untouched(self, social_a):
        deactivate(social_a, "HT")
        assert "HT" in social_a.codes

    def test_downstream_removes_dependency(self, social_a):
        variant = deactivate(social_a, "GE")
        assert variant.upstream_of("GE" if "GE" in variant.codes else "ES") is None
        assert not variant.dependencies

    def test_upstream_with_dependents_refused(self, social_a):
        with pytest.raises(ValueError, match="downstream"):
            deactivate(social_a, "ES")

    def test_upstream_after_downstream_gone(self, social_a):
        variant = deactivate(deactivate(social_a, "GE"), "ES")
        assert set(variant.codes) == {"HT", "DR"}

    def test_unknown_model(self, social_a):
        with pytest.raises(KeyError):
            deactivate(social_a, "PD")

    def test_cannot_empty_scenario(self):
        s = get_scenario("ar_gaming")
        s = deactivate(deactivate(s, "PD"), "DE")
        with pytest.raises(ValueError, match="empty"):
            deactivate(s, "HT")


class TestRetarget:
    def test_changes_rate(self, social_a):
        variant = retarget(social_a, "HT", 60)
        assert variant.fps_of("HT") == 60
        assert social_a.fps_of("HT") == 30

    def test_other_rates_kept(self, social_a):
        variant = retarget(social_a, "HT", 60)
        assert variant.fps_of("DR") == 30

    def test_unknown_model(self, social_a):
        with pytest.raises(KeyError):
            retarget(social_a, "PD", 30)


class TestScaleRates:
    def test_doubles(self, social_a):
        variant = scale_rates(social_a, 2.0)
        assert variant.fps_of("HT") == 60

    def test_caps_at_sensor_rate(self, social_a):
        variant = scale_rates(social_a, 10.0)
        # Camera streams at 60 FPS; nothing can exceed it.
        assert variant.fps_of("ES") == 60
        assert variant.fps_of("HT") == 60

    def test_halves(self, social_a):
        variant = scale_rates(social_a, 0.5)
        assert variant.fps_of("ES") == 30

    def test_rejects_nonpositive(self, social_a):
        with pytest.raises(ValueError, match="factor"):
            scale_rates(social_a, 0.0)

    def test_load_scales_with_rates(self, social_a):
        up = scale_rates(social_a, 2.0)
        assert (
            up.offered_load_macs_per_s()
            > social_a.offered_load_macs_per_s()
        )


class TestActivate:
    def test_adds_model(self, social_a):
        variant = activate(social_a, "KD", 3)
        assert "KD" in variant.codes
        assert variant.fps_of("KD") == 3

    def test_with_dependency(self, social_a):
        variant = activate(social_a, "KD", 3)
        variant = activate(
            variant, "SR", 3, depends_on="KD",
            kind=DependencyKind.CONTROL, probability=0.2,
        )
        dep = variant.upstream_of("SR")
        assert dep.upstream == "KD"
        assert dep.probability == 0.2

    def test_duplicate_rejected(self, social_a):
        with pytest.raises(ValueError, match="already active"):
            activate(social_a, "HT", 30)

    def test_unknown_code(self, social_a):
        with pytest.raises(KeyError, match="unknown model"):
            activate(social_a, "XX", 30)


class TestVariantProperties:
    """Algebraic properties the QoE control plane leans on."""

    def test_deactivate_activate_round_trip_restores_scenario(self, social_a):
        without = deactivate(social_a, "HT")
        restored = activate(without, "HT", social_a.fps_of("HT"))
        assert set(restored.codes) == set(social_a.codes)
        for code in social_a.codes:
            assert restored.fps_of(code) == social_a.fps_of(code)
        assert set(restored.dependencies) == set(social_a.dependencies)

    def test_scale_rates_identity(self, social_a):
        identity = scale_rates(social_a, 1.0)
        for sm, original in zip(identity.models, social_a.models):
            assert sm.code == original.code
            assert sm.target_fps == original.target_fps
        assert identity.dependencies == social_a.dependencies

    @pytest.mark.parametrize("builder", [
        lambda s, code: retarget(s, code, 15),
        deactivate,
    ])
    def test_unknown_code_suggests_close_match(self, social_a, builder):
        # "HY" is one edit from the active "HT"; the error must both
        # list the active codes and suggest the near miss.
        with pytest.raises(KeyError) as excinfo:
            builder(social_a, "HY")
        message = str(excinfo.value)
        assert "not active in scenario" in message
        assert "'HT'" in message
        assert "did you mean 'HT'?" in message

    def test_unknown_code_without_near_miss_still_lists_active(
        self, social_a
    ):
        with pytest.raises(KeyError) as excinfo:
            retarget(social_a, "QQ", 15)
        message = str(excinfo.value)
        assert "not active in scenario" in message
        assert "did you mean" not in message

    def test_casefolded_code_suggested(self, social_a):
        with pytest.raises(KeyError, match="did you mean 'HT'"):
            retarget(social_a, "ht", 15)


class TestVariantsRunEndToEnd:
    def test_harness_accepts_variants(self, short_harness, fda_ws_4k):
        base = get_scenario("ar_gaming")
        lighter = deactivate(base, "PD")
        full = short_harness.run_scenario(base, fda_ws_4k)
        light = short_harness.run_scenario(lighter, fda_ws_4k)
        # Removing the saturating model must improve the score.
        assert light.overall > full.overall

    def test_rate_scaling_degrades_score(self, short_harness, fda_ws_4k):
        base = get_scenario("social_interaction_a")
        stressed = scale_rates(base, 2.0)
        a = short_harness.run_scenario(base, fda_ws_4k)
        b = short_harness.run_scenario(stressed, fda_ws_4k)
        assert b.overall <= a.overall + 0.02
