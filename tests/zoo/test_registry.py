"""Tests for the zoo registry."""

from __future__ import annotations

import pytest

from repro.zoo import MODEL_BUILDERS, TASK_CODES, all_models, build_model


class TestRegistry:
    def test_eleven_builders(self):
        assert len(MODEL_BUILDERS) == 11

    def test_task_codes_order(self):
        assert TASK_CODES == (
            "HT", "ES", "GE", "KD", "SR", "SS", "OD", "AS", "DE", "DR", "PD",
        )

    def test_build_model_cached(self):
        assert build_model("KD") is build_model("KD")

    def test_build_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown task code"):
            build_model("ZZ")

    def test_all_models_complete(self):
        models = all_models()
        assert set(models) == set(TASK_CODES)

    def test_graph_names_unique(self):
        names = {g.name for g in all_models().values()}
        assert len(names) == 11
