"""Architecture-level tests for all eleven zoo models.

Checks each model's input resolution (including the appendix-A dataset
down-scales), the operator mix Table 7 reports, the relative compute
ordering the evaluation depends on, and that the lighter graphs actually
execute end-to-end through the numpy engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import GraphExecutor, OpType
from repro.zoo import all_models, build_model


@pytest.fixture(scope="module")
def models():
    return all_models()


class TestInputResolutions:
    def test_ht_stereo_half_scale(self, models):
        # Stereo pair (2 x RGB) at 1/2 of 640x480.
        assert models["HT"].input_shape == (6, 240, 320)

    def test_es_quarter_scale_openeds(self, models):
        assert models["ES"].input_shape == (1, 100, 160)

    def test_sr_logmel_features(self, models):
        c, h, w = models["SR"].input_shape
        assert c == 80 and h == 1  # 80-dim log-mel over time

    def test_ss_cityscapes_crop(self, models):
        assert models["SS"].input_shape == (3, 512, 1024)

    def test_dr_rgbd_input(self, models):
        assert models["DR"].input_shape[0] == 4  # RGB + sparse depth

    def test_pd_quarter_scale_kitti(self, models):
        c, h, w = models["PD"].input_shape
        assert (h, w) == (96, 320)


class TestOperatorMixes:
    """Table 7's "Major Operators" column, per model."""

    def _ops(self, models, code):
        return set(models[code].operator_mix())

    def test_sr_is_a_transformer(self, models):
        ops = self._ops(models, "SR")
        assert "SelfAttention" in ops and "Layernorm" in ops

    def test_ss_mixes_transformer_and_dwconv(self, models):
        ops = self._ops(models, "SS")
        assert {"SelfAttention", "Layernorm", "DWCONV"} <= ops

    def test_ge_uses_dwconv(self, models):
        assert "DWCONV" in self._ops(models, "GE")

    def test_de_uses_dwconv(self, models):
        assert "DWCONV" in self._ops(models, "DE")

    def test_dr_uses_deconv(self, models):
        assert "DeCONV" in self._ops(models, "DR")

    def test_od_uses_roialign(self, models):
        assert "RoIAlign" in self._ops(models, "OD")

    def test_pd_uses_roialign_and_deconv(self, models):
        ops = self._ops(models, "PD")
        assert "RoIAlign" in ops and "DeCONV" in ops

    def test_pure_cnns_have_no_attention(self, models):
        for code in ("HT", "ES", "KD", "AS", "DE", "DR", "PD"):
            assert "SelfAttention" not in self._ops(models, code), code

    def test_skip_connections_present(self, models):
        for code in ("HT", "ES", "GE", "KD", "DE"):
            assert any(
                layer.op is OpType.ADD for layer in models[code].layers
            ), code


class TestComputeOrdering:
    """Relative sizes that the evaluation's behaviour depends on."""

    def test_pd_dominates(self, models):
        macs = {c: g.total_macs for c, g in models.items()}
        pd = macs.pop("PD")
        assert pd > 2 * max(macs.values())

    def test_audio_models_tiny_vs_vision(self, models):
        assert models["KD"].total_macs < models["ES"].total_macs / 10

    def test_heavy_group(self, models):
        # SS and SR are the heaviest after PD.
        macs = {c: g.total_macs for c, g in models.items()}
        ordered = sorted(macs, key=macs.get, reverse=True)
        assert ordered[0] == "PD"
        assert set(ordered[1:4]) >= {"SS", "SR"}

    def test_all_param_counts_positive(self, models):
        for code, g in models.items():
            assert g.total_params > 1000, code


class TestExecutability:
    """The lighter graphs run end-to-end on the numpy engine.

    (The heavy ones are exercised by dedicated slow-marked tests in the
    integration suite; running PD's 43 GMACs through numpy in unit tests
    would dominate the suite's runtime.)
    """

    @pytest.mark.parametrize("code", ["KD", "AS", "GE"])
    def test_forward_pass(self, code):
        graph = build_model(code)
        out = GraphExecutor(graph, seed=0).run()
        assert out.shape == graph.out_shape
        assert np.isfinite(out).all()

    def test_kd_produces_12_keyword_logits(self):
        out = GraphExecutor(build_model("KD")).run()
        assert out.shape == (12, 1, 1)

    def test_as_produces_11_action_classes(self):
        out = GraphExecutor(build_model("AS")).run()
        assert out.shape[0] == 11

    def test_ge_produces_gaze_vector(self):
        out = GraphExecutor(build_model("GE")).run()
        assert out.shape == (3, 1, 1)


class TestTinyWidthExecutability:
    """Every architecture — including the heavyweights — executes on the
    numpy engine when built at a reduced width, validating the full layer
    graphs (shape chains, residual wiring, RoI folds) end to end."""

    @pytest.mark.parametrize(
        "code",
        ["HT", "ES", "GE", "KD", "SR", "SS", "OD", "AS", "DE", "DR", "PD"],
    )
    def test_reduced_width_forward_pass(self, code):
        from repro.zoo import MODEL_BUILDERS

        graph = MODEL_BUILDERS[code](0.25)
        out = GraphExecutor(graph, seed=0).run()
        assert out.shape == graph.out_shape
        assert np.isfinite(out).all()


class TestWidthParameter:
    def test_width_scales_macs_quadratically(self):
        from repro.zoo import eye_segmentation

        small = eye_segmentation.build(width=1.0)
        large = eye_segmentation.build(width=2.0)
        ratio = large.total_macs / small.total_macs
        assert 2.5 < ratio < 4.5  # ~quadratic in channel width

    def test_width_floor(self):
        from repro.zoo import keyword_detection

        tiny = keyword_detection.build(width=0.01)
        # Channel floor of 8 keeps the graph valid.
        assert all(layer.out_shape[0] >= 4 for layer in tiny.layers)
