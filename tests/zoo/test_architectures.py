"""Per-model architectural tests.

Each class pins down the structure of one zoo model: stage resolutions,
block counts, head shapes and the operator signature Table 7 attributes
to that model's published instance.  These are regression guards for the
calibrated architectures DESIGN.md documents.
"""

from __future__ import annotations

from repro.nn import OpType
from repro.zoo import build_model


def ops_of(code: str) -> list[OpType]:
    return [layer.op for layer in build_model(code).layers]


def count(code: str, op: OpType) -> int:
    return ops_of(code).count(op)


class TestHandTracking:
    g = staticmethod(lambda: build_model("HT"))

    def test_resnet_depth(self):
        # 8 residual blocks = 16 body convs + stem.
        assert count("HT", OpType.ADD) == 8

    def test_graph_cnn_head_is_fc(self):
        g = self.g()
        tail = [layer for layer in g.layers if layer.op is OpType.FC]
        assert [layer.name for layer in tail] == [
            "graph_latent", "mesh_vertices", "joints",
        ]

    def test_mesh_output_1280_vertices(self):
        assert self.g().find("mesh_vertices").out_shape[0] == 1280 * 3

    def test_joints_output_21_keypoints(self):
        assert self.g().out_shape == (21 * 3, 1, 1)

    def test_encoder_reaches_stride_32(self):
        # 240 -> 120 -> 60 -> 30 -> 15 -> 8 (odd dims round up at stride 2).
        g = self.g()
        gap_in = next(layer for layer in g.layers if layer.op is OpType.GLOBALPOOL)
        assert gap_in.in_shape[1] == 8


class TestEyeSegmentation:
    def test_unet_symmetry(self):
        # Two pool stages down, two upsample stages back.
        assert count("ES", OpType.AVGPOOL) == 2
        assert count("ES", OpType.UPSAMPLE) == 2

    def test_skip_concats(self):
        g = build_model("ES")
        cats = [layer for layer in g.layers if layer.op is OpType.CONCAT]
        assert {c.residual_from for c in cats} == {"enc1b", "enc2b"}

    def test_dense_prediction_at_input_resolution(self):
        g = build_model("ES")
        assert g.out_shape == (4, 100, 160)  # 4 eye classes, full res


class TestGazeEstimation:
    def test_inverted_residual_count(self):
        # FBNet-C style: every block carries exactly one depthwise conv.
        assert count("GE", OpType.DWCONV2D) == 10

    def test_downsamples_to_stride_32(self):
        g = build_model("GE")
        gap = next(layer for layer in g.layers if layer.op is OpType.GLOBALPOOL)
        assert gap.in_shape[1:] == (4, 4)  # 128 / 32

    def test_regression_head(self):
        assert build_model("GE").out_shape == (3, 1, 1)


class TestKeywordDetection:
    def test_res8_has_three_residual_blocks(self):
        assert count("KD", OpType.ADD) == 3

    def test_twelve_command_classes(self):
        assert build_model("KD").out_shape == (12, 1, 1)

    def test_tiny_footprint(self):
        g = build_model("KD")
        assert g.total_params < 50_000
        assert g.total_macs < 50e6


class TestSpeechRecognition:
    def test_24_transformer_blocks(self):
        assert count("SR", OpType.ATTENTION) == 24

    def test_prenorm_layout(self):
        # 2 norms per block + final norm.
        assert count("SR", OpType.LAYERNORM) == 24 * 2 + 1

    def test_vocab_projection(self):
        g = build_model("SR")
        assert g.find("vocab_proj").out_shape[0] == 4096

    def test_streaming_segment_length(self):
        assert build_model("SR").input_shape == (80, 1, 144)


class TestSemanticSegmentation:
    def test_transformer_stage_at_32nd_scale(self):
        g = build_model("SS")
        token_layer = g.find("tokenise")
        assert token_layer.out_shape[1:] == (1, 512)  # 16x32 tokens

    def test_four_attention_blocks(self):
        assert count("SS", OpType.ATTENTION) == 4

    def test_hr_branch_fused_in_decoder(self):
        g = build_model("SS")
        fuse = g.find("hr_fuse")
        assert fuse.op is OpType.CONCAT

    def test_19_cityscapes_classes_at_quarter_res(self):
        assert build_model("SS").out_shape == (19, 128, 256)


class TestObjectDetection:
    def test_two_stage_structure(self):
        g = build_model("OD")
        names = [layer.name for layer in g.layers]
        assert names.index("rpn_conv") < names.index("roialign")

    def test_roi_count(self):
        g = build_model("OD")
        assert g.find("roialign").extra["rois"] == 64

    def test_coco_head(self):
        assert build_model("OD").out_shape == (81 * 5, 1, 1)


class TestActionSegmentation:
    def test_encoder_decoder_symmetry(self):
        assert count("AS", OpType.MAXPOOL) == 2
        assert count("AS", OpType.UPSAMPLE) == 2

    def test_per_step_labels(self):
        g = build_model("AS")
        assert g.out_shape == (11, 8, 16)  # 11 classes over folded time

    def test_feature_input(self):
        assert build_model("AS").input_shape[0] == 2048


class TestDepthEstimation:
    def test_efficientnet_style_body(self):
        assert count("DE", OpType.DWCONV2D) >= 10

    def test_decoder_skip_fusion(self):
        assert count("DE", OpType.CONCAT) == 2

    def test_half_resolution_depth_map(self):
        assert build_model("DE").out_shape == (1, 128, 128)


class TestDepthRefinement:
    def test_four_deconv_stages(self):
        assert count("DR", OpType.DECONV2D) == 4

    def test_rgbd_input(self):
        assert build_model("DR").input_shape == (4, 228, 304)

    def test_dense_depth_output(self):
        c, h, w = build_model("DR").out_shape
        assert c == 1 and h > 100 and w > 140  # ~half input resolution


class TestPlaneDetection:
    def test_fpn_merges(self):
        g = build_model("PD")
        for name in ("fpn_merge4", "fpn_merge3", "fpn_merge2"):
            assert g.find(name).op is OpType.CONV2D

    def test_roi_head_depth(self):
        names = [layer.name for layer in build_model("PD").layers]
        heads = [n for n in names if n.startswith("head_conv")]
        assert len(heads) == 4

    def test_mask_branch_upsamples(self):
        g = build_model("PD")
        assert g.find("mask_deconv").op is OpType.DECONV2D

    def test_plane_parameter_output(self):
        # Normal (3) + offset (1) per mask pixel.
        assert build_model("PD").out_shape[0] == 4

    def test_dominant_cost_is_roi_heads(self):
        g = build_model("PD")
        names = [layer.name for layer in g.layers]
        roi_start = names.index("roialign")
        head_macs = sum(layer.macs for layer in g.layers[roi_start:])
        assert head_macs > 0.4 * g.total_macs
