"""Tests for the persistent run database and QoE Pareto reports."""

from __future__ import annotations

import json

import pytest

from repro.api import RunSpec
from repro.eval import (
    ReportGenerator,
    RunDatabase,
    RunRecord,
    summarize_report,
)


def make_record(policy="none", qoe=0.5, throughput=400.0, energy=100.0,
                scenario="vr_gaming", mode="scenario"):
    return RunRecord(
        spec={"scenario": scenario, "mode": mode, "admission": policy},
        metrics={
            "qoe": qoe,
            "throughput_rps": throughput,
            "energy_mj": energy,
            "miss_rate": 0.1,
            "quality_proxy": 1.0,
        },
        sessions=({"session_id": 0, "shed": False},),
    )


@pytest.fixture(scope="module")
def scenario_pair(short_harness, fda_ws_4k):
    spec = RunSpec(scenario="vr_gaming", accelerator="A", pes=4096,
                   duration_s=0.5)
    return spec, short_harness.run_scenario("vr_gaming", fda_ws_4k)


class TestSummarize:
    def test_scenario_report(self, scenario_pair):
        spec, report = scenario_pair
        record = summarize_report(spec, report)
        assert record.policy == "none"
        assert record.spec["scenario"] == "vr_gaming"
        assert len(record.sessions) == 1
        assert record.metrics["qoe"] == pytest.approx(report.score.qoe)
        assert record.metrics["frames_executed"] == len(
            report.simulation.completed()
        )
        assert record.metrics["quality_proxy"] == 1.0

    def test_spec_dict_accepted(self, scenario_pair):
        spec, report = scenario_pair
        a = summarize_report(spec, report)
        b = summarize_report(spec.to_dict(), report)
        assert a.spec == b.spec
        assert a.metrics == b.metrics

    def test_benchmark_report(self, short_harness, fda_ws_4k):
        spec = RunSpec(suite=True, accelerator="A", pes=4096,
                       duration_s=0.5)
        report = short_harness.run_suite(fda_ws_4k)
        record = summarize_report(spec, report)
        assert len(record.sessions) == len(report.scenario_reports)
        assert record.label == "suite[none]"
        assert record.metrics["throughput_rps"] > 0

    def test_multi_session_report(self, hda_j_4k):
        from repro.api import run_session_group

        spec = RunSpec(scenario="vr_gaming", accelerator="J", pes=4096,
                       sessions=4, duration_s=0.25, admission="shed")
        report = run_session_group(
            ["vr_gaming"] * 4, hda_j_4k, duration_s=0.25, admission="shed"
        )
        record = summarize_report(spec, report)
        assert record.policy == "shed"
        assert len(record.sessions) == 4
        # Shed sessions contribute zero retained quality.
        shed = [row for row in record.sessions if row["shed"]]
        if shed:
            assert record.metrics["quality_proxy"] < 1.0

    def test_unknown_report_type_rejected(self):
        with pytest.raises(TypeError, match="cannot summarize"):
            summarize_report({"scenario": "x"}, object())


class TestRunRecord:
    def test_policy_defaults_to_none(self):
        record = RunRecord(spec={}, metrics={})
        assert record.policy == "none"
        assert record.label == "?[none]"

    def test_label_and_qoe_point(self):
        record = make_record("degrade", qoe=0.7)
        assert record.label == "vr_gaming[degrade]"
        point = record.qoe_point()
        assert point.label == "vr_gaming[degrade]"
        assert point.qoe == pytest.approx(0.7)

    def test_suite_label(self):
        assert make_record(mode="suite").label == "suite[none]"
        spec = RunSpec(suite=True).to_dict()
        assert RunRecord(spec=spec, metrics={}).label == "suite[none]"

    def test_multi_scenario_label_uses_first(self):
        record = RunRecord(
            spec={"scenario": ["vr_gaming", "ar_gaming"],
                  "admission": "shed"},
            metrics={},
        )
        assert record.label == "vr_gaming[shed]"

    def test_dict_round_trip(self):
        record = make_record("shed")
        again = RunRecord.from_dict(record.to_dict())
        assert again == record


class TestRunDatabase:
    def test_missing_file_loads_empty(self, tmp_path):
        db = RunDatabase(tmp_path / "nope.jsonl")
        assert db.load() == []
        assert len(db) == 0

    def test_append_record_round_trip(self, tmp_path):
        db = RunDatabase(tmp_path / "runs" / "runs.jsonl")
        first, second = make_record("none"), make_record("degrade", qoe=0.6)
        db.append_record(first)
        db.append_record(second)
        assert db.load() == [first, second]
        assert len(db) == 2

    def test_append_summarizes_report(self, tmp_path, scenario_pair):
        spec, report = scenario_pair
        db = RunDatabase(tmp_path / "db.jsonl")
        record = db.append(spec, report)
        assert db.load() == [record]

    def test_lines_are_self_contained_json(self, tmp_path):
        path = tmp_path / "db.jsonl"
        RunDatabase(path).append_record(make_record())
        (line,) = path.read_text().splitlines()
        payload = json.loads(line)
        assert set(payload) == {"spec", "metrics", "sessions"}

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "db.jsonl"
        db = RunDatabase(path)
        db.append_record(make_record())
        with path.open("a") as fh:
            fh.write("\n   \n")
        db.append_record(make_record("shed"))
        assert len(db.load()) == 2

    def test_malformed_line_skipped_and_counted(self, tmp_path):
        path = tmp_path / "db.jsonl"
        db = RunDatabase(path)
        db.append_record(make_record())
        with path.open("a") as fh:
            fh.write('{"truncated": \n')
        records = db.load()
        assert len(records) == 1
        assert [lineno for lineno, _ in db.skipped_lines] == [2]

    def test_missing_keys_skipped(self, tmp_path):
        path = tmp_path / "db.jsonl"
        path.write_text('{"spec": {}}\n')
        db = RunDatabase(path)
        assert db.load() == []
        assert len(db.skipped_lines) == 1

    def test_truncated_tail_does_not_poison_later_appends(self, tmp_path):
        """A crashed writer's half-line corrupts only itself: the reader
        skips it and records appended afterwards still load."""
        path = tmp_path / "db.jsonl"
        db = RunDatabase(path)
        db.append_record(make_record())
        with path.open("a") as fh:
            fh.write('{"spec": {"admission')  # crash mid-write, no \n
        db.append_record(make_record("shed"))
        # The interrupted fragment and the next record share a line —
        # that one line is the only casualty.
        records = db.load()
        assert [r.policy for r in records] == ["none"]
        assert len(db.skipped_lines) == 1
        db.append_record(make_record("degrade"))
        assert [r.policy for r in db.load()] == ["none", "degrade"]
        assert len(db.skipped_lines) == 1

    def test_skipped_lines_reset_per_load(self, tmp_path):
        path = tmp_path / "db.jsonl"
        path.write_text("not json\n")
        db = RunDatabase(path)
        db.load()
        db.load()
        assert len(db.skipped_lines) == 1


class TestReportGenerator:
    @pytest.fixture
    def generator(self):
        return ReportGenerator(records=[
            make_record("none", qoe=0.45, throughput=420.0, energy=130.0),
            make_record("shed", qoe=0.30, throughput=300.0, energy=120.0),
            make_record("degrade", qoe=0.50, throughput=400.0, energy=100.0),
        ])

    def test_from_database(self, tmp_path):
        db = RunDatabase(tmp_path / "db.jsonl")
        db.append_record(make_record())
        gen = ReportGenerator.from_database(db)
        assert len(gen.records) == 1

    def test_policy_points_grouped_and_meaned(self):
        gen = ReportGenerator(records=[
            make_record("degrade", qoe=0.4),
            make_record("degrade", qoe=0.6),
            make_record("none", qoe=0.5),
        ])
        points = {p.label: p for p in gen.policy_points()}
        assert set(points) == {"degrade", "none"}
        assert points["degrade"].qoe == pytest.approx(0.5)

    def test_frontier_drops_dominated_policy(self, generator):
        labels = [p.label for p in generator.frontier()]
        # shed is beaten by degrade on every axis; none survives on
        # throughput.
        assert labels == ["degrade", "none"]

    def test_markdown_structure(self, generator):
        text = generator.markdown()
        assert "# XRBench run report" in text
        assert "## Runs" in text
        assert "## QoE Pareto frontier by admission policy" in text
        assert "| vr_gaming[shed] | shed |" in text
        assert "Frontier (best QoE first): degrade, none" in text
        # One data row per run in the runs table.
        runs_rows = [
            line for line in text.splitlines()
            if line.startswith("| vr_gaming[")
        ]
        assert len(runs_rows) == 3

    def test_html_structure(self, generator):
        page = generator.html()
        assert page.startswith("<!DOCTYPE html>")
        assert "<h1>XRBench run report</h1>" in page
        assert "<td>vr_gaming[degrade]</td>" in page
        assert "Frontier (best QoE first): degrade, none" in page

    def test_html_escapes_labels(self):
        record = make_record()
        record.spec["scenario"] = "<script>"
        page = ReportGenerator(records=[record]).html()
        assert "<script>" not in page
        assert "&lt;script&gt;" in page

    def test_render_dispatch(self, generator):
        assert generator.render("markdown") == generator.markdown()
        assert generator.render("html") == generator.html()
        with pytest.raises(ValueError, match="unknown report format"):
            generator.render("pdf")

    def test_empty_records_still_render(self):
        gen = ReportGenerator()
        assert gen.frontier() == []
        assert "No runs recorded." in gen.markdown()
        assert "No runs recorded." in gen.html()
