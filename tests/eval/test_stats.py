"""Tests for the multi-seed statistics module."""

from __future__ import annotations

import pytest

from repro.eval import run_seed_sweep
from repro.eval.stats import _summarise
from repro.hardware import build_accelerator


class TestSummarise:
    def test_basic(self):
        s = _summarise("x", [1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.std == pytest.approx(1.0)
        assert (s.minimum, s.maximum, s.n) == (1.0, 3.0, 3)

    def test_single_sample_zero_std(self):
        s = _summarise("x", [0.7])
        assert s.std == 0.0
        assert s.confidence_interval() == (0.7, 0.7)

    def test_confidence_interval_contains_mean(self):
        s = _summarise("x", [0.1, 0.2, 0.3, 0.4])
        lo, hi = s.confidence_interval(0.95)
        assert lo <= s.mean <= hi

    def test_wider_level_wider_interval(self):
        s = _summarise("x", [0.1, 0.5, 0.9, 0.3])
        lo90, hi90 = s.confidence_interval(0.90)
        lo99, hi99 = s.confidence_interval(0.99)
        assert hi99 - lo99 > hi90 - lo90

    def test_unsupported_level(self):
        s = _summarise("x", [1.0, 2.0])
        with pytest.raises(ValueError, match="confidence level"):
            s.confidence_interval(0.5)

    def test_describe(self):
        text = _summarise("overall", [0.5, 0.6]).describe()
        assert "overall" in text and "95% CI" in text


class TestRunSeedSweep:
    @pytest.fixture(scope="class")
    def sweep(self, short_harness):
        return run_seed_sweep(
            short_harness, "outdoor_activity_a",
            build_accelerator("A", 4096), seeds=8,
        )

    def test_components_present(self, sweep):
        assert set(sweep.statistics) == {
            "overall", "rt", "energy", "qoe", "drop_rate",
        }

    def test_dynamic_scenario_has_spread_or_stability(self, sweep):
        overall = sweep.get("overall")
        assert 0.0 <= overall.minimum <= overall.maximum <= 1.0
        assert overall.n == 8

    def test_get_unknown_raises(self, sweep):
        with pytest.raises(KeyError, match="no statistic"):
            sweep.get("latency")

    def test_describe(self, sweep):
        text = sweep.describe()
        assert "outdoor_activity_a" in text
        assert "overall" in text

    def test_rejects_zero_seeds(self, short_harness):
        with pytest.raises(ValueError, match="seeds"):
            run_seed_sweep(
                short_harness, "vr_gaming",
                build_accelerator("A", 4096), seeds=0,
            )

    def test_accepts_unregistered_custom_system(self, short_harness):
        # The facade exists for callers holding pre-built systems a
        # spec cannot name; an unregistered acc_id must not fail spec
        # validation inside the wrapper.
        import dataclasses

        system = dataclasses.replace(
            build_accelerator("A", 4096), acc_id="custom_a"
        )
        sweep = run_seed_sweep(
            short_harness, "vr_gaming", system, seeds=2
        )
        assert "custom_a" in sweep.system

    def test_dynamic_scenarios_vary_more_than_static(self, short_harness):
        # Outdoor A's KD->SR trigger is probabilistic; Social B has only
        # jitter randomness.  The dynamic scenario's spread dominates.
        system = build_accelerator("A", 8192)
        dynamic = run_seed_sweep(
            short_harness, "outdoor_activity_a", system, seeds=10
        )
        static = run_seed_sweep(
            short_harness, "social_interaction_b", system, seeds=10
        )
        assert dynamic.get("overall").std >= static.get("overall").std - 1e-6
