"""Tests for the definitional table renderings."""

from __future__ import annotations

from repro.eval import table1, table2, table3, table5, table6, table7


class TestTable1:
    def test_lists_all_tasks(self):
        text = table1()
        for code in ("HT", "ES", "GE", "KD", "SR", "SS", "OD", "AS",
                     "DE", "DR", "PD"):
            assert f"({code})" in text

    def test_requirements_present(self):
        text = table1()
        assert "mIoU, GT 90.54" in text
        assert "WER (others), LT 8.79" in text

    def test_categories(self):
        text = table1()
        assert "Interaction" in text
        assert "Context Understanding" in text
        assert "World Locking" in text


class TestTable2:
    def test_all_scenarios(self):
        text = table2()
        for name in ("social_interaction_a", "ar_gaming", "vr_gaming"):
            assert name in text

    def test_dependency_annotations(self):
        text = table2()
        assert "ES->GE:D" in text        # data dependency
        assert "KD->SR:C@20%" in text     # control dep at outdoor p=0.2
        assert "KD->SR:C@50%" in text     # AR assistant p=0.5

    def test_inactive_cells_dashed(self):
        assert " -" in table2()


class TestTable3:
    def test_sensors_and_rates(self):
        text = table3()
        assert "camera" in text and "60 FPS" in text
        assert "microphone" in text and "3 FPS" in text
        assert "0.10 ms" in text


class TestTable5:
    def test_thirteen_rows(self):
        text = table5()
        for acc in "ABCDEFGHIJKLM":
            assert f"\n{acc}   " in text

    def test_partitioning_shown(self):
        text = table5(4096)
        assert "WS@4096PE" in text                      # A
        assert "WS@3072PE + OS@1024PE" in text          # K (3:1)

    def test_custom_budget(self):
        assert "WS@8192PE" in table5(8192)


class TestTable6:
    def test_eleven_benchmarks_compared(self):
        text = table6()
        for name in ("MLPerf Inference", "DeepBench", "AIBench", "ILLIXR",
                     "VRMark", "XRBench"):
            assert name in text

    def test_xrbench_row_is_fully_checked(self):
        row = next(
            line for line in table6().splitlines() if line.startswith("XRBench")
        )
        assert row.count("y") == 8  # every column satisfied

    def test_partial_support_marked(self):
        assert "~" in table6()  # ILLIXR / AIBench triangles


class TestTable7:
    def test_instances_present(self):
        text = table7()
        for instance in ("RITNet", "FBNet-C", "res8-narrow", "EM-24L",
                         "HRViT-b1", "PlaneRCNN", "midas_v21_small"):
            assert instance in text

    def test_operator_mixes_present(self):
        text = table7()
        assert "SelfAttention" in text
        assert "DWCONV" in text
        assert "RoIAlign" in text

    def test_mac_counts_rendered(self):
        assert "G" in table7()  # GMAC-scale models exist
