"""Tests for the figure drivers (reduced sizes for speed)."""

from __future__ import annotations

import pytest

from repro.eval import (
    best_accelerator,
    format_figure5,
    format_figure6,
    format_figure7,
    format_figure8,
    run_figure5,
    run_figure6,
    run_figure7,
    run_figure8,
)


@pytest.fixture(scope="module")
def fig5_rows(shared_harness):
    # Reduced sweep: 3 accelerators, one budget, 2 scenarios.
    return run_figure5(
        shared_harness,
        acc_ids=("A", "B", "J"),
        pe_budgets={"4K": 4096},
        scenarios=("vr_gaming", "ar_gaming"),
    )


class TestFigure5:
    def test_row_count(self, fig5_rows):
        # 3 accs x (2 scenarios + 1 average).
        assert len(fig5_rows) == 9

    def test_scores_bounded(self, fig5_rows):
        for row in fig5_rows:
            for v in (row.rt, row.energy, row.qoe, row.overall):
                assert 0.0 <= v <= 1.0

    def test_average_rows_present(self, fig5_rows):
        averages = [r for r in fig5_rows if r.scenario == "average"]
        assert len(averages) == 3

    def test_average_is_mean(self, fig5_rows):
        for acc in ("A", "B", "J"):
            per = [r for r in fig5_rows
                   if r.acc_id == acc and r.scenario != "average"]
            avg = next(r for r in fig5_rows
                       if r.acc_id == acc and r.scenario == "average")
            assert avg.overall == pytest.approx(
                sum(r.overall for r in per) / len(per)
            )

    def test_format(self, fig5_rows):
        text = format_figure5(fig5_rows)
        assert "Figure 5" in text and "vr_gaming" in text

    def test_format_rejects_bad_metric(self, fig5_rows):
        with pytest.raises(ValueError, match="metric"):
            format_figure5(fig5_rows, "speed")

    def test_best_accelerator(self, fig5_rows):
        best = best_accelerator(fig5_rows, "vr_gaming", "4K")
        assert best in ("A", "B", "J")

    def test_best_accelerator_missing(self, fig5_rows):
        with pytest.raises(KeyError):
            best_accelerator(fig5_rows, "nope", "4K")


class TestFigure6:
    @pytest.fixture(scope="class")
    def results(self, shared_harness):
        return run_figure6(shared_harness)

    def test_both_budgets(self, results):
        assert set(results) == {"4K", "8K"}

    def test_paper_shape(self, results):
        # Section 4.2.2: the 4K system utilises more but drops more and
        # scores worse overall.
        small, big = results["4K"], results["8K"]
        assert small.drop_rate > big.drop_rate
        assert small.utilization >= big.utilization - 0.02
        assert small.report.overall < big.report.overall

    def test_format(self, results):
        text = format_figure6(results)
        assert "4K PEs" in text and "8K PEs" in text
        assert "Realtime" in text and "QoE" in text


class TestFigure7:
    @pytest.fixture(scope="class")
    def rows(self, shared_harness):
        return run_figure7(
            shared_harness, acc_ids=("B", "J"),
            probabilities=(0.25, 1.0), trials=5,
        )

    def test_row_count(self, rows):
        assert len(rows) == 4

    def test_scores_bounded(self, rows):
        for r in rows:
            assert 0.0 <= r.overall <= 1.0

    def test_j_beats_b(self, rows):
        # The paper picked B as the low-score and J as the high-score
        # design for VR gaming.
        b = [r for r in rows if r.acc_id == "B"]
        j = [r for r in rows if r.acc_id == "J"]
        assert min(x.overall for x in j) > max(x.overall for x in b)

    def test_qoe_declines_with_probability_on_b(self, shared_harness):
        rows = run_figure7(
            shared_harness, acc_ids=("B",),
            probabilities=(0.25, 1.0), trials=10,
        )
        assert rows[1].qoe <= rows[0].qoe + 0.01

    def test_rejects_zero_trials(self, shared_harness):
        with pytest.raises(ValueError, match="trials"):
            run_figure7(shared_harness, trials=0)

    def test_format(self, rows):
        text = format_figure7(rows)
        assert "Figure 7" in text and "100%" in text


class TestFigure8:
    def test_series_count(self):
        series = run_figure8()
        assert [s.k for s in series] == [0.0, 1.0, 15.0, 50.0]

    def test_k0_flat(self):
        series = run_figure8(ks=(0.0,))
        assert all(s == 0.5 for s in series[0].scores)

    def test_monotone_decreasing(self):
        series = run_figure8(ks=(15.0,))[0]
        assert list(series.scores) == sorted(series.scores, reverse=True)

    def test_larger_k_sharper_at_deadline(self):
        mild, sharp = run_figure8(ks=(1.0, 50.0), points=201)
        # Just past the deadline (latency 1.1 x slack 1.0).
        idx = next(i for i, lat in enumerate(mild.latencies_s) if lat > 1.1)
        assert sharp.scores[idx] < mild.scores[idx]

    def test_rejects_too_few_points(self):
        with pytest.raises(ValueError, match="points"):
            run_figure8(points=1)

    def test_format(self):
        assert "k=15" in format_figure8(run_figure8())
