"""Tests for the ablation drivers and Pareto analysis."""

from __future__ import annotations

import pytest

from repro.eval import (
    DesignPoint,
    dvfs_ablation,
    enmax_sensitivity,
    evaluate_designs,
    jitter_ablation,
    pareto_frontier,
    quantization_ablation,
    rt_k_sensitivity,
    scheduler_ablation,
)


class TestSchedulerAblation:
    def test_three_rows(self, cost_table):
        rows = scheduler_ablation(cost_table)
        assert [r.setting for r in rows] == [
            "latency_greedy", "round_robin", "edf",
        ]

    def test_scores_bounded(self, cost_table):
        for row in scheduler_ablation(cost_table):
            assert 0.0 <= row.overall <= 1.0


class TestJitterAblation:
    def test_rows(self, cost_table):
        rows = jitter_ablation(cost_table, seeds=5)
        assert [r.setting for r in rows] == ["jitter_mean", "jitter_spread"]

    def test_spread_small_but_measurable(self, cost_table):
        mean, spread = jitter_ablation(cost_table, seeds=8)
        # Sub-ms jitter perturbs scores only mildly on a stable scenario.
        assert 0.0 <= spread.overall < 0.3
        assert 0.3 < mean.overall <= 1.0


class TestRtKSensitivity:
    def test_rows_per_k(self, cost_table):
        rows = rt_k_sensitivity(cost_table, ks=(1.0, 50.0))
        assert [r.detail for r in rows] == [1.0, 50.0]

    def test_softer_k_boosts_violating_workload(self, cost_table):
        # AR gaming on J misses deadlines; a soft sigmoid forgives more.
        rows = rt_k_sensitivity(cost_table, ks=(1.0, 50.0))
        soft, sharp = rows
        assert soft.rt >= sharp.rt


class TestEnmaxSensitivity:
    def test_larger_budget_higher_score(self, cost_table):
        rows = enmax_sensitivity(cost_table, enmaxes=(500.0, 4500.0))
        tight, loose = rows
        assert loose.overall >= tight.overall


class TestDvfsAblation:
    @pytest.fixture(scope="class")
    def result(self, cost_table):
        return dvfs_ablation(cost_table)

    def test_covers_all_models(self, result):
        assert len(result) == 11

    def test_savings_nonnegative_when_feasible(self, result):
        for code, row in result.items():
            if row["chosen_frequency"] <= 1.0:
                assert row["energy_saving"] >= -1e-9, code

    def test_light_models_run_eco(self, result):
        # KD has 333 ms of slack and sub-ms latency: eco always fits.
        assert result["KD"]["chosen_frequency"] == 0.5
        assert result["KD"]["energy_saving"] > 0.3

    def test_pd_cannot_slow_down(self, result):
        # PD barely misses its deadline at nominal: DVFS must not pick a
        # slower point.
        assert result["PD"]["chosen_frequency"] >= 1.0

    def test_scaled_latency_consistent(self, result):
        for row in result.values():
            expected = row["nominal_latency_ms"] / row["chosen_frequency"]
            assert row["scaled_latency_ms"] == pytest.approx(expected)


class TestQuantizationAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return quantization_ablation(codes=("KD",), bit_widths=(8, 4))

    def test_structure(self, result):
        assert set(result) == {"KD"}
        assert set(result["KD"]) == {8, 4}

    def test_int8_passes_int4_degrades(self, result):
        int8, int4 = result["KD"][8], result["KD"][4]
        assert int8["accuracy_score"] >= int4["accuracy_score"]
        assert int8["meets_goal"] == 1.0


class TestPareto:
    def make(self, score, energy, drops, acc="X"):
        return DesignPoint(acc, 4096, score, energy, drops)

    def test_dominance(self):
        good = self.make(0.9, 100.0, 0.0)
        bad = self.make(0.5, 200.0, 0.1)
        assert good.dominates(bad)
        assert not bad.dominates(good)

    def test_tradeoff_points_incomparable(self):
        fast = self.make(0.9, 300.0, 0.0)
        frugal = self.make(0.6, 100.0, 0.0)
        assert not fast.dominates(frugal)
        assert not frugal.dominates(fast)

    def test_frontier_excludes_dominated(self):
        a = self.make(0.9, 100.0, 0.0, "A")
        b = self.make(0.8, 150.0, 0.1, "B")  # dominated by A
        c = self.make(0.5, 50.0, 0.0, "C")   # cheaper: on the frontier
        frontier = pareto_frontier([a, b, c])
        ids = [p.acc_id for p in frontier]
        assert ids == ["A", "C"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no design"):
            pareto_frontier([])

    def test_duplicate_points_both_survive(self):
        # Dominance needs strict improvement somewhere, so exact ties
        # never knock each other out.
        a = self.make(0.9, 100.0, 0.0, "A")
        b = self.make(0.9, 100.0, 0.0, "B")
        assert not a.dominates(b)
        assert not b.dominates(a)
        frontier = pareto_frontier([a, b])
        assert {p.acc_id for p in frontier} == {"A", "B"}

    def test_single_point_frontier(self):
        only = self.make(0.5, 500.0, 0.3, "Z")
        assert pareto_frontier([only]) == [only]

    def test_axis_tie_resolved_by_other_axes(self):
        # Equal score; the cheaper design dominates on the remaining
        # axes and the tie does not save the loser.
        cheap = self.make(0.7, 100.0, 0.0, "A")
        dear = self.make(0.7, 200.0, 0.0, "B")
        assert cheap.dominates(dear)
        assert not dear.dominates(cheap)
        assert [p.acc_id for p in pareto_frontier([cheap, dear])] == ["A"]

    def test_dominates_is_irreflexive(self):
        p = self.make(0.7, 100.0, 0.1)
        assert not p.dominates(p)

    def test_dominates_is_antisymmetric(self):
        pool = [
            self.make(0.9, 100.0, 0.0),
            self.make(0.9, 100.0, 0.1),
            self.make(0.5, 100.0, 0.0),
            self.make(0.9, 200.0, 0.0),
            self.make(0.5, 200.0, 0.1),
        ]
        for p in pool:
            for q in pool:
                assert not (p.dominates(q) and q.dominates(p))

    def test_qoe_point_space(self):
        from repro.eval import QoePoint

        better = QoePoint("degrade", qoe=0.5, throughput_rps=400.0,
                          energy_mj=100.0)
        worse = QoePoint("shed", qoe=0.3, throughput_rps=300.0,
                         energy_mj=120.0)
        trade = QoePoint("none", qoe=0.45, throughput_rps=420.0,
                         energy_mj=130.0)
        assert better.dominates(worse)
        assert not better.dominates(trade)  # higher throughput saves it
        frontier = pareto_frontier([better, worse, trade])
        assert [p.label for p in frontier] == ["degrade", "none"]

    def test_evaluate_designs_small(self, shared_harness):
        points = evaluate_designs(
            shared_harness, acc_ids=("A", "C"), total_pes=4096
        )
        assert len(points) == 2
        frontier = pareto_frontier(points)
        assert frontier  # at least one non-dominated design
        for p in points:
            assert 0.0 <= p.xrbench_score <= 1.0
            assert p.mean_energy_mj > 0
