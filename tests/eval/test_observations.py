"""Tests for the automated Section-4 claim verification."""

from __future__ import annotations

import pytest

from repro.eval import format_observations, verify_observations
from repro.eval.observations import Observation


@pytest.fixture(scope="module")
def observations(shared_harness):
    return verify_observations(shared_harness)


class TestVerifyObservations:
    def test_five_claims_checked(self, observations):
        assert len(observations) == 5

    def test_all_hold_on_shipped_calibration(self, observations):
        broken = [o.claim for o in observations if not o.holds]
        assert not broken, broken

    def test_sources_cite_paper_sections(self, observations):
        for obs in observations:
            assert obs.source.startswith("4.")

    def test_evidence_is_concrete(self, observations):
        for obs in observations:
            assert obs.evidence.strip(), obs.claim


class TestFormat:
    def test_report_structure(self, observations):
        text = format_observations(observations)
        assert text.count("[HOLDS ]") + text.count("[BROKEN]") == 5
        assert "Observation 3" in text

    def test_broken_claim_rendering(self):
        obs = [Observation("x", "4.9", False, "n=1")]
        assert "[BROKEN]" in format_observations(obs)
