"""Tests for the benchmark harness."""

from __future__ import annotations

import pytest

from repro.core import Harness, HarnessConfig, ScoreConfig
from repro.workload import SCENARIO_ORDER, get_scenario


class TestConfigValidation:
    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError, match="duration"):
            HarnessConfig(duration_s=0.0)

    def test_rejects_negative_seed(self):
        with pytest.raises(ValueError, match="seed"):
            HarnessConfig(seed=-1)

    def test_rejects_bad_score_config(self):
        with pytest.raises(ValueError, match="rt_k"):
            ScoreConfig(rt_k=-1)
        with pytest.raises(ValueError, match="energy_max"):
            ScoreConfig(energy_max_mj=0)
        with pytest.raises(ValueError, match="acc_epsilon"):
            ScoreConfig(acc_epsilon=0)


class TestRunScenario:
    def test_accepts_name_or_object(self, short_harness, fda_ws_4k):
        by_name = short_harness.run_scenario("vr_gaming", fda_ws_4k)
        by_obj = short_harness.run_scenario(
            get_scenario("vr_gaming"), fda_ws_4k
        )
        assert by_name.overall == pytest.approx(by_obj.overall)

    def test_unknown_scenario_raises(self, short_harness, fda_ws_4k):
        with pytest.raises(KeyError, match="unknown scenario"):
            short_harness.run_scenario("nope", fda_ws_4k)

    def test_seed_override(self, short_harness, fda_ws_4k):
        a = short_harness.run_scenario("vr_gaming", fda_ws_4k, seed=1)
        b = short_harness.run_scenario("vr_gaming", fda_ws_4k, seed=1)
        assert a.overall == pytest.approx(b.overall)

    def test_scheduler_choice_affects_results(self, cost_table, hda_j_4k):
        greedy = Harness(
            config=HarnessConfig(scheduler="latency_greedy"),
            costs=cost_table,
        ).run_scenario("ar_gaming", hda_j_4k)
        rr = Harness(
            config=HarnessConfig(scheduler="round_robin"), costs=cost_table
        ).run_scenario("ar_gaming", hda_j_4k)
        # Round-robin ignores engine fit; on a heterogeneous (HDA) system
        # under load it cannot beat latency-greedy.
        assert rr.overall <= greedy.overall + 0.05


class TestRunSessions:
    def test_four_session_multiplex_reports_per_session_qoe(
        self, short_harness, hda_j_4k
    ):
        report = short_harness.run_sessions("vr_gaming", hda_j_4k,
                                            num_sessions=4)
        assert len(report.session_reports) == 4
        for session_report in report.session_reports:
            assert 0.0 <= session_report.score.qoe <= 1.0
        summary = report.summary()
        assert "4 sessions of vr_gaming" in summary
        assert "session 3:" in summary
        assert 0.0 <= report.mean_overall <= 1.0

    def test_session_lookup(self, short_harness, hda_j_4k):
        report = short_harness.run_sessions("vr_gaming", hda_j_4k,
                                            num_sessions=2)
        assert report.session(1).simulation.session_id == 1
        with pytest.raises(KeyError):
            report.session(9)

    def test_mixed_scenario_sequence(self, short_harness, hda_j_4k):
        report = short_harness.run_sessions(
            ["vr_gaming", "ar_assistant"], hda_j_4k
        )
        names = [
            r.simulation.scenario.name for r in report.session_reports
        ]
        assert names == ["vr_gaming", "ar_assistant"]

    def test_segment_granularity_through_harness(
        self, short_harness, hda_j_4k
    ):
        report = short_harness.run_sessions(
            "ar_gaming", hda_j_4k, num_sessions=2, granularity="segment"
        )
        assert any(
            r.num_segments > 1 for r in report.result.records
        )

    def test_cost_cache_layered_over_harness_table(
        self, short_harness, hda_j_4k
    ):
        report = short_harness.run_sessions("vr_gaming", hda_j_4k,
                                            num_sessions=2)
        stats = report.result.cost_stats
        assert stats is not None and stats.hit_rate > 0.5

    def test_empty_sequence_rejected(self, short_harness, hda_j_4k):
        with pytest.raises(ValueError, match="at least one session"):
            short_harness.run_sessions([], hda_j_4k)


class TestRunSuite:
    def test_covers_all_scenarios(self, short_harness, fda_ws_4k):
        report = short_harness.run_suite(fda_ws_4k)
        names = [r.simulation.scenario.name for r in report.scenario_reports]
        assert names == list(SCENARIO_ORDER)

    def test_xrbench_score_is_mean(self, short_harness, fda_ws_4k):
        report = short_harness.run_suite(fda_ws_4k)
        mean = sum(r.overall for r in report.scenario_reports) / 7
        assert report.xrbench_score == pytest.approx(mean)

    def test_scenario_lookup(self, short_harness, fda_ws_4k):
        report = short_harness.run_suite(fda_ws_4k)
        assert report.scenario("ar_gaming").simulation.scenario.name == (
            "ar_gaming"
        )
        with pytest.raises(KeyError):
            report.scenario("nope")

    def test_shared_cost_table_reused(self, cost_table, fda_ws_4k):
        harness = Harness(
            config=HarnessConfig(duration_s=0.5), costs=cost_table
        )
        harness.run_scenario("vr_gaming", fda_ws_4k)
        size_before = len(cost_table._cache)
        harness.run_scenario("vr_gaming", fda_ws_4k)
        assert len(cost_table._cache) == size_before
