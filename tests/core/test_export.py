"""Tests for report export and the submission format."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.core import (
    benchmark_to_dict,
    scenario_to_dict,
    submission,
    to_csv,
)


@pytest.fixture(scope="module")
def scenario_report(short_harness, fda_ws_4k):
    return short_harness.run_scenario("vr_gaming", fda_ws_4k)


@pytest.fixture(scope="module")
def suite_report(short_harness, fda_ws_4k):
    return short_harness.run_suite(fda_ws_4k)


class TestScenarioToDict:
    def test_json_serialisable(self, scenario_report):
        data = scenario_to_dict(scenario_report)
        json.dumps(data)  # must not raise

    def test_scores_match_report(self, scenario_report):
        data = scenario_to_dict(scenario_report)
        assert data["scores"]["overall"] == pytest.approx(
            scenario_report.overall
        )
        assert data["scenario"] == "vr_gaming"

    def test_frame_accounting_consistent(self, scenario_report):
        data = scenario_to_dict(scenario_report)
        frames = data["frames"]
        assert frames["streamed"] == frames["executed"] + frames["dropped"]

    def test_per_model_entries(self, scenario_report):
        data = scenario_to_dict(scenario_report)
        codes = {m["code"] for m in data["models"]}
        assert codes == {"HT", "ES", "GE"}


class TestBenchmarkToDict:
    def test_structure(self, suite_report):
        data = benchmark_to_dict(suite_report)
        assert len(data["scenarios"]) == 7
        assert data["xrbench_score"] == pytest.approx(
            suite_report.xrbench_score
        )
        json.dumps(data)


class TestCsv:
    def test_parses_back(self, suite_report):
        text = to_csv(suite_report)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert rows
        # One row per (scenario, model).
        expected = sum(
            len(r.score.model_scores) for r in suite_report.scenario_reports
        )
        assert len(rows) == expected

    def test_columns(self, suite_report):
        header = to_csv(suite_report).splitlines()[0].split(",")
        for col in ("system", "scenario", "model", "qoe", "rt",
                    "missed_deadlines"):
            assert col in header

    def test_values_numeric(self, suite_report):
        rows = list(csv.DictReader(io.StringIO(to_csv(suite_report))))
        for row in rows:
            assert 0.0 <= float(row["qoe"]) <= 1.0
            assert int(row["streamed"]) >= int(row["executed"])


class TestSubmission:
    def test_mandatory_fields_only_by_default(self, suite_report):
        payload = json.loads(submission(suite_report))
        assert payload["benchmark"] == "XRBench"
        assert "xrbench_score" in payload
        # Section 3.7: breakdowns are optional and off by default.
        assert "breakdowns" not in payload

    def test_optional_breakdowns(self, suite_report):
        payload = json.loads(submission(suite_report, include_breakdowns=True))
        assert len(payload["breakdowns"]) == 7
        for row in payload["breakdowns"]:
            assert set(row) == {"scenario", "overall", "rt", "energy", "qoe"}

    def test_score_round_trips(self, suite_report):
        payload = json.loads(submission(suite_report))
        assert payload["xrbench_score"] == pytest.approx(
            suite_report.xrbench_score, abs=1e-6
        )


class TestEnergyTotals:
    """Per-session energy_mj totals ride along the Enmax-bounded score."""

    def test_scenario_dict_carries_energy_total(self, scenario_report):
        data = scenario_to_dict(scenario_report)
        assert data["energy_mj"] == pytest.approx(
            scenario_report.simulation.total_energy_mj()
        )
        assert data["energy_mj"] > 0.0
        # The bounded score stays where it always was.
        assert 0.0 <= data["scores"]["energy"] <= 1.0

    def test_csv_has_session_energy_column(self, suite_report):
        rows = list(csv.DictReader(io.StringIO(to_csv(suite_report))))
        assert all("session_energy_mj" in row for row in rows)
        assert all(float(row["session_energy_mj"]) > 0.0 for row in rows)

    def test_utilization_export_is_window_bounded(self, scenario_report):
        data = scenario_to_dict(scenario_report)
        for value in data["utilization"].values():
            assert 0.0 <= value <= 1.0 + 1e-9


class TestAdmissionExport:
    """The per-session admission block and its CSV projection."""

    NEUTRAL = {
        "policy": "none",
        "shed": False,
        "shed_reason": None,
        "degradation_level": 0,
        "quality_proxy": 1.0,
        "actions": [],
    }

    @pytest.fixture(scope="class")
    def degrade_group(self, hda_j_4k):
        from repro.api import run_session_group

        return run_session_group(
            ["vr_gaming"] * 16,
            hda_j_4k,
            duration_s=0.25,
            admission="degrade",
        )

    def test_single_tenant_run_exports_neutral_block(self, scenario_report):
        # The Harness path never installs a controller, so the block is
        # the documented all-defaults stamp.
        data = scenario_to_dict(scenario_report)
        assert data["admission"] == self.NEUTRAL

    def test_csv_columns_present_and_neutral(self, suite_report):
        rows = list(csv.DictReader(io.StringIO(to_csv(suite_report))))
        for row in rows:
            assert row["shed"] == "0"
            assert row["degradation_level"] == "0"
            assert float(row["quality_proxy"]) == pytest.approx(1.0)

    def test_degraded_session_exports_actions(self, degrade_group):
        dicts = [scenario_to_dict(r) for r in degrade_group.session_reports]
        assert all(d["admission"]["policy"] == "degrade" for d in dicts)
        degraded = [
            d for d in dicts if d["admission"]["degradation_level"] > 0
        ]
        assert degraded, "16 tenants on 4096 PEs must trigger degradation"
        for data in degraded:
            block = data["admission"]
            assert not block["shed"]
            assert 0.0 < block["quality_proxy"] < 1.0
            assert block["actions"]
            last = block["actions"][-1]
            assert last["kind"] == "degrade"
            assert last["level"] == block["degradation_level"]
            assert 0.0 <= last["miss_ewma"] <= 1.0
        json.dumps(dicts[0])  # the block must stay JSON-serialisable
