"""Tests for hierarchical score aggregation (Figure 4)."""

from __future__ import annotations

import pytest

from repro.core import ScoreConfig, benchmark_score
from repro.core.aggregate import InferenceScore, ModelScore, ScenarioScore
from repro.workload import InferenceRequest


def make_request(code="HT", frame=0, latency=0.005, energy=100.0,
                 slack=0.033) -> InferenceRequest:
    r = InferenceRequest(code, frame, 0.0, slack)
    r.start_time_s = 0.0
    r.end_time_s = latency
    r.energy_mj = energy
    r.accelerator_id = 0
    return r


def make_inf(code="HT", rt=1.0, en=0.9, acc=1.0) -> InferenceScore:
    return InferenceScore(make_request(code), rt=rt, energy=en, accuracy=acc)


def make_model(code="HT", scores=(), streamed=10, executed=None,
               dropped=0, missed=0) -> ModelScore:
    executed = len(scores) if executed is None else executed
    return ModelScore(
        model_code=code, inference_scores=tuple(scores),
        frames_streamed=streamed, frames_executed=executed,
        frames_dropped=dropped, missed_deadlines=missed,
    )


class TestInferenceScore:
    def test_overall_is_product(self):
        s = make_inf(rt=0.5, en=0.8, acc=1.0)
        assert s.overall == pytest.approx(0.4)


class TestModelScore:
    def test_per_model_is_mean(self):
        m = make_model(scores=[make_inf(rt=1.0), make_inf(rt=0.0)])
        expected = (1.0 * 0.9 + 0.0) / 2
        assert m.per_model == pytest.approx(expected)

    def test_all_dropped_scores_zero(self):
        # Figure 4 note: if all the frames are dropped, the score is zero.
        m = make_model(scores=[], streamed=10, executed=0, dropped=10)
        assert m.per_model == 0.0
        assert m.contribution == 0.0

    def test_qoe_reflects_drops(self):
        m = make_model(scores=[make_inf()] * 6, streamed=10, executed=6,
                       dropped=4)
        assert m.qoe == pytest.approx(0.6)

    def test_contribution_multiplies_qoe(self):
        m = make_model(scores=[make_inf(rt=1.0, en=1.0)], streamed=2,
                       executed=1, dropped=1)
        assert m.contribution == pytest.approx(0.5)

    def test_mean_unit(self):
        m = make_model(scores=[make_inf(rt=0.2), make_inf(rt=0.8)])
        assert m.mean_unit("rt") == pytest.approx(0.5)
        assert m.mean_unit("energy") == pytest.approx(0.9)


class TestScenarioScore:
    def test_overall_averages_models(self):
        s = ScenarioScore("x", (
            make_model("HT", [make_inf(rt=1.0, en=1.0)], streamed=1),
            make_model("ES", [make_inf(rt=0.0, en=1.0)], streamed=1),
        ))
        assert s.overall == pytest.approx(0.5)

    def test_never_offered_model_excluded(self):
        s = ScenarioScore("x", (
            make_model("HT", [make_inf(rt=1.0, en=1.0)], streamed=1),
            make_model("SR", [], streamed=0, executed=0),
        ))
        # SR never streamed a frame -> neutral, not zero.
        assert s.overall == pytest.approx(1.0)
        assert len(s.scored_models) == 1

    def test_offered_but_all_dropped_counts_as_zero(self):
        s = ScenarioScore("x", (
            make_model("HT", [make_inf(rt=1.0, en=1.0)], streamed=1),
            make_model("PD", [], streamed=10, executed=0, dropped=10),
        ))
        assert s.overall == pytest.approx(0.5)

    def test_unit_breakdowns(self):
        s = ScenarioScore("x", (
            make_model("HT", [make_inf(rt=0.4, en=0.6)], streamed=1),
            make_model("ES", [make_inf(rt=0.8, en=1.0)], streamed=1),
        ))
        assert s.rt == pytest.approx(0.6)
        assert s.energy == pytest.approx(0.8)

    def test_totals(self):
        s = ScenarioScore("x", (
            make_model("HT", [make_inf()], streamed=5, executed=1,
                       dropped=4, missed=1),
            make_model("ES", [make_inf()], streamed=5, executed=1,
                       dropped=2, missed=3),
        ))
        assert s.total_dropped == 6
        assert s.total_missed_deadlines == 4

    def test_model_lookup(self):
        s = ScenarioScore("x", (make_model("HT", [make_inf()]),))
        assert s.model("HT").model_code == "HT"
        with pytest.raises(KeyError):
            s.model("ES")

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no models"):
            ScenarioScore("x", ())


class TestBenchmarkScore:
    def test_mean_over_scenarios(self):
        s1 = ScenarioScore("a", (make_model("HT", [make_inf(rt=1.0, en=1.0)],
                                            streamed=1),))
        s2 = ScenarioScore("b", (make_model("HT", [make_inf(rt=0.0, en=1.0)],
                                            streamed=1),))
        assert benchmark_score([s1, s2]) == pytest.approx(0.5)

    def test_empty_suite_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            benchmark_score([])


class TestScoreSimulation:
    def test_end_to_end(self, short_harness, fda_ws_4k):
        report = short_harness.run_scenario("vr_gaming", fda_ws_4k)
        score = report.score
        assert 0.0 <= score.overall <= 1.0
        assert {m.model_code for m in score.model_scores} == {
            "HT", "ES", "GE",
        }

    def test_measured_quality_lowers_accuracy(self, short_harness, fda_ws_4k):
        good = short_harness.run_scenario("vr_gaming", fda_ws_4k)
        degraded = short_harness.run_scenario(
            "vr_gaming", fda_ws_4k,
            measured_quality={"ES": 45.0},  # target is 90.54 mIoU
        )
        assert degraded.score.model("ES").mean_unit("accuracy") == (
            pytest.approx(45.0 / 90.54)
        )
        assert degraded.score.overall < good.score.overall

    def test_default_accuracy_is_one(self, short_harness, fda_ws_4k):
        report = short_harness.run_scenario("vr_gaming", fda_ws_4k)
        assert report.score.accuracy == pytest.approx(1.0)

    def test_custom_config_enmax(self, fda_ws_4k, cost_table):
        from repro.core import Harness, HarnessConfig

        tight = Harness(
            config=HarnessConfig(
                duration_s=0.5, score=ScoreConfig(energy_max_mj=100.0)
            ),
            costs=cost_table,
        )
        loose = Harness(
            config=HarnessConfig(duration_s=0.5), costs=cost_table
        )
        a = tight.run_scenario("vr_gaming", fda_ws_4k).score.energy
        b = loose.run_scenario("vr_gaming", fda_ws_4k).score.energy
        assert a < b
