"""Tests for the four unit score functions (Box 2)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    accuracy_score,
    energy_score,
    inference_score,
    qoe_score,
    realtime_score,
)
from repro.workload import MetricType, QualityGoal


class TestRealtimeScore:
    def test_half_at_deadline(self):
        # Latency exactly equal to slack is the sigmoid midpoint.
        assert realtime_score(10.0, 10.0, k=15) == pytest.approx(0.5)

    def test_well_within_deadline_is_one(self):
        assert realtime_score(1.0, 10.0, k=15) == pytest.approx(1.0, abs=1e-9)

    def test_well_beyond_deadline_is_zero(self):
        assert realtime_score(20.0, 10.0, k=15) == pytest.approx(0.0, abs=1e-9)

    def test_k_zero_is_flat(self):
        assert realtime_score(0.0, 10.0, k=0) == 0.5
        assert realtime_score(100.0, 10.0, k=0) == 0.5

    def test_larger_k_is_sharper(self):
        # Figure 8: larger k approaches a step at the deadline.
        lateness = 0.2
        soft = realtime_score(10 + lateness, 10.0, k=1)
        sharp = realtime_score(10 + lateness, 10.0, k=50)
        assert sharp < soft < 0.5

    def test_monotone_decreasing_in_latency(self):
        scores = [realtime_score(lat, 10.0) for lat in (5, 8, 10, 12, 15)]
        assert scores == sorted(scores, reverse=True)

    def test_negative_slack_gives_zero(self):
        # Data arrived after the deadline: any latency scores ~0.
        assert realtime_score(1.0, -5.0) < 1e-9

    def test_extreme_values_no_overflow(self):
        assert realtime_score(1e9, 0.0) == 0.0
        assert realtime_score(0.0, 1e9) == 1.0

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError, match="latency"):
            realtime_score(-1.0, 10.0)

    def test_rejects_negative_k(self):
        with pytest.raises(ValueError, match="k"):
            realtime_score(1.0, 10.0, k=-1)

    @given(
        latency=st.floats(min_value=0, max_value=1e4),
        slack=st.floats(min_value=-1e4, max_value=1e4),
        k=st.floats(min_value=0, max_value=100),
    )
    def test_always_in_unit_interval(self, latency, slack, k):
        assert 0.0 <= realtime_score(latency, slack, k) <= 1.0


class TestEnergyScore:
    def test_zero_energy_is_one(self):
        assert energy_score(0.0) == 1.0

    def test_at_enmax_is_zero(self):
        assert energy_score(1500.0) == 0.0

    def test_beyond_enmax_clips_to_zero(self):
        assert energy_score(5000.0) == 0.0

    def test_linear_between(self):
        assert energy_score(750.0) == pytest.approx(0.5)
        assert energy_score(300.0) == pytest.approx(0.8)

    def test_custom_enmax(self):
        assert energy_score(50.0, energy_max_mj=100.0) == pytest.approx(0.5)

    def test_rejects_negative_energy(self):
        with pytest.raises(ValueError, match="energy"):
            energy_score(-1.0)

    def test_rejects_nonpositive_enmax(self):
        with pytest.raises(ValueError, match="energy_max"):
            energy_score(1.0, energy_max_mj=0.0)

    @given(e=st.floats(min_value=0, max_value=1e6))
    def test_always_in_unit_interval(self, e):
        assert 0.0 <= energy_score(e) <= 1.0


class TestAccuracyScore:
    hib = QualityGoal("mIoU", 90.0, MetricType.HIGHER_IS_BETTER)
    lib = QualityGoal("WER", 8.0, MetricType.LOWER_IS_BETTER)

    def test_hib_meeting_target_is_one(self):
        assert accuracy_score(self.hib, 90.0) == pytest.approx(1.0)

    def test_hib_exceeding_target_caps_at_one(self):
        # Box 2's max(1, .) is an obvious typo for min: quality beyond the
        # target must not inflate the score.
        assert accuracy_score(self.hib, 120.0) == 1.0

    def test_hib_below_target_is_ratio(self):
        assert accuracy_score(self.hib, 45.0) == pytest.approx(0.5)

    def test_lib_meeting_target_is_one(self):
        assert accuracy_score(self.lib, 8.0) == pytest.approx(1.0, abs=1e-5)

    def test_lib_better_than_target_caps_at_one(self):
        assert accuracy_score(self.lib, 4.0) == 1.0

    def test_lib_worse_than_target_is_ratio(self):
        assert accuracy_score(self.lib, 16.0) == pytest.approx(0.5, abs=1e-5)

    def test_lib_epsilon_guards_zero(self):
        # A perfect (0) error on a lower-is-better metric must not divide
        # by zero.
        assert accuracy_score(self.lib, 0.0) == 1.0

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError, match="epsilon"):
            accuracy_score(self.hib, 90.0, epsilon=0.0)

    def test_rejects_negative_measurement(self):
        with pytest.raises(ValueError, match="measured"):
            accuracy_score(self.hib, -1.0)

    @given(measured=st.floats(min_value=0, max_value=1e4))
    def test_always_in_unit_interval(self, measured):
        assert 0.0 <= accuracy_score(self.hib, measured) <= 1.0
        assert 0.0 <= accuracy_score(self.lib, measured) <= 1.0


class TestQoEScore:
    def test_all_frames_processed(self):
        assert qoe_score(60, 60) == 1.0

    def test_half_dropped(self):
        assert qoe_score(30, 60) == 0.5

    def test_all_dropped(self):
        assert qoe_score(0, 60) == 0.0

    def test_no_work_offered_is_neutral(self):
        assert qoe_score(0, 0) == 1.0

    def test_rejects_excess_executed(self):
        with pytest.raises(ValueError, match="executed"):
            qoe_score(61, 60)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="frame counts"):
            qoe_score(-1, 10)


class TestInferenceScore:
    def test_product(self):
        assert inference_score(0.5, 0.8, 1.0) == pytest.approx(0.4)

    def test_any_zero_zeroes_it(self):
        assert inference_score(0.0, 1.0, 1.0) == 0.0
        assert inference_score(1.0, 0.0, 1.0) == 0.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="rt"):
            inference_score(1.5, 1.0, 1.0)
        with pytest.raises(ValueError, match="accuracy"):
            inference_score(1.0, 1.0, -0.1)

    @given(
        rt=st.floats(0, 1), en=st.floats(0, 1), acc=st.floats(0, 1),
    )
    def test_product_bounded(self, rt, en, acc):
        s = inference_score(rt, en, acc)
        assert 0.0 <= s <= min(rt, en, acc) + 1e-12
