"""Tests for scenario and benchmark reports."""

from __future__ import annotations

import pytest


@pytest.fixture(scope="module")
def vr_report(short_harness, fda_ws_4k):
    return short_harness.run_scenario("vr_gaming", fda_ws_4k)


@pytest.fixture(scope="module")
def suite_report(short_harness, fda_ws_4k):
    return short_harness.run_suite(fda_ws_4k)


class TestScenarioReport:
    def test_summary_mentions_everything(self, vr_report):
        text = vr_report.summary()
        assert "vr_gaming" in text
        assert "overall=" in text
        assert "missed deadlines" in text
        for code in ("HT", "ES", "GE"):
            assert code in text

    def test_delay_over_deadline_keys(self, vr_report):
        delays = vr_report.delay_over_deadline_ms()
        assert set(delays) == {"HT", "ES", "GE"}
        assert all(v >= 0 for v in delays.values())

    def test_timeline_renders(self, vr_report):
        text = vr_report.timeline(width=30)
        assert "ms/char" in text

    def test_overall_matches_score(self, vr_report):
        assert vr_report.overall == vr_report.score.overall


class TestBenchmarkReport:
    def test_breakdown_rows(self, suite_report):
        rows = suite_report.breakdown_rows()
        assert len(rows) == 7
        for row in rows:
            for key in ("rt", "energy", "qoe", "overall"):
                assert 0.0 <= row[key] <= 1.0

    def test_summary(self, suite_report):
        text = suite_report.summary()
        assert "XRBench SCORE" in text
        assert "ar_gaming" in text

    def test_score_bounded(self, suite_report):
        assert 0.0 <= suite_report.xrbench_score <= 1.0
