"""Shared fixtures for the XRBench reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core import Harness, HarnessConfig
from repro.costmodel import CostTable
from repro.hardware import build_accelerator


@pytest.fixture(scope="session")
def cost_table() -> CostTable:
    """One shared cost table so model analysis runs once per session."""
    return CostTable()


@pytest.fixture(scope="session")
def shared_harness(cost_table: CostTable) -> Harness:
    """A default harness sharing the session cost table."""
    return Harness(costs=cost_table)


@pytest.fixture(scope="session")
def short_harness(cost_table: CostTable) -> Harness:
    """A harness with a short duration for fast runtime tests."""
    return Harness(
        config=HarnessConfig(duration_s=0.5), costs=cost_table
    )


@pytest.fixture(scope="session")
def fda_ws_4k():
    return build_accelerator("A", 4096)


@pytest.fixture(scope="session")
def hda_j_4k():
    return build_accelerator("J", 4096)


@pytest.fixture(scope="session")
def quad_h_4k():
    return build_accelerator("H", 4096)
