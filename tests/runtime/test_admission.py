"""QoE admission control: controllers, mechanisms and properties.

Three layers of coverage:

* Unit tests for the controllers themselves (EWMA thresholds, shed
  victim choice, priced degradation steps, quality retention).
* The ``none``-policy bit-identity contract: an explicit
  ``admission="none"`` run must reproduce every golden schedule
  checksum — static and dynamic — because no controller object means no
  CONTROL_TICK events at all.
* The never-worse properties: at equal seeds, ``shed`` never increases
  the deadline-miss rate versus ``none`` under any registered
  scheduler, and ``degrade`` strictly reduces it under the
  throughput-greedy family (``latency_greedy``, ``round_robin``).  The
  EDF caveat — degradation converting freshness-drops into late
  completions at deep saturation — is documented in
  ``repro.runtime.admission`` and deliberately *not* asserted.
"""

from __future__ import annotations

from functools import lru_cache

import pytest

from test_schedule_equivalence import (
    GOLDEN,
    GOLDEN_DYNAMIC,
    checksum_of,
)

from repro.hardware import build_accelerator
from repro.runtime import (
    ADMISSION_POLICIES,
    DEGRADATION_LADDER,
    DegradeController,
    EventKind,
    MultiScenarioSimulator,
    SessionView,
    ShedController,
    make_admission,
    make_scheduler,
    quality_retention,
)
from repro.workload import get_scenario

VR = get_scenario("vr_gaming")


# -- factory and constants ---------------------------------------------------


def test_policies_mirror_api_spec():
    from repro.api.spec import ADMISSION_POLICIES as SPEC_POLICIES

    assert ADMISSION_POLICIES == SPEC_POLICIES == ("none", "shed", "degrade")


def test_make_admission_none_installs_no_controller():
    assert make_admission("none") is None


def test_make_admission_builds_controllers():
    assert isinstance(make_admission("shed"), ShedController)
    assert isinstance(make_admission("degrade"), DegradeController)


def test_make_admission_rejects_unknown_policy():
    with pytest.raises(ValueError, match="unknown admission policy"):
        make_admission("panic")


def test_control_tick_is_a_first_class_event_kind():
    assert EventKind.CONTROL_TICK.value == "control_tick"


def test_ladder_rates_strictly_decrease():
    factors = [step.rate_factor for step in DEGRADATION_LADDER]
    assert factors[0] == 1.0
    assert all(a > b for a, b in zip(factors, factors[1:]))
    assert DEGRADATION_LADDER[0].bits is None


# -- ShedController ----------------------------------------------------------


def view(session_id: int, level: int = 0, remaining_s: float = 1.0):
    return SessionView(session_id, level, VR, remaining_s)


def test_shed_admits_and_stays_quiet_before_min_observations():
    ctl = ShedController()
    for _ in range(ctl.min_observations - 1):
        ctl.observe(0, True)
    assert ctl.admit(0.1, 7) is None
    assert ctl.decide(0.1, [view(0), view(1)], lambda c: 0.01, 2) == []


def overload(ctl, session_id: int = 0, n: int | None = None) -> None:
    for _ in range(n if n is not None else ctl.min_observations * 3):
        ctl.observe(session_id, True)


def test_shed_rejects_joins_under_overload():
    ctl = ShedController()
    overload(ctl)
    action = ctl.admit(0.1, 7)
    assert action is not None
    assert action.kind == "reject"
    assert action.session_id == 7
    assert action.miss_ewma > ctl.threshold


def test_shed_drops_the_highest_session_id_first():
    ctl = ShedController()
    overload(ctl)
    actions = ctl.decide(0.1, [view(0), view(2), view(1)], lambda c: 0.01, 2)
    assert [a.session_id for a in actions] == [2]
    assert actions[0].kind == "shed"


def test_shed_waits_for_effect_between_actions():
    ctl = ShedController()
    overload(ctl)
    assert ctl.decide(0.1, [view(0), view(1)], lambda c: 0.01, 2)
    # No further completions observed -> no second shed yet.
    assert ctl.decide(0.12, [view(0), view(1)], lambda c: 0.01, 2) == []
    overload(ctl, n=ctl.min_observations)
    assert ctl.decide(0.14, [view(0), view(1)], lambda c: 0.01, 2)


def test_shed_never_drops_below_min_keep():
    ctl = ShedController()
    overload(ctl)
    assert ctl.decide(0.1, [view(0)], lambda c: 0.01, 2) == []


def test_shed_recovers_when_misses_stop():
    ctl = ShedController()
    overload(ctl)
    for _ in range(60):
        ctl.observe(0, False)
    assert ctl.admit(0.5, 9) is None


# -- DegradeController -------------------------------------------------------


def test_degrade_never_rejects_at_join():
    ctl = DegradeController()
    overload(ctl, session_id=3)
    assert ctl.admit(0.1, 3) is None


def test_degrade_steps_a_struggling_session_down_the_ladder():
    ctl = DegradeController()
    overload(ctl, session_id=3)
    actions = ctl.decide(0.1, [view(3)], lambda c: 0.005, 2)
    assert len(actions) == 1
    action = actions[0]
    assert action.kind == "degrade"
    assert action.session_id == 3
    assert action.level >= 1
    assert "ladder level 0 ->" in action.reason


def test_degrade_prices_the_step_by_observed_miss_fraction():
    ctl = DegradeController()
    # EWMA saturates to ~1.0: target load ~0 -> deepest rung.
    overload(ctl, session_id=0)
    deep = ctl.decide(0.1, [view(0)], lambda c: 0.005, 2)[0].level
    assert deep == len(DEGRADATION_LADDER) - 1
    # A moderately-over-threshold EWMA (~0.40 for this mix) wants a
    # milder rung than the saturated one.
    ctl.reset()
    for missed in [False, False, True] * 6:
        ctl.observe(0, missed)
    assert ctl._miss_ewma[0] > ctl.threshold
    mild = ctl.decide(0.2, [view(0)], lambda c: 0.005, 2)[0].level
    assert mild <= deep


def test_degrade_ignores_quiet_and_expiring_sessions():
    ctl = DegradeController()
    overload(ctl, session_id=0)
    overload(ctl, session_id=1)
    views = [
        view(0, remaining_s=ctl.min_remaining_s / 2),  # about to switch
        view(1),
        view(2),  # no observations at all
    ]
    actions = ctl.decide(0.1, views, lambda c: 0.005, 2)
    assert [a.session_id for a in actions] == [1]


def test_degrade_waits_for_effect_before_escalating():
    ctl = DegradeController()
    overload(ctl, session_id=0)
    first = ctl.decide(0.1, [view(0)], lambda c: 0.005, 2)
    assert first
    after = ctl.decide(0.12, [view(0, level=first[0].level)],
                       lambda c: 0.005, 2)
    assert after == []  # observations were reset by the action


def test_degrade_stops_at_the_bottom_of_the_ladder():
    ctl = DegradeController()
    overload(ctl, session_id=0)
    bottom = len(DEGRADATION_LADDER) - 1
    assert ctl.decide(0.1, [view(0, level=bottom)], lambda c: 0.005, 2) == []


# -- quality retention -------------------------------------------------------


def test_quality_retention_is_full_at_level_zero():
    assert quality_retention(VR, 0) == 1.0


def test_quality_retention_decreases_down_the_ladder():
    values = [
        quality_retention(VR, level)
        for level in range(len(DEGRADATION_LADDER))
    ]
    assert all(0.0 < v <= 1.0 for v in values)
    assert all(a >= b for a, b in zip(values, values[1:]))
    assert values[-1] < 1.0


def test_quality_retention_clamps_past_the_ladder_end():
    bottom = len(DEGRADATION_LADDER) - 1
    assert quality_retention(VR, bottom + 5) == quality_retention(VR, bottom)


def test_quality_retention_rejects_negative_levels():
    with pytest.raises(ValueError):
        quality_retention(VR, -1)


# -- none-policy bit-identity ------------------------------------------------


def run_case_with_none_policy(scheduler, granularity, sessions,
                              churn=0.0, preemptive=False, dvfs="static"):
    """The golden runner, but with ``admission="none"`` passed explicitly."""
    from test_schedule_equivalence import (
        ACCELERATOR,
        BASE_SEED,
        DURATION_S,
        PES,
        SCENARIO,
    )
    from repro.workload import churn_windows

    kwargs = {"preemptive": True} if preemptive else {}
    windows = (
        churn_windows(sessions, DURATION_S, churn, BASE_SEED)
        if churn
        else None
    )
    return MultiScenarioSimulator.replicate(
        get_scenario(SCENARIO),
        build_accelerator(ACCELERATOR, PES),
        make_scheduler(scheduler, **kwargs),
        sessions,
        base_seed=BASE_SEED,
        duration_s=DURATION_S,
        granularity=granularity,
        windows=windows,
        dvfs_policy=dvfs,
        admission="none",
    ).run()


@pytest.mark.parametrize(
    "scheduler,granularity,sessions", sorted(GOLDEN), ids=lambda v: str(v)
)
def test_none_policy_leaves_static_goldens_unchanged(scheduler, granularity,
                                                     sessions):
    result = run_case_with_none_policy(scheduler, granularity, sessions)
    assert checksum_of(result) == GOLDEN[(scheduler, granularity, sessions)]


@pytest.mark.parametrize(
    "scheduler,granularity,sessions,churn,preemptive,dvfs",
    sorted(GOLDEN_DYNAMIC),
    ids=lambda v: str(v),
)
def test_none_policy_leaves_dynamic_goldens_unchanged(
    scheduler, granularity, sessions, churn, preemptive, dvfs
):
    result = run_case_with_none_policy(
        scheduler, granularity, sessions, churn, preemptive, dvfs
    )
    key = (scheduler, granularity, sessions, churn, preemptive, dvfs)
    assert checksum_of(result) == GOLDEN_DYNAMIC[key]


def test_none_policy_stamps_no_admission_record():
    result = run_case_with_none_policy("latency_greedy", "model", 4)
    assert all(s.admission is None for s in result.sessions)


# -- controlled runs ---------------------------------------------------------


@lru_cache(maxsize=None)
def controlled_run(scheduler: str, granularity: str, sessions: int,
                   policy: str):
    return MultiScenarioSimulator.replicate(
        get_scenario("vr_gaming"),
        build_accelerator("J", 8192),
        make_scheduler(scheduler),
        sessions,
        base_seed=0,
        duration_s=0.25,
        granularity=granularity,
        admission=policy,
    ).run()


def miss_rate(result) -> float:
    completed = sum(len(s.completed()) for s in result.sessions)
    missed = sum(s.missed_deadlines() for s in result.sessions)
    return missed / completed if completed else 0.0


def test_shed_stamps_records_and_retires_victims():
    result = controlled_run("latency_greedy", "model", 16, "shed")
    records = [s.admission for s in result.sessions]
    assert all(r is not None and r.policy == "shed" for r in records)
    shed = [r for r in records if r.shed]
    assert shed, "overload at 16 sessions must shed someone"
    assert len(shed) < 16, "min_keep must preserve a survivor"
    for record in shed:
        assert record.shed_reason
        assert record.actions
        assert record.actions[-1].kind in ("shed", "reject")
    # A shed session's stream keeps counting against it as drops.
    by_id = {
        s.session_id: s for s in result.sessions
    }
    victim = max(r.actions[-1].session_id for r in shed)
    assert len(by_id[victim].dropped()) > 0


def test_degrade_stamps_levels_actions_and_quality():
    result = controlled_run("latency_greedy", "model", 16, "degrade")
    records = [s.admission for s in result.sessions]
    assert all(r is not None and r.policy == "degrade" for r in records)
    assert all(not r.shed for r in records)
    degraded = [r for r in records if r.degradation_level > 0]
    assert degraded, "overload at 16 sessions must degrade someone"
    for record in degraded:
        assert record.actions
        assert all(a.kind == "degrade" for a in record.actions)
        assert record.actions[-1].level == record.degradation_level
        assert quality_retention(VR, record.degradation_level) < 1.0


def test_controlled_runs_are_deterministic():
    a = MultiScenarioSimulator.replicate(
        get_scenario("vr_gaming"), build_accelerator("J", 8192),
        make_scheduler("latency_greedy"), 16, base_seed=0,
        duration_s=0.25, admission="degrade",
    ).run()
    b = MultiScenarioSimulator.replicate(
        get_scenario("vr_gaming"), build_accelerator("J", 8192),
        make_scheduler("latency_greedy"), 16, base_seed=0,
        duration_s=0.25, admission="degrade",
    ).run()
    assert checksum_of(a) == checksum_of(b)


# -- never-worse properties --------------------------------------------------


@pytest.mark.parametrize(
    "scheduler", ["latency_greedy", "round_robin", "edf", "rate_monotonic"]
)
def test_shed_never_increases_miss_rate(scheduler):
    """Shedding only removes offered load — under every scheduler."""
    base = miss_rate(controlled_run(scheduler, "model", 16, "none"))
    shed = miss_rate(controlled_run(scheduler, "model", 16, "shed"))
    assert shed <= base


@pytest.mark.parametrize("scheduler", ["latency_greedy", "round_robin"])
@pytest.mark.parametrize("granularity", ["model", "segment"])
def test_degrade_cuts_miss_rate_under_throughput_greedy(scheduler,
                                                        granularity):
    """Degradation strictly helps where freshness-drops do not invert it.

    Scoped to the throughput-greedy schedulers on purpose: under EDF at
    deep saturation, slowing a stream lets stale queued frames complete
    late instead of being freshness-dropped, which can *raise* the
    conditional miss rate (see the module docstring of
    ``repro.runtime.admission``).
    """
    base = miss_rate(controlled_run(scheduler, granularity, 16, "none"))
    degraded = miss_rate(
        controlled_run(scheduler, granularity, 16, "degrade")
    )
    assert degraded < base
