"""Tests for timeline extraction and rendering."""

from __future__ import annotations

import pytest

from repro.costmodel import CostTable
from repro.hardware import build_accelerator
from repro.runtime import (
    LatencyGreedyScheduler,
    Simulator,
    extract_timeline,
    render_timeline,
)
from repro.workload import get_scenario


@pytest.fixture(scope="module")
def result():
    return Simulator(
        scenario=get_scenario("ar_gaming"),
        system=build_accelerator("J", 8192),
        scheduler=LatencyGreedyScheduler(),
        duration_s=1.0,
        costs=CostTable(),
    ).run()


class TestExtract:
    def test_one_lane_per_engine(self, result):
        lanes = extract_timeline(result)
        assert set(lanes) == {0, 1}

    def test_segments_sorted_and_disjoint(self, result):
        for segments in extract_timeline(result).values():
            for a, b in zip(segments, segments[1:]):
                assert a.start_s <= b.start_s
                assert a.end_s <= b.start_s + 1e-12

    def test_segment_count_matches_completions(self, result):
        lanes = extract_timeline(result)
        total = sum(len(s) for s in lanes.values())
        assert total == len(result.completed())

    def test_segment_durations_positive(self, result):
        for segments in extract_timeline(result).values():
            assert all(s.duration_s > 0 for s in segments)


class TestRender:
    def test_has_row_per_engine(self, result):
        text = render_timeline(result, width=50)
        assert text.count("|") == 2 * result.system.num_subs

    def test_row_width(self, result):
        lines = render_timeline(result, width=40).splitlines()[1:]
        for line in lines:
            start = line.index("|")
            assert line[start:].count("|") == 2
            assert len(line[start + 1 : line.rindex("|")]) == 40

    def test_model_initials_present(self, result):
        text = render_timeline(result, width=80)
        # AR gaming runs HT, DE, PD: H, D, P initials must appear.
        assert "P" in text and "D" in text and "H" in text

    def test_invalid_until_raises(self, result):
        with pytest.raises(ValueError, match="until_s"):
            render_timeline(result, until_s=0.0)
