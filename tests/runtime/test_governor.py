"""Runtime DVFS governor tests.

Three contracts:

* ``dvfs_policy="static"`` is the historical runtime, bit-identically:
  every pinned golden schedule checksum must reproduce with the policy
  passed explicitly (the governor-absent case is pinned by
  ``test_schedule_equivalence`` itself).
* The ``slack`` policy spends slack, never deadlines: on cells with
  headroom it uses no more energy than static and misses no deadline
  static met.
* Governor mechanics: point selection per policy, frequency-transition
  logs, operating-point stamps on execution records, and honest energy
  totals.
"""

from __future__ import annotations

import pytest
from test_schedule_equivalence import GOLDEN, checksum_of

from repro.costmodel import (
    DEFAULT_DVFS_POINTS,
    CachedCostTable,
    DvfsPoint,
)
from repro.hardware import build_accelerator
from repro.runtime import (
    DispatchContext,
    EngineFleet,
    ExecutionEngine,
    MultiScenarioSimulator,
    RaceToIdleGovernor,
    SlackGovernor,
    StaticGovernor,
    WorkItem,
    make_governor,
    make_scheduler,
)
from repro.workload import InferenceRequest, get_scenario

SCENARIO = "vr_gaming"
ACCELERATOR = "J"
PES = 8192
DURATION_S = 0.25


def run_governed(scheduler: str, granularity: str, sessions: int,
                 dvfs_policy: str, base_seed: int = 0,
                 duration_s: float = DURATION_S):
    return MultiScenarioSimulator.replicate(
        get_scenario(SCENARIO),
        build_accelerator(ACCELERATOR, PES),
        make_scheduler(scheduler),
        sessions,
        base_seed=base_seed,
        duration_s=duration_s,
        granularity=granularity,
        dvfs_policy=dvfs_policy,
    ).run()


def missed_frames(result) -> set[tuple[int, str, int]]:
    """(session, model, frame) keys of every completed-but-late request."""
    return {
        (session.session_id, request.model_code, request.model_frame)
        for session in result.sessions
        for request in session.completed()
        if request.missed_deadline
    }


class TestStaticPolicyIsBitIdentical:
    """All 24 pinned schedules reproduce with dvfs_policy="static"."""

    @pytest.mark.parametrize(
        "scheduler,granularity,sessions",
        sorted(GOLDEN),
        ids=lambda v: str(v),
    )
    def test_explicit_static_matches_golden(self, scheduler, granularity,
                                            sessions):
        result = run_governed(scheduler, granularity, sessions, "static")
        assert checksum_of(result) == GOLDEN[
            (scheduler, granularity, sessions)
        ]

    def test_static_records_carry_base_point(self):
        result = run_governed("latency_greedy", "model", 1, "static")
        assert {record.dvfs for record in result.records} == {None}

    def test_slack_changes_the_schedule_somewhere(self):
        """Sanity: the governed path is not accidentally a no-op."""
        governed = {
            checksum_of(run_governed("latency_greedy", g, n, "slack"))
            for g in ("model", "segment")
            for n in (1, 2)
        }
        static = {
            checksum_of(run_governed("latency_greedy", g, n, "static"))
            for g in ("model", "segment")
            for n in (1, 2)
        }
        assert governed != static


class TestSlackProperty:
    """Slack spends headroom, not deadlines (cells with headroom)."""

    @pytest.mark.parametrize("base_seed", [0, 3, 7, 11])
    @pytest.mark.parametrize("sessions", [1, 2])
    @pytest.mark.parametrize("granularity", ["model", "segment"])
    def test_slack_never_misses_what_static_met(self, granularity,
                                                sessions, base_seed):
        static = run_governed("latency_greedy", granularity, sessions,
                              "static", base_seed)
        slack = run_governed("latency_greedy", granularity, sessions,
                             "slack", base_seed)
        assert missed_frames(slack) <= missed_frames(static)
        assert slack.total_energy_mj() <= static.total_energy_mj() + 1e-9

    def test_bench_acceptance_cell_saves_energy_at_fixed_qoe(self):
        """The multi-session cell persisted in BENCH_runtime.json."""
        static = run_governed("latency_greedy", "segment", 2, "static",
                              duration_s=1.0)
        slack = run_governed("latency_greedy", "segment", 2, "slack",
                             duration_s=1.0)
        assert slack.total_energy_mj() < static.total_energy_mj()
        assert len(missed_frames(slack)) <= len(missed_frames(static))

    def test_race_to_idle_never_misses_more(self):
        static = run_governed("latency_greedy", "model", 2, "static")
        raced = run_governed("latency_greedy", "model", 2, "race_to_idle")
        assert len(missed_frames(raced)) <= len(missed_frames(static))
        # ... by paying for it: boost burns more energy than nominal.
        assert raced.total_energy_mj() > static.total_energy_mj()


@pytest.fixture()
def dispatch_fixture():
    """A priced single-item dispatch scene for unit-testing governors."""
    system = build_accelerator(ACCELERATOR, PES)
    engine = ExecutionEngine(sub=system.subs[0])
    costs = CachedCostTable()
    nominal = system.engine_cost(costs, "HT", 0, None)
    request = InferenceRequest(
        model_code="HT",
        model_frame=0,
        request_time_s=0.0,
        deadline_s=nominal.latency_s * 10,
    )
    return system, engine, costs, nominal, WorkItem(request=request)


class TestGovernorSelection:
    def test_make_governor_static_is_absent(self):
        assert make_governor("static") is None

    def test_make_governor_accepts_hyphens(self):
        assert isinstance(make_governor("race-to-idle"), RaceToIdleGovernor)

    def test_make_governor_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown dvfs policy"):
            make_governor("warp_speed")

    def test_static_governor_returns_base_point(self, dispatch_fixture):
        system, engine, costs, _, item = dispatch_fixture
        low = DvfsPoint("low", 0.7)
        engine = ExecutionEngine(sub=system.subs[0], dvfs=low)
        chosen = StaticGovernor().select(
            0.0, item, engine, (), system, costs, DispatchContext()
        )
        assert chosen is low

    def test_race_to_idle_picks_fastest(self, dispatch_fixture):
        system, engine, costs, _, item = dispatch_fixture
        chosen = RaceToIdleGovernor().select(
            0.0, item, engine, (), system, costs, DispatchContext()
        )
        assert chosen is not None
        assert chosen.frequency_scale == max(
            p.frequency_scale for p in DEFAULT_DVFS_POINTS
        )

    def test_slack_downshifts_with_generous_headroom(
        self, dispatch_fixture
    ):
        system, engine, costs, _, item = dispatch_fixture
        chosen = SlackGovernor().select(
            0.0, item, engine, (), system, costs, DispatchContext()
        )
        assert chosen is not None
        assert chosen.name == "eco"

    def test_slack_declines_under_contention(self, dispatch_fixture):
        system, engine, costs, _, item = dispatch_fixture
        chosen = SlackGovernor().select(
            0.0, item, engine, (), system, costs,
            DispatchContext(contended=True),
        )
        assert chosen is engine.dvfs

    def test_slack_declines_for_upstream_models(self, dispatch_fixture):
        system, engine, costs, _, item = dispatch_fixture
        chosen = SlackGovernor().select(
            0.0, item, engine, (), system, costs,
            DispatchContext(has_dependents=True),
        )
        assert chosen is engine.dvfs

    def test_slack_respects_event_horizon(self, dispatch_fixture):
        system, engine, costs, nominal, item = dispatch_fixture
        # The next scheduled event lands before any slower point could
        # finish, so the governor must not stretch past it.
        chosen = SlackGovernor().select(
            0.0, item, engine, (), system, costs,
            DispatchContext(next_event_s=nominal.latency_s * 1.01),
        )
        assert chosen is engine.dvfs

    def test_slack_races_only_when_it_rescues(self, dispatch_fixture):
        system, engine, costs, nominal, item = dispatch_fixture
        boost_latency = system.engine_cost(
            costs, "HT", 0, DvfsPoint("boost", 1.3)
        ).latency_s
        # Boost fits, nominal does not -> race.
        rescuable = WorkItem(request=InferenceRequest(
            model_code="HT", model_frame=1, request_time_s=0.0,
            deadline_s=(boost_latency + nominal.latency_s) / 2,
        ))
        chosen = SlackGovernor().select(
            0.0, rescuable, engine, (), system, costs, DispatchContext()
        )
        assert chosen is not None and chosen.name == "boost"
        # Nothing fits -> stay at base instead of burning boost energy.
        hopeless = WorkItem(request=InferenceRequest(
            model_code="HT", model_frame=2, request_time_s=0.0,
            deadline_s=boost_latency / 2,
        ))
        chosen = SlackGovernor().select(
            0.0, hopeless, engine, (), system, costs, DispatchContext()
        )
        assert chosen is engine.dvfs

    def test_slack_reserves_budget_for_remaining_segments(
        self, dispatch_fixture
    ):
        system, engine, costs, nominal, item = dispatch_fixture
        # Deadline fits this piece at eco, but only if no later segment
        # needed time; with a whole extra model's worth reserved, the
        # eco stretch no longer fits.
        tight = WorkItem(
            request=InferenceRequest(
                model_code="HT", model_frame=3, request_time_s=0.0,
                deadline_s=nominal.latency_s * 2.5,
            ),
            num_segments=2,
            task_code="HT",
        )
        unreserved = SlackGovernor().select(
            0.0, tight, engine, (), system, costs, DispatchContext()
        )
        reserved = SlackGovernor().select(
            0.0, tight, engine, ("HT",), system, costs, DispatchContext()
        )
        assert unreserved is not None and unreserved.name == "eco"
        assert reserved is not unreserved


class TestTransitionsAndRecords:
    def test_fleet_begin_logs_frequency_transitions(self):
        system = build_accelerator(ACCELERATOR, PES)
        engine = ExecutionEngine(sub=system.subs[0])
        fleet = EngineFleet([engine])
        costs = CachedCostTable()
        eco = DvfsPoint("eco", 0.5)
        item = WorkItem(request=InferenceRequest(
            model_code="HT", model_frame=0,
            request_time_s=0.0, deadline_s=1.0,
        ))
        cost = system.engine_cost(costs, "HT", 0, eco)
        end = fleet.begin(engine, item, 0.0, cost, dvfs=eco)
        fleet.finish(0, end)
        cost2 = system.engine_cost(costs, "HT", 0, None)
        item2 = WorkItem(request=InferenceRequest(
            model_code="HT", model_frame=1,
            request_time_s=end, deadline_s=end + 1.0,
        ))
        end2 = fleet.begin(engine, item2, end, cost2, dvfs=None)
        fleet.finish(0, end2)
        assert engine.dvfs_transitions == [
            (0.0, None, eco), (end, eco, None),
        ]
        assert [record.dvfs for record in engine.records] == ["eco", None]

    def test_same_point_redispatch_logs_no_transition(self):
        system = build_accelerator(ACCELERATOR, PES)
        engine = ExecutionEngine(sub=system.subs[0])
        fleet = EngineFleet([engine])
        costs = CachedCostTable()
        cost = system.engine_cost(costs, "HT", 0, None)
        for frame in range(3):
            item = WorkItem(request=InferenceRequest(
                model_code="HT", model_frame=frame,
                request_time_s=0.0, deadline_s=1.0,
            ))
            end = fleet.begin(engine, item, 0.0 + frame, cost, dvfs=None)
            fleet.finish(0, end)
        assert engine.dvfs_transitions == []

    def test_governed_run_stamps_points_on_records(self):
        result = run_governed("latency_greedy", "model", 1, "race_to_idle")
        assert result.records
        assert {record.dvfs for record in result.records} == {"boost"}
        static = run_governed("latency_greedy", "model", 1, "static")
        assert result.total_energy_mj() > static.total_energy_mj()


class TestEnergyAccounting:
    def test_total_energy_is_sum_of_session_energy(self):
        result = run_governed("latency_greedy", "model", 4, "static")
        assert result.total_energy_mj() == pytest.approx(
            sum(s.total_energy_mj() for s in result.sessions)
        )

    def test_session_energy_is_record_sum(self):
        result = run_governed("latency_greedy", "segment", 2, "slack")
        for session in result.sessions:
            assert session.total_energy_mj() == pytest.approx(
                sum(record.energy_mj for record in session.records)
            )

    def test_governed_runs_validate_policy_eagerly(self):
        with pytest.raises(ValueError, match="unknown dvfs policy"):
            MultiScenarioSimulator.replicate(
                get_scenario(SCENARIO),
                build_accelerator(ACCELERATOR, PES),
                make_scheduler("latency_greedy"),
                1,
                duration_s=DURATION_S,
                dvfs_policy="overclock",
            )


class TestPolicyListConsistency:
    """One policy set, three declaration sites — pinned to each other."""

    def test_api_mirror_matches_runtime(self):
        from repro.api import DVFS_POLICIES as api_policies
        from repro.runtime import DVFS_POLICIES as runtime_policies

        assert tuple(api_policies) == tuple(runtime_policies)

    def test_schema_enum_matches_runtime(self):
        import json
        from pathlib import Path

        from repro.runtime import DVFS_POLICIES as runtime_policies

        schema_path = (
            Path(__file__).resolve().parents[2]
            / "schema" / "runspec.schema.json"
        )
        schema = json.loads(schema_path.read_text())
        enum = schema["definitions"]["runspec"]["properties"][
            "dvfs_policy"
        ]["enum"]
        assert tuple(enum) == tuple(runtime_policies)


class TestStaticGovernorInstance:
    """A StaticGovernor *instance* drives the governed code path to the
    same schedule as no governor at all — the two shapes agree."""

    @pytest.mark.parametrize("granularity", ["model", "segment"])
    def test_instance_matches_ungoverned_run(self, granularity):
        ungoverned = MultiScenarioSimulator.replicate(
            get_scenario(SCENARIO),
            build_accelerator(ACCELERATOR, PES),
            make_scheduler("latency_greedy"),
            2,
            duration_s=DURATION_S,
            granularity=granularity,
        ).run()
        governed = MultiScenarioSimulator.replicate(
            get_scenario(SCENARIO),
            build_accelerator(ACCELERATOR, PES),
            make_scheduler("latency_greedy"),
            2,
            duration_s=DURATION_S,
            granularity=granularity,
            dvfs_policy=StaticGovernor(),
        ).run()
        assert checksum_of(governed) == checksum_of(ungoverned)
        assert governed.total_energy_mj() == pytest.approx(
            ungoverned.total_energy_mj()
        )
        assert {r.dvfs for r in governed.records} == {None}
